//! Reduction by a sparse modulus \[31\] (paper Sec. IV-F).
//!
//! For pseudo-Mersenne moduli `m = 2^k − t` with small `t`, reduction
//! needs **no multiplications at all** (beyond tiny `·t` shift-adds):
//! fold `x = x_hi·2^k + x_lo ≡ x_hi·t + x_lo (mod m)` until the value
//! fits — a chain of additions that maps directly onto the paper's
//! Kogge-Stone adder, which is why the paper singles this class out.

use crate::{CimCost, ModularReducer};
use cim_bigint::Uint;
use std::error::Error;
use std::fmt;

/// Error constructing a sparse-modulus context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// `t` must satisfy `0 < t < 2^(k−1)` so folding converges.
    FoldDivergent,
    /// `k` must be positive.
    ZeroWidth,
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::FoldDivergent => {
                write!(f, "sparse modulus needs 0 < t < 2^(k−1) for folding to converge")
            }
            SparseError::ZeroWidth => write!(f, "sparse modulus width k must be positive"),
        }
    }
}

impl Error for SparseError {}

/// A pseudo-Mersenne modulus `m = 2^k − t`.
///
/// ```
/// use cim_bigint::Uint;
/// use cim_modmul::{sparse::SparseModulus, ModularReducer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Curve25519's p = 2^255 − 19.
/// let ctx = SparseModulus::new(255, Uint::from_u64(19))?;
/// let x = Uint::pow2(255); // ≡ 19 (mod p)
/// assert_eq!(ctx.reduce(&x), Uint::from_u64(19));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseModulus {
    k: usize,
    t: Uint,
    m: Uint,
}

impl SparseModulus {
    /// Creates the context for `m = 2^k − t`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError`] when `k = 0` or `t` is zero / too large
    /// for the folding loop to converge.
    pub fn new(k: usize, t: Uint) -> Result<Self, SparseError> {
        if k == 0 {
            return Err(SparseError::ZeroWidth);
        }
        if t.is_zero() || t.bit_len() >= k {
            return Err(SparseError::FoldDivergent);
        }
        let m = Uint::pow2(k).sub(&t);
        Ok(SparseModulus { k, t, m })
    }

    /// The Goldilocks prime `2^64 − 2^32 + 1` (t = 2^32 − 1).
    ///
    /// # Panics
    ///
    /// Never panics; parameters are statically valid.
    pub fn goldilocks() -> Self {
        SparseModulus::new(64, Uint::pow2(32).sub(&Uint::one())).expect("valid")
    }

    /// Curve25519's prime `2^255 − 19`.
    ///
    /// # Panics
    ///
    /// Never panics; parameters are statically valid.
    pub fn curve25519() -> Self {
        SparseModulus::new(255, Uint::from_u64(19)).expect("valid")
    }

    /// Number of fold iterations needed for an input `< m²` — each
    /// iteration is one shift-multiply-by-`t` (itself shift-adds for
    /// sparse `t`) and one addition.
    pub fn folds_for_square_input(&self) -> u64 {
        // Each fold shrinks bit length from 2k towards k by roughly
        // (k − bits(t)) bits; for crypto-sized t two folds + final
        // conditional subtractions suffice.
        let shrink = self.k - self.t.bit_len();
        (self.k as u64).div_ceil(shrink.max(1) as u64) + 1
    }

    /// Number of non-zero signed digits (non-adjacent form) of `t` —
    /// the cost of one `·t` as a shift-add chain. A "sparse" modulus
    /// is precisely one where this is small: 2 for Goldilocks'
    /// `t = 2^32 − 1`, 3 for Curve25519's `t = 19`.
    pub fn naf_terms(&self) -> u64 {
        let mut v = self.t.clone();
        let mut terms = 0u64;
        while !v.is_zero() {
            if v.bit(0) {
                terms += 1;
                // digit ±1: choose the sign that zeroes the next bit.
                let low2 = v.low_bits(2);
                if low2 == Uint::from_u64(3) {
                    v = v.add(&Uint::one()); // digit −1
                } else {
                    v = v.sub(&Uint::one()); // digit +1
                }
            }
            v = v.shr(1);
        }
        terms
    }
}

impl ModularReducer for SparseModulus {
    fn modulus(&self) -> &Uint {
        &self.m
    }

    fn mul_mod(&self, a: &Uint, b: &Uint) -> Uint {
        self.reduce(&(a * b))
    }

    fn reduce(&self, x: &Uint) -> Uint {
        let mut v = x.clone();
        // Fold: v = hi·2^k + lo ≡ hi·t + lo.
        while v.bit_len() > self.k {
            let hi = v.shr(self.k);
            let lo = v.low_bits(self.k);
            v = (&hi * &self.t).add(&lo);
        }
        while v >= self.m {
            v = v.sub(&self.m);
        }
        v
    }

    /// Sparse reduction costs **zero** full multiplications — the
    /// `·t` products are shift-add chains on the adder. We charge one
    /// full multiplier pass for the initial `a·b` product and the
    /// folds + corrections as additions.
    fn cim_cost(&self) -> CimCost {
        // Per fold: one shifted add/sub per signed digit of t plus the
        // fold addition itself; plus 2 conditional subtractions.
        let adds = self.folds_for_square_input() * (self.naf_terms() + 1) + 2;
        CimCost::compose(self.k, 1, adds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_bigint::rng::UintRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(SparseModulus::new(0, Uint::one()).is_err());
        assert!(SparseModulus::new(8, Uint::zero()).is_err());
        assert!(SparseModulus::new(8, Uint::from_u64(200)).is_err());
    }

    #[test]
    fn goldilocks_matches_naive() {
        let ctx = SparseModulus::goldilocks();
        let p = ctx.modulus().clone();
        assert_eq!(p, Uint::from_u64(0xFFFF_FFFF_0000_0001));
        let mut rng = UintRng::seeded(31);
        for _ in 0..50 {
            let a = rng.below(&p);
            let b = rng.below(&p);
            assert_eq!(ctx.mul_mod(&a, &b), (&a * &b).rem(&p));
        }
    }

    #[test]
    fn curve25519_matches_naive() {
        let ctx = SparseModulus::curve25519();
        let p = ctx.modulus().clone();
        let mut rng = UintRng::seeded(32);
        for _ in 0..20 {
            let a = rng.below(&p);
            let b = rng.below(&p);
            assert_eq!(ctx.mul_mod(&a, &b), (&a * &b).rem(&p));
        }
    }

    #[test]
    fn reduce_extremes() {
        let ctx = SparseModulus::curve25519();
        let p = ctx.modulus().clone();
        assert_eq!(ctx.reduce(&Uint::zero()), Uint::zero());
        assert_eq!(ctx.reduce(&p), Uint::zero());
        let max = (&p * &p).sub(&Uint::one());
        assert_eq!(ctx.reduce(&max), max.rem(&p));
    }

    #[test]
    fn naf_term_counts() {
        assert_eq!(SparseModulus::goldilocks().naf_terms(), 2); // 2^32 − 1
        assert_eq!(SparseModulus::curve25519().naf_terms(), 3); // 19 = 16+4−1
        assert_eq!(
            SparseModulus::new(16, Uint::one()).unwrap().naf_terms(),
            1
        );
    }

    #[test]
    fn sparse_needs_no_extra_multiplications() {
        let cost = SparseModulus::goldilocks().cim_cost();
        assert_eq!(cost.multiplications, 1, "only the a·b product itself");
        assert!(cost.additions >= 3);
        // Montgomery at the same width needs 3 multiplier passes.
        let mont = crate::montgomery::MontgomeryContext::new(
            SparseModulus::goldilocks().modulus().clone(),
        )
        .unwrap();
        assert!(cost.cycles < crate::ModularReducer::cim_cost(&mont).cycles);
    }

    #[test]
    fn agrees_with_barrett() {
        let ctx = SparseModulus::goldilocks();
        let barrett = crate::barrett::BarrettContext::new(ctx.modulus().clone()).unwrap();
        let mut rng = UintRng::seeded(33);
        for _ in 0..20 {
            let a = rng.below(ctx.modulus());
            let b = rng.below(ctx.modulus());
            assert_eq!(ctx.mul_mod(&a, &b), barrett.mul_mod(&a, &b));
        }
    }
}
