//! Montgomery modular multiplication \[29\] (paper Sec. IV-F).
//!
//! Values are kept in Montgomery form `aR mod m` with `R = 2^k`,
//! `k = ⌈bits(m)/64⌉·64`. One Montgomery multiplication is a full
//! product plus REDC, which itself is two more large multiplications —
//! all three run on the paper's Karatsuba multiplier; the final
//! conditional subtraction runs on the Kogge-Stone adder.

use crate::{CimCost, ModularReducer};
use cim_bigint::Uint;
use std::error::Error;
use std::fmt;

/// Error constructing a Montgomery context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MontgomeryError {
    /// Montgomery reduction requires an odd modulus.
    EvenModulus,
    /// The modulus must be at least 3.
    ModulusTooSmall,
}

impl fmt::Display for MontgomeryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MontgomeryError::EvenModulus => write!(f, "montgomery modulus must be odd"),
            MontgomeryError::ModulusTooSmall => write!(f, "montgomery modulus must be ≥ 3"),
        }
    }
}

impl Error for MontgomeryError {}

/// Precomputed Montgomery context for a fixed odd modulus.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontgomeryContext {
    m: Uint,
    /// R = 2^k.
    k: usize,
    /// m′ = −m⁻¹ mod R.
    m_prime: Uint,
    /// R² mod m (to convert into Montgomery form).
    r2: Uint,
}

impl MontgomeryContext {
    /// Builds the context: computes `m′ = −m⁻¹ mod 2^k` by Newton
    /// iteration and `R² mod m` by division.
    ///
    /// # Errors
    ///
    /// Returns [`MontgomeryError::EvenModulus`] for even `m` and
    /// [`MontgomeryError::ModulusTooSmall`] for `m < 3`.
    pub fn new(m: Uint) -> Result<Self, MontgomeryError> {
        if m < Uint::from_u64(3) {
            return Err(MontgomeryError::ModulusTooSmall);
        }
        if !m.bit(0) {
            return Err(MontgomeryError::EvenModulus);
        }
        let k = m.bit_len().div_ceil(64) * 64;
        let inv = inverse_mod_pow2(&m, k);
        // m′ = −inv mod 2^k = 2^k − inv  (inv ≠ 0 since m odd).
        let m_prime = Uint::pow2(k).sub(&inv);
        let r2 = Uint::pow2(2 * k).rem(&m);
        Ok(MontgomeryContext { m, k, m_prime, r2 })
    }

    /// The Montgomery radix exponent `k` (R = 2^k).
    pub fn radix_bits(&self) -> usize {
        self.k
    }

    /// The modulus.
    pub fn modulus(&self) -> &Uint {
        &self.m
    }

    /// The precomputed `m′ = −m⁻¹ mod R` (needed by hardware REDC
    /// implementations such as [`crate::inmemory::InMemoryMontgomery`]).
    pub fn m_prime(&self) -> &Uint {
        &self.m_prime
    }

    /// Converts into Montgomery form: `aR mod m`.
    pub fn to_mont(&self, a: &Uint) -> Uint {
        self.redc(&(a * &self.r2))
    }

    /// Converts out of Montgomery form: `a·R⁻¹ mod m`.
    pub fn from_mont(&self, a: &Uint) -> Uint {
        self.redc(a)
    }

    /// Montgomery reduction: `REDC(t) = t·R⁻¹ mod m` for `t < m·R`.
    ///
    /// The two internal `·m′ mod R` and `·m` products are the large
    /// multiplications the paper's hardware provides.
    pub fn redc(&self, t: &Uint) -> Uint {
        let r_mask = self.k;
        let u = (&t.low_bits(r_mask) * &self.m_prime).low_bits(r_mask);
        let s = (t + &(&u * &self.m)).shr(self.k);
        if s >= self.m {
            s.sub(&self.m)
        } else {
            s
        }
    }

    /// Multiplies two values **in Montgomery form**.
    pub fn mont_mul(&self, a: &Uint, b: &Uint) -> Uint {
        self.redc(&(a * b))
    }
}

impl ModularReducer for MontgomeryContext {
    fn modulus(&self) -> &Uint {
        &self.m
    }

    /// `(a·b) mod m` on plain (non-Montgomery) inputs: converts in,
    /// multiplies, converts out. For repeated multiplications use
    /// [`MontgomeryContext::mont_mul`] on Montgomery-form values.
    fn mul_mod(&self, a: &Uint, b: &Uint) -> Uint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    fn reduce(&self, x: &Uint) -> Uint {
        x.rem(&self.m)
    }

    /// Steady-state cost of one Montgomery multiplication (inputs
    /// already in Montgomery form): 1 full product + 2 REDC products
    /// + 1 conditional subtraction.
    fn cim_cost(&self) -> CimCost {
        CimCost::compose(self.m.bit_len(), 3, 1)
    }
}

/// `m⁻¹ mod 2^k` for odd `m`, by Newton–Hensel lifting:
/// `inv ← inv·(2 − m·inv)` doubles the valid bit count per step.
fn inverse_mod_pow2(m: &Uint, k: usize) -> Uint {
    let two = Uint::from_u64(2);
    let mut inv = Uint::one(); // valid mod 2^1
    let mut bits = 1;
    while bits < k {
        bits = (bits * 2).min(k);
        let prod = (m * &inv).low_bits(bits);
        // inv·(2 − m·inv) mod 2^bits, avoiding negatives:
        // (2 − p) mod 2^bits = (2^bits + 2 − p) mod 2^bits.
        let t = Uint::pow2(bits).add(&two).sub(&prod).low_bits(bits);
        inv = (&inv * &t).low_bits(bits);
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_bigint::rng::UintRng;

    #[test]
    fn rejects_bad_moduli() {
        assert_eq!(
            MontgomeryContext::new(Uint::from_u64(100)).unwrap_err(),
            MontgomeryError::EvenModulus
        );
        assert_eq!(
            MontgomeryContext::new(Uint::one()).unwrap_err(),
            MontgomeryError::ModulusTooSmall
        );
    }

    #[test]
    fn inverse_mod_pow2_is_inverse() {
        let m = Uint::from_decimal("1000003").unwrap();
        for k in [8usize, 64, 128, 200] {
            let inv = inverse_mod_pow2(&m, k);
            assert_eq!((&m * &inv).low_bits(k), Uint::one(), "k = {k}");
        }
    }

    #[test]
    fn roundtrip_through_montgomery_form() {
        let p = crate::fields::bls12_381_base();
        let ctx = MontgomeryContext::new(p.clone()).unwrap();
        let mut rng = UintRng::seeded(41);
        for _ in 0..10 {
            let a = rng.below(&p);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a);
        }
    }

    #[test]
    fn mul_mod_matches_naive() {
        let p = crate::fields::curve25519();
        let ctx = MontgomeryContext::new(p.clone()).unwrap();
        let mut rng = UintRng::seeded(42);
        for _ in 0..20 {
            let a = rng.below(&p);
            let b = rng.below(&p);
            assert_eq!(ctx.mul_mod(&a, &b), (&a * &b).rem(&p));
        }
    }

    #[test]
    fn mont_mul_in_form() {
        let p = Uint::from_u64(0xFFFF_FFFF_0000_0001); // Goldilocks
        let ctx = MontgomeryContext::new(p.clone()).unwrap();
        let a = Uint::from_u64(0x1234_5678_9ABC_DEF0);
        let b = Uint::from_u64(0x0FED_CBA9_8765_4321);
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        let cm = ctx.mont_mul(&am, &bm);
        assert_eq!(ctx.from_mont(&cm), (&a * &b).rem(&p));
    }

    #[test]
    fn redc_edge_values() {
        let p = Uint::from_u64(101);
        let ctx = MontgomeryContext::new(p.clone()).unwrap();
        assert!(ctx.redc(&Uint::zero()).is_zero());
        // REDC(m·R − 1) must still be < m.
        let t = (&p * &Uint::pow2(ctx.radix_bits())).sub(&Uint::one());
        assert!(ctx.redc(&t) < p);
    }

    #[test]
    fn cost_reports_three_multiplications() {
        let ctx = MontgomeryContext::new(crate::fields::bls12_381_base()).unwrap();
        let cost = ctx.cim_cost();
        assert_eq!(cost.multiplications, 3);
        assert_eq!(cost.n, 384); // 381 rounded up to a multiple of 4
    }
}
