//! Fully in-memory modular multiplication: every large-integer product
//! runs on the simulated Karatsuba CIM pipeline and the final
//! correction runs on the in-memory conditional subtractor — nothing
//! but controller addressing happens on the host.
//!
//! This realizes the claim of the paper's Sec. IV-F end-to-end:
//! Montgomery multiplication ([`InMemoryMontgomery`]) is three pipeline
//! products (`t = a·b`, `u = t·m′ mod R`, `u·m`) plus one conditional
//! subtraction; Barrett ([`InMemoryBarrett`]) is three products plus a
//! wide subtraction and two correction passes.

use crate::montgomery::{MontgomeryContext, MontgomeryError};
use cim_bigint::Uint;
use cim_logic::condsub::ConditionalSubtractor;
use karatsuba_cim::multiplier::{KaratsubaCimMultiplier, MultiplyError};
use std::error::Error;
use std::fmt;

/// Error from the in-memory modular multiplier.
#[derive(Debug)]
pub enum InMemoryError {
    /// Context construction failed.
    Montgomery(MontgomeryError),
    /// A simulated product failed.
    Multiply(MultiplyError),
    /// The conditional subtractor failed.
    Crossbar(cim_crossbar::CrossbarError),
}

impl fmt::Display for InMemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InMemoryError::Montgomery(e) => write!(f, "montgomery setup: {e}"),
            InMemoryError::Multiply(e) => write!(f, "simulated product: {e}"),
            InMemoryError::Crossbar(e) => write!(f, "conditional subtract: {e}"),
        }
    }
}

impl Error for InMemoryError {}

impl From<MontgomeryError> for InMemoryError {
    fn from(e: MontgomeryError) -> Self {
        InMemoryError::Montgomery(e)
    }
}

impl From<MultiplyError> for InMemoryError {
    fn from(e: MultiplyError) -> Self {
        InMemoryError::Multiply(e)
    }
}

impl From<cim_crossbar::CrossbarError> for InMemoryError {
    fn from(e: cim_crossbar::CrossbarError) -> Self {
        InMemoryError::Crossbar(e)
    }
}

/// Outcome of one fully in-memory Montgomery multiplication.
#[derive(Debug, Clone, PartialEq)]
pub struct InMemoryOutcome {
    /// The product in Montgomery form, `a·b·R⁻¹ mod m`.
    pub result: Uint,
    /// Simulated cycles of the three pipeline products.
    pub product_cycles: u64,
    /// Simulated cycles of the final conditional subtraction.
    pub condsub_cycles: u64,
}

impl InMemoryOutcome {
    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.product_cycles + self.condsub_cycles
    }
}

/// A Montgomery multiplier whose every arithmetic step executes on
/// simulated CIM hardware.
///
/// ```
/// use cim_bigint::Uint;
/// use cim_modmul::inmemory::InMemoryMontgomery;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = Uint::from_u64(0xFFFF_FFFF_0000_0001); // Goldilocks
/// let unit = InMemoryMontgomery::new(m.clone())?;
/// let a = Uint::from_u64(123_456_789);
/// let b = Uint::from_u64(987_654_321);
/// assert_eq!(unit.mul_mod(&a, &b)?, (&a * &b).rem(&m));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct InMemoryMontgomery {
    ctx: MontgomeryContext,
    /// Pipeline sized for the REDC products (R-bit × R-bit).
    multiplier: KaratsubaCimMultiplier,
    condsub: ConditionalSubtractor,
}

impl InMemoryMontgomery {
    /// Builds the unit: Montgomery context plus hardware sized to the
    /// Montgomery radix (bit length of `m` rounded up to a 64-bit
    /// limb boundary, which is always a multiple of 4).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid moduli or unconstructible arrays.
    pub fn new(m: Uint) -> Result<Self, InMemoryError> {
        let ctx = MontgomeryContext::new(m)?;
        let n = ctx.radix_bits();
        Ok(InMemoryMontgomery {
            multiplier: KaratsubaCimMultiplier::new(n)?,
            condsub: ConditionalSubtractor::new(n + 1),
            ctx,
        })
    }

    /// The Montgomery context (for converting to/from Montgomery form).
    pub fn context(&self) -> &MontgomeryContext {
        &self.ctx
    }

    /// One Montgomery multiplication of values **in Montgomery form**,
    /// entirely on simulated hardware.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn mont_mul(&self, am: &Uint, bm: &Uint) -> Result<InMemoryOutcome, InMemoryError> {
        let k = self.ctx.radix_bits();
        let m = self.ctx.modulus();

        // Product 1: t = am·bm  (2k bits).
        let p1 = self.multiplier.multiply(am, bm)?;
        // Product 2: u = (t mod R)·m′ mod R — low-half addressing is
        // free (the controller reads the low k columns).
        let t_lo = p1.product.low_bits(k);
        let p2 = self.multiplier.multiply(&t_lo, self.ctx.m_prime())?;
        let u = p2.product.low_bits(k);
        // Product 3: u·m, then s = (t + u·m) / R — the division by R
        // is again addressing (read the high columns).
        let p3 = self.multiplier.multiply(&u, m)?;
        let s = p1.product.add(&p3.product).shr(k);

        // Final correction in memory: s < 2m.
        let cs = self.condsub.reduce(&s, m)?;

        Ok(InMemoryOutcome {
            result: cs.result,
            product_cycles: p1.report.total_latency
                + p2.report.total_latency
                + p3.report.total_latency,
            condsub_cycles: cs.stats.cycles,
        })
    }

    /// Plain-value modular multiplication: converts in and out of
    /// Montgomery form on the host (precomputation-style), running the
    /// core multiplication in memory.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn mul_mod(&self, a: &Uint, b: &Uint) -> Result<Uint, InMemoryError> {
        let am = self.ctx.to_mont(a);
        let bm = self.ctx.to_mont(b);
        let out = self.mont_mul(&am, &bm)?;
        Ok(self.ctx.from_mont(&out.result))
    }
}

/// A Barrett modular multiplier whose products and corrections execute
/// on simulated CIM hardware (works for **even** moduli too, unlike
/// Montgomery).
///
/// One multiplication is three pipeline products (`t = a·b`,
/// `q ≈ t·µ ≫ …`, `q·m`) plus an in-memory wide subtraction and up to
/// two conditional-subtraction passes (Barrett guarantees `r < 3m`).
#[derive(Debug)]
pub struct InMemoryBarrett {
    ctx: crate::barrett::BarrettContext,
    m: Uint,
    k: usize,
    multiplier: KaratsubaCimMultiplier,
    wide_sub: cim_logic::kogge_stone::KoggeStoneAdder,
    condsub: ConditionalSubtractor,
}

impl InMemoryBarrett {
    /// Builds the unit for modulus `m` (hardware sized to `k+4` bits,
    /// rounded to a multiple of 4, so `µ` and `q` fit).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid moduli or unconstructible arrays.
    pub fn new(m: Uint) -> Result<Self, InMemoryError> {
        let ctx = crate::barrett::BarrettContext::new(m.clone())
            .map_err(|_| InMemoryError::Montgomery(MontgomeryError::ModulusTooSmall))?;
        let k = m.bit_len();
        let n = (k + 4).div_ceil(4) * 4;
        Ok(InMemoryBarrett {
            ctx,
            m,
            k,
            multiplier: KaratsubaCimMultiplier::new(n.max(8))?,
            wide_sub: cim_logic::kogge_stone::KoggeStoneAdder::new(2 * k + 2),
            condsub: ConditionalSubtractor::new(k + 2),
        })
    }

    /// `(a·b) mod m` with every product and correction in memory.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    ///
    /// # Panics
    ///
    /// Panics if an input is not below `m`.
    pub fn mul_mod(&self, a: &Uint, b: &Uint) -> Result<(Uint, u64), InMemoryError> {
        assert!(a < &self.m && b < &self.m, "inputs must be below m");
        let k = self.k;
        let mut cycles = 0u64;

        // Product 1: t = a·b (2k bits).
        let p1 = self.multiplier.multiply(a, b)?;
        cycles += p1.report.total_latency;
        let t = p1.product;

        // Product 2: q = ⌊(⌊t/2^(k−1)⌋·µ)/2^(k+1)⌋ — the shifts are
        // controller addressing.
        let t_hi = t.shr(k - 1);
        let p2 = self.multiplier.multiply(&t_hi, self.ctx.mu())?;
        cycles += p2.report.total_latency;
        let q = p2.product.shr(k + 1);

        // Product 3: q·m.
        let p3 = self.multiplier.multiply(&q, &self.m)?;
        cycles += p3.report.total_latency;

        // r = t − q·m, in memory on the wide Kogge-Stone subtractor.
        let (r, sub_stats) = self.wide_sub.sub(&t, &p3.product)?;
        cycles += sub_stats.cycles;

        // Barrett guarantees r < 3m → at most two correction passes.
        let c1 = self.condsub.sub_if_geq(&r, &self.m)?;
        cycles += c1.stats.cycles;
        let c2 = self.condsub.sub_if_geq(&c1.result, &self.m)?;
        cycles += c2.stats.cycles;
        Ok((c2.result, cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_bigint::rng::UintRng;

    #[test]
    fn barrett_in_memory_odd_and_even_moduli() {
        for m in [
            Uint::from_u64(0xFFFF_FFFF_0000_0001), // Goldilocks (odd)
            Uint::from_u64(1 << 48),               // even power of two
            Uint::from_u64(0xFFFF_FFF0),           // even composite
        ] {
            let unit = InMemoryBarrett::new(m.clone()).unwrap();
            let mut rng = UintRng::seeded(73);
            for _ in 0..3 {
                let a = rng.below(&m);
                let b = rng.below(&m);
                let (r, cycles) = unit.mul_mod(&a, &b).unwrap();
                assert_eq!(r, (&a * &b).rem(&m), "m = {m}");
                assert!(cycles > 0);
            }
        }
    }

    #[test]
    fn barrett_and_montgomery_agree_in_memory() {
        let m = crate::fields::goldilocks();
        let barrett = InMemoryBarrett::new(m.clone()).unwrap();
        let montgomery = InMemoryMontgomery::new(m.clone()).unwrap();
        let mut rng = UintRng::seeded(74);
        let a = rng.below(&m);
        let b = rng.below(&m);
        let (rb, _) = barrett.mul_mod(&a, &b).unwrap();
        assert_eq!(rb, montgomery.mul_mod(&a, &b).unwrap());
    }

    #[test]
    fn goldilocks_in_memory() {
        let m = crate::fields::goldilocks();
        let unit = InMemoryMontgomery::new(m.clone()).unwrap();
        let mut rng = UintRng::seeded(71);
        for _ in 0..3 {
            let a = rng.below(&m);
            let b = rng.below(&m);
            assert_eq!(unit.mul_mod(&a, &b).unwrap(), (&a * &b).rem(&m));
        }
    }

    #[test]
    fn bn254_in_memory() {
        let m = crate::fields::bn254_base();
        let unit = InMemoryMontgomery::new(m.clone()).unwrap();
        let mut rng = UintRng::seeded(72);
        let a = rng.below(&m);
        let b = rng.below(&m);
        assert_eq!(unit.mul_mod(&a, &b).unwrap(), (&a * &b).rem(&m));
    }

    #[test]
    fn cycle_breakdown_reported() {
        let m = crate::fields::goldilocks();
        let unit = InMemoryMontgomery::new(m.clone()).unwrap();
        let am = unit.context().to_mont(&Uint::from_u64(5));
        let bm = unit.context().to_mont(&Uint::from_u64(7));
        let out = unit.mont_mul(&am, &bm).unwrap();
        assert!(out.product_cycles > 3 * 2000, "three 64-bit pipeline runs");
        assert!(out.condsub_cycles > 0);
        assert_eq!(out.total_cycles(), out.product_cycles + out.condsub_cycles);
        assert_eq!(
            unit.context().from_mont(&out.result),
            Uint::from_u64(35).rem(&m)
        );
    }

    #[test]
    fn identity_elements() {
        let m = crate::fields::goldilocks();
        let unit = InMemoryMontgomery::new(m.clone()).unwrap();
        let a = Uint::from_u64(0xABCD_EF01_2345_6789).rem(&m);
        assert_eq!(unit.mul_mod(&a, &Uint::one()).unwrap(), a);
        assert_eq!(unit.mul_mod(&a, &Uint::zero()).unwrap(), Uint::zero());
    }
}
