//! Short-Weierstrass elliptic-curve arithmetic — the pairing-based ZKP
//! workload (paper Sec. I: "384-bit elliptic curve points", citing
//! PipeZK \[2\] and MSM engines \[3\], \[18\]).
//!
//! Points are kept in Jacobian projective coordinates so group
//! operations are inversion-free chains of field multiplications,
//! squarings and additions — precisely the mix the CIM multiplier and
//! adder execute. Every group operation counts its field
//! multiplications, so MSM-scale workloads can be projected onto the
//! paper's hardware (see [`EcOps`] and the `zkp_msm` example).

use crate::barrett::{BarrettContext, BarrettError};
use crate::{CimCost, ModularReducer};
use cim_bigint::Uint;
use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Error constructing a curve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CurveError {
    /// Field setup failed.
    Field(BarrettError),
    /// The discriminant `4a³ + 27b²` is zero (singular curve).
    Singular,
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::Field(e) => write!(f, "curve field: {e}"),
            CurveError::Singular => write!(f, "singular curve: 4a³ + 27b² = 0"),
        }
    }
}

impl Error for CurveError {}

impl From<BarrettError> for CurveError {
    fn from(e: BarrettError) -> Self {
        CurveError::Field(e)
    }
}

/// Field-multiplication counters (for CIM cost projection).
#[derive(Debug, Default)]
struct OpCounters {
    muls: Cell<u64>,
    adds: Cell<u64>,
}

/// A short-Weierstrass curve `y² = x³ + ax + b` over `Z_p`.
#[derive(Debug, Clone)]
pub struct Curve {
    field: Rc<BarrettContext>,
    a: Uint,
    b: Uint,
    p: Uint,
    ops: Rc<OpCounters>,
}

/// Snapshot of the field-operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcOps {
    /// Field multiplications (including squarings).
    pub field_muls: u64,
    /// Field additions/subtractions.
    pub field_adds: u64,
}

impl EcOps {
    /// Projects these operations onto the paper's CIM hardware at the
    /// curve's field width.
    pub fn cim_cost(&self, field_bits: usize) -> CimCost {
        // One field mul = one Montgomery triple-pass (3 multiplier
        // invocations) in steady state.
        CimCost::compose(field_bits, 3 * self.field_muls, self.field_adds)
    }
}

/// A point in Jacobian coordinates; `z = 0` encodes infinity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Point {
    x: Uint,
    y: Uint,
    z: Uint,
}

impl Point {
    /// The point at infinity (group identity).
    pub fn infinity() -> Self {
        Point {
            x: Uint::one(),
            y: Uint::one(),
            z: Uint::zero(),
        }
    }

    /// Whether this is the identity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }
}

impl Curve {
    /// Creates the curve, validating non-singularity.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError`] for a bad field or singular parameters.
    pub fn new(p: Uint, a: Uint, b: Uint) -> Result<Self, CurveError> {
        let field = BarrettContext::new(p.clone())?;
        let a = a.rem(&p);
        let b = b.rem(&p);
        // 4a³ + 27b² ≠ 0 (mod p)
        let a3 = field.mul_mod(&field.mul_mod(&a, &a), &a);
        let b2 = field.mul_mod(&b, &b);
        let disc = (Uint::from_u64(4) * &a3 + Uint::from_u64(27) * &b2).rem(&p);
        if disc.is_zero() {
            return Err(CurveError::Singular);
        }
        Ok(Curve {
            field: Rc::new(field),
            a,
            b,
            p,
            ops: Rc::new(OpCounters::default()),
        })
    }

    /// The BLS12-381 G1 curve `y² = x³ + 4` (381-bit field).
    ///
    /// # Errors
    ///
    /// Never fails for the fixed parameters.
    pub fn bls12_381_g1() -> Result<Self, CurveError> {
        Curve::new(
            crate::fields::bls12_381_base(),
            Uint::zero(),
            Uint::from_u64(4),
        )
    }

    /// The field modulus.
    pub fn modulus(&self) -> &Uint {
        &self.p
    }

    fn fmul(&self, x: &Uint, y: &Uint) -> Uint {
        self.ops.muls.set(self.ops.muls.get() + 1);
        self.field.mul_mod(x, y)
    }

    fn fadd(&self, x: &Uint, y: &Uint) -> Uint {
        self.ops.adds.set(self.ops.adds.get() + 1);
        let s = x.add(y);
        if s >= self.p {
            s.sub(&self.p)
        } else {
            s
        }
    }

    fn fsub(&self, x: &Uint, y: &Uint) -> Uint {
        self.ops.adds.set(self.ops.adds.get() + 1);
        if x >= y {
            x.sub(y)
        } else {
            x.add(&self.p).sub(y)
        }
    }

    fn fdbl(&self, x: &Uint) -> Uint {
        self.fadd(x, &x.clone())
    }

    /// Resets and returns the accumulated operation counters.
    pub fn take_ops(&self) -> EcOps {
        let out = EcOps {
            field_muls: self.ops.muls.get(),
            field_adds: self.ops.adds.get(),
        };
        self.ops.muls.set(0);
        self.ops.adds.set(0);
        out
    }

    /// Creates an affine point, checking the curve equation.
    ///
    /// Returns `None` if `(x, y)` is not on the curve.
    pub fn point(&self, x: &Uint, y: &Uint) -> Option<Point> {
        let x = x.rem(&self.p);
        let y = y.rem(&self.p);
        let lhs = self.field.mul_mod(&y, &y);
        let x3 = self.field.mul_mod(&self.field.mul_mod(&x, &x), &x);
        let rhs = (x3 + self.field.mul_mod(&self.a, &x) + self.b.clone()).rem(&self.p);
        if lhs == rhs {
            Some(Point { x, y, z: Uint::one() })
        } else {
            None
        }
    }

    /// Finds some point on the curve by scanning x and taking a
    /// square root (requires `p ≡ 3 (mod 4)`).
    ///
    /// # Panics
    ///
    /// Panics if `p ≢ 3 (mod 4)` or no point is found within 1000
    /// abscissae (practically impossible for real curves).
    pub fn find_point(&self) -> Point {
        assert_eq!(
            self.p.low_bits(2),
            Uint::from_u64(3),
            "sqrt shortcut needs p ≡ 3 (mod 4)"
        );
        let exp = self.p.add(&Uint::one()).shr(2); // (p+1)/4
        for xi in 1u64..1000 {
            let x = Uint::from_u64(xi);
            let x3 = self.field.mul_mod(&self.field.mul_mod(&x, &x), &x);
            let rhs = (x3 + self.field.mul_mod(&self.a, &x) + self.b.clone()).rem(&self.p);
            let y = self.field.pow_mod(&rhs, &exp);
            if self.field.mul_mod(&y, &y) == rhs {
                return Point { x, y, z: Uint::one() };
            }
        }
        unreachable!("no point found on a non-singular curve in 1000 tries");
    }

    /// Converts to affine coordinates; `None` for infinity.
    pub fn to_affine(&self, pt: &Point) -> Option<(Uint, Uint)> {
        if pt.is_infinity() {
            return None;
        }
        let z_inv = pt.z.mod_inverse(&self.p).expect("z coprime to prime p");
        let z2 = self.field.mul_mod(&z_inv, &z_inv);
        let z3 = self.field.mul_mod(&z2, &z_inv);
        Some((self.field.mul_mod(&pt.x, &z2), self.field.mul_mod(&pt.y, &z3)))
    }

    /// Jacobian point doubling (general `a`).
    pub fn double(&self, pt: &Point) -> Point {
        if pt.is_infinity() || pt.y.is_zero() {
            return Point::infinity();
        }
        let xx = self.fmul(&pt.x, &pt.x); // A = X²
        let yy = self.fmul(&pt.y, &pt.y); // B = Y²
        let yyyy = self.fmul(&yy, &yy); // C = B²
        // D = 2((X+B)² − A − C)
        let xb = self.fadd(&pt.x, &yy);
        let xb2 = self.fmul(&xb, &xb);
        let d = self.fdbl(&self.fsub(&self.fsub(&xb2, &xx), &yyyy));
        // E = 3A + a·Z⁴
        let zz = self.fmul(&pt.z, &pt.z);
        let z4 = self.fmul(&zz, &zz);
        let e = self.fadd(
            &self.fadd(&xx, &self.fadd(&xx, &xx)),
            &self.fmul(&self.a, &z4),
        );
        let f = self.fmul(&e, &e); // F = E²
        let x3 = self.fsub(&self.fsub(&f, &d), &d);
        let c8 = self.fdbl(&self.fdbl(&self.fdbl(&yyyy)));
        let y3 = self.fsub(&self.fmul(&e, &self.fsub(&d, &x3)), &c8);
        let z3 = self.fdbl(&self.fmul(&pt.y, &pt.z));
        Point { x: x3, y: y3, z: z3 }
    }

    /// Jacobian point addition.
    pub fn add(&self, p1: &Point, p2: &Point) -> Point {
        if p1.is_infinity() {
            return p2.clone();
        }
        if p2.is_infinity() {
            return p1.clone();
        }
        let z1z1 = self.fmul(&p1.z, &p1.z);
        let z2z2 = self.fmul(&p2.z, &p2.z);
        let u1 = self.fmul(&p1.x, &z2z2);
        let u2 = self.fmul(&p2.x, &z1z1);
        let s1 = self.fmul(&p1.y, &self.fmul(&z2z2, &p2.z));
        let s2 = self.fmul(&p2.y, &self.fmul(&z1z1, &p1.z));
        if u1 == u2 {
            return if s1 == s2 {
                self.double(p1)
            } else {
                Point::infinity()
            };
        }
        let h = self.fsub(&u2, &u1);
        let r = self.fsub(&s2, &s1);
        let hh = self.fmul(&h, &h);
        let hhh = self.fmul(&hh, &h);
        let v = self.fmul(&u1, &hh);
        let r2 = self.fmul(&r, &r);
        let x3 = self.fsub(&self.fsub(&r2, &hhh), &self.fdbl(&v));
        let y3 = self.fsub(
            &self.fmul(&r, &self.fsub(&v, &x3)),
            &self.fmul(&s1, &hhh),
        );
        let z3 = self.fmul(&h, &self.fmul(&p1.z, &p2.z));
        Point { x: x3, y: y3, z: z3 }
    }

    /// Negates a point.
    pub fn neg(&self, pt: &Point) -> Point {
        if pt.is_infinity() {
            return Point::infinity();
        }
        Point {
            x: pt.x.clone(),
            y: self.p.sub(&pt.y),
            z: pt.z.clone(),
        }
    }

    /// Scalar multiplication `k·P` (double-and-add, MSB first).
    pub fn scalar_mul(&self, k: &Uint, pt: &Point) -> Point {
        let mut acc = Point::infinity();
        for i in (0..k.bit_len()).rev() {
            acc = self.double(&acc);
            if k.bit(i) {
                acc = self.add(&acc, pt);
            }
        }
        acc
    }

    /// Equality as group elements (compares affine forms).
    pub fn points_equal(&self, p1: &Point, p2: &Point) -> bool {
        self.to_affine(p1) == self.to_affine(p2)
    }

    /// Multi-scalar multiplication `Σ k_i·P_i` by Pippenger's bucket
    /// method with window size `window` bits — the zkSNARK proving
    /// kernel (paper Sec. I / \[3\], \[18\]).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or `window` is 0 or > 24.
    pub fn msm(&self, scalars: &[Uint], points: &[Point], window: u32) -> Point {
        assert_eq!(scalars.len(), points.len(), "length mismatch");
        assert!((1..=24).contains(&window), "window must be in 1..=24");
        if scalars.is_empty() {
            return Point::infinity();
        }
        let max_bits = scalars.iter().map(Uint::bit_len).max().unwrap_or(0);
        if max_bits == 0 {
            return Point::infinity();
        }
        let w = window as usize;
        let num_windows = max_bits.div_ceil(w);
        let num_buckets = (1usize << w) - 1;

        let mut result = Point::infinity();
        for win in (0..num_windows).rev() {
            // Shift the running result left by one window.
            for _ in 0..w {
                result = self.double(&result);
            }
            // Scatter points into buckets by their window digit.
            let mut buckets = vec![Point::infinity(); num_buckets];
            for (k, p) in scalars.iter().zip(points) {
                let mut digit = 0usize;
                for b in 0..w {
                    let idx = win * w + b;
                    if idx < k.bit_len() && k.bit(idx) {
                        digit |= 1 << b;
                    }
                }
                if digit != 0 {
                    buckets[digit - 1] = self.add(&buckets[digit - 1], p);
                }
            }
            // Aggregate: Σ d·bucket_d with the running-sum trick
            // (one pass, 2·(buckets−1) additions).
            let mut running = Point::infinity();
            let mut window_sum = Point::infinity();
            for bucket in buckets.iter().rev() {
                running = self.add(&running, bucket);
                window_sum = self.add(&window_sum, &running);
            }
            result = self.add(&result, &window_sum);
        }
        result
    }

    /// Constant-sequence scalar multiplication via the Montgomery
    /// ladder — same double/add count for every scalar of a given
    /// bit length (a side-channel-uniformity property that also keeps
    /// the CIM pipeline's occupancy data-independent).
    pub fn scalar_mul_ladder(&self, k: &Uint, pt: &Point) -> Point {
        let mut r0 = Point::infinity();
        let mut r1 = pt.clone();
        for i in (0..k.bit_len()).rev() {
            if k.bit(i) {
                r0 = self.add(&r0, &r1);
                r1 = self.double(&r1);
            } else {
                r1 = self.add(&r0, &r1);
                r0 = self.double(&r0);
            }
        }
        r0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_curve() -> Curve {
        // y² = x³ + 2x + 3 over F_103 (non-singular, 103 ≡ 3 mod 4).
        Curve::new(Uint::from_u64(103), Uint::from_u64(2), Uint::from_u64(3)).unwrap()
    }

    /// All affine points of the toy curve, by brute force.
    fn toy_points(c: &Curve) -> Vec<Point> {
        let mut pts = Vec::new();
        for x in 0u64..103 {
            for y in 0u64..103 {
                if let Some(p) = c.point(&Uint::from_u64(x), &Uint::from_u64(y)) {
                    pts.push(p);
                }
            }
        }
        pts
    }

    #[test]
    fn rejects_singular_curves() {
        // y² = x³ over any field is singular (a = b = 0).
        let err = Curve::new(Uint::from_u64(97), Uint::zero(), Uint::zero()).unwrap_err();
        assert_eq!(err, CurveError::Singular);
    }

    #[test]
    fn toy_group_closure_and_commutativity() {
        let c = toy_curve();
        let pts = toy_points(&c);
        assert!(!pts.is_empty());
        for i in (0..pts.len()).step_by(7) {
            for j in (0..pts.len()).step_by(11) {
                let sum = c.add(&pts[i], &pts[j]);
                if let Some((x, y)) = c.to_affine(&sum) {
                    assert!(c.point(&x, &y).is_some(), "closure violated");
                }
                assert!(c.points_equal(&sum, &c.add(&pts[j], &pts[i])));
            }
        }
    }

    #[test]
    fn toy_group_associativity_samples() {
        let c = toy_curve();
        let pts = toy_points(&c);
        for k in (0..pts.len().saturating_sub(3)).step_by(13) {
            let (p, q, r) = (&pts[k], &pts[k + 1], &pts[k + 2]);
            let left = c.add(&c.add(p, q), r);
            let right = c.add(p, &c.add(q, r));
            assert!(c.points_equal(&left, &right));
        }
    }

    #[test]
    fn identity_and_inverse_laws() {
        let c = toy_curve();
        let p = c.find_point();
        assert!(c.points_equal(&c.add(&p, &Point::infinity()), &p));
        let sum = c.add(&p, &c.neg(&p));
        assert!(sum.is_infinity());
        assert!(c.scalar_mul(&Uint::zero(), &p).is_infinity());
        assert!(c.points_equal(&c.scalar_mul(&Uint::one(), &p), &p));
    }

    #[test]
    fn scalar_multiplication_is_additive() {
        let c = toy_curve();
        let p = c.find_point();
        for (m, n) in [(2u64, 3u64), (5, 8), (20, 17)] {
            let left = c.scalar_mul(&Uint::from_u64(m + n), &p);
            let right = c.add(
                &c.scalar_mul(&Uint::from_u64(m), &p),
                &c.scalar_mul(&Uint::from_u64(n), &p),
            );
            assert!(c.points_equal(&left, &right), "({m}+{n})P");
        }
    }

    #[test]
    fn double_equals_add_self() {
        let c = toy_curve();
        let p = c.find_point();
        assert!(c.points_equal(&c.double(&p), &c.add(&p, &p)));
    }

    #[test]
    fn bls12_381_point_operations() {
        let c = Curve::bls12_381_g1().unwrap();
        let p = c.find_point();
        // (m+n)P = mP + nP on the real 381-bit curve.
        let m = Uint::from_u64(0xDEAD_BEEF);
        let n = Uint::from_u64(0x1234_5678);
        let left = c.scalar_mul(&m.add(&n), &p);
        let right = c.add(&c.scalar_mul(&m, &p), &c.scalar_mul(&n, &p));
        assert!(c.points_equal(&left, &right));
    }

    #[test]
    fn msm_matches_naive_sum() {
        let c = toy_curve();
        let base = c.find_point();
        let points: Vec<Point> = (1..=6u64)
            .map(|i| c.scalar_mul(&Uint::from_u64(i), &base))
            .collect();
        let scalars: Vec<Uint> = [13u64, 0, 255, 7, 100, 1]
            .iter()
            .map(|&k| Uint::from_u64(k))
            .collect();
        let naive = scalars.iter().zip(&points).fold(
            Point::infinity(),
            |acc, (k, p)| c.add(&acc, &c.scalar_mul(k, p)),
        );
        for window in [1u32, 3, 4, 8] {
            let fast = c.msm(&scalars, &points, window);
            assert!(c.points_equal(&fast, &naive), "window {window}");
        }
    }

    #[test]
    fn msm_edge_cases() {
        let c = toy_curve();
        assert!(c.msm(&[], &[], 4).is_infinity());
        let p = c.find_point();
        assert!(c
            .msm(&[Uint::zero()], std::slice::from_ref(&p), 4)
            .is_infinity());
        let one = c.msm(&[Uint::one()], std::slice::from_ref(&p), 4);
        assert!(c.points_equal(&one, &p));
    }

    #[test]
    fn ladder_matches_double_and_add() {
        let c = toy_curve();
        let p = c.find_point();
        for k in [0u64, 1, 2, 77, 1023, 65537] {
            let k = Uint::from_u64(k);
            assert!(
                c.points_equal(&c.scalar_mul_ladder(&k, &p), &c.scalar_mul(&k, &p)),
                "k = {k}"
            );
        }
    }

    #[test]
    fn pippenger_beats_naive_on_field_muls() {
        let c = toy_curve();
        let base = c.find_point();
        let n = 24usize;
        let points: Vec<Point> = (1..=n as u64)
            .map(|i| c.scalar_mul(&Uint::from_u64(i), &base))
            .collect();
        let scalars: Vec<Uint> = (0..n as u64)
            .map(|i| Uint::from_u64(0x8000_0000_0000_0001u64.wrapping_mul(i + 3) >> 1))
            .collect();
        c.take_ops();
        let naive = scalars.iter().zip(&points).fold(
            Point::infinity(),
            |acc, (k, p)| c.add(&acc, &c.scalar_mul(k, p)),
        );
        let naive_ops = c.take_ops();
        let fast = c.msm(&scalars, &points, 8);
        let fast_ops = c.take_ops();
        assert!(c.points_equal(&fast, &naive));
        assert!(
            fast_ops.field_muls < naive_ops.field_muls,
            "pippenger {} vs naive {}",
            fast_ops.field_muls,
            naive_ops.field_muls
        );
    }

    #[test]
    fn op_counters_track_field_muls() {
        let c = toy_curve();
        let p = c.find_point();
        c.take_ops(); // reset
        let _ = c.double(&p);
        let dbl_ops = c.take_ops();
        // Jacobian doubling: ~8 field muls (with a ≠ 0).
        assert!((6..=10).contains(&dbl_ops.field_muls), "{dbl_ops:?}");
        let _ = c.add(&p, &c.double(&p));
        let _ = c.take_ops();

        let k = Uint::from_u64(0xFFFF);
        let _ = c.scalar_mul(&k, &p);
        let ops = c.take_ops();
        // 16 doublings + ~16 additions.
        assert!(ops.field_muls > 16 * 8, "{ops:?}");
        let cost = ops.cim_cost(384);
        assert!(cost.cycles > 0);
        assert_eq!(cost.multiplications, 3 * ops.field_muls);
    }
}
