//! Barrett reduction \[30\] (paper Sec. IV-F).
//!
//! Precomputes `µ = ⌊4^k / m⌋` with `k = bits(m)`; a reduction of
//! `x < m²` is then two multiplications (by µ and by m) plus at most
//! two conditional subtractions — exactly the operation mix the
//! paper's multiplier and adder provide.

use crate::{CimCost, ModularReducer};
use cim_bigint::Uint;
use std::error::Error;
use std::fmt;

/// Error constructing a Barrett context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrettError {
    /// The modulus must be at least 2.
    ModulusTooSmall,
}

impl fmt::Display for BarrettError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarrettError::ModulusTooSmall => write!(f, "barrett modulus must be ≥ 2"),
        }
    }
}

impl Error for BarrettError {}

/// Precomputed Barrett context for a fixed modulus (odd or even).
///
/// ```
/// use cim_bigint::Uint;
/// use cim_modmul::{barrett::BarrettContext, ModularReducer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = BarrettContext::new(Uint::from_u64(97))?;
/// assert_eq!(ctx.mul_mod(&Uint::from_u64(50), &Uint::from_u64(60)),
///            Uint::from_u64(3000 % 97));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrettContext {
    m: Uint,
    k: usize,
    mu: Uint,
}

impl BarrettContext {
    /// Builds the context, computing `µ = ⌊2^(2k) / m⌋` by long
    /// division (host-side precomputation, done once per modulus).
    ///
    /// # Errors
    ///
    /// Returns [`BarrettError::ModulusTooSmall`] for `m < 2`.
    pub fn new(m: Uint) -> Result<Self, BarrettError> {
        if m < Uint::from_u64(2) {
            return Err(BarrettError::ModulusTooSmall);
        }
        let k = m.bit_len();
        let mu = Uint::pow2(2 * k).div_floor(&m);
        Ok(BarrettContext { m, k, mu })
    }

    /// The precomputed µ.
    pub fn mu(&self) -> &Uint {
        &self.mu
    }
}

impl ModularReducer for BarrettContext {
    fn modulus(&self) -> &Uint {
        &self.m
    }

    fn mul_mod(&self, a: &Uint, b: &Uint) -> Uint {
        self.reduce(&(a * b))
    }

    /// Barrett reduction of `x < m·2^k` (covers `x < m²`).
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ 2^(2k)` (larger than Barrett's input range).
    fn reduce(&self, x: &Uint) -> Uint {
        assert!(
            x.bit_len() <= 2 * self.k,
            "barrett input exceeds 2^(2k) range"
        );
        // q = ⌊(⌊x / 2^(k−1)⌋ · µ) / 2^(k+1)⌋
        let q = (&x.shr(self.k - 1) * &self.mu).shr(self.k + 1);
        let mut r = x.sub(&(&q * &self.m));
        // At most two correction subtractions.
        while r >= self.m {
            r = r.sub(&self.m);
        }
        r
    }

    /// One Barrett modular multiplication: the full product plus two
    /// reduction products and up to two subtractions.
    fn cim_cost(&self) -> CimCost {
        CimCost::compose(self.m.bit_len(), 3, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_bigint::rng::UintRng;

    #[test]
    fn rejects_tiny_modulus() {
        assert!(BarrettContext::new(Uint::one()).is_err());
        assert!(BarrettContext::new(Uint::zero()).is_err());
    }

    #[test]
    fn exhaustive_small_modulus() {
        let m = 97u64;
        let ctx = BarrettContext::new(Uint::from_u64(m)).unwrap();
        for a in (0..m).step_by(7) {
            for b in (0..m).step_by(11) {
                assert_eq!(
                    ctx.mul_mod(&Uint::from_u64(a), &Uint::from_u64(b)),
                    Uint::from_u64(a * b % m),
                    "{a}·{b} mod {m}"
                );
            }
        }
    }

    #[test]
    fn works_with_even_modulus() {
        // Barrett (unlike Montgomery) handles even moduli.
        let m = Uint::from_u64(1 << 20);
        let ctx = BarrettContext::new(m.clone()).unwrap();
        let a = Uint::from_u64(123_456_789);
        assert_eq!(ctx.reduce(&a), a.rem(&m));
    }

    #[test]
    fn large_field_multiplications() {
        for p in [
            crate::fields::bls12_381_base(),
            crate::fields::bn254_base(),
            crate::fields::goldilocks(),
        ] {
            let ctx = BarrettContext::new(p.clone()).unwrap();
            let mut rng = UintRng::seeded(77);
            for _ in 0..10 {
                let a = rng.below(&p);
                let b = rng.below(&p);
                assert_eq!(ctx.mul_mod(&a, &b), (&a * &b).rem(&p));
            }
        }
    }

    #[test]
    fn reduce_boundary_values() {
        let p = crate::fields::curve25519();
        let ctx = BarrettContext::new(p.clone()).unwrap();
        let max_in = (&p * &p).sub(&Uint::one());
        assert_eq!(ctx.reduce(&max_in), max_in.rem(&p));
        assert_eq!(ctx.reduce(&Uint::zero()), Uint::zero());
        assert_eq!(ctx.reduce(&p), Uint::zero());
    }

    #[test]
    fn agrees_with_montgomery() {
        let p = crate::fields::bls12_381_base();
        let barrett = BarrettContext::new(p.clone()).unwrap();
        let mont = crate::montgomery::MontgomeryContext::new(p.clone()).unwrap();
        let mut rng = UintRng::seeded(88);
        for _ in 0..5 {
            let a = rng.below(&p);
            let b = rng.below(&p);
            assert_eq!(barrett.mul_mod(&a, &b), mont.mul_mod(&a, &b));
        }
    }
}
