//! Property tests: all three reduction methods agree with naive
//! division-based reduction and with each other.

use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use cim_modmul::barrett::BarrettContext;
use cim_modmul::montgomery::MontgomeryContext;
use cim_modmul::sparse::SparseModulus;
use cim_modmul::ModularReducer;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Barrett agrees with naive reduction for arbitrary odd/even
    /// moduli of arbitrary width.
    #[test]
    fn barrett_matches_naive(m_bits in 2usize..200, seed in any::<u64>()) {
        let mut rng = UintRng::seeded(seed);
        let m = rng.exact_bits(m_bits);
        prop_assume!(m >= Uint::from_u64(2));
        let ctx = BarrettContext::new(m.clone()).unwrap();
        let a = rng.below(&m);
        let b = rng.below(&m);
        prop_assert_eq!(ctx.mul_mod(&a, &b), (&a * &b).rem(&m));
    }

    /// Montgomery agrees with naive reduction for arbitrary odd moduli.
    #[test]
    fn montgomery_matches_naive(m_bits in 2usize..200, seed in any::<u64>()) {
        let mut rng = UintRng::seeded(seed);
        let m = rng.exact_bits(m_bits).add(&Uint::one()).low_bits(m_bits);
        let m = if m.bit(0) { m } else { m.add(&Uint::one()) };
        prop_assume!(m >= Uint::from_u64(3) && m.bit(0));
        let ctx = MontgomeryContext::new(m.clone()).unwrap();
        let a = rng.below(&m);
        let b = rng.below(&m);
        prop_assert_eq!(ctx.mul_mod(&a, &b), (&a * &b).rem(&m));
    }

    /// Sparse folding agrees with naive reduction for random valid
    /// (k, t) pairs.
    #[test]
    fn sparse_matches_naive(k in 8usize..200, t_bits in 1usize..6, seed in any::<u64>()) {
        let mut rng = UintRng::seeded(seed);
        let t = rng.exact_bits(t_bits);
        prop_assume!(t.bit_len() < k && !t.is_zero());
        let ctx = SparseModulus::new(k, t).unwrap();
        let m = ctx.modulus().clone();
        let a = rng.below(&m);
        let b = rng.below(&m);
        prop_assert_eq!(ctx.mul_mod(&a, &b), (&a * &b).rem(&m));
    }

    /// pow_mod is consistent across methods (Montgomery vs Barrett).
    #[test]
    fn pow_mod_consistency(seed in any::<u64>(), exp in 0u64..1000) {
        let p = cim_modmul::fields::goldilocks();
        let barrett = BarrettContext::new(p.clone()).unwrap();
        let mont = MontgomeryContext::new(p.clone()).unwrap();
        let sparse = SparseModulus::goldilocks();
        let mut rng = UintRng::seeded(seed);
        let base = rng.below(&p);
        let e = Uint::from_u64(exp);
        let r = barrett.pow_mod(&base, &e);
        prop_assert_eq!(&r, &mont.pow_mod(&base, &e));
        prop_assert_eq!(&r, &sparse.pow_mod(&base, &e));
    }

    /// Multiplicative homomorphism: reduce(a·b) = mul_mod(a mod m, b mod m).
    #[test]
    fn reduction_is_homomorphic(seed in any::<u64>()) {
        let p = cim_modmul::fields::bn254_base();
        let ctx = BarrettContext::new(p.clone()).unwrap();
        let mut rng = UintRng::seeded(seed);
        let a = rng.uniform(253);
        let b = rng.uniform(253);
        prop_assert_eq!(
            ctx.mul_mod(&a.rem(&p), &b.rem(&p)),
            (&a * &b).rem(&p)
        );
    }
}
