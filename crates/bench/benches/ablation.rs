//! Ablations of the paper's design choices:
//!
//! * **unroll depth L** (Fig. 4's ATP argument, here as simulated
//!   software dataflow cost and the analytic model);
//! * **wear-leveling** (Sec. IV-B): endurance with and without region
//!   rotation, at zero cycle cost;
//! * **LSB optimization** (Sec. IV-E): postcompute adder width 1.5n
//!   vs naive 2n.

use cim_bigint::mul::karatsuba_unrolled;
use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use cim_logic::kogge_stone::{AdderUnit, KoggeStoneAdder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use karatsuba_cim::cost::DepthCostModel;

fn bench_depth(c: &mut Criterion) {
    println!("analytic ATP by unroll depth (Fig. 4 ablation):");
    for n in [128usize, 384] {
        let atps: Vec<String> = (1..=4)
            .map(|l| format!("L{l}={:.1}", DepthCostModel::new(n, l).atp()))
            .collect();
        println!("  n = {n:>3}: {}", atps.join("  "));
    }

    // Simulated L = 1 vs L = 2 (functional pipelines, not models).
    let n = 128;
    let mut rng0 = UintRng::seeded(60);
    let a = rng0.exact_bits(n);
    let b = rng0.exact_bits(n);
    let d1 = karatsuba_cim::depth1::KaratsubaDepth1Multiplier::new(n).expect("d1");
    let o1 = d1.multiply(&a, &b).expect("mul");
    let d2 = karatsuba_cim::multiplier::KaratsubaCimMultiplier::new(n).expect("d2");
    let o2 = d2.multiply(&a, &b).expect("mul");
    println!(
        "simulated at n = {n}: L1 stages {:?} ({} cells, rows ≤ {}) vs L2 stages {:?} ({} cells)",
        o1.stage_cycles,
        o1.area_cells,
        d1.mult_row_length(),
        o2.report.stage_cycles,
        o2.report.area_cells
    );

    let mut group = c.benchmark_group("unroll_depth_software");
    let mut rng = UintRng::seeded(6);
    let a = rng.exact_bits(4096);
    let b = rng.exact_bits(4096);
    for depth in 1..=4u32 {
        group.bench_with_input(BenchmarkId::new("depth", depth), &depth, |bench, &d| {
            bench.iter(|| karatsuba_unrolled::mul(&a, &b, d))
        });
    }
    group.finish();
}

fn bench_wear_leveling(c: &mut Criterion) {
    // Endurance ablation: identical work, measure peak wear.
    let ops = 60usize;
    let mut rng = UintRng::seeded(7);
    let pairs: Vec<(Uint, Uint)> = (0..ops)
        .map(|_| (rng.uniform(64), rng.uniform(64)))
        .collect();
    for leveling in [false, true] {
        let mut unit = AdderUnit::new(64, leveling).expect("unit");
        for (a, b) in &pairs {
            unit.add(a, b).expect("add");
        }
        let e = unit.endurance();
        println!(
            "wear-leveling {}: peak {:>4} writes, balance {:.2}, {} cc total",
            if leveling { "ON " } else { "OFF" },
            e.max_writes,
            e.balance(),
            unit.cycles()
        );
    }

    let mut group = c.benchmark_group("wear_leveling_cost");
    group.sample_size(20);
    for leveling in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("adds_64bit", leveling),
            &leveling,
            |bench, &lvl| {
                bench.iter(|| {
                    let mut unit = AdderUnit::new(64, lvl).expect("unit");
                    let a = Uint::from_u64(0xDEAD_BEEF);
                    let b = Uint::from_u64(0x1234_5678);
                    for _ in 0..8 {
                        unit.add(&a, &b).expect("add");
                    }
                    unit.cycles()
                })
            },
        );
    }
    group.finish();
}

fn bench_lsb_optimization(c: &mut Criterion) {
    // Postcompute adder width: the paper's 1.5n vs a naive 2n adder.
    println!("LSB-optimization ablation (postcompute adder pass, one add):");
    for n in [64usize, 384] {
        let opt = KoggeStoneAdder::new(3 * n / 2);
        let naive = KoggeStoneAdder::new(2 * n);
        println!(
            "  n = {n:>3}: 1.5n-adder {} cc / {} cols  vs  2n-adder {} cc / {} cols (area −25%)",
            opt.latency(),
            opt.required_cols(),
            naive.latency(),
            naive.required_cols()
        );
    }
    let mut group = c.benchmark_group("postcompute_adder_width");
    group.sample_size(10);
    let mut rng = UintRng::seeded(8);
    let n = 64usize;
    let a = rng.uniform(3 * n / 2);
    let b = rng.uniform(3 * n / 2);
    let opt = KoggeStoneAdder::new(3 * n / 2);
    group.bench_with_input(BenchmarkId::new("width_1.5n", n), &n, |bench, _| {
        bench.iter(|| opt.add(&a, &b).expect("add"))
    });
    let naive = KoggeStoneAdder::new(2 * n);
    group.bench_with_input(BenchmarkId::new("width_2n", n), &n, |bench, _| {
        bench.iter(|| naive.add(&a, &b).expect("add"))
    });
    group.finish();
}

criterion_group!(benches, bench_depth, bench_wear_leveling, bench_lsb_optimization);
criterion_main!(benches);
