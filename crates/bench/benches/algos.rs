//! Software multiplication-algorithm crossover (paper Sec. III):
//! schoolbook O(n²) vs Karatsuba O(n^1.585) vs Toom-3 O(n^1.465) vs
//! unrolled Karatsuba, on host hardware. The asymptotic ordering —
//! who wins and roughly where the crossovers fall — mirrors the
//! operation-count argument the paper makes for CIM.

use cim_bigint::mul::{karatsuba, karatsuba_unrolled, schoolbook, toom};
use cim_bigint::rng::UintRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("software_multiplication");
    group.sample_size(10);
    for bits in [256usize, 1024, 4096, 16384] {
        let mut rng = UintRng::seeded(1);
        let a = rng.exact_bits(bits);
        let b = rng.exact_bits(bits);
        group.bench_with_input(BenchmarkId::new("schoolbook", bits), &bits, |bench, _| {
            bench.iter(|| schoolbook::mul(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("karatsuba", bits), &bits, |bench, _| {
            bench.iter(|| karatsuba::mul(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("toom3", bits), &bits, |bench, _| {
            bench.iter(|| toom::mul3(&a, &b))
        });
        group.bench_with_input(
            BenchmarkId::new("unrolled_l2", bits),
            &bits,
            |bench, _| bench.iter(|| karatsuba_unrolled::mul(&a, &b, 2)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
