//! Simulated pipeline-stage execution (Table I substrate): wall-clock
//! cost of cycle-accurately simulating each stage, plus the end-to-end
//! multiplier, at the paper's operand sizes. The *simulated cycle*
//! numbers these stages report are asserted against the paper's
//! formulas in the test suites; this bench tracks simulator speed.

use cim_bigint::rng::UintRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use karatsuba_cim::chunks::decompose_operand;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;
use karatsuba_cim::multiply::MultiplyStage;
use karatsuba_cim::postcompute::PostcomputeStage;
use karatsuba_cim::precompute::PrecomputeStage;

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_stages");
    group.sample_size(10);
    for n in [64usize, 256] {
        let mut rng = UintRng::seeded(2);
        let a = rng.exact_bits(n);
        let b = rng.exact_bits(n);
        let da = decompose_operand(&a, n);
        let db = decompose_operand(&b, n);
        let products: [cim_bigint::Uint; 9] =
            std::array::from_fn(|i| &da.leaves[i] * &db.leaves[i]);

        let pre = PrecomputeStage::new(n).expect("stage");
        group.bench_with_input(BenchmarkId::new("precompute", n), &n, |bench, _| {
            bench.iter(|| pre.run(&a, &b).expect("run"))
        });
        let mult = MultiplyStage::new(n).expect("stage");
        group.bench_with_input(BenchmarkId::new("multiply", n), &n, |bench, _| {
            bench.iter(|| mult.run(&da.leaves, &db.leaves).expect("run"))
        });
        let post = PostcomputeStage::new(n).expect("stage");
        group.bench_with_input(BenchmarkId::new("postcompute", n), &n, |bench, _| {
            bench.iter(|| post.run(&products).expect("run"))
        });
        let full = KaratsubaCimMultiplier::new(n).expect("multiplier");
        group.bench_with_input(BenchmarkId::new("end_to_end", n), &n, |bench, _| {
            bench.iter(|| full.multiply(&a, &b).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
