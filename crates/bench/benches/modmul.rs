//! Modular-multiplication methods (paper Sec. IV-F): Montgomery vs
//! Barrett vs sparse-modulus reduction, at the paper's two motivating
//! widths (64-bit FHE limb, 384-bit-class ZKP field). Prints the
//! composed CIM cycle estimates alongside the host wall-clock bench.

use cim_bigint::rng::UintRng;
use cim_modmul::barrett::BarrettContext;
use cim_modmul::montgomery::MontgomeryContext;
use cim_modmul::sparse::SparseModulus;
use cim_modmul::{fields, ModularReducer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_modmul(c: &mut Criterion) {
    let cases: Vec<(&str, cim_bigint::Uint)> = vec![
        ("goldilocks_64", fields::goldilocks()),
        ("bls12_381", fields::bls12_381_base()),
    ];

    println!("composed CIM cycle estimates per modular multiplication:");
    for (name, m) in &cases {
        let mont = MontgomeryContext::new(m.clone()).expect("odd modulus");
        let barrett = BarrettContext::new(m.clone()).expect("modulus");
        println!(
            "  {name:>12}: montgomery {:>7} cc ({} mults), barrett {:>7} cc ({} mults)",
            mont.cim_cost().cycles,
            mont.cim_cost().multiplications,
            barrett.cim_cost().cycles,
            barrett.cim_cost().multiplications,
        );
    }
    let sparse = SparseModulus::goldilocks();
    println!(
        "  {:>12}: sparse     {:>7} cc ({} mult + {} adds)",
        "goldilocks_64",
        sparse.cim_cost().cycles,
        sparse.cim_cost().multiplications,
        sparse.cim_cost().additions
    );

    let mut group = c.benchmark_group("modular_multiplication");
    for (name, m) in &cases {
        let mut rng = UintRng::seeded(4);
        let a = rng.below(m);
        let b = rng.below(m);
        let mont = MontgomeryContext::new(m.clone()).expect("odd modulus");
        let am = mont.to_mont(&a);
        let bm = mont.to_mont(&b);
        group.bench_with_input(
            BenchmarkId::new("montgomery_in_form", name),
            name,
            |bench, _| bench.iter(|| mont.mont_mul(&am, &bm)),
        );
        let barrett = BarrettContext::new(m.clone()).expect("modulus");
        group.bench_with_input(BenchmarkId::new("barrett", name), name, |bench, _| {
            bench.iter(|| barrett.mul_mod(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("naive_divrem", name), name, |bench, _| {
            bench.iter(|| (&a * &b).rem(m))
        });
    }
    // Sparse applies to the Goldilocks case only.
    let mut rng = UintRng::seeded(5);
    let p = fields::goldilocks();
    let a = rng.below(&p);
    let b = rng.below(&p);
    group.bench_function("sparse/goldilocks_64", |bench| {
        bench.iter(|| sparse.mul_mod(&a, &b))
    });
    group.finish();
}

criterion_group!(benches, bench_modmul);
criterion_main!(benches);
