//! NTT-based vs schoolbook negacyclic polynomial multiplication
//! (the FHE workload layer) — host wall-clock crossover, plus the CIM
//! cycle projection printed per run.

use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use cim_ntt::cost::{poly_mul_cost_schoolbook, poly_mul_cost_sparse};
use cim_ntt::field::PrimeField;
use cim_ntt::poly::Polynomial;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn random_poly(field: &PrimeField, n: usize, seed: u64) -> Polynomial {
    let mut rng = UintRng::seeded(seed);
    Polynomial::new(
        field,
        (0..n).map(|_| rng.below(field.modulus())).collect::<Vec<Uint>>(),
    )
}

fn bench_ntt(c: &mut Criterion) {
    println!("projected CIM cycles per negacyclic product (64-bit limbs):");
    for log_n in [8usize, 12] {
        let n = 1 << log_n;
        let ntt = poly_mul_cost_sparse(n, 64);
        let school = poly_mul_cost_schoolbook(n, 64);
        println!(
            "  N = {n:>5}: NTT {:.2e} cc vs schoolbook {:.2e} cc ({:.0}x)",
            ntt.total_cycles,
            school.total_cycles,
            school.total_cycles / ntt.total_cycles
        );
    }

    let field = PrimeField::goldilocks().expect("field");
    let mut group = c.benchmark_group("negacyclic_poly_mul");
    group.sample_size(10);
    for log_n in [6usize, 8] {
        let n = 1 << log_n;
        let a = random_poly(&field, n, 1);
        let b = random_poly(&field, n, 2);
        group.bench_with_input(BenchmarkId::new("ntt", n), &n, |bench, _| {
            bench.iter(|| a.mul_negacyclic(&b).expect("mul"))
        });
        group.bench_with_input(BenchmarkId::new("schoolbook", n), &n, |bench, _| {
            bench.iter(|| a.mul_negacyclic_schoolbook(&b))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ntt);
criterion_main!(benches);
