//! In-memory adder comparison (paper Sec. IV-B design choice):
//! Kogge-Stone (O(log n) cycles) vs ripple-carry (O(n) cycles).
//! Criterion measures host wall-clock of the simulation; the simulated
//! cycle counts (83 vs 962 at 64 bits) are what the paper's argument
//! rests on and are printed once per run.

use cim_bigint::rng::UintRng;
use cim_logic::kogge_stone::KoggeStoneAdder;
use cim_logic::ripple::RippleCarryAdder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_adders(c: &mut Criterion) {
    println!("simulated cycle counts (the paper's metric):");
    for width in [16usize, 64, 384] {
        println!(
            "  width {width:>4}: Kogge-Stone {:>4} cc  vs  ripple {:>5} cc",
            KoggeStoneAdder::new(width).latency(),
            RippleCarryAdder::new(width).latency()
        );
    }

    let mut group = c.benchmark_group("in_memory_adders");
    group.sample_size(20);
    for width in [16usize, 64] {
        let mut rng = UintRng::seeded(3);
        let a = rng.uniform(width);
        let b = rng.uniform(width);
        let ks = KoggeStoneAdder::new(width);
        group.bench_with_input(BenchmarkId::new("kogge_stone", width), &width, |bench, _| {
            bench.iter(|| ks.add(&a, &b).expect("add"))
        });
        let rc = RippleCarryAdder::new(width);
        group.bench_with_input(BenchmarkId::new("ripple", width), &width, |bench, _| {
            bench.iter(|| rc.add(&a, &b).expect("add"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adders);
criterion_main!(benches);
