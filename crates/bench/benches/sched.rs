//! Host-side cost of the farm scheduler itself: dispatching 2,000
//! mixed-width jobs under each policy at 4, 16, and 64 tiles. The
//! policies differ in per-job tile-selection work (FIFO and
//! wear-leveling scan the availability frontier, least-loaded scans
//! load counters), so this bounds the simulator's own overhead per
//! scheduled multiplication.

use cim_sched::{FarmConfig, JobMix, Policy, Scheduler};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("farm_scheduler");
    group.sample_size(10);
    let jobs = JobMix::crypto_default(400).generate(2000, 7);
    for tiles in [4usize, 16, 64] {
        for policy in Policy::all() {
            group.bench_with_input(
                BenchmarkId::new(policy.label(), tiles),
                &tiles,
                |bench, &tiles| {
                    bench.iter(|| {
                        let report = Scheduler::new(FarmConfig::new(tiles, policy))
                            .run(black_box(&jobs))
                            .expect("analytic profiles cannot fail");
                        black_box(report.makespan_cycles)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
