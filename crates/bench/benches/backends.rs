//! Packed vs scalar crossbar backend: wall-clock of the same
//! simulated multiplication work on both cell-state representations.
//!
//! The two backends are cycle/wear/state bit-identical (asserted by
//! the cim-check differential suite); this bench tracks the *wall
//! clock* gap the bit-packed planes buy. The row multiplier is the
//! dominant kernel of a multiply, and its arrays are caller-provided,
//! so both backends run in one process regardless of the
//! `CIM_XBAR_BACKEND` default. The end-to-end group runs the full
//! three-stage multiplier on the process default (packed unless
//! overridden).

use cim_bigint::rng::UintRng;
use cim_crossbar::{BackendKind, Crossbar};
use cim_logic::multpim::RowMultiplier;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;

const WIDTHS: [usize; 3] = [512, 1024, 2048];

fn bench_row_multiply_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_row_multiply");
    group.sample_size(10);
    for n in WIDTHS {
        let mut rng = UintRng::seeded(5);
        let a = rng.exact_bits(n);
        let b = rng.exact_bits(n);
        let mult = RowMultiplier::new(n);
        let cols = mult.required_cols();
        for (label, kind) in [
            ("packed", BackendKind::Packed),
            ("scalar", BackendKind::Scalar),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                bench.iter(|| {
                    let mut array = Crossbar::with_backend(1, cols, kind).expect("array");
                    mult.run_in(&mut array, 0, 0, &a, &b).expect("run")
                })
            });
        }
    }
    group.finish();
}

fn bench_end_to_end_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_end_to_end");
    group.sample_size(10);
    for n in WIDTHS {
        let mut rng = UintRng::seeded(5);
        let a = rng.exact_bits(n);
        let b = rng.exact_bits(n);
        let full = KaratsubaCimMultiplier::new(n).expect("multiplier");
        group.bench_with_input(BenchmarkId::new("default", n), &n, |bench, _| {
            bench.iter(|| full.multiply(&a, &b).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_row_multiply_backends, bench_end_to_end_large);
criterion_main!(benches);
