//! # cim-bench — experiment harness
//!
//! Regenerates **every table and figure** of the paper's evaluation:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table I — throughput/area/ATP/max-writes vs \[6\]–\[9\] |
//! | `fig4` | Fig. 4 — ATP vs unroll depth L |
//! | `fig1_magic_demo` | Fig. 1 — crossbar write/read + MAGIC NOR walk-through |
//! | `fig2_tree` | Fig. 2 — recursive Karatsuba tree + dependency |
//! | `fig3_unrolled` | Fig. 3 — L = 2 unrolled dataflow |
//! | `fig5_pipeline` | Fig. 5 — three-stage pipeline occupancy |
//! | `fig6_kogge_stone` | Fig. 6 — 4-bit Kogge-Stone cycle-by-cycle |
//! | `fig7_postcompute` | Fig. 7 — postcomputation memory schedule |
//! | `algo_exploration` | Sec. III op-count comparison |
//! | `simulate` | end-to-end simulated multiplication report |
//!
//! Perf gating (see [`snapshot`]): `bench_snapshot` records the fixed
//! workload matrix as deterministic JSON (plus an optional Prometheus
//! exposition of the run's metrics), `bench_check` diffs two
//! snapshots and exits nonzero on regression. Cross-snapshot history
//! (see [`trajectory`]): `bench_diff` (or `bench_check --trajectory`)
//! walks an ordered list of committed snapshots, verifies lineage
//! monotonicity, attributes multiply deltas to pipeline stages, and
//! writes `BENCH_TRAJECTORY.json`.
//!
//! Criterion benches (`cargo bench`): `algos` (software multiplication
//! crossover), `stages` (simulated stage latencies), `adders`
//! (Kogge-Stone vs ripple), `modmul` (reduction methods), `ablation`
//! (unroll depth, wear-leveling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod snapshot;
pub mod trajectory;

use std::fmt::Display;

/// Formats a number with thousands separators (`25,044`).
pub fn group_digits(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a float the way Table I does: `4.8`, `10`, `2.8k`, `1.18M`.
pub fn table_number(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.2}M", v / 1_000_000.0)
    } else if v >= 1_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else if v >= 10.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// A minimal fixed-width text table writer for the experiment
/// binaries.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Display>(headers: &[S]) -> Self {
        TextTable {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Display>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Renders the table with padded columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        let mut out = fmt_row(&self.headers);
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(5), "5");
        assert_eq!(group_digits(25044), "25,044");
        assert_eq!(group_digits(1180000), "1,180,000");
    }

    #[test]
    fn table_number_shapes() {
        assert_eq!(table_number(4.8), "4.8");
        assert_eq!(table_number(47.0), "47");
        assert_eq!(table_number(999.0), "999");
        assert_eq!(table_number(2800.0), "2.8k");
        assert_eq!(table_number(1_180_000.0), "1.18M");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["n", "value"]);
        t.row(&["64", "short"]);
        t.row(&["384", "a-longer-cell"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_rows() {
        TextTable::new(&["a", "b"]).row(&["only-one"]);
    }
}
