//! Continuous design-space sweep: throughput, area and ATP of all five
//! designs across operand widths — the "shape" behind Table I
//! (who wins, by what factor, and where the crossovers fall).
//!
//! ```text
//! cargo run -p cim-bench --bin sweep
//! ```

use cim_baselines::{models, MultiplierModel, OurKaratsuba};
use cim_bench::{table_number, TextTable};

fn main() {
    let sizes: Vec<usize> = (1..=16).map(|i| i * 32).collect(); // 32..512

    println!("DESIGN-SPACE SWEEP (n = 32…512)\n");

    println!("throughput (multiplications per Mcc):");
    let mut t = TextTable::new(&["n", "[6]", "[7]", "[8]", "[9]", "Our"]);
    for &n in &sizes {
        let row: Vec<String> = models()
            .iter()
            .map(|m| table_number(m.throughput_per_mcc(n)))
            .collect();
        t.row(&[
            n.to_string(),
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
            row[3].clone(),
            row[4].clone(),
        ]);
    }
    println!("{}", t.render());

    println!("area-time product (cells / throughput, lower is better):");
    let mut t = TextTable::new(&["n", "[6]", "[7]", "[8]", "[9]", "Our", "best"]);
    for &n in &sizes {
        let atps: Vec<f64> = models().iter().map(|m| m.atp(n)).collect();
        let best = atps
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0;
        let names = ["[6]", "[7]", "[8]", "[9]", "Our"];
        t.row(&[
            n.to_string(),
            table_number(atps[0]),
            table_number(atps[1]),
            table_number(atps[2]),
            table_number(atps[3]),
            table_number(atps[4]),
            names[best].to_string(),
        ]);
    }
    println!("{}", t.render());

    // Crossover analysis: where does Our design overtake MultPIM [9]
    // on ATP? (The paper's Table I shows [9] ahead at 64–384 but the
    // gap closing: 0.2× → 0.9×.)
    let ours = OurKaratsuba;
    let multpim = cim_baselines::MultPim;
    let crossover = sizes
        .iter()
        .find(|&&n| ours.atp(n) < multpim.atp(n))
        .copied();
    match crossover {
        Some(n) => println!("ATP crossover vs MultPIM [9]: n ≈ {n} (gap closes as in Table I)"),
        None => {
            let r64 = multpim.atp(64) / ours.atp(64);
            let r512 = multpim.atp(512) / ours.atp(512);
            println!(
                "ATP vs MultPIM [9]: ratio {:.2} at n=64 → {:.2} at n=512 — the gap\n\
                 closes monotonically (Table I: 0.2× → 0.9×), with the Karatsuba\n\
                 advantage in row length and endurance at every size",
                r64, r512
            );
        }
    }
    println!(
        "\nOur throughput advantage over the schoolbook baselines grows from\n\
         {:.0}× ([7], n=64) to {:.0}× ([7], n=512) — the asymptotic gap the\n\
         paper's title is about.",
        ours.throughput_per_mcc(64) / cim_baselines::Imaging.throughput_per_mcc(64),
        ours.throughput_per_mcc(512) / cim_baselines::Imaging.throughput_per_mcc(512)
    );
}
