//! Reproduces **Table I**: comparison of area and throughput to
//! related works at n ∈ {64, 128, 256, 384}.
//!
//! By default the "Our" rows come from the analytic cost model (which
//! reproduces the paper exactly); pass `--simulate` to additionally
//! run the full cycle-accurate simulator at every size and print the
//! measured rows next to the model.
//!
//! ```text
//! cargo run -p cim-bench --bin table1 [--simulate]
//! ```

use cim_baselines::{models, MultiplierModel, OurKaratsuba, TABLE1_SIZES};
use cim_bench::{group_digits, table_number, TextTable};
use cim_bigint::rng::UintRng;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;

fn main() {
    let simulate = std::env::args().any(|a| a == "--simulate");

    println!("TABLE I — COMPARISON OF AREA AND THROUGHPUT TO RELATED WORKS");
    println!("(factors in parentheses are relative to Our design, as in the paper)\n");

    let ours = OurKaratsuba;
    let mut table = TextTable::new(&[
        "Work", "n", "Thrpt (M/Mcc)", "Area (cells)", "ATP", "Max.Writes",
    ]);

    for model in models() {
        for &n in &TABLE1_SIZES {
            let tput = model.throughput_per_mcc(n);
            let area = model.area_cells(n);
            let atp = model.atp(n);
            let ours_tput = ours.throughput_per_mcc(n);
            let ours_atp = ours.atp(n);
            let tput_cell = if model.key() == ours.key() {
                format!("{} (1x)", table_number(tput))
            } else {
                format!("{} ({:.2}x)", table_number(tput), ours_tput / tput)
            };
            let atp_cell = if model.key() == ours.key() {
                format!("{} (1x)", table_number(atp))
            } else {
                let factor = atp / ours_atp;
                if factor < 10.0 {
                    format!("{} ({factor:.1}x)", table_number(atp))
                } else {
                    format!("{} ({factor:.0}x)", table_number(atp))
                }
            };
            let writes = model
                .max_writes(n)
                .map_or("n.r.".to_string(), group_digits);
            table.row(&[
                model.name().to_string(),
                n.to_string(),
                tput_cell,
                group_digits(area),
                atp_cell,
                writes,
            ]);
        }
    }
    println!("{}", table.render());

    println!("Headline claims (Sec. V / abstract):");
    let imaging = cim_baselines::Imaging;
    let tput_gain = ours.throughput_per_mcc(384) / imaging.throughput_per_mcc(384);
    let atp_gain = imaging.atp(384) / ours.atp(384);
    println!("  vs [7] at n=384: {tput_gain:.0}x throughput (paper: 916x), {atp_gain:.0}x ATP (paper: 281x)");
    let multpim = cim_baselines::MultPim;
    let row_ratio = multpim.max_row_length(384).unwrap() as f64
        / ours.max_row_length(384).unwrap() as f64;
    let write_ratio =
        multpim.max_writes(384).unwrap() as f64 / ours.max_writes(384).unwrap() as f64;
    println!("  vs [9] at n=384: {row_ratio:.1}x shorter rows (paper: 4x), {write_ratio:.1}x fewer writes (paper: up to 7.8x)");
    let wallace_area = cim_baselines::WallaceMajority.area_cells(384) as f64
        / ours.area_cells(384) as f64;
    println!("  vs [8] at n=384: {wallace_area:.0}x smaller area (paper: 47x)\n");

    if simulate {
        println!("Cycle-accurate simulation of Our design (functional verification + measured stats):");
        let mut sim = TextTable::new(&[
            "n",
            "pre (cc)",
            "mult (cc)",
            "post (cc)",
            "total (cc)",
            "area",
            "max writes (raw)",
            "verified",
        ]);
        let mut rng = UintRng::seeded(2025);
        for &n in &TABLE1_SIZES {
            let mult = KaratsubaCimMultiplier::new(n).expect("multiplier");
            let a = rng.exact_bits(n);
            let b = rng.exact_bits(n);
            let out = mult.multiply(&a, &b).expect("simulation");
            let max_writes = out
                .report
                .endurance
                .iter()
                .map(|e| e.max_writes)
                .max()
                .unwrap_or(0);
            sim.row(&[
                n.to_string(),
                out.report.stage_cycles[0].to_string(),
                out.report.stage_cycles[1].to_string(),
                out.report.stage_cycles[2].to_string(),
                out.report.total_latency.to_string(),
                group_digits(out.report.area_cells),
                max_writes.to_string(),
                "yes".to_string(),
            ]);
        }
        println!("{}", sim.render());
        println!("(model max-writes are wear-leveled steady-state values; raw single-run");
        println!(" measurements above are unleveled — see EXPERIMENTS.md)");
    }
}
