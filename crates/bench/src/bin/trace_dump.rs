//! Dumps a Chrome/Perfetto trace of the CIM stack end to end:
//!
//! 1. one fully **measured** pipelined 2048-bit Karatsuba multiply —
//!    every micro-op of stages 1 and 3 plus the nine parallel row
//!    multipliers of stage 2, nested under named stage/pass spans;
//! 2. the Fig. 5 **pipeline schedule** for eight back-to-back
//!    2048-bit jobs, with a jobs-in-flight gauge;
//! 3. a small **farm**: four wear-leveling tiles serving 32 mixed
//!    jobs, with the scheduler lifecycle and queue-depth counter.
//!
//! ```text
//! cargo run --release -p cim-bench --bin trace_dump [prefix] [--check]
//! ```
//!
//! Writes `<prefix>.trace.json` (load it at <https://ui.perfetto.dev>
//! or `chrome://tracing`) and `<prefix>.folded` (pipe through
//! `flamegraph.pl`/inferno), then prints the hot-span summary. With
//! `--check` nothing is written: the trace is built twice, both
//! exports must validate against the Chrome Trace Event schema and be
//! byte-identical — the CI determinism gate.

use cim_bigint::rng::UintRng;
use cim_sched::{Algo, FarmConfig, JobMix, Policy, Scheduler};
use cim_trace::{chrome, folded, summary, Tracer};
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;
use karatsuba_cim::pipeline::PipelineSchedule;

const WIDTH: usize = 2048;
const PIPELINE_JOBS: usize = 8;
const FARM_TILES: usize = 4;
const FARM_JOBS: usize = 32;

/// Builds the full reference trace; deterministic by construction
/// (seeded operands, simulated cycles only).
fn build_trace() -> cim_trace::Trace {
    let tracer = Tracer::recording();

    // 1. Measured 2048-bit multiply, all three stages instrumented.
    let mut rng = UintRng::seeded(42);
    let a = rng.uniform(WIDTH);
    let b = rng.uniform(WIDTH);
    let mult = KaratsubaCimMultiplier::new(WIDTH).expect("supported width");
    mult.multiply_traced(&a, &b, &tracer)
        .expect("2048-bit multiply succeeds");

    // 2. The analytic pipeline occupancy chart (paper Fig. 5).
    PipelineSchedule::for_design(WIDTH, PIPELINE_JOBS).trace_into(
        &tracer,
        &format!("pipeline ({WIDTH}-bit, {PIPELINE_JOBS} jobs)"),
    );

    // 3. A small farm with the scheduler lifecycle.
    let jobs = JobMix::uniform(256, Algo::Karatsuba, 1500).generate(FARM_JOBS, 42);
    Scheduler::new(FarmConfig::new(FARM_TILES, Policy::WearLeveling))
        .run_traced(&jobs, &tracer)
        .expect("analytic profiles cannot fail");

    tracer.finish().expect("recording tracer yields a trace")
}

fn main() {
    let mut prefix = "cim_stack".to_string();
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            prefix = arg;
        }
    }

    let trace = build_trace();
    let json = chrome::to_chrome_json(&trace);
    let stacks = folded::to_folded(&trace).expect("well-nested trace");

    let report = chrome::validate_chrome_trace(&json).expect("schema-valid export");
    if check {
        let again = build_trace();
        assert_eq!(
            json,
            chrome::to_chrome_json(&again),
            "Chrome export must be byte-identical across runs"
        );
        assert_eq!(
            stacks,
            folded::to_folded(&again).expect("well-nested trace"),
            "folded export must be byte-identical across runs"
        );
        println!(
            "trace_dump --check ok: {} events ({} complete spans, {} span pairs, \
             {} counters, {} instants), deterministic across runs",
            report.events, report.complete_spans, report.span_pairs, report.counters,
            report.instants
        );
        return;
    }

    let json_path = format!("{prefix}.trace.json");
    let folded_path = format!("{prefix}.folded");
    std::fs::write(&json_path, &json).expect("write trace JSON");
    std::fs::write(&folded_path, &stacks).expect("write folded stacks");

    println!(
        "wrote {json_path} ({} events; load at https://ui.perfetto.dev)",
        report.events
    );
    println!("wrote {folded_path} (pipe through flamegraph.pl / inferno)");
    println!();
    print!(
        "{}",
        summary::render_summary(&trace, 20).expect("well-nested trace")
    );
}
