//! The benchmark regression gate: diffs two snapshots written by
//! `bench_snapshot` and exits nonzero when the current one regresses.
//!
//! ```text
//! bench_check BASELINE CURRENT [--subset[=PATTERNS]] [--improved] [--wall-tol-x N] [--wall-tol-ms N]
//! bench_check --trajectory SNAPSHOT... [--out PATH]
//! ```
//!
//! Every metric except `wall_ms` must match *exactly* (the snapshot is
//! deterministic); `wall_ms` tolerates a slowdown up to the relative
//! factor (`--wall-tol-x`, default 20) or the absolute slack
//! (`--wall-tol-ms`, default 5000). `--subset` lets the current
//! snapshot cover only part of the baseline's workloads — the mode CI
//! uses to gate a `--quick` run against the committed full snapshot.
//! `--subset=PATTERNS` (comma-separated exact names or trailing-`*`
//! prefix globs, e.g. `--subset='mul_*,batch64_*'`) keeps workloads
//! matching any pattern *required* while everything else stays
//! skippable, so CI can demand a workload family without enumerating
//! its members.
//!
//! `--improved` relaxes exact equality in one direction only, for
//! *cost* metrics (cycles, writes, energy, latency percentiles): the
//! current snapshot may beat the baseline — fewer cycles passes,
//! labeled `improved` — but any increase still regresses. This is the
//! cross-snapshot mode (gate `BENCH_PR<N>.json` against
//! `BENCH_PR<N-1>.json` after an optimization lands); same-commit
//! gates stay byte-exact without it.
//!
//! In `--trajectory` mode the paths are an ordered lineage of
//! committed snapshots (oldest first). The lineage invariants are
//! verified — a workload or metric, once recorded, must appear in
//! every later snapshot — and `--out PATH` refreshes the
//! `BENCH_TRAJECTORY.json` artifact (omit `--out` to only verify).
//!
//! Exit codes: 0 pass, 1 regression/violation, 2 usage/parse errors.

use cim_bench::snapshot::{diff, BenchSnapshot, DiffOptions};
use cim_bench::trajectory::{build, path_label};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut opts = DiffOptions::default();
    let mut trajectory = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trajectory" => trajectory = true,
            "--out" => {
                let Some(path) = args.next() else {
                    return usage("--out needs a path");
                };
                out = Some(path);
            }
            "--subset" => opts.allow_subset = true,
            "--improved" => opts.allow_improvement = true,
            _ if arg.starts_with("--subset=") => {
                opts.allow_subset = true;
                opts.subset_patterns.extend(
                    arg["--subset=".len()..]
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(str::to_string),
                );
            }
            "--wall-tol-x" | "--wall-tol-ms" => {
                let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return usage(&format!("{arg} needs a numeric value"));
                };
                if arg == "--wall-tol-x" {
                    opts.wall_rel_tol = v;
                } else {
                    opts.wall_abs_tol_ms = v;
                }
            }
            other if other.starts_with("--") => {
                return usage(&format!("unknown argument {other}"));
            }
            path => paths.push(path.to_string()),
        }
    }
    let load = |path: &str| -> Result<BenchSnapshot, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchSnapshot::parse(&text).map_err(|e| format!("{path}: {e}"))
    };

    if trajectory {
        return check_trajectory(&paths, out.as_deref(), &load);
    }
    if out.is_some() {
        return usage("--out only applies to --trajectory mode");
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage("expected exactly BASELINE and CURRENT paths");
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };

    let d = diff(&baseline, &current, &opts);
    for line in &d.lines {
        println!("{line}");
    }
    if d.passed() {
        println!(
            "bench_check: PASS ({} checks, baseline {})",
            d.lines.len(),
            baseline_path
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_check: FAIL ({} regressions of {} checks)",
            d.regressions.len(),
            d.lines.len()
        );
        ExitCode::from(1)
    }
}

fn check_trajectory(
    paths: &[String],
    out: Option<&str>,
    load: &dyn Fn(&str) -> Result<BenchSnapshot, String>,
) -> ExitCode {
    if paths.len() < 2 {
        return usage("--trajectory expects two or more snapshot paths in lineage order");
    }
    let mut snapshots = Vec::new();
    for path in paths {
        match load(path) {
            Ok(s) => snapshots.push((path_label(path), s)),
            Err(e) => {
                eprintln!("bench_check: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let t = build(&snapshots);
    print!("{}", t.render());
    if let Some(out_path) = out {
        if let Err(e) = std::fs::write(out_path, t.to_json()) {
            eprintln!("bench_check: cannot write {out_path}: {e}");
            return ExitCode::from(2);
        }
        println!("bench_check: wrote {out_path}");
    }
    if t.lineage_ok() {
        println!("bench_check: TRAJECTORY PASS ({} snapshots)", t.snapshots.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_check: TRAJECTORY FAIL ({} lineage violations)",
            t.violations.len()
        );
        ExitCode::from(1)
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("bench_check: {err}");
    eprintln!(
        "usage: bench_check BASELINE CURRENT [--subset[=PATTERNS]] [--improved] [--wall-tol-x N] [--wall-tol-ms N]\n\
         \u{20}      bench_check --trajectory SNAPSHOT... [--out PATH]"
    );
    ExitCode::from(2)
}
