//! Reproduces the **Sec. III** algorithm exploration numbers:
//!
//! * schoolbook's quadratic AND-operation growth;
//! * Toom-k's interpolation burden — 25/49/81 constant multiplications
//!   for k = 3/4/5 (the Vandermonde blow-up);
//! * unrolled Karatsuba's 9/27/81 multiplications and 10/38/140
//!   precomputation additions for L = 2/3/4;
//! * the addition-width uniformity argument (recursive vs unrolled).
//!
//! ```text
//! cargo run -p cim-bench --bin algo_exploration
//! ```

use cim_bench::{group_digits, TextTable};
use cim_bigint::mul::schoolbook;
use cim_bigint::opcount::{karatsuba_unrolled_counts, precompute_width_sets, toom_counts};

fn main() {
    println!("SEC. III — ALGORITHM EXPLORATION FOR CIM LARGE-INTEGER MULTIPLICATION\n");

    println!("(A) schoolbook: bit-level AND operations grow quadratically:");
    let mut t = TextTable::new(&["n (bits)", "AND ops (n²)"]);
    for n in [64usize, 128, 256, 384] {
        t.row(&[n.to_string(), group_digits(schoolbook::bit_and_ops(n))]);
    }
    println!("{}", t.render());

    println!("(B) Toom-k: interpolation needs (2k−1)² constant multiplications");
    println!("    (paper: \"25, 49, and 81 multiplications for k = 3, 4, and 5\"):");
    let mut t = TextTable::new(&["k", "pointwise mults (2k−1)", "interpolation mults (2k−1)²"]);
    for k in 2..=5usize {
        let c = toom_counts(k);
        t.row(&[
            k.to_string(),
            c.pointwise_multiplications.to_string(),
            c.interpolation_multiplications.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("    k = 2 (Karatsuba) avoids the blow-up AND needs no fractional");
    println!("    constants — the paper's pick for CIM.\n");

    println!("(C) unrolled Karatsuba: multiplications and precompute additions");
    println!("    (paper: \"9, 27, and 81 multiplications and 10, 38, and 140");
    println!("    additions ... for L = 2, 3, and 4\"):");
    let mut t = TextTable::new(&["L", "multiplications (3^L)", "precompute additions"]);
    for depth in 1..=4u32 {
        let c = karatsuba_unrolled_counts(depth);
        t.row(&[
            depth.to_string(),
            c.multiplications.to_string(),
            c.precompute_additions.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("(D) addition-width uniformity, n = 256, L = 3:");
    let (rec, unr) = precompute_width_sets(256, 3);
    println!("    recursive : one new adder width per level     → {rec:?} bits");
    println!("    unrolled  : one uniform adder for every level → {unr:?} bits");
    println!("    (uniformity is what lets the hardware share a single");
    println!("    fixed-width Kogge-Stone adder array — paper Sec. III-C2)");
}
