//! Reproduces **Fig. 1**: the memristive-crossbar background —
//! (a) writing/reading a 3×3 grid, (b) a MAGIC NOR across all bit
//! lines in parallel — as a state-transition walk-through on the
//! simulator.
//!
//! ```text
//! cargo run -p cim-bench --bin fig1_magic_demo
//! ```

use cim_crossbar::{Crossbar, Executor, MicroOp, Region};

fn show(x: &Crossbar, caption: &str) {
    println!("{caption}");
    for line in x.render_region(&Region::new(0..3, 0..3)).lines() {
        println!("    {line}");
    }
    println!();
}

fn main() {
    println!("FIG. 1 — MEMRISTIVE CROSSBAR: WRITE, READ AND MAGIC NOR\n");

    let mut x = Crossbar::new(3, 3).expect("3x3 grid");
    show(&x, "(a) fresh 3×3 crossbar — all memristors in high resistance (0):");

    let mut exec = Executor::new(&mut x);
    exec.step(&MicroOp::write_row(0, &[true, false, true]))
        .expect("write a");
    exec.step(&MicroOp::write_row(1, &[false, false, true]))
        .expect("write b");
    show(
        exec.array(),
        "word-line driver selects row, write circuit applies V_set/V_reset:\n  row 0 ← a = [a0 a1 a2] = 1 0 1\n  row 1 ← b = [b0 b1 b2] = 0 0 1",
    );

    println!("reading row 0 with V_read (sense amplifiers):");
    exec.step(&MicroOp::read_row(0, 0..3)).expect("read");
    println!("    sensed: {:?}\n", exec.read_buffer());

    println!("(b) MAGIC NOR: output row initialized to 1, then the word-line");
    println!("driver applies V_0 to the input rows and GND to the output row;");
    println!("all three bit lines compute c_i = NOR(a_i, b_i) simultaneously:\n");
    exec.step(&MicroOp::init_rows(&[2], 0..3)).expect("init");
    show(exec.array(), "after output-row initialization (row 2 = 1 1 1):");
    exec.step(&MicroOp::nor_rows(&[0, 1], 2, 0..3)).expect("nor");
    show(
        exec.array(),
        "after one MAGIC NOR cycle (row 2 = NOR(row 0, row 1) = 0 1 0):",
    );

    println!(
        "total cycles: {} (2 writes + 1 read + 1 init + 1 NOR)",
        exec.stats().cycles
    );
    println!("SIMD width: all {} bit lines in parallel — one cycle per NOR", 3);
}
