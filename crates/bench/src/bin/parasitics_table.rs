//! Extension experiment: **bit-line practicality** — the quantified
//! version of the paper's Sec. II-C argument that MultPIM's
//! 5,369-memristor rows are impractical due to parasitic IR drop,
//! while our design's rows stay short.
//!
//! ```text
//! cargo run -p cim-bench --bin parasitics_table
//! ```

use cim_baselines::{MultPim, MultiplierModel, OurKaratsuba};
use cim_bench::TextTable;
use cim_crossbar::parasitics::{analyze_line, max_reliable_line, LineParams};

fn main() {
    let params = LineParams::default();
    println!("BIT-LINE PARASITICS — SENSE MARGIN vs LINE LENGTH");
    println!(
        "(R_on {} kΩ, R_off {} MΩ, wire {} Ω/cell, margin threshold {})\n",
        params.r_on / 1e3,
        params.r_off / 1e6,
        params.r_wire_per_cell,
        params.min_margin
    );

    let mut sweep = TextTable::new(&["line length (cells)", "sense margin", "reliable?"]);
    for cells in [64usize, 256, 576, 1024, 1176, 2048, 4096, 5369, 8192] {
        let a = analyze_line(cells, &params);
        sweep.row(&[
            cells.to_string(),
            format!("{:.3}", a.margin),
            if a.reliable { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", sweep.render());
    println!(
        "maximum reliable line under these parameters: {} cells\n",
        max_reliable_line(&params)
    );

    println!("longest row each design needs (n = operand bits):");
    let ours = OurKaratsuba;
    let multpim = MultPim;
    let mut table = TextTable::new(&["n", "our longest row", "margin", "MultPIM row", "margin"]);
    for n in [64usize, 128, 256, 384] {
        let our_row = ours.max_row_length(n).expect("reported") as usize;
        let mp_row = multpim.max_row_length(n).expect("reported") as usize;
        table.row(&[
            n.to_string(),
            our_row.to_string(),
            format!("{:.3}", analyze_line(our_row, &params).margin),
            mp_row.to_string(),
            format!("{:.3}", analyze_line(mp_row, &params).margin),
        ]);
    }
    println!("{}", table.render());
    println!("→ at n = 384, MultPIM's single row falls below the sensing");
    println!("  threshold while every row of the Karatsuba design remains");
    println!("  comfortably readable (paper Sec. II-C / V).");
}
