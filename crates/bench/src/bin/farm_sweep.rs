//! Sweeps the crossbar **farm scheduler** over tile count × policy ×
//! job mix and prints one table per mix: makespan, throughput, tail
//! latency, wear, and projected farm lifetime per configuration.
//!
//! The headline comparison is wear-leveling vs FIFO: at equal
//! (±5 %) makespan the rotating dispatch multiplies the projected
//! farm lifetime by up to the per-tile rotation-slot count.
//!
//! ```text
//! cargo run --release -p cim-bench --bin farm_sweep [jobs] [seed] [--json]
//! ```
//!
//! With `--json` the sweep emits one machine-readable JSON document
//! (an array of [`FarmReport::to_json`] objects per job mix, with
//! p50–p99 latency percentiles) instead of the text tables.

use cim_bench::{group_digits, table_number, TextTable};
use cim_sched::{Algo, FarmConfig, FarmReport, JobMix, Policy, Scheduler};

const TILE_COUNTS: [usize; 4] = [4, 8, 16, 64];

fn run(tiles: usize, policy: Policy, jobs: &[cim_sched::Job]) -> FarmReport {
    Scheduler::new(FarmConfig::new(tiles, policy))
        .run(jobs)
        .expect("analytic profiles cannot fail")
}

fn sweep(mix_name: &str, mix: &JobMix, count: usize, seed: u64) {
    println!("job mix: {mix_name}, {count} jobs");
    for class in mix.classes() {
        println!(
            "  {:>5}-bit {:<10} weight {}",
            class.width,
            class.algo.label(),
            class.weight
        );
    }
    let jobs = mix.generate(count, seed);

    let mut table = TextTable::new(&[
        "Tiles",
        "Policy",
        "Makespan (cc)",
        "Thrpt (M/Mcc)",
        "p50 lat",
        "p99 lat",
        "Util",
        "Wr/mult",
        "Lifetime (mults)",
    ]);
    for tiles in TILE_COUNTS {
        let fifo_makespan = run(tiles, Policy::Fifo, &jobs).makespan_cycles;
        for policy in Policy::all() {
            let r = run(tiles, policy, &jobs);
            let makespan_cell = if policy == Policy::Fifo || fifo_makespan == 0 {
                group_digits(r.makespan_cycles)
            } else {
                let spread = (r.makespan_cycles as f64 - fifo_makespan as f64).abs()
                    / fifo_makespan as f64;
                format!("{} ({:+.1}%)", group_digits(r.makespan_cycles), spread * 100.0)
            };
            let lifetime = r.projected_lifetime_multiplications();
            let lifetime_cell = if lifetime == u64::MAX {
                "inf".to_string()
            } else {
                group_digits(lifetime)
            };
            table.row(&[
                tiles.to_string(),
                policy.label().to_string(),
                makespan_cell,
                table_number(r.throughput_per_mcc()),
                group_digits(r.p50_latency()),
                group_digits(r.p99_latency()),
                format!("{:.0}%", r.mean_utilization() * 100.0),
                table_number(r.writes_per_multiplication()),
                lifetime_cell,
            ]);
        }
    }
    println!("{}", table.render());
}

/// One mix's sweep as a JSON object embedding the per-configuration
/// [`FarmReport::to_json`] documents.
fn sweep_json(mix_name: &str, mix: &JobMix, count: usize, seed: u64) -> String {
    let jobs = mix.generate(count, seed);
    let reports: Vec<String> = TILE_COUNTS
        .iter()
        .flat_map(|&tiles| {
            Policy::all().map(|policy| run(tiles, policy, &jobs).to_json())
        })
        .collect();
    format!(
        "{{\"mix\":{},\"jobs\":{},\"seed\":{},\"reports\":[{}]}}",
        cim_trace::json::escape(mix_name),
        count,
        seed,
        reports.join(",")
    )
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut json = false;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            positional.push(arg);
        }
    }
    let mut args = positional.into_iter();
    let count: usize = args
        .next()
        .map(|a| a.parse().expect("jobs must be a number"))
        .unwrap_or(2000);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(42);

    let mixes: [(&str, JobMix, usize); 3] = [
        (
            "crypto-mix (open arrivals)",
            JobMix::crypto_default(400),
            count,
        ),
        (
            "uniform 256-bit karatsuba (closed batch)",
            JobMix::uniform(256, Algo::Karatsuba, 0),
            count,
        ),
        (
            "uniform 2048-bit karatsuba (closed batch)",
            JobMix::uniform(2048, Algo::Karatsuba, 0),
            count / 4,
        ),
    ];

    if json {
        let sweeps: Vec<String> = mixes
            .iter()
            .map(|(name, mix, n)| sweep_json(name, mix, *n, seed))
            .collect();
        let doc = format!("{{\"sweeps\":[{}]}}", sweeps.join(","));
        cim_trace::json::check(&doc).expect("emitted JSON must be well-formed");
        println!("{doc}");
        return;
    }

    println!("FARM SWEEP — tile count x policy x job mix");
    println!("(lifetime = multiplications until the farm's hottest cell hits");
    println!(" the 1e10-write ReRAM endurance limit, at this run's wear rate)\n");

    for (name, mix, n) in &mixes {
        sweep(name, mix, *n, seed);
    }

    println!("reading: at >=16 tiles, wear-level matches FIFO makespan (±5%)");
    println!("while multiplying projected lifetime by the rotation factor;");
    println!("least-loaded evens utilization under mixed widths.");
}
