//! Wall-clock + virtual-cycle profile of one simulated multiply, stage
//! by stage — a development aid for finding the hot stage of the
//! simulator, and the source of the per-pass cycle-delta report the CI
//! `mir` job uploads.
//!
//! ```text
//! stage_profile [WIDTH] [--opt-level N|ON] [--json PATH]
//! ```
//!
//! The text profile (wall-clock times, nondeterministic) prints to
//! stdout. `--json PATH` additionally writes a **deterministic**
//! artifact: per-stage virtual-cycle counts at every optimization
//! level from `O0` to the requested `--opt-level` (default: max), so
//! each pass's contribution is the delta between adjacent columns —
//! `O1−O0` is dead-write elimination, `O2−O1` partition co-issue
//! packing, `O3−O2` crossbar-constrained placement. No wall times,
//! process statistics, or map orderings leak into the JSON.

use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use cim_mir::OptLevel;
use cim_trace::json::JsonWriter;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;
use karatsuba_cim::postcompute::PostcomputeStage;
use karatsuba_cim::precompute::PrecomputeStage;
use karatsuba_cim::progcache;
use std::process::ExitCode;
use std::time::Instant;

const STAGES: [&str; 3] = ["precompute", "multiply", "postcompute"];

fn main() -> ExitCode {
    let mut n = 2048usize;
    let mut max_opt = OptLevel::MAX;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--opt-level" => match args.next().as_deref().and_then(OptLevel::parse) {
                Some(opt) => max_opt = opt,
                None => return usage("--opt-level needs 0..=3 or O0..=O3"),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => return usage("--json needs a path"),
            },
            other => match other.parse::<usize>() {
                Ok(v) if v >= 8 && v % 4 == 0 => n = v,
                _ => return usage(&format!("bad argument {other}")),
            },
        }
    }

    let mut rng = UintRng::seeded(7);
    let a = rng.uniform(n);
    let b = rng.uniform(n);
    let m = KaratsubaCimMultiplier::with_opt_level(n, max_opt).expect("width");

    let t = Instant::now();
    let cold = m.multiply(&a, &b).expect("multiply");
    println!("n={n} {max_opt}: cold multiply {:?}", t.elapsed());

    let pre = PrecomputeStage::with_opt_level(n, max_opt).expect("stage");
    let t = Instant::now();
    let out = pre.run(&a, &b).expect("pre.run");
    println!("  precompute stage {:?}", t.elapsed());

    let post = PostcomputeStage::with_opt_level(n, max_opt).expect("stage");
    let prods: [Uint; 9] = std::array::from_fn(|i| {
        cim_bigint::mul::schoolbook::mul(&out.a_leaves[i], &out.b_leaves[i])
    });
    let t = Instant::now();
    let _ = post.run(&prods).expect("post.run");
    println!("  postcompute stage {:?}", t.elapsed());

    for _ in 0..3 {
        let t = Instant::now();
        let r = m.multiply(&a, &b).expect("multiply");
        println!(
            "n={n}: warm multiply {:?} cycles={}",
            t.elapsed(),
            r.report.total_latency
        );
    }
    let (hits, misses) = progcache::stats();
    println!(
        "progcache: {hits} hits, {misses} misses, {} entries",
        progcache::entries()
    );

    // Per-pass virtual-cycle deltas: run the ladder O0..=max_opt once
    // each (cycle counts are exact and deterministic).
    let levels: Vec<OptLevel> = OptLevel::ALL
        .into_iter()
        .filter(|o| o.index() <= max_opt.index())
        .collect();
    let mut table: Vec<(OptLevel, [u64; 3], u64)> = Vec::new();
    for &opt in &levels {
        let mult = KaratsubaCimMultiplier::with_opt_level(n, opt).expect("width");
        let r = mult.multiply(&a, &b).expect("multiply");
        assert_eq!(r.product, cold.product, "opt level changed the product");
        table.push((opt, r.report.stage_cycles, r.report.total_latency));
    }
    println!("-- virtual cycles by opt level --");
    for (opt, stages, total) in &table {
        let base = table[0].2;
        println!(
            "  {opt}: pre {:>6}  mult {:>6}  post {:>6}  total {:>7}  ({:+.1}% vs O0)",
            stages[0],
            stages[1],
            stages[2],
            total,
            100.0 * (*total as f64 - base as f64) / base as f64
        );
    }

    if let Some(path) = &json_path {
        let json = render_json(n, max_opt, &table);
        if let Err(e) = cim_trace::json::check(&json) {
            eprintln!("stage_profile: internal error — invalid JSON: {e}");
            return ExitCode::from(1);
        }
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("stage_profile: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        println!("cycle-delta report written to {path}");
    }
    ExitCode::SUCCESS
}

fn render_json(n: usize, max_opt: OptLevel, table: &[(OptLevel, [u64; 3], u64)]) -> String {
    let mut w = JsonWriter::new();
    w.open_object();
    w.field_uint("width_bits", n as u64);
    w.field_str("max_opt_level", &max_opt.to_string());
    w.key("levels").open_array();
    let (_, base_stages, base_total) = table[0];
    for (i, (opt, stages, total)) in table.iter().enumerate() {
        w.open_object().field_str("opt_level", &opt.to_string());
        w.key("stage_cycles").open_object();
        for (s, name) in STAGES.iter().enumerate() {
            w.field_uint(name, stages[s]);
        }
        w.close_object();
        w.field_uint("total_cycles", *total);
        // Delta attributable to this level's pass (vs previous level)
        // and cumulative saving vs the paper-exact O0 program.
        let prev = if i == 0 { table[0].2 } else { table[i - 1].2 };
        w.key("pass_delta_cycles").int(*total as i64 - prev as i64);
        w.key("saved_vs_o0").open_object();
        for (s, name) in STAGES.iter().enumerate() {
            w.key(name).int(base_stages[s] as i64 - stages[s] as i64);
        }
        w.key("total").int(base_total as i64 - *total as i64);
        w.close_object();
        w.close_object();
    }
    w.close_array();
    w.close_object();
    w.finish()
}

fn usage(err: &str) -> ExitCode {
    eprintln!("stage_profile: {err}");
    eprintln!("usage: stage_profile [WIDTH] [--opt-level N|ON] [--json PATH]");
    ExitCode::from(2)
}
