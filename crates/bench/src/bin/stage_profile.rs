//! Wall-clock profile of one simulated multiply, stage by stage — a
//! development aid for finding the hot stage of the simulator itself,
//! not part of the bench gate.
//!
//! Usage: `stage_profile [WIDTH]` (default 2048).

use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;
use karatsuba_cim::postcompute::PostcomputeStage;
use karatsuba_cim::precompute::PrecomputeStage;
use karatsuba_cim::progcache;
use std::time::Instant;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2048usize);
    let mut rng = UintRng::seeded(7);
    let a = rng.uniform(n);
    let b = rng.uniform(n);
    let m = KaratsubaCimMultiplier::new(n).expect("width");

    let t = Instant::now();
    let _ = m.multiply(&a, &b).expect("multiply");
    println!("n={n}: cold multiply {:?}", t.elapsed());

    let pre = PrecomputeStage::new(n).expect("stage");
    let t = Instant::now();
    let out = pre.run(&a, &b).expect("pre.run");
    println!("  precompute stage {:?}", t.elapsed());

    let post = PostcomputeStage::new(n).expect("stage");
    let prods: [Uint; 9] = std::array::from_fn(|i| {
        cim_bigint::mul::schoolbook::mul(&out.a_leaves[i], &out.b_leaves[i])
    });
    let t = Instant::now();
    let _ = post.run(&prods).expect("post.run");
    println!("  postcompute stage {:?}", t.elapsed());

    for _ in 0..3 {
        let t = Instant::now();
        let r = m.multiply(&a, &b).expect("multiply");
        println!(
            "n={n}: warm multiply {:?} cycles={}",
            t.elapsed(),
            r.report.total_latency
        );
    }
    let (hits, misses) = progcache::stats();
    println!("progcache: {hits} hits, {misses} misses");
}
