//! Reproduces **Fig. 5**: the three-stage pipelined architecture —
//! precomputation (P), multiplication (M) and postcomputation (C)
//! subarrays operating on three multiplications simultaneously —
//! as an occupancy chart plus the latency/throughput split.
//!
//! ```text
//! cargo run -p cim-bench --bin fig5_pipeline [n] [jobs]
//! ```

use cim_bench::TextTable;
use karatsuba_cim::cost::DesignPoint;
use karatsuba_cim::pipeline::PipelineSchedule;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let jobs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);

    let d = DesignPoint::new(n);
    println!("FIG. 5 — THREE-STAGE PIPELINE (n = {n} bits, {jobs} multiplications)\n");
    println!("stage subarrays (Karatsuba Multiplication Controller in between):");
    println!("  P  precomputation : {:>6} cc   {:>6} cells", d.precompute_latency, d.precompute_area);
    println!("  M  multiplication : {:>6} cc   {:>6} cells", d.multiply_latency, d.multiply_area);
    println!("  C  postcomputation: {:>6} cc   {:>6} cells", d.postcompute_latency, d.postcompute_area);
    println!("  handoff per stage : {:>6} cc (18 operand writes + 9 product reads)\n",
             karatsuba_cim::cost::HANDOFF_CYCLES);

    let schedule = PipelineSchedule::for_design(n, jobs);
    println!("occupancy over time (each char ≈ {} cc):\n", d.initiation_interval() / 40);
    print!("{}", schedule.render(d.initiation_interval() / 40));

    let mut table = TextTable::new(&["metric", "value"]);
    table.row(&["single-multiplication latency (cc)", &schedule.single_latency().to_string()]);
    table.row(&["initiation interval (cc)", &schedule.initiation_interval().to_string()]);
    table.row(&[
        "pipelined throughput (mult/Mcc)",
        &format!("{:.0}", schedule.throughput_per_mcc()),
    ]);
    table.row(&[
        "speedup vs unpipelined",
        &format!(
            "{:.2}x",
            schedule.single_latency() as f64 / schedule.initiation_interval() as f64
        ),
    ]);
    println!("\n{}", table.render());
    println!("balancing note (paper Sec. IV-A): the precompute stage is the");
    println!("cheapest and gets the smallest subarray; the multiply and");
    println!("postcompute stages spend area to keep their latencies close.");
}
