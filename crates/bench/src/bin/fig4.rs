//! Reproduces **Fig. 4**: area-time product (ATP) of the unrolled
//! Karatsuba multiplier for depths L = 1…4 across multiplication
//! sizes n. The paper's conclusion: **L = 2** yields the lowest ATP
//! across cryptographically relevant sizes.
//!
//! ```text
//! cargo run -p cim-bench --bin fig4
//! ```

use cim_bench::TextTable;
use karatsuba_cim::cost::DepthCostModel;

fn main() {
    println!("FIG. 4 — AREA-TIME PRODUCT vs UNROLL DEPTH L\n");

    let sizes = [64usize, 128, 192, 256, 320, 384, 512];
    let depths = [1u32, 2, 3, 4];

    let mut table = TextTable::new(&["n", "L=1", "L=2", "L=3", "L=4", "best"]);
    for &n in &sizes {
        let atps: Vec<f64> = depths
            .iter()
            .map(|&l| DepthCostModel::new(n, l).atp())
            .collect();
        let best = depths[atps
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0];
        table.row(&[
            n.to_string(),
            format!("{:.1}", atps[0]),
            format!("{:.1}", atps[1]),
            format!("{:.1}", atps[2]),
            format!("{:.1}", atps[3]),
            format!("L={best}"),
        ]);
    }
    println!("{}", table.render());

    // ASCII plot: ATP (log scale) vs n, one curve per depth.
    println!("ATP (log scale, '1'..'4' = depth L):\n");
    let rows = 16;
    let all: Vec<Vec<f64>> = sizes
        .iter()
        .map(|&n| depths.iter().map(|&l| DepthCostModel::new(n, l).atp()).collect())
        .collect();
    let min = all.iter().flatten().fold(f64::MAX, |a, &b| a.min(b)).ln();
    let max = all.iter().flatten().fold(f64::MIN, |a, &b| a.max(b)).ln();
    let mut grid = vec![vec![' '; sizes.len() * 6]; rows];
    for (ci, atps) in all.iter().enumerate() {
        for (di, &atp) in atps.iter().enumerate() {
            let y = ((atp.ln() - min) / (max - min) * (rows - 1) as f64).round() as usize;
            let row = rows - 1 - y;
            let col = ci * 6 + di;
            grid[row][col] = char::from_digit(di as u32 + 1, 10).expect("1-4");
        }
    }
    for row in grid {
        let line: String = row.into_iter().collect();
        println!("  |{}", line.trim_end());
    }
    println!("  +{}", "-".repeat(sizes.len() * 6));
    let labels: Vec<String> = sizes.iter().map(|n| format!("{n:<6}")).collect();
    println!("   {}", labels.concat());
    println!("\nConclusion: L = 2 minimizes ATP across cryptographically relevant");
    println!("sizes (L = 1 is competitive only below n = 128; L ≥ 3 never wins).");
}
