//! Reproduces **Fig. 7**: the postcomputation memory schedule —
//! layouts (a)–(d) of the partial products and intermediates across
//! the 11 adder passes — with live values for a concrete operand pair.
//!
//! ```text
//! cargo run -p cim-bench --bin fig7_postcompute [n]
//! ```

use cim_bench::TextTable;
use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use karatsuba_cim::chunks::{decompose_operand, PRODUCT_NAMES};
use karatsuba_cim::postcompute::PostcomputeStage;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    assert!(n.is_multiple_of(4) && n >= 8, "n must be a multiple of 4, ≥ 8");
    let q = n / 4;

    let mut rng = UintRng::seeded(7);
    let a = rng.exact_bits(n);
    let b = rng.exact_bits(n);
    let da = decompose_operand(&a, n);
    let db = decompose_operand(&b, n);
    let p: [Uint; 9] = std::array::from_fn(|i| &da.leaves[i] * &db.leaves[i]);

    println!("FIG. 7 — POSTCOMPUTATION SCHEDULE (n = {n} bits, adder width 1.5n = {})\n", 3 * n / 2);

    println!("(a) initial layout — the nine partial products from stage 2:");
    let mut t = TextTable::new(&["product", "value", "bits"]);
    for i in 0..9 {
        t.row(&[
            PRODUCT_NAMES[i].to_string(),
            format!("0x{:x}", p[i]),
            p[i].bit_len().to_string(),
        ]);
    }
    println!("{}", t.render());

    // Mirror the stage's schedule with named intermediates.
    let t_l = p[0].add(&p[1]);
    let ct_lm = p[2].sub(&t_l);
    let t_h = p[3].add(&p[4]);
    let ct_hm = p[5].sub(&t_h);
    let t_m = p[6].add(&p[7]);
    let ct_mm = p[8].sub(&t_m);
    println!("passes 1–4 (c̃ terms; l/h pairs run batched side-by-side):");
    println!("  c̃_lm = c_lm − (c_ll + c_lh) = 0x{ct_lm:x}");
    println!("  c̃_hm = c_hm − (c_hl + c_hh) = 0x{ct_hm:x}");
    println!("  c̃_mm = c_mm − (c_ml + c_mh) = 0x{ct_mm:x}\n");

    let c_l = p[0].add(&p[1].shl(2 * q)).add(&ct_lm.shl(q));
    let c_h = p[3].add(&p[4].shl(2 * q)).add(&ct_hm.shl(q));
    let u = p[6].add(&p[7].shl(2 * q));
    let c_m = u.add(&ct_mm.shl(q));
    println!("(b) after reorder — passes 5–8 (c_m needs TWO additions because");
    println!("    c_ml is n/2+2 = {} bits wide and cannot simply be appended):", n / 2 + 2);
    println!("  c_l = (c_lh ‖ c_ll) + c̃_lm·2^{q} = 0x{c_l:x}");
    println!("  c_h = (c_hh ‖ c_hl) + c̃_hm·2^{q} = 0x{c_h:x}");
    println!("  c_m = (c_ml + c_mh·2^{}) + c̃_mm·2^{q} = 0x{c_m:x}\n", 2 * q);

    let ct_m = c_m.sub(&c_h).sub(&c_l);
    println!("(c) passes 9–10:  c̃_m = c_m − c_h − c_l = 0x{ct_m:x}\n");

    let base_top = c_l.add(&c_h.shl(n)).shr(n / 2);
    let c_top = base_top.add(&ct_m);
    let c = c_top.shl(n / 2).add(&c_l.low_bits(n / 2));
    println!("(d) pass 11 — LSB optimization: the low n/2 = {} bits of c_l are", n / 2);
    println!("    already final; the addition covers only the top 1.5n bits");
    println!("    (saves 25% of the stage area):");
    println!("  c = a·b = 0x{c:x}");
    assert_eq!(c, &a * &b);

    // And run the actual in-memory stage for confirmation.
    let stage = PostcomputeStage::new(n).expect("stage");
    let out = stage.run(&p).expect("postcompute");
    assert_eq!(out.product, c);
    println!("\nin-memory stage result matches, {} cc measured", out.stats.cycles);
    println!("(paper closed form: {} cc — delta is operand staging, see EXPERIMENTS.md)",
             stage.paper_latency());
}
