//! Cross-snapshot diff: loads two or more `bench_snapshot` files in
//! lineage order, prints the human trajectory summary, and writes the
//! machine artifact.
//!
//! ```text
//! bench_diff BENCH_A.json BENCH_B.json [MORE...] [--out BENCH_TRAJECTORY.json]
//! ```
//!
//! Every exact metric of every shared workload is diffed; the
//! `multiply_*` deltas are attributed to pipeline stages (see
//! `cim_bench::trajectory`). With `--out` (default
//! `BENCH_TRAJECTORY.json`) the deterministic JSON trajectory is
//! written next to the human table; `--no-out` skips the file.
//!
//! Exit codes: 0 ok, 1 lineage violation, 2 usage/parse errors.

use cim_bench::snapshot::BenchSnapshot;
use cim_bench::trajectory::{build, path_label};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut out: Option<String> = Some("BENCH_TRAJECTORY.json".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let Some(path) = args.next() else {
                    return usage("--out needs a path");
                };
                out = Some(path);
            }
            "--no-out" => out = None,
            other if other.starts_with("--") => {
                return usage(&format!("unknown argument {other}"));
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() < 2 {
        return usage("expected two or more snapshot paths in lineage order");
    }

    let mut snapshots = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_diff: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match BenchSnapshot::parse(&text) {
            Ok(s) => snapshots.push((path_label(path), s)),
            Err(e) => {
                eprintln!("bench_diff: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let trajectory = build(&snapshots);
    print!("{}", trajectory.render());
    if let Some(out_path) = out {
        let json = trajectory.to_json();
        if let Err(e) = std::fs::write(&out_path, &json) {
            eprintln!("bench_diff: cannot write {out_path}: {e}");
            return ExitCode::from(2);
        }
        println!("\nbench_diff: wrote {out_path} ({} bytes)", json.len());
    }
    if trajectory.lineage_ok() {
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_diff: LINEAGE VIOLATED ({} violations)",
            trajectory.violations.len()
        );
        ExitCode::from(1)
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("bench_diff: {err}");
    eprintln!("usage: bench_diff SNAPSHOT... [--out PATH | --no-out]");
    ExitCode::from(2)
}
