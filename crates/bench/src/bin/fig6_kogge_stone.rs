//! Reproduces **Fig. 6**: the 4-bit Kogge-Stone adder schematic —
//! p/g computation (8 cc), two prefix levels (11 cc each) and the sum
//! phase (9 cc) — executed cycle-by-cycle on the simulator with the
//! micro-op trace printed per phase.
//!
//! ```text
//! cargo run -p cim-bench --bin fig6_kogge_stone [x] [y]
//! ```

use cim_bigint::Uint;
use cim_crossbar::{Crossbar, Executor, MicroOp};
use cim_logic::kogge_stone::{AddOp, KoggeStoneAdder};

fn op_name(op: &MicroOp) -> String {
    match op {
        MicroOp::WriteRow { row, .. } => format!("write row {row}"),
        MicroOp::WriteRowLanes { row, .. } => format!("write row {row} (lane words)"),
        MicroOp::ReadRow { row, .. } => format!("read row {row}"),
        MicroOp::InitRows { rows, .. } => format!("init rows {rows:?} → 1"),
        MicroOp::ResetRegion(r) => format!("reset rows {:?}", r.rows),
        MicroOp::ResetRows { rows, .. } => format!("reset rows {rows:?}"),
        MicroOp::NorRows { inputs, out, .. } => format!("NOR rows {inputs:?} → row {out}"),
        MicroOp::NorCols { in_cols, out_col, .. } => {
            format!("NOR cols {in_cols:?} → col {out_col}")
        }
        MicroOp::NorColsPartitioned {
            part_width,
            in_offsets,
            out_offset,
            ..
        } => format!(
            "partitioned NOR (width {part_width}) {in_offsets:?} → +{out_offset}"
        ),
        MicroOp::Shift { src, dst, offset, .. } => {
            format!("periphery shift row {src} by {offset:+} → row {dst}")
        }
        MicroOp::Parallel(ops) => {
            let inner: Vec<String> = ops.iter().map(op_name).collect();
            format!("co-issue [{}]", inner.join(" ∥ "))
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let x: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(11);
    let y: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    assert!(x < 16 && y < 16, "operands must be 4-bit");

    println!("FIG. 6 — 4-BIT KOGGE-STONE ADDER, CYCLE BY CYCLE\n");
    println!("x = {x} = 0b{x:04b},  y = {y} = 0b{y:04b}\n");

    let adder = KoggeStoneAdder::new(4);
    println!(
        "latency formula: 8 + 11·⌈log2 4⌉ + 9 = {} cc,  {} columns, {} scratch rows\n",
        adder.latency(),
        adder.required_cols(),
        cim_logic::kogge_stone::SCRATCH_ROWS
    );

    let mut array = Crossbar::new(adder.required_rows(), adder.required_cols()).expect("array");
    array
        .write_row(0, 0, &Uint::from_u64(x).to_bits(5))
        .expect("load x");
    array
        .write_row(1, 0, &Uint::from_u64(y).to_bits(5))
        .expect("load y");
    let mut exec = Executor::new(&mut array);

    let program = adder.program(AddOp::Add);
    let phases = [
        ("p/g computation (blue in Fig. 6)", 8usize),
        ("prefix level 1, distance 1 (red)", 9),
        ("prefix level 2, distance 2 (red)", 9),
        ("sum computation + reset (yellow)", 8),
    ];
    let mut idx = 0;
    let mut cycle = 0u64;
    for (label, ops) in phases {
        println!("── {label}");
        for _ in 0..ops {
            let op = &program[idx];
            let cost = op.cycles();
            println!("  cc {:>2}–{:<2} {}", cycle + 1, cycle + cost, op_name(op));
            exec.step(op).expect("step");
            cycle += cost;
            idx += 1;
        }
    }
    assert_eq!(idx, program.len(), "all ops accounted for");

    let bits = exec.array().read_row_bits(2, 0..5).expect("sum");
    let sum = Uint::from_bits(&bits);
    println!("\nsum row (5 bits incl. carry-out): {sum} = 0b{sum:05b}");
    assert_eq!(sum, Uint::from_u64(x + y));
    println!("expected {x} + {y} = {} ✓   total cycles: {}", x + y, exec.stats().cycles);
}
