//! Reproduces **Fig. 2**: the two-level *recursive* Karatsuba tree,
//! including the cross-level data dependency (the level-1 sums
//! `a_m, b_m` must exist before level 2 can split them) and the
//! non-uniform addition widths that make recursive Karatsuba awkward
//! for CIM (paper Sec. III-C1).
//!
//! ```text
//! cargo run -p cim-bench --bin fig2_tree [n]
//! ```

use cim_bigint::opcount::{karatsuba_recursive_counts, precompute_width_sets};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    println!("FIG. 2 — TWO-LEVEL RECURSIVE KARATSUBA TREE (n = {n} bits)\n");
    println!("level 0:                      a · b                ({n}-bit)");
    println!("                            /   |   \\");
    let h = n / 2;
    println!("level 1:            a_l·b_l  a_h·b_h  a_m·b_m      ({h}/{h}/{}-bit)", h + 1);
    println!("                     /|\\      /|\\      /|\\");
    println!("level 2:            9 multiplications of ~{}-bit    (plus carries)", n / 4);
    println!();
    println!("cross-level dependency (red arrow in the paper):");
    println!("  a_m = a_h + a_l  must be computed ({h}-bit addition) BEFORE");
    println!("  level 2 can split a_m into chunks and form a_mm = a_m,h + a_m,l");
    println!("  ({}-bit addition).\n", n / 4 + 1);

    let (rec_widths, unr_widths) = precompute_width_sets(n, 2);
    println!("precomputation addition widths needed:");
    println!("  recursive Karatsuba : {rec_widths:?} bits  → one adder array per width,");
    println!("                        or one oversized array (underutilized)");
    println!("  unrolled  Karatsuba : {unr_widths:?} bits  → a single uniform adder\n");

    let counts = karatsuba_recursive_counts(2);
    println!("operation counts at depth 2 (recursive):");
    println!("  partial multiplications : {}", counts.multiplications);
    println!("  precompute additions    : {} (at MIXED widths)", counts.precompute_additions);
    println!("  postcompute add/subs    : {}", counts.postcompute_addsubs);
    println!();
    println!("→ the non-uniformity of the recursive form is why the paper");
    println!("  unrolls the tree (see fig3_unrolled).");
}
