//! Extension experiment: per-multiplication **energy** breakdown of
//! the Karatsuba CIM design (the paper evaluates throughput / area /
//! endurance; energy is the metric its introduction motivates — "a
//! significant amount of energy is lost on data movements").
//!
//! Prints the in-memory energy per multiplication and contrasts it
//! with the off-chip data-movement energy a von-Neumann accelerator
//! pays for the same operands.
//!
//! ```text
//! cargo run --release -p cim-bench --bin energy_table
//! ```

use cim_bench::TextTable;
use cim_bigint::rng::UintRng;
use cim_crossbar::{EnergyParams, EnergyReport};
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;
use karatsuba_cim::PAPER_SIZES;

fn main() {
    let params = EnergyParams::default();
    println!("ENERGY PER MULTIPLICATION (extension; parameters: write {} pJ,", params.write_pj);
    println!("read {} pJ, MAGIC {} pJ/cell, off-chip {} pJ/bit)\n",
             params.read_pj, params.magic_pj, params.offchip_pj_per_bit);

    let mut table = TextTable::new(&[
        "n",
        "write (pJ)",
        "read (pJ)",
        "MAGIC (pJ)",
        "ctrl (pJ)",
        "total (nJ)",
        "vN movement (nJ)",
    ]);
    let mut rng = UintRng::seeded(123);
    for &n in &PAPER_SIZES {
        let mult = KaratsubaCimMultiplier::new(n).expect("multiplier");
        let a = rng.exact_bits(n);
        let b = rng.exact_bits(n);
        let out = mult.multiply(&a, &b).expect("simulate");
        let e = out.report.energy(n, &params);
        // A von-Neumann system moves 2 operands in and a 2n-bit result
        // out over the memory bus: 4n bits.
        let movement = EnergyReport::offchip_movement_pj(4 * n, &params);
        table.row(&[
            n.to_string(),
            format!("{:.0}", e.write_pj),
            format!("{:.0}", e.read_pj),
            format!("{:.0}", e.magic_pj),
            format!("{:.0}", e.controller_pj),
            format!("{:.2}", e.total_pj() / 1000.0),
            format!("{:.2}", movement / 1000.0),
        ]);
    }
    println!("{}", table.render());
    println!("notes:");
    println!("  * 'vN movement' is ONLY the DDR-class transfer of operands and");
    println!("    result for one multiplication; a von-Neumann multiplier also");
    println!("    re-fetches intermediates throughout the schoolbook schedule —");
    println!("    O(n/64)² word transfers vs our single in/out transfer.");
    println!("  * in-memory MAGIC energy here is an upper bound (every cell of");
    println!("    a row assumed active each MAGIC cycle); write energy uses the");
    println!("    exact per-cell write counts from the simulator.");
    println!("  * absolute pJ values are parameterizable (EnergyParams).");
}
