//! End-to-end simulated multiplication report: runs one `n`-bit
//! multiplication through all three stages on cycle-accurate
//! crossbars and prints per-stage cycles, areas and endurance.
//!
//! ```text
//! cargo run -p cim-bench --bin simulate [n] [seed]
//! ```

use cim_bench::{group_digits, TextTable};
use cim_bigint::rng::UintRng;
use karatsuba_cim::cost::DesignPoint;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let mut rng = UintRng::seeded(seed);
    let a = rng.exact_bits(n);
    let b = rng.exact_bits(n);

    println!("SIMULATED {n}-BIT KARATSUBA CIM MULTIPLICATION (seed {seed})\n");
    println!("a = 0x{a:x}");
    println!("b = 0x{b:x}\n");

    let mult = KaratsubaCimMultiplier::new(n).expect("multiplier");
    let out = mult.multiply(&a, &b).expect("simulation");
    println!("c = a·b = 0x{:x}", out.product);
    println!("verified against the software gold model ✓\n");

    let d = DesignPoint::new(n);
    let model = [d.precompute_latency, d.multiply_latency, d.postcompute_latency];
    let stage_names = ["precompute", "multiply", "postcompute"];
    let mut t = TextTable::new(&[
        "stage", "measured cc", "model cc", "area (cells)", "max writes", "wear balance",
    ]);
    let areas = [d.precompute_area, d.multiply_area, d.postcompute_area];
    for i in 0..3 {
        let e = &out.report.endurance[i];
        t.row(&[
            stage_names[i].to_string(),
            out.report.stage_cycles[i].to_string(),
            model[i].to_string(),
            group_digits(areas[i]),
            e.max_writes.to_string(),
            format!("{:.2}", e.balance()),
        ]);
    }
    println!("{}", t.render());

    println!("totals:");
    println!("  latency (incl. 3×27 cc handoff): {} cc", out.report.total_latency);
    println!("  area: {} cells", group_digits(out.report.area_cells));
    println!("  pipelined throughput (model): {:.0} mult/Mcc", d.throughput_per_mcc());
    println!("  ATP (model): {:.1} cells/(mult/Mcc)", d.atp());
    let worst = out
        .report
        .endurance
        .iter()
        .map(|e| e.max_writes)
        .max()
        .unwrap_or(0);
    let lifetime = cim_crossbar::CELL_ENDURANCE_WRITES / worst.max(1);
    println!(
        "  endurance: worst cell {} writes/mult → ~{} multiplications per array lifetime",
        worst,
        group_digits(lifetime)
    );
}
