//! Reproduces **Fig. 3**: the L = 2 *unrolled* Karatsuba dataflow —
//! merged precomputation (10 uniform chunk additions), 9 partial
//! multiplications, and the postcomputation naming — shown with live
//! values for a concrete operand pair.
//!
//! ```text
//! cargo run -p cim-bench --bin fig3_unrolled [n]
//! ```

use cim_bench::TextTable;
use cim_bigint::rng::UintRng;
use karatsuba_cim::chunks::{decompose_operand, leaf_widths, LEAF_NAMES, PRODUCT_NAMES};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    assert!(n.is_multiple_of(4) && n >= 8, "n must be a multiple of 4, ≥ 8");

    let mut rng = UintRng::seeded(3);
    let a = rng.exact_bits(n);
    let b = rng.exact_bits(n);

    println!("FIG. 3 — L = 2 UNROLLED KARATSUBA DATAFLOW (n = {n} bits)\n");
    println!("a = 0x{a:x}");
    println!("b = 0x{b:x}\n");

    let da = decompose_operand(&a, n);
    let db = decompose_operand(&b, n);
    let widths = leaf_widths(n);

    println!("stage 1 — merged precomputation (2 × 5 chunk additions, all between");
    println!("{}-bit and {}-bit — a single uniform adder serves them all):\n", n / 4, n / 4 + 1);

    let mut table = TextTable::new(&["leaf", "value (a side)", "value (b side)", "max bits"]);
    for i in 0..9 {
        table.row(&[
            format!("{} / {}", LEAF_NAMES[i], LEAF_NAMES[i].replacen('a', "b", 1)),
            format!("0x{:x}", da.leaves[i]),
            format!("0x{:x}", db.leaves[i]),
            widths[i].to_string(),
        ]);
    }
    println!("{}", table.render());

    println!("stage 2 — nine independent multiplications (operand ≤ {} bits):\n", n / 4 + 2);
    let mut ptable = TextTable::new(&["product", "operands", "value", "bits"]);
    for i in 0..9 {
        let p = &da.leaves[i] * &db.leaves[i];
        ptable.row(&[
            PRODUCT_NAMES[i].to_string(),
            format!("{}·{}", LEAF_NAMES[i], LEAF_NAMES[i].replacen('a', "b", 1)),
            format!("0x{p:x}"),
            p.bit_len().to_string(),
        ]);
    }
    println!("{}", ptable.render());

    let products: [cim_bigint::Uint; 9] =
        std::array::from_fn(|i| &da.leaves[i] * &db.leaves[i]);
    let c = karatsuba_cim::chunks::combine_products(&products, n / 4);
    println!("stage 3 — postcomputation recombines the nine products:");
    println!("  c = a·b = 0x{c:x}");
    assert_eq!(c, &a * &b, "dataflow must reproduce the product");
    println!("  verified against the software gold model ✓");
}
