//! Records the fixed benchmark workload matrix as a deterministic
//! JSON snapshot (see `cim_bench::snapshot`), optionally alongside the
//! Prometheus text exposition of the metrics every layer published
//! during the run.
//!
//! ```text
//! bench_snapshot [--quick] [--tag NAME] [--out FILE] [--prom FILE]
//! ```
//!
//! * `--quick` — restrict the multiplication widths to the quick
//!   subset (shared workloads still produce identical values);
//! * `--tag NAME` — free-form tag stored in the snapshot;
//! * `--out FILE` — write the snapshot JSON here (default: stdout);
//! * `--prom FILE` — also write the Prometheus exposition (validated
//!   against the text-format grammar before writing).
//!
//! Exit codes: 0 on success, 2 on usage or I/O errors.

use cim_bench::snapshot::BenchSnapshot;
use cim_metrics::{prometheus, MetricsHub};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut tag = String::new();
    let mut out: Option<String> = None;
    let mut prom: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--tag" => match value("--tag") {
                Ok(v) => tag = v,
                Err(e) => return usage(&e),
            },
            "--out" => match value("--out") {
                Ok(v) => out = Some(v),
                Err(e) => return usage(&e),
            },
            "--prom" => match value("--prom") {
                Ok(v) => prom = Some(v),
                Err(e) => return usage(&e),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    let hub = MetricsHub::recording();
    let snapshot = BenchSnapshot::collect(quick, &tag, &hub);
    let json = snapshot.to_json();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("bench_snapshot: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("bench_snapshot: wrote {path} ({} workloads)", snapshot.workloads.len());
        }
        None => println!("{json}"),
    }

    if let Some(path) = &prom {
        let text = prometheus::render(&hub.snapshot());
        if let Err(e) = prometheus::check(&text) {
            eprintln!("bench_snapshot: internal error, invalid exposition: {e}");
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("bench_snapshot: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("bench_snapshot: wrote {path} ({} bytes)", text.len());
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("bench_snapshot: {err}");
    eprintln!("usage: bench_snapshot [--quick] [--tag NAME] [--out FILE] [--prom FILE]");
    ExitCode::from(2)
}
