//! Benchmark snapshots and the regression gate.
//!
//! A [`BenchSnapshot`] is a deterministic record of a fixed workload
//! matrix — simulated multiplications at 512/1024/2048 bits, the
//! Fig. 5 pipeline at 2048×8 jobs, and a 4-tile wear-leveling farm —
//! with one flat `name → value` metric map per workload (cycles,
//! writes, energy in picojoules, utilization, wall time). Every metric
//! except `wall_ms` is bit-deterministic: regenerating the snapshot on
//! any machine reproduces the committed numbers exactly, so the gate
//! can demand *exact* equality for counters and only tolerate drift on
//! wall time.
//!
//! [`diff`] compares two snapshots under [`DiffOptions`]:
//!
//! * counters/energy/utilization — exact (`f64` equality; the JSON
//!   round-trip is lossless);
//! * `wall_ms` and `*_wall_ms` — generous tolerance (relative factor
//!   or absolute slack), and only a *slowdown* regresses;
//! * `*_speedup_x` — wall-derived ratios, gated the opposite way:
//!   only a collapse below `baseline / wall_rel_tol` regresses;
//! * workloads missing from the current snapshot regress unless
//!   `allow_subset` is set (used to gate a `--quick` run against the
//!   committed full snapshot); `subset_patterns` keeps selected
//!   workload families required even then;
//! * with `allow_improvement` (the `bench_check --improved`
//!   cross-snapshot mode), exact *cost* metrics — cycles, writes,
//!   energy, latency percentiles — may move *down* (labeled
//!   `improved`) but still regress when they move up; all other exact
//!   metrics keep demanding equality in both directions.
//!
//! The `bench_snapshot` binary writes the snapshot (and optionally the
//! Prometheus exposition of the run's metrics hub); `bench_check`
//! diffs two snapshot files and exits nonzero on regression.

use cim_bigint::rng::UintRng;
use cim_crossbar::EnergyParams;
use cim_metrics::jsonval::JsonValue;
use cim_metrics::MetricsHub;
use cim_obs::journal::{FlightRecorder, RecorderConfig};
use cim_obs::slo::{SloEngine, SloRule};
use cim_pulse::{PulseConfig, PulseHub};
use cim_sched::{FarmConfig, JobMix, JobProfile, Policy, Scheduler};
use cim_serve::loadgen::LoadgenConfig;
use cim_serve::FleetConfig as ServeFleetConfig;
use cim_mir::OptLevel;
use cim_trace::json::JsonWriter;
use karatsuba_cim::cost::HANDOFF_CYCLES;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;
use karatsuba_cim::multiply::MultiplyStage;
use karatsuba_cim::pipeline::PipelineSchedule;
use karatsuba_cim::postcompute::PostcomputeStage;
use karatsuba_cim::precompute::PrecomputeStage;
use std::collections::BTreeMap;
use std::time::Instant;

/// Schema marker embedded in every snapshot file.
pub const SNAPSHOT_SCHEMA: &str = "cim-bench-snapshot/1";

/// The one metric allowed to drift between runs.
pub const WALL_METRIC: &str = "wall_ms";

/// Operand widths of the full multiplication matrix.
pub const FULL_WIDTHS: [usize; 3] = [512, 1024, 2048];

/// Operand widths of the `--quick` matrix (a strict subset of
/// [`FULL_WIDTHS`]; shared workloads produce identical values).
pub const QUICK_WIDTHS: [usize; 1] = [512];

/// One workload's flat metric map.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Workload name (`multiply_512`, `pipeline_2048x8`, …).
    pub name: String,
    /// `metric → value`, sorted by name.
    pub metrics: BTreeMap<String, f64>,
}

/// A deterministic benchmark snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Free-form tag (`--tag`, e.g. a commit id); empty by default.
    pub tag: String,
    /// Whether this is the reduced `--quick` matrix.
    pub quick: bool,
    /// Workload results in execution order.
    pub workloads: Vec<WorkloadResult>,
}

/// The paper-exact `O0` end-to-end latency for an `n`-bit multiply,
/// from the measured-exact stage latency models plus the three
/// inter-stage handoffs. Equal to the cycle count a
/// `KaratsubaCimMultiplier::new(n)` run reports, without running one.
fn baseline_o0_cycles(n: usize) -> u64 {
    let pre = PrecomputeStage::new(n).expect("paper widths are multiples of 4");
    let mult = MultiplyStage::new(n).expect("paper widths are multiples of 4");
    let post = PostcomputeStage::new(n).expect("paper widths are multiples of 4");
    pre.latency() + mult.latency() + post.latency() + 3 * HANDOFF_CYCLES
}

fn multiply_workload(n: usize, hub: &MetricsHub) -> WorkloadResult {
    // Since PR 10 the multiply matrix runs at the maximum cim-mir
    // optimization level; the analytic `baseline_cycles` pins the
    // paper-exact O0 latency, and `meets_10pct` exact-gates the PR's
    // headline acceptance criterion (≥10% virtual-cycle reduction).
    let mut mult = KaratsubaCimMultiplier::with_opt_level(n, OptLevel::MAX)
        .expect("paper widths are multiples of 4");
    mult.attach_metrics(hub, EnergyParams::default());
    let mut rng = UintRng::seeded(0x42 + n as u64);
    let a = rng.uniform(n);
    let b = rng.uniform(n);
    let out = mult.multiply(&a, &b).expect("simulated product is verified");
    let r = &out.report;
    let baseline = baseline_o0_cycles(n);
    let mut metrics = BTreeMap::new();
    metrics.insert("cycles".into(), r.total_latency as f64);
    metrics.insert("opt_level".into(), OptLevel::MAX.index() as f64);
    metrics.insert("baseline_cycles".into(), baseline as f64);
    // Exact (cycle-domain, deterministic) acceptance flag: optimized
    // latency must be at least 10% below the paper-exact baseline.
    metrics.insert(
        "meets_10pct".into(),
        f64::from(10 * r.total_latency <= 9 * baseline),
    );
    for (stage, cycles) in ["precompute_cycles", "multiply_cycles", "postcompute_cycles"]
        .iter()
        .zip(r.stage_cycles)
    {
        metrics.insert((*stage).into(), cycles as f64);
    }
    let writes: u64 = r.endurance.iter().map(|e| e.total_writes).sum();
    metrics.insert("writes".into(), writes as f64);
    metrics.insert(
        "max_cell_writes".into(),
        r.endurance.iter().map(|e| e.max_writes).max().unwrap_or(0) as f64,
    );
    metrics.insert(
        "energy_pj".into(),
        r.energy(n, &EnergyParams::default()).total_pj(),
    );
    metrics.insert("area_cells".into(), r.area_cells as f64);
    metrics.insert(
        "utilization".into(),
        r.stage_cycles.iter().sum::<u64>() as f64 / (3 * r.total_latency) as f64,
    );
    WorkloadResult { name: format!("multiply_{n}"), metrics }
}

fn batch_workload(n: usize, lanes: usize) -> WorkloadResult {
    // One solo multiply and one `lanes`-lane batch, timed under
    // identical in-process conditions, so the products-per-wall-ms
    // speedup compares like with like. Operands are seeded per width.
    let mult = KaratsubaCimMultiplier::new(n).expect("paper widths are multiples of 4");
    let mut rng = UintRng::seeded(0x6b + n as u64);
    let pairs: Vec<_> = (0..lanes)
        .map(|_| (rng.uniform(n), rng.uniform(n)))
        .collect();

    let solo_start = Instant::now();
    let solo = mult
        .multiply(&pairs[0].0, &pairs[0].1)
        .expect("simulated product is verified");
    let solo_ms = solo_start.elapsed().as_secs_f64() * 1e3;

    let batch_start = Instant::now();
    let out = mult
        .multiply_batch(&pairs)
        .expect("every batch lane is verified");
    let batch_ms = batch_start.elapsed().as_secs_f64() * 1e3;

    // Products per wall-ms, batch vs solo. Wall-derived, so the diff
    // gate only bounds it loosely; the binary `meets_10x` metric is
    // the exact-gated acceptance criterion.
    let speedup = lanes as f64 * solo_ms / batch_ms;

    let mut metrics = BTreeMap::new();
    metrics.insert("cycles".into(), out.total_latency as f64);
    metrics.insert("lanes".into(), out.lanes() as f64);
    metrics.insert("products_ok".into(), out.lanes() as f64);
    metrics.insert("products_per_kcc".into(), out.products_per_kcc());
    // Cycle-domain amortization: batch latency equals solo latency, so
    // this is exactly `lanes` — gated exactly to pin the semantics.
    metrics.insert(
        "cycle_throughput_x".into(),
        out.lanes() as f64 * solo.report.total_latency as f64 / out.total_latency as f64,
    );
    let per_lane = out.lane_endurance.iter().flatten();
    metrics.insert(
        "writes".into(),
        per_lane.clone().map(|e| e.total_writes).sum::<u64>() as f64,
    );
    metrics.insert(
        "max_cell_writes".into(),
        per_lane.map(|e| e.max_writes).max().unwrap_or(0) as f64,
    );
    metrics.insert("area_cells".into(), out.area_cells as f64);
    metrics.insert("single_wall_ms".into(), solo_ms);
    metrics.insert("batch_wall_ms".into(), batch_ms);
    metrics.insert("wall_speedup_x".into(), speedup);
    metrics.insert("meets_10x".into(), f64::from(speedup > 10.0));
    WorkloadResult { name: format!("batch64_{n}"), metrics }
}

fn pipeline_workload() -> WorkloadResult {
    const N: usize = 2048;
    const JOBS: u64 = 8;
    let schedule = PipelineSchedule::for_design(N, JOBS as usize);
    let profile = JobProfile::karatsuba_analytic(N);
    let makespan = schedule.jobs.last().expect("nonempty schedule").completed_at();
    let mut metrics = BTreeMap::new();
    metrics.insert("cycles".into(), makespan as f64);
    metrics.insert(
        "initiation_interval".into(),
        schedule.initiation_interval() as f64,
    );
    metrics.insert("throughput_per_mcc".into(), schedule.throughput_per_mcc());
    // Hot-row wear and first-order energy scale linearly in jobs on
    // the single (pinned) pipeline.
    metrics.insert("writes".into(), (JOBS * profile.max_writes()) as f64);
    metrics.insert(
        "energy_pj".into(),
        JOBS as f64 * profile.energy(&EnergyParams::default()).total_pj(),
    );
    WorkloadResult { name: format!("pipeline_{N}x{JOBS}"), metrics }
}

fn serve_workload(hub: &MetricsHub) -> WorkloadResult {
    // A deterministic two-tenant serving run over the 4-farm fleet:
    // the mixed zkEVM-style trace, admission, batching and dispatch
    // all run on virtual cycle stamps, so every number below (incl.
    // the throughput) gates exactly.
    let config = LoadgenConfig {
        requests: 1_500,
        tenants: 2,
        rate: 300,
        mean_gap: 1_500,
        exp_bits: 6,
        scalar_bits: 6,
        fleet: ServeFleetConfig { farms: 4, tiles_per_farm: 4, ..ServeFleetConfig::default() },
        ..LoadgenConfig::default()
    };
    let report = cim_serve::loadgen::run(&config, hub);
    let mut metrics = BTreeMap::new();
    metrics.insert("served".into(), report.served as f64);
    metrics.insert("shed".into(), report.shed as f64);
    metrics.insert("errors".into(), report.errors as f64);
    metrics.insert("incorrect".into(), report.incorrect as f64);
    metrics.insert("batches".into(), report.stats.batches as f64);
    metrics.insert("farm_jobs".into(), report.stats.jobs as f64);
    metrics.insert("drained_cycles".into(), report.stats.drained_at as f64);
    metrics.insert(
        "throughput_per_mcc".into(),
        report.stats.throughput_per_mcc,
    );
    for t in &report.stats.tenants {
        metrics.insert(
            format!("{}_p99_latency", t.name),
            t.p99_latency_cycles as f64,
        );
        metrics.insert(
            format!("{}_shed", t.name),
            (t.shed_rate_limited + t.shed_queue_full) as f64,
        );
    }
    WorkloadResult { name: "serve_2tenant_4farm".into(), metrics }
}

fn obs_workload() -> WorkloadResult {
    // The observability overhead gate: the serving workload runs once
    // plain and once with the full cim-obs stack attached (flight
    // recorder, SLO engine, journal/SLO gauges). The serving decisions
    // must be identical — observation never moves a cycle — and the
    // wall-time ratio is gated like a speedup so a pathological
    // obs-on slowdown regresses while noise is tolerated.
    let config = LoadgenConfig {
        requests: 1_500,
        tenants: 2,
        rate: 300,
        mean_gap: 1_500,
        exp_bits: 6,
        scalar_bits: 6,
        fleet: ServeFleetConfig { farms: 4, tiles_per_farm: 4, ..ServeFleetConfig::default() },
        ..LoadgenConfig::default()
    };

    let off_hub = MetricsHub::recording();
    let off_start = Instant::now();
    let plain = cim_serve::loadgen::run(&config, &off_hub);
    let off_ms = off_start.elapsed().as_secs_f64() * 1e3;

    let on_hub = MetricsHub::recording();
    let recorder = FlightRecorder::new(RecorderConfig::default());
    let mut rules = Vec::new();
    for tenant in ["tenant0", "tenant1"] {
        for spec in [
            format!("{tenant}.correctness"),
            format!("{tenant}.p99_latency_cycles <= 1000000000"),
            format!("{tenant}.shed_ratio <= 0.95"),
        ] {
            rules.push(SloRule::parse(&spec).expect("builtin rule parses"));
        }
    }
    let mut slo = SloEngine::new(rules);
    let on_start = Instant::now();
    let observed = cim_serve::loadgen::run_observed(&config, &on_hub, &recorder, &mut slo);
    let on_ms = on_start.elapsed().as_secs_f64() * 1e3;

    let decisions_identical = plain.served == observed.served
        && plain.shed == observed.shed
        && plain.errors == observed.errors
        && plain.stats.drained_at == observed.stats.drained_at;
    let pages = slo
        .verdicts()
        .iter()
        .filter(|v| v.state.name() == "page")
        .count();

    let mut metrics = BTreeMap::new();
    metrics.insert("served".into(), observed.served as f64);
    metrics.insert("shed".into(), observed.shed as f64);
    metrics.insert("incorrect".into(), observed.incorrect as f64);
    metrics.insert("drained_cycles".into(), observed.stats.drained_at as f64);
    metrics.insert("decisions_identical".into(), f64::from(decisions_identical));
    metrics.insert("journal_events".into(), recorder.recorded() as f64);
    metrics.insert("journal_dropped".into(), recorder.dropped() as f64);
    metrics.insert("slo_rules".into(), slo.verdicts().len() as f64);
    metrics.insert("slo_pages".into(), pages as f64);
    metrics.insert("obs_off_wall_ms".into(), off_ms);
    metrics.insert("obs_on_wall_ms".into(), on_ms);
    // ≈1.0 when observation is free; gated as a speedup, so only a
    // collapse (obs-on dramatically slower than obs-off) regresses.
    metrics.insert("obs_overhead_speedup_x".into(), off_ms / on_ms);
    WorkloadResult { name: "obs_2tenant_4farm".into(), metrics }
}

fn pulse_workload() -> WorkloadResult {
    // The telemetry-history overhead gate: the serving workload runs
    // once plain and once with the full pulse stack scraping it
    // (timeline, endurance forecaster, drift detectors) on top of the
    // cim-obs recorder and SLO engine. Serving decisions must be
    // identical — a scrape never moves a cycle — the steady trace must
    // raise zero drift alerts, and the wear forecaster's totals must
    // reproduce the engine's tile-wear counters exactly. The wall
    // ratio is gated like a speedup so only a pathological slowdown
    // regresses.
    let config = LoadgenConfig {
        requests: 1_500,
        tenants: 2,
        rate: 300,
        mean_gap: 1_500,
        exp_bits: 6,
        scalar_bits: 6,
        fleet: ServeFleetConfig { farms: 4, tiles_per_farm: 4, ..ServeFleetConfig::default() },
        ..LoadgenConfig::default()
    };

    let off_hub = MetricsHub::recording();
    let off_start = Instant::now();
    let plain = cim_serve::loadgen::run(&config, &off_hub);
    let off_ms = off_start.elapsed().as_secs_f64() * 1e3;

    let on_hub = MetricsHub::recording();
    let recorder = FlightRecorder::new(RecorderConfig::default());
    let mut slo = SloEngine::new(vec![
        SloRule::parse("fleet.correctness").expect("builtin rule parses"),
        SloRule::parse("fleet.drift_alerts <= 0").expect("builtin rule parses"),
    ]);
    let mut pulse = PulseHub::new(PulseConfig::default());
    let on_start = Instant::now();
    let pulsed =
        cim_serve::loadgen::run_pulsed(&config, &on_hub, &recorder, &mut slo, &mut pulse);
    let on_ms = on_start.elapsed().as_secs_f64() * 1e3;

    let decisions_identical = plain.served == pulsed.served
        && plain.shed == pulsed.shed
        && plain.errors == pulsed.errors
        && plain.stats == pulsed.stats;
    let pages = slo
        .verdicts()
        .iter()
        .filter(|v| v.state.name() == "page")
        .count();
    let forecast_exact = pulsed.stats.tile_wear.iter().all(|t| {
        pulse.forecaster().current_totals().get(&(t.farm, t.tile)) == Some(&t.max_cell_writes)
    }) && pulse.forecaster().tile_count() == pulsed.stats.tile_wear.len();

    let mut metrics = BTreeMap::new();
    metrics.insert("served".into(), pulsed.served as f64);
    metrics.insert("shed".into(), pulsed.shed as f64);
    metrics.insert("incorrect".into(), pulsed.incorrect as f64);
    metrics.insert("drained_cycles".into(), pulsed.stats.drained_at as f64);
    metrics.insert("decisions_identical".into(), f64::from(decisions_identical));
    metrics.insert("scrapes".into(), pulse.timeline().scrapes() as f64);
    metrics.insert("timeline_series".into(), pulse.timeline().series_count() as f64);
    metrics.insert("timeline_points".into(), pulse.timeline().point_count() as f64);
    metrics.insert("drift_alerts".into(), pulse.alerts_total() as f64);
    metrics.insert("forecast_exact".into(), f64::from(forecast_exact));
    metrics.insert("wear_total_writes".into(), pulse.forecaster().total_writes() as f64);
    metrics.insert("slo_pages".into(), pages as f64);
    metrics.insert("pulse_off_wall_ms".into(), off_ms);
    metrics.insert("pulse_on_wall_ms".into(), on_ms);
    // ≈1.0 when scraping is free; gated as a speedup, so only a
    // collapse (pulse-on dramatically slower) regresses.
    metrics.insert("pulse_overhead_speedup_x".into(), off_ms / on_ms);
    WorkloadResult { name: "pulse_2tenant_4farm".into(), metrics }
}

fn farm_workload(hub: &MetricsHub) -> WorkloadResult {
    let jobs = JobMix::crypto_default(300).generate(64, 7);
    let mut sched = Scheduler::new(FarmConfig::new(4, Policy::WearLeveling));
    sched.attach_metrics(hub);
    let report = sched.run(&jobs).expect("analytic profiles cannot fail");
    let mut metrics = BTreeMap::new();
    metrics.insert("cycles".into(), report.makespan_cycles as f64);
    metrics.insert("total_cycles".into(), report.total_stats.cycles as f64);
    metrics.insert("jobs_done".into(), report.jobs_done() as f64);
    metrics.insert("queue_peak".into(), report.queue_peak as f64);
    metrics.insert("writes".into(), report.max_cell_writes() as f64);
    metrics.insert("energy_pj".into(), report.total_energy.total_pj());
    metrics.insert("utilization".into(), report.mean_utilization());
    metrics.insert("p50_latency".into(), report.p50_latency() as f64);
    metrics.insert("p99_latency".into(), report.p99_latency() as f64);
    WorkloadResult { name: "farm_4tile_wear".into(), metrics }
}

impl BenchSnapshot {
    /// Runs the workload matrix (`quick` restricts the multiplication
    /// widths to [`QUICK_WIDTHS`]), publishing every layer's metrics
    /// into `hub`, and stamps each workload's `wall_ms`.
    pub fn collect(quick: bool, tag: &str, hub: &MetricsHub) -> Self {
        let widths: &[usize] = if quick { &QUICK_WIDTHS } else { &FULL_WIDTHS };
        Self::collect_widths(widths, quick, tag, hub)
    }

    /// [`BenchSnapshot::collect`] with an explicit width list (tests
    /// use small widths to stay fast in debug builds).
    pub fn collect_widths(widths: &[usize], quick: bool, tag: &str, hub: &MetricsHub) -> Self {
        let mut workloads = Vec::new();
        let mut timed = |f: &dyn Fn(&MetricsHub) -> WorkloadResult| {
            let start = Instant::now();
            let mut w = f(hub);
            w.metrics.insert(
                WALL_METRIC.into(),
                start.elapsed().as_secs_f64() * 1e3,
            );
            workloads.push(w);
        };
        for &n in widths {
            timed(&|hub| multiply_workload(n, hub));
        }
        // The bit-sliced batch runs at the largest width of the matrix
        // (2048 in the full run), 64 lanes per compiled program.
        let batch_n = widths.iter().copied().max().unwrap_or(2048);
        timed(&|_| batch_workload(batch_n, 64));
        timed(&|_| pipeline_workload());
        timed(&farm_workload);
        timed(&serve_workload);
        timed(&|_| obs_workload());
        timed(&|_| pulse_workload());
        BenchSnapshot { tag: tag.into(), quick, workloads }
    }

    /// Serializes the snapshot as deterministic JSON (fixed field
    /// order, metrics sorted by name).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object()
            .field_str("schema", SNAPSHOT_SCHEMA)
            .field_str("tag", &self.tag);
        w.key("quick").bool(self.quick);
        w.key("workloads").open_array();
        for wl in &self.workloads {
            w.open_object().field_str("name", &wl.name);
            w.key("metrics").open_object();
            for (k, v) in &wl.metrics {
                w.field_float(k, *v);
            }
            w.close_object().close_object();
        }
        w.close_array().close_object();
        w.finish()
    }

    /// Parses a snapshot previously written by [`to_json`]
    /// (round-trip lossless: `f64` values print in shortest
    /// round-trip form).
    ///
    /// [`to_json`]: BenchSnapshot::to_json
    ///
    /// # Errors
    ///
    /// Malformed JSON or a wrong/missing schema marker.
    pub fn parse(text: &str) -> Result<Self, String> {
        let root = JsonValue::parse(text)?;
        let schema = root
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing schema field")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!("unknown snapshot schema {schema:?}"));
        }
        let tag = root
            .get("tag")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string();
        let quick = root
            .get("quick")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false);
        let mut workloads = Vec::new();
        for wl in root
            .get("workloads")
            .and_then(JsonValue::as_array)
            .ok_or("missing workloads array")?
        {
            let name = wl
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("workload without name")?
                .to_string();
            let mut metrics = BTreeMap::new();
            for (k, v) in wl
                .get("metrics")
                .and_then(JsonValue::as_object)
                .ok_or("workload without metrics")?
            {
                metrics.insert(
                    k.clone(),
                    v.as_f64().ok_or_else(|| format!("metric {k} not a number"))?,
                );
            }
            workloads.push(WorkloadResult { name, metrics });
        }
        Ok(BenchSnapshot { tag, quick, workloads })
    }
}

/// Tolerances for [`diff`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOptions {
    /// Allow the current snapshot to cover a subset of the baseline's
    /// workloads (gating a `--quick` run against the full snapshot).
    pub allow_subset: bool,
    /// Workload-name patterns that must still gate in subset mode:
    /// exact names or trailing-`*` prefix globs (`mul_*`). A baseline
    /// workload matching any pattern regresses when missing from the
    /// current snapshot even under `allow_subset` — so CI can demand a
    /// family of workloads (`batch64_*`) without enumerating it.
    /// Empty means every workload is skippable in subset mode.
    pub subset_patterns: Vec<String>,
    /// `wall_ms` passes when `current ≤ relative · baseline` …
    pub wall_rel_tol: f64,
    /// … or when the absolute slowdown is below this many ms.
    pub wall_abs_tol_ms: f64,
    /// Accept *decreases* of cost-like exact metrics (see
    /// [`is_improvable_metric`]) instead of demanding equality: fewer
    /// cycles/writes/picojoules passes (labeled `improved`), more
    /// still regresses. Off by default — same-commit comparisons stay
    /// byte-exact; `bench_check --improved` turns it on for
    /// cross-snapshot gates (e.g. PR N−1 baseline vs PR N), where an
    /// optimization is supposed to move the numbers down but must
    /// never move them up.
    pub allow_improvement: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            allow_subset: false,
            subset_patterns: Vec::new(),
            wall_rel_tol: 20.0,
            wall_abs_tol_ms: 5_000.0,
            allow_improvement: false,
        }
    }
}

/// Whether `name` is wall-derived timing (tolerated slowdown): the
/// canonical [`WALL_METRIC`] plus any `*_wall_ms` sub-timing.
pub fn is_wall_metric(name: &str) -> bool {
    name == WALL_METRIC || name.ends_with("_wall_ms")
}

/// Whether `name` is a wall-derived speedup ratio (`*_speedup_x`):
/// gated in the opposite direction of wall time — only a collapse
/// below `baseline / wall_rel_tol` regresses, growth never does.
pub fn is_speedup_metric(name: &str) -> bool {
    name.ends_with("_speedup_x")
}

/// Whether `name` is an exact *cost* metric with a known good
/// direction: virtual cycles, cell writes, and energy may legitimately
/// *decrease* when an optimization lands, but must never increase.
/// Under [`DiffOptions::allow_improvement`] a decrease of one of these
/// passes the gate (labeled `improved`); everything else — counts,
/// ratios, areas, flags — still demands exact equality, because a
/// change in either direction means the workload semantics moved.
pub fn is_improvable_metric(name: &str) -> bool {
    matches!(
        name,
        "cycles"
            | "total_cycles"
            | "precompute_cycles"
            | "multiply_cycles"
            | "postcompute_cycles"
            | "writes"
            | "max_cell_writes"
            | "energy_pj"
            | "p50_latency"
            | "p99_latency"
    ) || name.ends_with("_p99_latency")
        || name.ends_with("_latency_cycles")
}

/// Whether `name` is a ratio *derived from* cost metrics (stage
/// utilization, products-per-kilocycle, throughput-per-megacycle).
/// These have no improvement direction of their own — when a latency
/// optimization lands they recompute and may move either way — so
/// under [`DiffOptions::allow_improvement`] they are reported but not
/// gated; any genuine cycle regression is caught by the underlying
/// cost metrics themselves. In byte-exact mode they gate exactly as
/// before.
pub fn is_cost_derived_metric(name: &str) -> bool {
    matches!(
        name,
        "utilization" | "products_per_kcc" | "throughput_per_mcc"
    )
}

/// Whether `name` matches `pattern`: exact string equality, or a
/// trailing-`*` prefix glob (`multiply_*` matches `multiply_2048`). A
/// bare `*` matches everything.
pub fn name_matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => name == pattern,
    }
}

/// Outcome of a snapshot comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diff {
    /// Human-readable report lines, one per checked item.
    pub lines: Vec<String>,
    /// Subset of `lines` that are regressions.
    pub regressions: Vec<String>,
}

impl Diff {
    /// Whether the current snapshot is no worse than the baseline.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    fn fail(&mut self, line: String) {
        self.lines.push(format!("FAIL {line}"));
        self.regressions.push(line);
    }

    fn ok(&mut self, line: String) {
        self.lines.push(format!("  ok {line}"));
    }
}

/// Relative delta of `got` vs `want` as a display string (`n/a` when
/// the baseline is zero).
fn rel_delta(want: f64, got: f64) -> String {
    if want == 0.0 {
        "n/a vs zero baseline".to_string()
    } else {
        format!("{:+.4}%", 100.0 * (got - want) / want)
    }
}

/// Compares `current` against `baseline`: exact equality for every
/// metric except [`WALL_METRIC`], which only regresses on a slowdown
/// beyond both tolerances. See [`DiffOptions`].
pub fn diff(baseline: &BenchSnapshot, current: &BenchSnapshot, opts: &DiffOptions) -> Diff {
    let mut d = Diff::default();
    let cur: BTreeMap<&str, &WorkloadResult> = current
        .workloads
        .iter()
        .map(|w| (w.name.as_str(), w))
        .collect();
    for base in &baseline.workloads {
        let Some(cur_wl) = cur.get(base.name.as_str()) else {
            let required = !opts.allow_subset
                || opts
                    .subset_patterns
                    .iter()
                    .any(|p| name_matches(p, &base.name));
            if required {
                d.fail(format!("{}: workload missing from current snapshot", base.name));
            } else {
                d.ok(format!("{}: skipped (subset run)", base.name));
            }
            continue;
        };
        for (metric, &want) in &base.metrics {
            let name = format!("{}/{metric}", base.name);
            let Some(&got) = cur_wl.metrics.get(metric) else {
                d.fail(format!("{name}: metric missing from current snapshot"));
                continue;
            };
            if is_wall_metric(metric) {
                let slow = got - want;
                if got <= want * opts.wall_rel_tol || slow <= opts.wall_abs_tol_ms {
                    d.ok(format!("{name}: {want:.1} -> {got:.1} (tolerated)"));
                } else {
                    d.fail(format!(
                        "{name}: expected <= {want:.1} ms, actual {got:.1} ms, \
                         delta {slow:+.1} ms ({}) exceeds {}x/{} ms tolerance",
                        rel_delta(want, got),
                        opts.wall_rel_tol,
                        opts.wall_abs_tol_ms
                    ));
                }
            } else if is_speedup_metric(metric) {
                if got * opts.wall_rel_tol >= want {
                    d.ok(format!("{name}: {want:.1}x -> {got:.1}x (tolerated)"));
                } else {
                    d.fail(format!(
                        "{name}: expected >= {:.1}x, actual {got:.1}x ({}) — \
                         speedup collapsed past the {}x tolerance",
                        want / opts.wall_rel_tol,
                        rel_delta(want, got),
                        opts.wall_rel_tol
                    ));
                }
            } else if got == want {
                d.ok(format!("{name}: {want}"));
            } else if opts.allow_improvement && is_improvable_metric(metric) && got < want {
                d.ok(format!(
                    "{name}: improved {want} -> {got} ({})",
                    rel_delta(want, got)
                ));
            } else if opts.allow_improvement && is_cost_derived_metric(metric) {
                d.ok(format!(
                    "{name}: {want} -> {got} (derived ratio, recomputed under --improved)"
                ));
            } else {
                d.fail(format!(
                    "{name}: expected {want}, actual {got}, delta {:+} ({})",
                    got - want,
                    rel_delta(want, got)
                ));
            }
        }
        for metric in cur_wl.metrics.keys() {
            if !base.metrics.contains_key(metric) {
                d.ok(format!("{}/{metric}: new metric (not gated)", base.name));
            }
        }
    }
    for w in &current.workloads {
        if !baseline.workloads.iter().any(|b| b.name == w.name) {
            d.ok(format!("{}: new workload (not gated)", w.name));
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: &[(&str, &[(&str, f64)])]) -> BenchSnapshot {
        BenchSnapshot {
            tag: "test".into(),
            quick: false,
            workloads: entries
                .iter()
                .map(|(name, ms)| WorkloadResult {
                    name: (*name).to_string(),
                    metrics: ms.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let s = snap(&[
            ("multiply_64", &[("cycles", 123.0), ("energy_pj", 0.1 + 0.2)]),
            ("farm", &[("wall_ms", 1.5)]),
        ]);
        let parsed = BenchSnapshot::parse(&s.to_json()).unwrap();
        assert_eq!(s, parsed);
        assert_eq!(s.to_json(), parsed.to_json());
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(BenchSnapshot::parse("{}").is_err());
        assert!(BenchSnapshot::parse("{\"schema\":\"other/9\"}").is_err());
        assert!(BenchSnapshot::parse("not json").is_err());
    }

    #[test]
    fn self_diff_passes_and_perturbation_fails() {
        let a = snap(&[("w", &[("cycles", 10.0), ("wall_ms", 4.0)])]);
        assert!(diff(&a, &a, &DiffOptions::default()).passed());

        let mut b = a.clone();
        b.workloads[0].metrics.insert("cycles".into(), 11.0);
        let d = diff(&a, &b, &DiffOptions::default());
        assert!(!d.passed());
        assert!(d.regressions[0].contains("w/cycles"));
    }

    #[test]
    fn failure_lines_spell_out_expected_actual_and_delta() {
        let base = snap(&[("w", &[("cycles", 10.0), ("writes", 0.0)])]);
        let cur = snap(&[("w", &[("cycles", 12.5), ("writes", 3.0)])]);
        let d = diff(&base, &cur, &DiffOptions::default());
        assert_eq!(d.regressions.len(), 2);
        let cycles = d
            .regressions
            .iter()
            .find(|l| l.contains("w/cycles"))
            .expect("cycles regression reported");
        assert!(cycles.contains("expected 10"), "{cycles}");
        assert!(cycles.contains("actual 12.5"), "{cycles}");
        assert!(cycles.contains("delta +2.5"), "{cycles}");
        assert!(cycles.contains("+25.0000%"), "{cycles}");
        let writes = d
            .regressions
            .iter()
            .find(|l| l.contains("w/writes"))
            .expect("writes regression reported");
        assert!(writes.contains("n/a vs zero baseline"), "{writes}");

        let wall_base = snap(&[("w", &[("wall_ms", 10.0)])]);
        let wall_hung = snap(&[("w", &[("wall_ms", 1.0e6)])]);
        let d = diff(&wall_base, &wall_hung, &DiffOptions::default());
        assert!(!d.passed());
        assert!(d.regressions[0].contains("expected <= 10.0 ms"), "{}", d.regressions[0]);
        assert!(d.regressions[0].contains("actual 1000000.0 ms"), "{}", d.regressions[0]);
        assert!(d.regressions[0].contains("delta +999990.0 ms"), "{}", d.regressions[0]);
    }

    #[test]
    fn wall_time_is_tolerated_but_not_unbounded() {
        let base = snap(&[("w", &[("wall_ms", 100.0)])]);
        let slower = snap(&[("w", &[("wall_ms", 1_500.0)])]);
        assert!(diff(&base, &slower, &DiffOptions::default()).passed());
        let hung = snap(&[("w", &[("wall_ms", 1.0e7)])]);
        assert!(!diff(&base, &hung, &DiffOptions::default()).passed());
        // Faster never regresses.
        let faster = snap(&[("w", &[("wall_ms", 0.5)])]);
        assert!(diff(&base, &faster, &DiffOptions::default()).passed());
    }

    #[test]
    fn subset_gating_matches_quick_mode() {
        let full = snap(&[("a", &[("cycles", 1.0)]), ("b", &[("cycles", 2.0)])]);
        let quick = snap(&[("a", &[("cycles", 1.0)])]);
        assert!(!diff(&full, &quick, &DiffOptions::default()).passed());
        let opts = DiffOptions { allow_subset: true, ..DiffOptions::default() };
        assert!(diff(&full, &quick, &opts).passed());
        // A shared workload still gates exactly in subset mode.
        let wrong = snap(&[("a", &[("cycles", 9.0)])]);
        assert!(!diff(&full, &wrong, &opts).passed());
    }

    #[test]
    fn sub_timings_and_speedups_get_wall_style_tolerance() {
        assert!(is_wall_metric("wall_ms"));
        assert!(is_wall_metric("batch_wall_ms"));
        assert!(!is_wall_metric("cycles"));
        assert!(is_speedup_metric("wall_speedup_x"));
        assert!(!is_speedup_metric("cycle_throughput_x"));

        // A slower sub-timing inside tolerance passes; a hung one fails.
        let base = snap(&[("b", &[("batch_wall_ms", 10.0), ("wall_speedup_x", 25.0)])]);
        let drifted = snap(&[("b", &[("batch_wall_ms", 80.0), ("wall_speedup_x", 12.0)])]);
        assert!(diff(&base, &drifted, &DiffOptions::default()).passed());
        let hung = snap(&[("b", &[("batch_wall_ms", 1.0e7), ("wall_speedup_x", 25.0)])]);
        assert!(!diff(&base, &hung, &DiffOptions::default()).passed());
        // A speedup collapse past the relative tolerance regresses; a
        // faster-than-baseline speedup never does.
        let collapsed = snap(&[("b", &[("batch_wall_ms", 10.0), ("wall_speedup_x", 0.5)])]);
        let d = diff(&base, &collapsed, &DiffOptions::default());
        assert!(!d.passed());
        assert!(d.regressions[0].contains("speedup collapsed"), "{:?}", d.regressions);
        let faster = snap(&[("b", &[("batch_wall_ms", 1.0), ("wall_speedup_x", 60.0)])]);
        assert!(diff(&base, &faster, &DiffOptions::default()).passed());
    }

    #[test]
    fn improvable_metrics_are_cost_shaped() {
        for name in [
            "cycles",
            "total_cycles",
            "precompute_cycles",
            "multiply_cycles",
            "postcompute_cycles",
            "writes",
            "max_cell_writes",
            "energy_pj",
            "p50_latency",
            "p99_latency",
            "tenant0_p99_latency",
        ] {
            assert!(is_improvable_metric(name), "{name} should be improvable");
        }
        for name in [
            "area_cells",
            "utilization",
            "lanes",
            "served",
            "meets_10pct",
            "baseline_cycles",
            "opt_level",
            "cycle_throughput_x",
        ] {
            assert!(!is_improvable_metric(name), "{name} must gate exactly");
        }
    }

    #[test]
    fn improved_direction_accepts_decreases_only_when_enabled() {
        let base = snap(&[(
            "multiply_512",
            &[("cycles", 100.0), ("writes", 50.0), ("area_cells", 5.0)],
        )]);
        let better = snap(&[(
            "multiply_512",
            &[("cycles", 80.0), ("writes", 50.0), ("area_cells", 5.0)],
        )]);
        // Byte-exact mode still refuses any value change …
        assert!(!diff(&base, &better, &DiffOptions::default()).passed());
        // … while improvement mode accepts the decrease and labels it.
        let opts = DiffOptions { allow_improvement: true, ..DiffOptions::default() };
        let d = diff(&base, &better, &opts);
        assert!(d.passed(), "{:?}", d.regressions);
        assert!(
            d.lines.iter().any(|l| l.contains("improved 100 -> 80")),
            "{:?}",
            d.lines
        );
        // An *increase* of a cost metric regresses even in improvement
        // mode — the direction is one-way.
        let worse = snap(&[(
            "multiply_512",
            &[("cycles", 120.0), ("writes", 50.0), ("area_cells", 5.0)],
        )]);
        assert!(!diff(&base, &worse, &opts).passed());
        // A decrease of a non-cost metric (area) still regresses: only
        // cost-shaped metrics have a known good direction.
        let shrunk = snap(&[(
            "multiply_512",
            &[("cycles", 100.0), ("writes", 50.0), ("area_cells", 4.0)],
        )]);
        assert!(!diff(&base, &shrunk, &opts).passed());
    }

    #[test]
    fn cost_derived_ratios_recompute_under_improved_mode() {
        assert!(is_cost_derived_metric("utilization"));
        assert!(is_cost_derived_metric("products_per_kcc"));
        assert!(is_cost_derived_metric("throughput_per_mcc"));
        assert!(!is_cost_derived_metric("cycles"));
        assert!(!is_cost_derived_metric("area_cells"));
        let base = snap(&[("multiply_512", &[("cycles", 100.0), ("utilization", 0.33)])]);
        let moved = snap(&[("multiply_512", &[("cycles", 80.0), ("utilization", 0.32)])]);
        // Exact mode refuses the ratio shift; improved mode accepts it
        // in either direction because the underlying cycles gate.
        assert!(!diff(&base, &moved, &DiffOptions::default()).passed());
        let opts = DiffOptions { allow_improvement: true, ..DiffOptions::default() };
        assert!(diff(&base, &moved, &opts).passed());
        let up = snap(&[("multiply_512", &[("cycles", 80.0), ("utilization", 0.35)])]);
        assert!(diff(&base, &up, &opts).passed());
    }

    #[test]
    fn multiply_workload_beats_the_o0_baseline_by_10pct() {
        let hub = MetricsHub::disabled();
        let w = multiply_workload(64, &hub);
        assert_eq!(w.name, "multiply_64");
        assert_eq!(w.metrics["opt_level"], OptLevel::MAX.index() as f64);
        assert_eq!(w.metrics["baseline_cycles"], baseline_o0_cycles(64) as f64);
        assert!(w.metrics["cycles"] < w.metrics["baseline_cycles"]);
        assert_eq!(w.metrics["meets_10pct"], 1.0);
    }

    #[test]
    fn batch_workload_amortizes_solo_cycles_over_64_lanes() {
        let w = batch_workload(64, 64);
        assert_eq!(w.name, "batch64_64");
        assert_eq!(w.metrics["lanes"], 64.0);
        assert_eq!(w.metrics["products_ok"], 64.0);
        // Batch latency equals solo latency, so the cycle-domain
        // throughput gain is exactly the lane count.
        assert_eq!(w.metrics["cycle_throughput_x"], 64.0);
        assert!(w.metrics["products_per_kcc"] > 0.0);
        assert!(w.metrics["writes"] > 0.0);
    }

    #[test]
    fn subset_patterns_accept_prefix_globs() {
        assert!(name_matches("multiply_2048", "multiply_2048"));
        assert!(!name_matches("multiply_2048", "multiply_204"));
        assert!(!name_matches("multiply_204", "multiply_2048"), "exact is not a prefix");
        assert!(name_matches("mul*", "multiply_2048"));
        assert!(name_matches("multiply_*", "multiply_2048"));
        assert!(name_matches("mul_*", "mul_2048"));
        assert!(!name_matches("mul*", "batch64_2048"));
        assert!(name_matches("*", "anything"));
    }

    #[test]
    fn subset_patterns_keep_matching_workloads_required() {
        let full = snap(&[
            ("multiply_512", &[("cycles", 1.0)]),
            ("batch64_2048", &[("cycles", 2.0)]),
            ("farm_4tile_wear", &[("cycles", 3.0)]),
        ]);
        // Current run covers only the batch family.
        let batch_only = snap(&[("batch64_2048", &[("cycles", 2.0)])]);
        let opts = DiffOptions {
            allow_subset: true,
            subset_patterns: vec!["batch64_*".into()],
            ..DiffOptions::default()
        };
        // Non-matching workloads are skippable, matching ones gate.
        assert!(diff(&full, &batch_only, &opts).passed());
        // Dropping a workload the pattern demands regresses even in
        // subset mode.
        let none = snap(&[("multiply_512", &[("cycles", 1.0)])]);
        let d = diff(&full, &none, &opts);
        assert!(!d.passed());
        assert!(d.regressions[0].contains("batch64_2048"), "{:?}", d.regressions);
        // Patterns never weaken value gating on present workloads.
        let wrong = snap(&[("batch64_2048", &[("cycles", 9.0)])]);
        assert!(!diff(&full, &wrong, &opts).passed());
    }

    #[test]
    fn missing_metric_regresses() {
        let base = snap(&[("w", &[("cycles", 1.0), ("writes", 2.0)])]);
        let cur = snap(&[("w", &[("cycles", 1.0)])]);
        assert!(!diff(&base, &cur, &DiffOptions::default()).passed());
    }

    #[test]
    fn collect_is_deterministic_apart_from_wall_time() {
        let hub_a = MetricsHub::recording();
        let hub_b = MetricsHub::recording();
        let mut a = BenchSnapshot::collect_widths(&[64], true, "a", &hub_a);
        let mut b = BenchSnapshot::collect_widths(&[64], true, "a", &hub_b);
        for s in [&mut a, &mut b] {
            for w in &mut s.workloads {
                // Wall-derived metrics (and the wall-derived 10x flag)
                // are the only nondeterministic ones.
                w.metrics.retain(|k, _| {
                    !is_wall_metric(k) && !is_speedup_metric(k) && k != "meets_10x"
                });
            }
        }
        assert_eq!(a, b);
        // Every layer published into the hub.
        let names: Vec<String> = hub_a
            .snapshot()
            .families
            .iter()
            .map(|f| f.name.clone())
            .collect();
        for family in [
            "cim_xbar_cycles_total",
            "cim_core_total_latency_cycles",
            "cim_sched_job_latency_cycles",
            "cim_serve_requests_total",
        ] {
            assert!(names.iter().any(|n| n == family), "missing {family}");
        }
        // The serving workload is part of the matrix and gated.
        let serve = a
            .workloads
            .iter()
            .find(|w| w.name == "serve_2tenant_4farm")
            .expect("serve workload in snapshot");
        assert_eq!(serve.metrics["incorrect"], 0.0);
        assert!(serve.metrics["served"] > 0.0);
        assert!(serve.metrics["throughput_per_mcc"] > 0.0);
        // The observability workload proves observation is free: same
        // decisions with the recorder and SLO engine attached, no
        // pages on the healthy run, and a populated journal.
        let obs = a
            .workloads
            .iter()
            .find(|w| w.name == "obs_2tenant_4farm")
            .expect("obs workload in snapshot");
        assert_eq!(obs.metrics["decisions_identical"], 1.0);
        assert_eq!(obs.metrics["slo_pages"], 0.0);
        assert_eq!(obs.metrics["incorrect"], 0.0);
        assert!(obs.metrics["journal_events"] > 0.0);
        // The pulse workload proves telemetry history is free and
        // exact: same decisions with scraping on, zero drift alerts on
        // the steady trace, and the wear forecast reproduces the
        // engine's counters.
        let pulse = a
            .workloads
            .iter()
            .find(|w| w.name == "pulse_2tenant_4farm")
            .expect("pulse workload in snapshot");
        assert_eq!(pulse.metrics["decisions_identical"], 1.0);
        assert_eq!(pulse.metrics["drift_alerts"], 0.0);
        assert_eq!(pulse.metrics["forecast_exact"], 1.0);
        assert_eq!(pulse.metrics["slo_pages"], 0.0);
        assert!(pulse.metrics["scrapes"] >= 9.0);
        assert!(pulse.metrics["timeline_series"] > 0.0);
        assert!(pulse.metrics["wear_total_writes"] > 0.0);
        // The gate passes against itself.
        assert!(diff(&a, &b, &DiffOptions::default()).passed());
    }
}
