//! Cross-snapshot trajectory analysis: lineage verification and
//! regression attribution over an ordered list of `bench_snapshot`
//! files (PR 4 → PR 9 → …).
//!
//! A trajectory treats each committed `BENCH_*.json` as one point in
//! the repo's performance history and checks the **lineage
//! invariants** the stacked-PR process promises:
//!
//! * *workload-set monotonicity* — a workload, once added to the
//!   matrix, never disappears from a later snapshot;
//! * *metric-set monotonicity* — a metric, once recorded for a
//!   workload, is recorded by every later snapshot of that workload.
//!
//! For each consecutive pair it then diffs every shared metric.
//! Exact (cycle/write/energy) deltas are reported verbatim;
//! wall-derived metrics are listed separately since they move with
//! the machine, not the code. For the `multiply_*` workloads the
//! cycle delta is **attributed to stages** using the same
//! `precompute / multiply / postcompute / handoff` rows as
//! [`cim_obs::AttributionReport`] (the snapshot records the first
//! three stages' cycles; `handoff` is the remainder to
//! `cycles`). Wall and energy deltas are apportioned across stages
//! pro rata by each stage's share of the cycle delta — a first-order
//! answer to "*which stage* made PR N slower?".
//!
//! [`Trajectory::to_json`] is deterministic (inputs are committed
//! files; the arithmetic is pure), so `BENCH_TRAJECTORY.json` is a
//! reviewable artifact: regenerating it from the same snapshots is
//! byte-identical.

use crate::snapshot::{is_speedup_metric, is_wall_metric, BenchSnapshot};
use crate::TextTable;
use cim_obs::attribution::ATTRIBUTION_STAGES;
use cim_trace::json::JsonWriter;
use std::collections::BTreeSet;

/// Schema marker embedded in every trajectory file.
pub const TRAJECTORY_SCHEMA: &str = "cim-bench-trajectory/1";

/// One snapshot's identity inside a trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotInfo {
    /// Display label (the file stem, e.g. `BENCH_PR8`).
    pub label: String,
    /// The snapshot's embedded tag.
    pub tag: String,
    /// Whether it was a `--quick` matrix.
    pub quick: bool,
    /// Workload names in the snapshot.
    pub workloads: Vec<String>,
}

/// One metric's movement between two consecutive snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Workload the metric belongs to.
    pub workload: String,
    /// Metric name.
    pub metric: String,
    /// Value in the earlier snapshot.
    pub from: f64,
    /// Value in the later snapshot.
    pub to: f64,
}

impl MetricDelta {
    /// `to - from`.
    pub fn delta(&self) -> f64 {
        self.to - self.from
    }

    /// Relative change vs the earlier value (`None` on a zero base).
    pub fn rel(&self) -> Option<f64> {
        (self.from != 0.0).then(|| self.delta() / self.from)
    }

    /// Whether this delta is an *improvement*: a cost-shaped metric
    /// (see [`crate::snapshot::is_improvable_metric`]) moving down.
    /// Labeled in the rendered table and the JSON artifact so an
    /// optimization PR's wins read differently from regressions.
    pub fn is_improvement(&self) -> bool {
        crate::snapshot::is_improvable_metric(&self.metric) && self.to < self.from
    }
}

/// One stage's share of a `multiply_*` workload's step delta.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDeltaRow {
    /// Workload the row attributes (e.g. `multiply_2048`).
    pub workload: String,
    /// Stage label (one of [`ATTRIBUTION_STAGES`]).
    pub stage: &'static str,
    /// Stage cycles in the earlier snapshot.
    pub cycles_from: f64,
    /// Stage cycles in the later snapshot.
    pub cycles_to: f64,
    /// Apportioned share of the workload's wall-time delta (ms).
    pub wall_ms_delta: f64,
    /// Apportioned share of the workload's energy delta (pJ).
    pub energy_pj_delta: f64,
}

impl StageDeltaRow {
    /// The stage's cycle delta.
    pub fn cycles_delta(&self) -> f64 {
        self.cycles_to - self.cycles_from
    }
}

/// The diff between two consecutive snapshots in a trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryStep {
    /// Label of the earlier snapshot.
    pub from: String,
    /// Label of the later snapshot.
    pub to: String,
    /// Workloads the later snapshot adds.
    pub added_workloads: Vec<String>,
    /// Exact metrics whose value changed (wall/speedup excluded).
    pub changed: Vec<MetricDelta>,
    /// Wall-derived metrics that changed (informational).
    pub wall: Vec<MetricDelta>,
    /// Per-stage attribution of the `multiply_*` deltas.
    pub attribution: Vec<StageDeltaRow>,
}

/// A verified, diffed sequence of snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// The snapshots, oldest first.
    pub snapshots: Vec<SnapshotInfo>,
    /// Lineage violations (empty when the sequence is well-formed).
    pub violations: Vec<String>,
    /// Consecutive-pair diffs, oldest first.
    pub steps: Vec<TrajectoryStep>,
}

/// The stage-cycle metrics a `multiply_*` workload records, in
/// [`ATTRIBUTION_STAGES`] order (handoff is derived, not recorded).
const STAGE_METRICS: [&str; 3] = ["precompute_cycles", "multiply_cycles", "postcompute_cycles"];

fn stage_cycles(wl: &crate::snapshot::WorkloadResult) -> Option<[f64; 4]> {
    let total = *wl.metrics.get("cycles")?;
    let mut out = [0.0; 4];
    for (slot, metric) in out.iter_mut().zip(STAGE_METRICS) {
        *slot = *wl.metrics.get(metric)?;
    }
    out[3] = total - out[0] - out[1] - out[2];
    Some(out)
}

fn attribution_rows(
    base: &crate::snapshot::WorkloadResult,
    cur: &crate::snapshot::WorkloadResult,
) -> Vec<StageDeltaRow> {
    let (Some(from), Some(to)) = (stage_cycles(base), stage_cycles(cur)) else {
        return Vec::new();
    };
    let cycle_delta: f64 = (0..4).map(|i| to[i] - from[i]).sum();
    let wall_delta = cur.metrics.get("wall_ms").copied().unwrap_or(0.0)
        - base.metrics.get("wall_ms").copied().unwrap_or(0.0);
    let energy_delta = cur.metrics.get("energy_pj").copied().unwrap_or(0.0)
        - base.metrics.get("energy_pj").copied().unwrap_or(0.0);
    ATTRIBUTION_STAGES
        .iter()
        .enumerate()
        .map(|(i, stage)| {
            // Pro-rata apportionment by the stage's share of the cycle
            // movement; with no cycle movement everything is machine
            // noise and lands in no stage.
            let share = if cycle_delta != 0.0 {
                (to[i] - from[i]) / cycle_delta
            } else {
                0.0
            };
            StageDeltaRow {
                workload: base.name.clone(),
                stage,
                cycles_from: from[i],
                cycles_to: to[i],
                wall_ms_delta: wall_delta * share,
                energy_pj_delta: energy_delta * share,
            }
        })
        .collect()
}

/// Builds the trajectory over `(label, snapshot)` pairs, oldest
/// first. Lineage violations are collected, not fatal — the caller
/// decides whether they gate.
pub fn build(snapshots: &[(String, BenchSnapshot)]) -> Trajectory {
    let infos: Vec<SnapshotInfo> = snapshots
        .iter()
        .map(|(label, s)| SnapshotInfo {
            label: label.clone(),
            tag: s.tag.clone(),
            quick: s.quick,
            workloads: s.workloads.iter().map(|w| w.name.clone()).collect(),
        })
        .collect();
    let mut violations = Vec::new();
    let mut steps = Vec::new();
    for pair in snapshots.windows(2) {
        let [(from_label, base), (to_label, cur)] = pair else {
            unreachable!("windows(2)");
        };
        let cur_names: BTreeSet<&str> = cur.workloads.iter().map(|w| w.name.as_str()).collect();
        let base_names: BTreeSet<&str> = base.workloads.iter().map(|w| w.name.as_str()).collect();
        let mut step = TrajectoryStep {
            from: from_label.clone(),
            to: to_label.clone(),
            added_workloads: cur
                .workloads
                .iter()
                .filter(|w| !base_names.contains(w.name.as_str()))
                .map(|w| w.name.clone())
                .collect(),
            changed: Vec::new(),
            wall: Vec::new(),
            attribution: Vec::new(),
        };
        for base_wl in &base.workloads {
            if !cur_names.contains(base_wl.name.as_str()) {
                violations.push(format!(
                    "{to_label}: workload {} present in {from_label} but dropped — \
                     the matrix only grows",
                    base_wl.name
                ));
                continue;
            }
            let cur_wl = cur
                .workloads
                .iter()
                .find(|w| w.name == base_wl.name)
                .expect("membership checked above");
            for (metric, &from) in &base_wl.metrics {
                let Some(&to) = cur_wl.metrics.get(metric) else {
                    violations.push(format!(
                        "{to_label}: metric {}/{metric} present in {from_label} but \
                         dropped — metrics only grow",
                        base_wl.name
                    ));
                    continue;
                };
                if from == to {
                    continue;
                }
                let d = MetricDelta {
                    workload: base_wl.name.clone(),
                    metric: metric.clone(),
                    from,
                    to,
                };
                if is_wall_metric(metric) || is_speedup_metric(metric) {
                    step.wall.push(d);
                } else {
                    step.changed.push(d);
                }
            }
            if base_wl.name.starts_with("multiply_") {
                step.attribution.extend(attribution_rows(base_wl, cur_wl));
            }
        }
        steps.push(step);
    }
    Trajectory { snapshots: infos, violations, steps }
}

impl Trajectory {
    /// Whether the lineage invariants hold.
    pub fn lineage_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serializes the trajectory as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object().field_str("schema", TRAJECTORY_SCHEMA);
        w.key("lineage_ok").bool(self.lineage_ok());
        w.key("violations").open_array();
        for v in &self.violations {
            w.string(v);
        }
        w.close_array();
        w.key("snapshots").open_array();
        for s in &self.snapshots {
            w.open_object()
                .field_str("label", &s.label)
                .field_str("tag", &s.tag);
            w.key("quick").bool(s.quick);
            w.key("workloads").open_array();
            for name in &s.workloads {
                w.string(name);
            }
            w.close_array().close_object();
        }
        w.close_array();
        w.key("steps").open_array();
        for step in &self.steps {
            w.open_object()
                .field_str("from", &step.from)
                .field_str("to", &step.to);
            w.key("added_workloads").open_array();
            for name in &step.added_workloads {
                w.string(name);
            }
            w.close_array();
            for (key, deltas) in [("changed", &step.changed), ("wall", &step.wall)] {
                w.key(key).open_array();
                for d in deltas {
                    w.open_object()
                        .field_str("workload", &d.workload)
                        .field_str("metric", &d.metric)
                        .field_float("from", d.from)
                        .field_float("to", d.to)
                        .field_float("delta", d.delta());
                    w.key("improved").bool(d.is_improvement());
                    w.close_object();
                }
                w.close_array();
            }
            w.key("attribution").open_array();
            for row in &step.attribution {
                w.open_object()
                    .field_str("workload", &row.workload)
                    .field_str("stage", row.stage)
                    .field_float("cycles_from", row.cycles_from)
                    .field_float("cycles_to", row.cycles_to)
                    .field_float("cycles_delta", row.cycles_delta())
                    .field_float("wall_ms_delta", row.wall_ms_delta)
                    .field_float("energy_pj_delta", row.energy_pj_delta)
                    .close_object();
            }
            w.close_array().close_object();
        }
        w.close_array().close_object();
        w.finish()
    }

    /// Renders the human-facing summary: one lineage line, one table
    /// of exact-metric movements per step, and the stage attribution
    /// for the multiply matrix.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trajectory: {} snapshots, lineage {}\n",
            self.snapshots.len(),
            if self.lineage_ok() { "OK" } else { "VIOLATED" }
        ));
        for v in &self.violations {
            out.push_str(&format!("  violation: {v}\n"));
        }
        for step in &self.steps {
            out.push_str(&format!(
                "\n== {} -> {} ({} exact changes, {} new workloads)\n",
                step.from,
                step.to,
                step.changed.len(),
                step.added_workloads.len()
            ));
            for name in &step.added_workloads {
                out.push_str(&format!("  + workload {name}\n"));
            }
            if !step.changed.is_empty() {
                let mut t =
                    TextTable::new(&["workload", "metric", "from", "to", "delta", "rel", "note"]);
                for d in &step.changed {
                    t.row(&[
                        d.workload.clone(),
                        d.metric.clone(),
                        format!("{}", d.from),
                        format!("{}", d.to),
                        format!("{:+}", d.delta()),
                        d.rel()
                            .map_or("n/a".into(), |r| format!("{:+.2}%", 100.0 * r)),
                        if d.is_improvement() { "improved".into() } else { String::new() },
                    ]);
                }
                out.push_str(&t.render());
            }
            let moved: Vec<&StageDeltaRow> = step
                .attribution
                .iter()
                .filter(|r| r.cycles_delta() != 0.0)
                .collect();
            if !moved.is_empty() {
                out.push_str("  stage attribution of the multiply deltas:\n");
                let mut t =
                    TextTable::new(&["workload", "stage", "cycles", "wall ms", "energy pJ"]);
                for r in moved {
                    t.row(&[
                        r.workload.clone(),
                        r.stage.to_string(),
                        format!("{:+}", r.cycles_delta()),
                        format!("{:+.3}", r.wall_ms_delta),
                        format!("{:+.1}", r.energy_pj_delta),
                    ]);
                }
                out.push_str(&t.render());
            }
        }
        out
    }
}

/// Derives a display label from a snapshot path: the file stem
/// (`ci/BENCH_PR8.json` → `BENCH_PR8`).
pub fn path_label(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path)
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::WorkloadResult;
    use std::collections::BTreeMap;

    fn snap(entries: &[(&str, &[(&str, f64)])]) -> BenchSnapshot {
        BenchSnapshot {
            tag: "t".into(),
            quick: false,
            workloads: entries
                .iter()
                .map(|(name, ms)| WorkloadResult {
                    name: (*name).to_string(),
                    metrics: ms
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), *v))
                        .collect::<BTreeMap<_, _>>(),
                })
                .collect(),
        }
    }

    fn multiply(pre: f64, mul: f64, post: f64, handoff: f64, wall: f64, pj: f64) -> Vec<(String, f64)> {
        vec![
            ("cycles".into(), pre + mul + post + handoff),
            ("precompute_cycles".into(), pre),
            ("multiply_cycles".into(), mul),
            ("postcompute_cycles".into(), post),
            ("wall_ms".into(), wall),
            ("energy_pj".into(), pj),
        ]
    }

    fn msnap(stages: &[(f64, f64, f64, f64, f64, f64)]) -> BenchSnapshot {
        BenchSnapshot {
            tag: String::new(),
            quick: false,
            workloads: stages
                .iter()
                .enumerate()
                .map(|(i, &(a, b, c, d, w, e))| WorkloadResult {
                    name: format!("multiply_{}", 512 << i),
                    metrics: multiply(a, b, c, d, w, e).into_iter().collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn growing_lineage_is_ok_and_deltas_are_exact() {
        let a = snap(&[("w", &[("cycles", 10.0), ("wall_ms", 1.0)])]);
        let b = snap(&[
            ("w", &[("cycles", 12.0), ("wall_ms", 50.0)]),
            ("new_wl", &[("cycles", 5.0)]),
        ]);
        let t = build(&[("A".into(), a), ("B".into(), b)]);
        assert!(t.lineage_ok());
        assert_eq!(t.steps.len(), 1);
        let step = &t.steps[0];
        assert_eq!(step.added_workloads, vec!["new_wl".to_string()]);
        assert_eq!(step.changed.len(), 1);
        assert_eq!(step.changed[0].metric, "cycles");
        assert_eq!(step.changed[0].delta(), 2.0);
        // Wall movement is reported but kept out of the exact list.
        assert_eq!(step.wall.len(), 1);
        assert_eq!(step.wall[0].metric, "wall_ms");
    }

    #[test]
    fn dropped_workload_and_metric_violate_lineage() {
        let a = snap(&[("w", &[("cycles", 1.0), ("writes", 2.0)]), ("gone", &[("cycles", 3.0)])]);
        let b = snap(&[("w", &[("cycles", 1.0)])]);
        let t = build(&[("A".into(), a), ("B".into(), b)]);
        assert!(!t.lineage_ok());
        assert_eq!(t.violations.len(), 2);
        assert!(t.violations.iter().any(|v| v.contains("workload gone")), "{:?}", t.violations);
        assert!(t.violations.iter().any(|v| v.contains("w/writes")), "{:?}", t.violations);
    }

    #[test]
    fn stage_attribution_apportions_wall_and_energy_by_cycle_share() {
        // multiply stage grows by 30, postcompute by 10: shares 3/4
        // and 1/4 of the 8 ms / 400 pJ deltas.
        let a = msnap(&[(100.0, 200.0, 50.0, 10.0, 2.0, 1_000.0)]);
        let b = msnap(&[(100.0, 230.0, 60.0, 10.0, 10.0, 1_400.0)]);
        let t = build(&[("A".into(), a), ("B".into(), b)]);
        let rows = &t.steps[0].attribution;
        assert_eq!(rows.len(), 4);
        let by_stage = |s: &str| rows.iter().find(|r| r.stage == s).unwrap();
        assert_eq!(by_stage("multiply").cycles_delta(), 30.0);
        assert_eq!(by_stage("multiply").wall_ms_delta, 6.0);
        assert_eq!(by_stage("multiply").energy_pj_delta, 300.0);
        assert_eq!(by_stage("postcompute").wall_ms_delta, 2.0);
        assert_eq!(by_stage("precompute").cycles_delta(), 0.0);
        assert_eq!(by_stage("handoff").cycles_delta(), 0.0);
        // The apportionment is conservative: stage rows sum to the
        // workload deltas exactly.
        assert_eq!(rows.iter().map(|r| r.wall_ms_delta).sum::<f64>(), 8.0);
        assert_eq!(rows.iter().map(|r| r.energy_pj_delta).sum::<f64>(), 400.0);
    }

    #[test]
    fn unchanged_cycles_attribute_nothing() {
        let a = msnap(&[(1.0, 2.0, 3.0, 0.0, 5.0, 10.0)]);
        let b = msnap(&[(1.0, 2.0, 3.0, 0.0, 9.0, 10.0)]);
        let t = build(&[("A".into(), a), ("B".into(), b)]);
        for row in &t.steps[0].attribution {
            assert_eq!(row.cycles_delta(), 0.0);
            assert_eq!(row.wall_ms_delta, 0.0, "wall noise lands in no stage");
        }
    }

    #[test]
    fn json_is_deterministic_and_valid() {
        let a = msnap(&[(1.0, 2.0, 3.0, 1.0, 5.0, 10.0)]);
        let b = msnap(&[(1.0, 4.0, 3.0, 1.0, 6.0, 12.0)]);
        let make = || build(&[("A".into(), a.clone()), ("B".into(), b.clone())]);
        let t = make();
        assert_eq!(t.to_json(), make().to_json());
        cim_trace::json::check(&t.to_json()).unwrap();
        assert!(t.to_json().contains("\"schema\":\"cim-bench-trajectory/1\""));
        let rendered = t.render();
        assert!(rendered.contains("lineage OK"), "{rendered}");
        assert!(rendered.contains("multiply_512"), "{rendered}");
    }

    #[test]
    fn improvements_are_labeled_in_render_and_json() {
        // multiply stage cycles drop (an optimization landing), the
        // paper-exact baseline metric is untouched.
        let a = msnap(&[(100.0, 200.0, 50.0, 10.0, 2.0, 1_000.0)]);
        let b = msnap(&[(100.0, 150.0, 50.0, 10.0, 2.0, 900.0)]);
        let t = build(&[("A".into(), a), ("B".into(), b)]);
        assert!(t.lineage_ok(), "a value decrease is not a lineage violation");
        let step = &t.steps[0];
        let cycles = step.changed.iter().find(|d| d.metric == "cycles").unwrap();
        assert!(cycles.is_improvement());
        assert!(cycles.delta() < 0.0);
        let rendered = t.render();
        assert!(rendered.contains("improved"), "{rendered}");
        assert!(t.to_json().contains("\"improved\":true"), "{}", t.to_json());
        // A cost increase is NOT an improvement; nor is a non-cost move.
        let worse = MetricDelta {
            workload: "w".into(),
            metric: "cycles".into(),
            from: 1.0,
            to: 2.0,
        };
        assert!(!worse.is_improvement());
        let other = MetricDelta {
            workload: "w".into(),
            metric: "utilization".into(),
            from: 2.0,
            to: 1.0,
        };
        assert!(!other.is_improvement());
    }

    #[test]
    fn path_labels_use_the_file_stem() {
        assert_eq!(path_label("BENCH_PR8.json"), "BENCH_PR8");
        assert_eq!(path_label("ci/artifacts/BENCH_PR9.json"), "BENCH_PR9");
    }
}
