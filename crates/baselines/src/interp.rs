//! Log-log interpolation between calibration anchors.
//!
//! Throughput and area of the scaled-up baselines follow power laws
//! (`c · n^k`); interpolating in log-log space between the paper's own
//! Table I data points reproduces those points exactly and follows the
//! local power-law exponent in between and beyond.

/// Interpolates (or extrapolates) `value(n)` from `(n, value)` anchors
/// in log-log space. Anchors must be sorted by `n` and positive.
///
/// # Panics
///
/// Panics if fewer than two anchors are given or any anchor is
/// non-positive.
///
/// ```
/// use cim_baselines::loglog_interpolate;
/// // A pure square law is reproduced exactly everywhere.
/// let anchors = [(8usize, 64.0), (32, 1024.0)];
/// assert!((loglog_interpolate(&anchors, 16) - 256.0).abs() < 1e-9);
/// ```
pub fn loglog_interpolate(anchors: &[(usize, f64)], n: usize) -> f64 {
    assert!(anchors.len() >= 2, "need at least two anchors");
    assert!(
        anchors.iter().all(|&(x, y)| x > 0 && y > 0.0),
        "anchors must be positive"
    );
    // Exact hit: return the anchor value verbatim.
    if let Some(&(_, y)) = anchors.iter().find(|&&(x, _)| x == n) {
        return y;
    }
    // Pick the bracketing (or nearest edge) anchor pair.
    let (lo, hi) = if n < anchors[0].0 {
        (anchors[0], anchors[1])
    } else if n > anchors[anchors.len() - 1].0 {
        (anchors[anchors.len() - 2], anchors[anchors.len() - 1])
    } else {
        let idx = anchors.iter().position(|&(x, _)| x > n).expect("bracketed");
        (anchors[idx - 1], anchors[idx])
    };
    let (x0, y0) = (lo.0 as f64, lo.1);
    let (x1, y1) = (hi.0 as f64, hi.1);
    let slope = (y1.ln() - y0.ln()) / (x1.ln() - x0.ln());
    (y0.ln() + slope * ((n as f64).ln() - x0.ln())).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_anchors_exactly() {
        let anchors = [(64usize, 243.0), (128, 105.0), (256, 46.0)];
        for &(n, v) in &anchors {
            assert_eq!(loglog_interpolate(&anchors, n), v);
        }
    }

    #[test]
    fn reproduces_power_laws() {
        let anchors = [(10usize, 100.0), (100, 10_000.0)]; // y = x²
        for n in [20usize, 50, 80] {
            let got = loglog_interpolate(&anchors, n);
            let expect = (n * n) as f64;
            assert!((got - expect).abs() / expect < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn extrapolates_with_edge_slope() {
        let anchors = [(10usize, 10.0), (20, 20.0)]; // y = x
        assert!((loglog_interpolate(&anchors, 40) - 40.0).abs() < 1e-9);
        assert!((loglog_interpolate(&anchors, 5) - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "two anchors")]
    fn rejects_single_anchor() {
        loglog_interpolate(&[(10, 1.0)], 5);
    }
}
