//! # cim-baselines — models of prior CIM integer multipliers
//!
//! The paper's Table I compares the Karatsuba design against four
//! scaled-up CIM multipliers from the literature:
//!
//! * **\[6\] IMPLY semi-serial** ([`ImplySerial`]) — schoolbook with an
//!   IMPLY-based adder; quadratic area;
//! * **\[7\] IMAGING** ([`Imaging`]) — MAGIC-NOR schoolbook from image
//!   processing; quadratic time, linear area;
//! * **\[8\] Wallace/MAJORITY** ([`WallaceMajority`]) — Wallace-tree
//!   multiplier in MAJORITY logic; very fast, very large;
//! * **\[9\] MultPIM** ([`MultPim`]) — stateful single-row multiplier;
//!   `O(n log n)` time, `O(n)` area, but impractically long rows.
//!
//! The original works only report small operand sizes; the paper (like
//! this crate) scales them up analytically. Each model here anchors on
//! the paper's own Table I data points *exactly* and interpolates /
//! extrapolates in log-log space between them; where the underlying
//! scaling law is identifiable (areas, write counts) the closed form
//! is used and validated against all anchors. See DESIGN.md §2.5.
//!
//! ## Example
//!
//! ```
//! use cim_baselines::{models, MultiplierModel};
//!
//! let multpim = models().into_iter().find(|m| m.key() == "multpim").expect("registered");
//! assert_eq!(multpim.area_cells(384), 5369); // the paper's 5,369-memristor row
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interp;

pub use interp::loglog_interpolate;

use karatsuba_cim::cost::DesignPoint;

/// A throughput/area/endurance model of a CIM multiplier design,
/// parameterized by operand width `n`.
pub trait MultiplierModel {
    /// Short machine-readable key (e.g. `"multpim"`).
    fn key(&self) -> &'static str;

    /// Display name with the paper's reference number.
    fn name(&self) -> &'static str;

    /// Pipelined throughput in multiplications per 10^6 clock cycles.
    fn throughput_per_mcc(&self, n: usize) -> f64;

    /// Total memristor cells.
    fn area_cells(&self, n: usize) -> u64;

    /// Maximum writes to one cell per multiplication
    /// (`None` = not reported, as for \[6\]).
    fn max_writes(&self, n: usize) -> Option<u64>;

    /// Area-time product: cells / throughput (Table I "ATP").
    fn atp(&self, n: usize) -> f64 {
        self.area_cells(n) as f64 / self.throughput_per_mcc(n)
    }

    /// Longest single memory line (row) the design requires, if the
    /// design concentrates a whole multiplication in one line.
    fn max_row_length(&self, n: usize) -> Option<u64> {
        let _ = n;
        None
    }
}

/// Table I operand sizes.
pub const TABLE1_SIZES: [usize; 4] = [64, 128, 256, 384];

/// \[6\] Radakovits et al. — IMPLY semi-serial schoolbook multiplier.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImplySerial;

impl MultiplierModel for ImplySerial {
    fn key(&self) -> &'static str {
        "imply-serial"
    }

    fn name(&self) -> &'static str {
        "[6] IMPLY semi-serial schoolbook"
    }

    fn throughput_per_mcc(&self, n: usize) -> f64 {
        loglog_interpolate(&[(64, 243.0), (128, 105.0), (256, 46.0), (384, 28.0)], n)
    }

    fn area_cells(&self, n: usize) -> u64 {
        // Quadratic: 2n² + n + 2 — matches all four Table I anchors.
        2 * (n as u64) * (n as u64) + n as u64 + 2
    }

    fn max_writes(&self, _n: usize) -> Option<u64> {
        None // "n.r." in Table I
    }
}

/// \[7\] Haj-Ali et al. — IMAGING: MAGIC-NOR schoolbook multiplier.
#[derive(Debug, Clone, Copy, Default)]
pub struct Imaging;

impl MultiplierModel for Imaging {
    fn key(&self) -> &'static str {
        "imaging"
    }

    fn name(&self) -> &'static str {
        "[7] MAGIC schoolbook (IMAGING)"
    }

    fn throughput_per_mcc(&self, n: usize) -> f64 {
        // O(n²) latency; anchors from Table I.
        loglog_interpolate(&[(64, 19.0), (128, 5.0), (256, 1.2), (384, 0.5)], n)
    }

    fn area_cells(&self, n: usize) -> u64 {
        // Linear: 20n − 5 — matches all four anchors exactly.
        20 * n as u64 - 5
    }

    fn max_writes(&self, n: usize) -> Option<u64> {
        // 2n rounded up to the next power of two (128…1024 in Table I).
        Some((2 * n as u64).next_power_of_two())
    }
}

/// \[8\] Lakshmi et al. — Wallace-tree multiplier in MAJORITY logic.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallaceMajority;

impl MultiplierModel for WallaceMajority {
    fn key(&self) -> &'static str {
        "wallace-majority"
    }

    fn name(&self) -> &'static str {
        "[8] MAJORITY Wallace tree"
    }

    fn throughput_per_mcc(&self, n: usize) -> f64 {
        // O(n log n)-ish latency; anchors from Table I.
        loglog_interpolate(
            &[(64, 2475.0), (128, 1155.0), (256, 525.0), (384, 313.0)],
            n,
        )
    }

    fn area_cells(&self, n: usize) -> u64 {
        // Quadratic (~8n²); anchors from Table I (1.18M at n = 384).
        loglog_interpolate(
            &[
                (64, 32_960.0),
                (128, 131_312.0),
                (256, 524_576.0),
                (384, 1_180_000.0),
            ],
            n,
        )
        .round() as u64
    }

    fn max_writes(&self, _n: usize) -> Option<u64> {
        Some(2) // fully spatial: every cell written at most twice
    }
}

/// \[9\] Leitersdorf et al. — MultPIM single-row multiplier.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultPim;

impl MultiplierModel for MultPim {
    fn key(&self) -> &'static str {
        "multpim"
    }

    fn name(&self) -> &'static str {
        "[9] MultPIM single-row"
    }

    fn throughput_per_mcc(&self, n: usize) -> f64 {
        loglog_interpolate(&[(64, 779.0), (128, 372.0), (256, 177.0), (384, 115.0)], n)
    }

    fn area_cells(&self, n: usize) -> u64 {
        // Linear: 14n − 7 — matches all four anchors exactly
        // (the paper's 5,369-memristor row at n = 384).
        14 * n as u64 - 7
    }

    fn max_writes(&self, n: usize) -> Option<u64> {
        Some(4 * n as u64) // 256…1536 in Table I
    }

    fn max_row_length(&self, n: usize) -> Option<u64> {
        // The whole multiplication lives in ONE row — the paper's
        // practicality critique (Sec. II-C).
        Some(self.area_cells(n))
    }
}

/// "Our" — the paper's Karatsuba design, via the analytic cost model
/// of [`karatsuba_cim::cost::DesignPoint`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OurKaratsuba;

impl MultiplierModel for OurKaratsuba {
    fn key(&self) -> &'static str {
        "karatsuba-cim"
    }

    fn name(&self) -> &'static str {
        "Our Karatsuba CIM (3-stage pipeline)"
    }

    fn throughput_per_mcc(&self, n: usize) -> f64 {
        DesignPoint::new(n).throughput_per_mcc()
    }

    fn area_cells(&self, n: usize) -> u64 {
        DesignPoint::new(n).area_cells()
    }

    fn max_writes(&self, n: usize) -> Option<u64> {
        Some(DesignPoint::new(n).max_writes)
    }

    fn max_row_length(&self, n: usize) -> Option<u64> {
        Some(DesignPoint::new(n).max_row_length())
    }
}

/// All five models in Table I row order (\[6\], \[7\], \[8\], \[9\], Our).
pub fn models() -> Vec<Box<dyn MultiplierModel>> {
    vec![
        Box::new(ImplySerial),
        Box::new(Imaging),
        Box::new(WallaceMajority),
        Box::new(MultPim),
        Box::new(OurKaratsuba),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tput(m: &dyn MultiplierModel, n: usize) -> u64 {
        m.throughput_per_mcc(n).round() as u64
    }

    #[test]
    fn imply_serial_anchors_exact() {
        let m = ImplySerial;
        assert_eq!(m.area_cells(64), 8_258);
        assert_eq!(m.area_cells(128), 32_898);
        assert_eq!(m.area_cells(256), 131_330);
        assert_eq!(m.area_cells(384), 295_298);
        assert_eq!(tput(&m, 64), 243);
        assert_eq!(tput(&m, 384), 28);
        assert_eq!(m.max_writes(64), None);
    }

    #[test]
    fn imaging_anchors_exact() {
        let m = Imaging;
        assert_eq!(m.area_cells(64), 1_275);
        assert_eq!(m.area_cells(128), 2_555);
        assert_eq!(m.area_cells(256), 5_115);
        assert_eq!(m.area_cells(384), 7_675);
        assert_eq!(tput(&m, 64), 19);
        assert_eq!(m.max_writes(64), Some(128));
        assert_eq!(m.max_writes(384), Some(1_024));
    }

    #[test]
    fn wallace_anchors_exact() {
        let m = WallaceMajority;
        assert_eq!(m.area_cells(64), 32_960);
        assert_eq!(m.area_cells(256), 524_576);
        assert_eq!(tput(&m, 64), 2_475);
        assert_eq!(m.max_writes(384), Some(2));
    }

    #[test]
    fn multpim_anchors_exact() {
        let m = MultPim;
        assert_eq!(m.area_cells(64), 889);
        assert_eq!(m.area_cells(128), 1_785);
        assert_eq!(m.area_cells(256), 3_577);
        assert_eq!(m.area_cells(384), 5_369);
        assert_eq!(tput(&m, 64), 779);
        assert_eq!(m.max_writes(64), Some(256));
        assert_eq!(m.max_writes(384), Some(1_536));
        assert_eq!(m.max_row_length(384), Some(5_369));
    }

    #[test]
    fn atp_matches_table1_columns() {
        // Spot checks against the printed ATPs (paper rounds).
        assert!((ImplySerial.atp(64) - 34.0).abs() < 1.0);
        assert!((Imaging.atp(64) - 67.0).abs() < 1.0);
        assert!((WallaceMajority.atp(64) - 13.0).abs() < 0.5);
        assert!((MultPim.atp(64) - 1.1).abs() < 0.1);
        assert!((MultPim.atp(384) - 47.0).abs() < 1.0);
    }

    #[test]
    fn headline_improvement_factors() {
        // Paper abstract: up to 916× throughput and 281× ATP vs [7].
        let ours = OurKaratsuba;
        let imaging = Imaging;
        let tput_gain = ours.throughput_per_mcc(384) / imaging.throughput_per_mcc(384);
        assert!(
            (900.0..=960.0).contains(&tput_gain),
            "throughput gain {tput_gain}"
        );
        let atp_gain = imaging.atp(384) / ours.atp(384);
        assert!((270.0..=295.0).contains(&atp_gain), "ATP gain {atp_gain}");
    }

    #[test]
    fn our_design_beats_multpim_on_row_length_and_writes() {
        // Paper Sec. V: 4× shorter rows, up to 7.8× fewer writes.
        let ours = OurKaratsuba;
        let multpim = MultPim;
        let row_ratio = multpim.max_row_length(384).unwrap() as f64
            / ours.max_row_length(384).unwrap() as f64;
        assert!(row_ratio >= 4.0, "row ratio {row_ratio}");
        let write_ratio =
            multpim.max_writes(384).unwrap() as f64 / ours.max_writes(384).unwrap() as f64;
        assert!((7.0..=8.5).contains(&write_ratio), "write ratio {write_ratio}");
    }

    #[test]
    fn wallace_area_blowup_vs_ours() {
        // Paper Sec. V: [8] needs up to 1.2M cells, 47× ours at n=384.
        let ratio =
            WallaceMajority.area_cells(384) as f64 / OurKaratsuba.area_cells(384) as f64;
        assert!((45.0..=49.0).contains(&ratio), "area ratio {ratio}");
    }

    #[test]
    fn models_interpolate_between_anchors() {
        // At a non-anchor size the models stay monotone and finite.
        for m in models() {
            let t96 = m.throughput_per_mcc(96);
            let t64 = m.throughput_per_mcc(64);
            let t128 = m.throughput_per_mcc(128);
            assert!(
                t128 <= t96 && t96 <= t64,
                "{}: {t64} {t96} {t128}",
                m.name()
            );
            assert!(m.area_cells(96) >= m.area_cells(64));
        }
    }

    #[test]
    fn registry_has_five_models_in_table_order() {
        let keys: Vec<&str> = models().iter().map(|m| m.key()).collect();
        assert_eq!(
            keys,
            [
                "imply-serial",
                "imaging",
                "wallace-majority",
                "multpim",
                "karatsuba-cim"
            ]
        );
    }
}
