//! Property tests for the baseline models: interpolation correctness
//! and the orderings Table I depends on.

use cim_baselines::{loglog_interpolate, models, MultiplierModel, OurKaratsuba};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Log-log interpolation reproduces any power law exactly.
    #[test]
    fn interpolation_is_exact_on_power_laws(
        coeff in 0.1f64..100.0,
        exponent in -3.0f64..3.0,
        n in 16usize..1000,
    ) {
        let f = |x: usize| coeff * (x as f64).powf(exponent);
        let anchors = [(16usize, f(16)), (64, f(64)), (256, f(256)), (1024, f(1024))];
        let got = loglog_interpolate(&anchors, n);
        let expect = f(n);
        prop_assert!(
            (got - expect).abs() / expect < 1e-9,
            "n={n}: {got} vs {expect}"
        );
    }

    /// Every model: throughput decreases with n, area increases with n.
    #[test]
    fn models_are_monotone(step in 1usize..8) {
        let sizes: Vec<usize> = (1..=8).map(|i| i * 32 * step.min(2)).collect();
        for m in models() {
            for w in sizes.windows(2) {
                prop_assert!(
                    m.throughput_per_mcc(w[1]) <= m.throughput_per_mcc(w[0]) * 1.0001,
                    "{} throughput must not increase: {} -> {}",
                    m.name(), w[0], w[1]
                );
                prop_assert!(
                    m.area_cells(w[1]) >= m.area_cells(w[0]),
                    "{} area must not decrease",
                    m.name()
                );
            }
        }
    }

    /// Our design's throughput advantage over both schoolbook
    /// baselines grows monotonically with n (the asymptotic argument).
    #[test]
    fn karatsuba_advantage_grows(i in 1usize..12) {
        let n1 = i * 32;
        let n2 = (i + 1) * 32;
        let ours = OurKaratsuba;
        for key in ["imaging", "imply-serial"] {
            let baseline = models()
                .into_iter()
                .find(|m| m.key() == key)
                .expect("registered");
            let gain1 = ours.throughput_per_mcc(n1) / baseline.throughput_per_mcc(n1);
            let gain2 = ours.throughput_per_mcc(n2) / baseline.throughput_per_mcc(n2);
            prop_assert!(
                gain2 > gain1 * 0.98,
                "{key}: gain should grow: {gain1} at {n1} -> {gain2} at {n2}"
            );
        }
    }

    /// ATP is always consistent with area / throughput.
    #[test]
    fn atp_definition(i in 2usize..16) {
        let n = i * 32;
        for m in models() {
            let atp = m.atp(n);
            let manual = m.area_cells(n) as f64 / m.throughput_per_mcc(n);
            prop_assert!((atp - manual).abs() / manual < 1e-12, "{}", m.name());
        }
    }
}
