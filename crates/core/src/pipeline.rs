//! The three-stage pipeline (paper Fig. 5 and Sec. IV-A).
//!
//! The *Karatsuba Multiplication Controller* streams multiplications
//! through precomputation → multiplication → postcomputation, each on
//! its own subarray, so three multiplications are in flight at once.
//! Latency is the sum of the stage latencies; throughput is set by the
//! slowest stage (plus the operand/product handoff the controller
//! performs between subarrays).

use crate::cost::{DesignPoint, HANDOFF_CYCLES};
use cim_trace::{Args, Tracer};

/// Timing of one multiplication job through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTiming {
    /// Job index.
    pub job: usize,
    /// Cycle at which each stage starts, `[pre, mult, post]`.
    pub start: [u64; 3],
    /// Cycle at which each stage finishes (inclusive of handoff out).
    pub finish: [u64; 3],
}

impl JobTiming {
    /// Completion cycle of the whole job.
    pub fn completed_at(&self) -> u64 {
        self.finish[2]
    }
}

/// A simulated schedule of `k` multiplications through the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSchedule {
    /// Stage latencies `[pre, mult, post]` in cycles.
    pub stage_latency: [u64; 3],
    /// Handoff cycles charged after stage 1 and stage 2.
    pub handoff: u64,
    /// Per-job timings.
    pub jobs: Vec<JobTiming>,
}

impl PipelineSchedule {
    /// Simulates `count` back-to-back multiplications given the three
    /// stage latencies. A stage starts as soon as both its own
    /// subarray and its input are free.
    pub fn simulate(count: usize, stage_latency: [u64; 3], handoff: u64) -> Self {
        let mut jobs: Vec<JobTiming> = Vec::with_capacity(count);
        // Occupancy: cycle at which each stage subarray becomes free.
        let mut stage_free = [0u64; 3];
        for j in 0..count {
            let mut start = [0u64; 3];
            let mut finish = [0u64; 3];
            let mut input_ready = 0u64;
            for s in 0..3 {
                start[s] = input_ready.max(stage_free[s]);
                // Stage occupies its array for latency + the handoff
                // that drains its results (to the next stage, or back
                // to main memory for the final stage).
                finish[s] = start[s] + stage_latency[s] + handoff;
                stage_free[s] = finish[s];
                input_ready = finish[s];
            }
            jobs.push(JobTiming { job: j, start, finish });
        }
        PipelineSchedule {
            stage_latency,
            handoff,
            jobs,
        }
    }

    /// Simulates `count` multiplications with the paper's `n`-bit
    /// design-point latencies.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 4.
    pub fn for_design(n: usize, count: usize) -> Self {
        let d = DesignPoint::new(n);
        Self::simulate(
            count,
            [
                d.precompute_latency,
                d.multiply_latency,
                d.postcompute_latency,
            ],
            HANDOFF_CYCLES,
        )
    }

    /// Latency of a single multiplication (job 0 completion).
    pub fn single_latency(&self) -> u64 {
        self.jobs.first().map_or(0, JobTiming::completed_at)
    }

    /// Measured pipelined throughput when every job is a bit-sliced
    /// batch of `lanes` multiplications: batching leaves stage
    /// latencies (and thus the schedule) unchanged, so throughput
    /// scales linearly with the lane count.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds 64.
    pub fn batched_throughput_per_mcc(&self, lanes: usize) -> f64 {
        assert!((1..=64).contains(&lanes), "lanes must be 1..=64");
        lanes as f64 * self.throughput_per_mcc()
    }

    /// Steady-state initiation interval: completion spacing of the
    /// last two jobs.
    pub fn initiation_interval(&self) -> u64 {
        match self.jobs.len() {
            0 | 1 => self.single_latency(),
            k => self.jobs[k - 1].completed_at() - self.jobs[k - 2].completed_at(),
        }
    }

    /// Measured pipelined throughput in multiplications per 10^6
    /// cycles (excluding the pipeline fill of the first two jobs).
    pub fn throughput_per_mcc(&self) -> f64 {
        1.0e6 / self.initiation_interval() as f64
    }

    /// Exports the schedule into `tracer` as one process named
    /// `process_name` with a track per pipeline stage: job `j`'s
    /// occupation of stage `s` becomes a complete span covering
    /// `[start[s], finish[s])` (latency plus the draining handoff), and
    /// an `occupancy` track carries a `jobs_in_flight` counter sampled
    /// at every job entry/exit — the Fig. 5 chart as a Perfetto trace.
    ///
    /// No-op when the tracer is disabled.
    pub fn trace_into(&self, tracer: &Tracer, process_name: &str) {
        if !tracer.is_enabled() {
            return;
        }
        let pid = tracer.process(process_name);
        let tracks = [
            tracer.track(pid, "stage 1 (precompute)"),
            tracer.track(pid, "stage 2 (multiply)"),
            tracer.track(pid, "stage 3 (postcompute)"),
        ];
        for t in &self.jobs {
            for (s, &track) in tracks.iter().enumerate() {
                tracer.complete(
                    track,
                    format!("job {}", t.job),
                    t.start[s],
                    t.finish[s] - t.start[s],
                    Args::new()
                        .with("job", t.job as i64)
                        .with("handoff", self.handoff as i64),
                );
            }
        }
        // Jobs-in-flight gauge: +1 when a job enters stage 1, −1 when
        // it leaves stage 3.
        let occupancy = tracer.track(pid, "occupancy");
        let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(2 * self.jobs.len());
        for t in &self.jobs {
            deltas.push((t.start[0], 1));
            deltas.push((t.finish[2], -1));
        }
        deltas.sort_unstable();
        let mut in_flight = 0i64;
        let mut i = 0;
        while i < deltas.len() {
            let cycle = deltas[i].0;
            while i < deltas.len() && deltas[i].0 == cycle {
                in_flight += deltas[i].1;
                i += 1;
            }
            tracer.counter(occupancy, "jobs_in_flight", cycle, in_flight as f64);
        }
    }

    /// Renders a textual occupancy chart (one line per job) — used by
    /// the Fig. 5 reproduction binary.
    pub fn render(&self, cycles_per_char: u64) -> String {
        let mut out = String::new();
        for t in &self.jobs {
            let mut line = format!("job {:>2} ", t.job);
            let mut cursor = 0u64;
            for (s, label) in ["P", "M", "C"].iter().enumerate() {
                let pad = (t.start[s] - cursor) / cycles_per_char.max(1);
                line.push_str(&" ".repeat(pad as usize));
                let width =
                    ((t.finish[s] - t.start[s]) / cycles_per_char.max(1)).max(1) as usize;
                line.push_str(&label.repeat(width));
                cursor = t.finish[s];
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_latency_is_sum_of_stages_plus_handoffs() {
        let s = PipelineSchedule::simulate(1, [100, 200, 150], 27);
        assert_eq!(s.single_latency(), 100 + 200 + 150 + 3 * 27);
    }

    #[test]
    fn steady_state_interval_is_slowest_stage_plus_handoff() {
        let s = PipelineSchedule::simulate(10, [100, 200, 150], 27);
        assert_eq!(s.initiation_interval(), 200 + 27);
    }

    #[test]
    fn pipeline_never_reorders_jobs() {
        let s = PipelineSchedule::simulate(8, [50, 300, 100], 27);
        for w in s.jobs.windows(2) {
            assert!(w[1].completed_at() > w[0].completed_at());
            for stage in 0..3 {
                assert!(w[1].start[stage] >= w[0].finish[stage]);
            }
        }
    }

    #[test]
    fn design_point_throughput_matches_cost_model() {
        for n in [64usize, 128, 256, 384] {
            let s = PipelineSchedule::for_design(n, 16);
            let d = DesignPoint::new(n);
            assert_eq!(s.initiation_interval(), d.initiation_interval(), "n = {n}");
            assert!(
                (s.throughput_per_mcc() - d.throughput_per_mcc()).abs() < 1e-9,
                "n = {n}"
            );
        }
    }

    #[test]
    fn batched_throughput_scales_linearly_with_lanes() {
        let s = PipelineSchedule::for_design(256, 16);
        let base = s.throughput_per_mcc();
        assert_eq!(s.batched_throughput_per_mcc(1), base);
        assert!((s.batched_throughput_per_mcc(64) - 64.0 * base).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "lanes must be 1..=64")]
    fn batched_throughput_rejects_zero_lanes() {
        let _ = PipelineSchedule::for_design(64, 1).batched_throughput_per_mcc(0);
    }

    #[test]
    fn three_jobs_in_flight() {
        // With balanced stages, job 2's precompute overlaps job 1's
        // multiply and job 0's postcompute.
        let s = PipelineSchedule::simulate(3, [100, 100, 100], 0);
        assert!(s.jobs[2].start[0] >= s.jobs[2].job as u64 * 100);
        assert!(s.jobs[2].start[0] < s.jobs[0].completed_at());
    }

    #[test]
    fn render_produces_one_line_per_job() {
        let s = PipelineSchedule::simulate(4, [100, 100, 100], 0);
        let chart = s.render(50);
        assert_eq!(chart.lines().count(), 4);
        assert!(chart.contains('P') && chart.contains('M') && chart.contains('C'));
    }
}
