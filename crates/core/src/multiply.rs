//! Stage 2 — multiplication (paper Sec. IV-D).
//!
//! Nine single-row multipliers (the MultPIM-derived
//! [`cim_logic::multpim::RowMultiplier`], optimized to 12 cells/bit)
//! run in parallel, one per row, computing the nine partial products
//! of the unrolled Karatsuba tree. The widest operand is `a_3210`
//! (`n/4 + 2` bits), so the stage provisions `w = n/4 + 2`-bit
//! multipliers:
//!
//! * area: `9 × 12·(n/4+2)` cells,
//! * latency: `(n/4+2)·(⌈log2(n/4+2)⌉ + 14) + 3` cc — one row's
//!   latency, since all nine rows compute simultaneously.

use crate::chunks::{LEAVES, PRODUCT_NAMES};
use cim_bigint::Uint;
use cim_crossbar::{Crossbar, CrossbarError, EnduranceReport};
use cim_logic::multpim::RowMultiplier;
use cim_trace::{Args, ProcessId, Tracer};

/// Output of one multiplication-stage run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiplyOutput {
    /// The nine partial products in leaf order
    /// (`c_ll … c_mm`, see [`crate::chunks::PRODUCT_NAMES`]).
    pub products: [Uint; LEAVES],
    /// Stage latency in clock cycles (all rows in parallel).
    pub cycles: u64,
    /// Endurance report of the stage array.
    pub endurance: EnduranceReport,
}

/// Output of one bit-sliced batch multiplication-stage run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMultiplyOutput {
    /// Per-lane partial products (leaf order within each lane).
    pub products: Vec<[Uint; LEAVES]>,
    /// Stage latency — identical to a solo run.
    pub cycles: u64,
    /// Per-lane endurance reports of the stage array.
    pub endurance: Vec<EnduranceReport>,
}

/// The multiplication stage for `n`-bit multiplications.
///
/// ```
/// use karatsuba_cim::multiply::MultiplyStage;
/// let stage = MultiplyStage::new(256).expect("stage");
/// assert_eq!(stage.latency(), 1389); // 66·(7+14)+3
/// assert_eq!(stage.area_cells(), 7128); // 9 × 12·66
/// ```
#[derive(Debug, Clone)]
pub struct MultiplyStage {
    n: usize,
    multiplier: RowMultiplier,
}

impl MultiplyStage {
    /// Creates the stage for `n`-bit multiplications at the
    /// paper-exact [`cim_mir::OptLevel::O0`].
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for interface symmetry.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 4.
    pub fn new(n: usize) -> Result<Self, CrossbarError> {
        Self::with_opt_level(n, cim_mir::OptLevel::O0)
    }

    /// Creates the stage with its row multipliers scheduled at `opt`
    /// (co-issuing independent iteration steps across partitions at
    /// `O2`+; see [`cim_mir::rowmul`]).
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for interface symmetry.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 4.
    pub fn with_opt_level(n: usize, opt: cim_mir::OptLevel) -> Result<Self, CrossbarError> {
        assert!(n > 0 && n.is_multiple_of(4), "operand width must be a multiple of 4");
        Ok(MultiplyStage {
            n,
            multiplier: RowMultiplier::with_opt_level(n / 4 + 2, opt),
        })
    }

    /// The optimization level the row multipliers are scheduled at.
    pub fn opt_level(&self) -> cim_mir::OptLevel {
        self.multiplier.opt_level()
    }

    /// Operand width of each small multiplier: `n/4 + 2` bits.
    pub fn width(&self) -> usize {
        self.n / 4 + 2
    }

    /// Stage area: `9 × 12·(n/4+2)` cells.
    pub fn area_cells(&self) -> u64 {
        (LEAVES * self.multiplier.required_cols()) as u64
    }

    /// Stage latency: one row multiplier's latency (they all run in
    /// parallel).
    pub fn latency(&self) -> u64 {
        self.multiplier.latency()
    }

    /// Runs the nine partial multiplications.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from execution.
    ///
    /// # Panics
    ///
    /// Panics if a leaf operand exceeds `n/4 + 2` bits.
    pub fn run(
        &self,
        a_leaves: &[Uint; LEAVES],
        b_leaves: &[Uint; LEAVES],
    ) -> Result<MultiplyOutput, CrossbarError> {
        self.run_traced(a_leaves, b_leaves, &Tracer::disabled(), ProcessId(0), 0)
    }

    /// Runs the nine partial multiplications for up to 64 instances at
    /// once on a bit-sliced array: row `i` multiplies leaf `i` of every
    /// lane in the same shift-add pass
    /// ([`RowMultiplier::run_batch_in`]), so the stage latency equals
    /// [`MultiplyStage::latency`] regardless of the lane count.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from execution.
    ///
    /// # Panics
    ///
    /// Panics if the leaf sets are empty, differ in lane count, exceed
    /// 64 lanes, or a leaf operand exceeds `n/4 + 2` bits.
    pub fn run_batch(
        &self,
        a_leaves: &[[Uint; LEAVES]],
        b_leaves: &[[Uint; LEAVES]],
    ) -> Result<BatchMultiplyOutput, CrossbarError> {
        let lanes = a_leaves.len();
        assert!(
            lanes > 0 && lanes <= 64 && lanes == b_leaves.len(),
            "batch must hold 1..=64 lanes on both sides"
        );
        let mut array = Crossbar::new_sliced(LEAVES, self.multiplier.required_cols(), lanes)?;
        let mut products: Vec<[Uint; LEAVES]> = vec![Default::default(); lanes];
        for i in 0..LEAVES {
            let pairs: Vec<(Uint, Uint)> = (0..lanes)
                .map(|l| (a_leaves[l][i].clone(), b_leaves[l][i].clone()))
                .collect();
            let (lane_products, _) = self.multiplier.run_batch_in(&mut array, i, 0, &pairs)?;
            for (l, p) in lane_products.into_iter().enumerate() {
                products[l][i] = p;
            }
        }
        Ok(BatchMultiplyOutput {
            products,
            cycles: self.latency(),
            endurance: EnduranceReport::per_lane(&array),
        })
    }

    /// [`MultiplyStage::run`] with tracing: each of the nine row
    /// multipliers gets its own track under `process`, carrying one
    /// span per partial product covering `[start_cycle, start_cycle +
    /// latency)` — the nine spans overlap because the rows compute in
    /// parallel in hardware (the simulator runs them sequentially but
    /// charges only one row's latency).
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from execution.
    ///
    /// # Panics
    ///
    /// Panics if a leaf operand exceeds `n/4 + 2` bits.
    pub fn run_traced(
        &self,
        a_leaves: &[Uint; LEAVES],
        b_leaves: &[Uint; LEAVES],
        tracer: &Tracer,
        process: ProcessId,
        start_cycle: u64,
    ) -> Result<MultiplyOutput, CrossbarError> {
        let mut array = Crossbar::new(LEAVES, self.multiplier.required_cols())?;
        let mut products: [Uint; LEAVES] = Default::default();
        for i in 0..LEAVES {
            let (p, _) = self
                .multiplier
                .run_in(&mut array, i, 0, &a_leaves[i], &b_leaves[i])?;
            products[i] = p;
            if tracer.is_enabled() {
                let track = tracer.track(process, &format!("mult row {i}"));
                tracer.complete(
                    track,
                    PRODUCT_NAMES[i],
                    start_cycle,
                    self.latency(),
                    Args::new()
                        .with("row", i as i64)
                        .with("width", self.width() as i64),
                );
            }
        }
        Ok(MultiplyOutput {
            products,
            cycles: self.latency(),
            endurance: EnduranceReport::from_array(&array),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunks::decompose_operand;
    use cim_bigint::rng::UintRng;

    #[test]
    fn products_match_gold_model() {
        let mut rng = UintRng::seeded(13);
        for n in [16usize, 64, 128] {
            let stage = MultiplyStage::new(n).unwrap();
            let a = rng.uniform(n);
            let b = rng.uniform(n);
            let da = decompose_operand(&a, n);
            let db = decompose_operand(&b, n);
            let out = stage.run(&da.leaves, &db.leaves).unwrap();
            for i in 0..LEAVES {
                assert_eq!(
                    out.products[i],
                    &da.leaves[i] * &db.leaves[i],
                    "n = {n}, product {i}"
                );
            }
        }
    }

    #[test]
    fn batch_products_match_solo_runs_at_solo_cycle_cost() {
        let mut rng = UintRng::seeded(43);
        let n = 32;
        let lanes = 17;
        let stage = MultiplyStage::new(n).unwrap();
        let decomp = |x: &Uint| decompose_operand(x, n).leaves;
        let sets: Vec<([Uint; LEAVES], [Uint; LEAVES])> = (0..lanes)
            .map(|_| (decomp(&rng.uniform(n)), decomp(&rng.uniform(n))))
            .collect();
        let a_sets: Vec<_> = sets.iter().map(|(a, _)| a.clone()).collect();
        let b_sets: Vec<_> = sets.iter().map(|(_, b)| b.clone()).collect();
        let batch = stage.run_batch(&a_sets, &b_sets).unwrap();
        assert_eq!(batch.cycles, stage.latency());
        for (lane, (a, b)) in sets.iter().enumerate() {
            let solo = stage.run(a, b).unwrap();
            assert_eq!(batch.products[lane], solo.products, "lane {lane}");
            assert_eq!(batch.endurance[lane], solo.endurance, "lane {lane}");
        }
    }

    #[test]
    fn paper_latency_and_area() {
        // n = 256: latency 1389 cc, area 7,128 cells.
        let stage = MultiplyStage::new(256).unwrap();
        assert_eq!(stage.latency(), 1389);
        assert_eq!(stage.area_cells(), 7128);
        // n = 64: w = 18 → 18·(5+14)+3 = 345 cc, 9·216 = 1,944 cells.
        let stage = MultiplyStage::new(64).unwrap();
        assert_eq!(stage.latency(), 345);
        assert_eq!(stage.area_cells(), 1944);
    }

    #[test]
    fn widest_leaf_fits() {
        // a_3210 with all-ones operands is exactly n/4+2 bits.
        let n = 64;
        let stage = MultiplyStage::new(n).unwrap();
        let a = Uint::pow2(n).sub(&Uint::one());
        let da = decompose_operand(&a, n);
        let out = stage.run(&da.leaves, &da.leaves).unwrap();
        assert_eq!(
            out.products[8],
            &da.leaves[8] * &da.leaves[8],
            "c_mm must be exact at maximal operand width"
        );
    }

    #[test]
    fn per_row_wear_is_bounded() {
        let n = 64;
        let stage = MultiplyStage::new(n).unwrap();
        let a = Uint::pow2(n).sub(&Uint::one());
        let da = decompose_operand(&a, n);
        let out = stage.run(&da.leaves, &da.leaves).unwrap();
        // Paper's write model for the stage: ≈ 2w + 2 per cell.
        let w = stage.width() as u64;
        assert!(
            out.endurance.max_writes <= 4 * w,
            "max writes {} exceeds 4w = {}",
            out.endurance.max_writes,
            4 * w
        );
    }
}
