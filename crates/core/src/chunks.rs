//! Operand decomposition for the L = 2 unrolled Karatsuba tree
//! (paper Fig. 3) and the canonical naming used by the pipeline
//! stages and Fig. 7.
//!
//! An `n`-bit operand `a` splits into four `n/4`-bit chunks
//! `a_3‖a_2‖a_1‖a_0`. The precomputation stage derives five sums, and
//! the nine multiplication operands (in this repository's canonical
//! *leaf order*) are:
//!
//! | index | operand  | value           | width (bits) |
//! |-------|----------|-----------------|--------------|
//! | 0     | `a_0`    | chunk 0         | n/4          |
//! | 1     | `a_1`    | chunk 1         | n/4          |
//! | 2     | `a_10`   | `a_1 + a_0`     | n/4+1        |
//! | 3     | `a_2`    | chunk 2         | n/4          |
//! | 4     | `a_3`    | chunk 3         | n/4          |
//! | 5     | `a_32`   | `a_3 + a_2`     | n/4+1        |
//! | 6     | `a_20`   | `a_2 + a_0`     | n/4+1        |
//! | 7     | `a_31`   | `a_3 + a_1`     | n/4+1        |
//! | 8     | `a_3210` | `a_20 + a_31`   | n/4+2        |
//!
//! The nine partial products (element-wise `a_i · b_i`) carry the
//! Fig. 7 names `c_ll, c_lh, c_lm, c_hl, c_hh, c_hm, c_ml, c_mh, c_mm`.

use cim_bigint::mul::karatsuba_unrolled::{decompose, recombine, ChunkOperand};
use cim_bigint::Uint;

/// Number of multiplication operands per side at L = 2.
pub const LEAVES: usize = 9;

/// Human-readable names of the nine leaf operands of side `a`
/// (replace `a` by `b` for the other side).
pub const LEAF_NAMES: [&str; LEAVES] = [
    "a_0", "a_1", "a_10", "a_2", "a_3", "a_32", "a_20", "a_31", "a_3210",
];

/// Fig. 7 names of the nine partial products, in leaf order.
pub const PRODUCT_NAMES: [&str; LEAVES] = [
    "c_ll", "c_lh", "c_lm", "c_hl", "c_hh", "c_hm", "c_ml", "c_mh", "c_mm",
];

/// The decomposition of one `n`-bit operand for the L = 2 pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandDecomposition {
    /// The four base chunks `a_0 … a_3` (each `n/4` bits).
    pub chunks: [Uint; 4],
    /// The nine leaf operands in canonical order (see module docs).
    pub leaves: [Uint; LEAVES],
    /// Nominal chunk width in bits (`n/4`).
    pub chunk_bits: usize,
}

/// Decomposes an operand for an `n`-bit multiplication.
///
/// # Panics
///
/// Panics if `n` is not a positive multiple of 4 or the value does not
/// fit in `n` bits.
///
/// ```
/// use cim_bigint::Uint;
/// use karatsuba_cim::chunks::decompose_operand;
///
/// let a = Uint::from_u64(0xAABB_CCDD);
/// let d = decompose_operand(&a, 32);
/// assert_eq!(d.chunks[3], Uint::from_u64(0xAA));
/// assert_eq!(d.leaves[8], // a_3210 = (a_2+a_0) + (a_3+a_1)
///            Uint::from_u64(0xAA + 0xBB + 0xCC + 0xDD));
/// ```
pub fn decompose_operand(a: &Uint, n: usize) -> OperandDecomposition {
    assert!(n > 0 && n.is_multiple_of(4), "operand width must be a multiple of 4");
    let chunk_bits = n / 4;
    let op = ChunkOperand::from_uint(a, 2, chunk_bits);
    let d = decompose(&op);
    debug_assert_eq!(d.leaves.len(), LEAVES);
    let chunks: [Uint; 4] = [
        op.chunks[0].clone(),
        op.chunks[1].clone(),
        op.chunks[2].clone(),
        op.chunks[3].clone(),
    ];
    let leaves: [Uint; LEAVES] = d.leaves.try_into().expect("nine leaves at depth 2");
    OperandDecomposition {
        chunks,
        leaves,
        chunk_bits,
    }
}

/// Combines the nine partial products (leaf order) into the final
/// `2n`-bit product — the mathematical specification the
/// postcomputation stage implements in-memory.
///
/// # Panics
///
/// Panics if `products` ordering is inconsistent (negative
/// intermediate), which cannot happen for products of a valid
/// decomposition.
pub fn combine_products(products: &[Uint; LEAVES], chunk_bits: usize) -> Uint {
    recombine(products.as_slice(), chunk_bits).product
}

/// The widths (in bits) of the nine leaf operands for an `n`-bit
/// multiplication — the multiplication stage provisions the widest
/// (`n/4 + 2`).
pub fn leaf_widths(n: usize) -> [usize; LEAVES] {
    let q = n / 4;
    [q, q, q + 1, q, q, q + 1, q + 1, q + 1, q + 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_bigint::rng::UintRng;

    #[test]
    fn leaves_have_documented_values() {
        let mut rng = UintRng::seeded(1);
        let a = rng.uniform(64);
        let d = decompose_operand(&a, 64);
        let c = &d.chunks;
        assert_eq!(d.leaves[0], c[0]);
        assert_eq!(d.leaves[1], c[1]);
        assert_eq!(d.leaves[2], c[1].add(&c[0]));
        assert_eq!(d.leaves[3], c[2]);
        assert_eq!(d.leaves[4], c[3]);
        assert_eq!(d.leaves[5], c[3].add(&c[2]));
        assert_eq!(d.leaves[6], c[2].add(&c[0]));
        assert_eq!(d.leaves[7], c[3].add(&c[1]));
        assert_eq!(d.leaves[8], c[2].add(&c[0]).add(&c[3]).add(&c[1]));
    }

    #[test]
    fn leaf_widths_bound_actual_leaves() {
        let mut rng = UintRng::seeded(2);
        for n in [64usize, 128, 256, 384] {
            let a = Uint::pow2(n).sub(&Uint::one()); // worst case all-ones
            let d = decompose_operand(&a, n);
            let widths = leaf_widths(n);
            for (i, leaf) in d.leaves.iter().enumerate() {
                assert!(
                    leaf.bit_len() <= widths[i],
                    "n={n} leaf {i} ({}) has {} bits > {}",
                    LEAF_NAMES[i],
                    leaf.bit_len(),
                    widths[i]
                );
            }
            let _ = rng.uniform(1);
        }
    }

    #[test]
    fn product_combination_is_multiplication() {
        let mut rng = UintRng::seeded(3);
        for n in [16usize, 64, 128, 384] {
            let a = rng.uniform(n);
            let b = rng.uniform(n);
            let da = decompose_operand(&a, n);
            let db = decompose_operand(&b, n);
            let products: [Uint; LEAVES] =
                std::array::from_fn(|i| &da.leaves[i] * &db.leaves[i]);
            assert_eq!(combine_products(&products, n / 4), &a * &b, "n = {n}");
        }
    }

    #[test]
    fn names_align_with_leaf_order() {
        assert_eq!(LEAF_NAMES[2], "a_10");
        assert_eq!(PRODUCT_NAMES[2], "c_lm");
        assert_eq!(LEAF_NAMES[8], "a_3210");
        assert_eq!(PRODUCT_NAMES[8], "c_mm");
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn rejects_bad_width() {
        decompose_operand(&Uint::one(), 30);
    }
}
