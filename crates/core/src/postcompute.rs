//! Stage 3 — postcomputation (paper Sec. IV-E, Fig. 7).
//!
//! Combines the nine partial products into the final `2n`-bit result
//! with **11 passes** of a shared `1.5n`-bit Kogge-Stone adder:
//!
//! | pass | computes | kind |
//! |------|----------------------------------------|------|
//! | 1    | `t_l = c_ll + c_lh` ‖ `t_h = c_hl + c_hh` | batched add |
//! | 2    | `c̃_lm = c_lm − t_l` ‖ `c̃_hm = c_hm − t_h` | batched sub |
//! | 3    | `t_m = c_ml + c_mh` | add |
//! | 4    | `c̃_mm = c_mm − t_m` | sub |
//! | 5    | `c_l = (c_lh‖c_ll) + c̃_lm·2^(n/4)` | add |
//! | 6    | `c_h = (c_hh‖c_hl) + c̃_hm·2^(n/4)` | add |
//! | 7    | `u = c_ml + c_mh·2^(n/2)` | add |
//! | 8    | `c_m = u + c̃_mm·2^(n/4)` | add (2nd for c_m: the `n/2+2`-bit `c_ml` prevents plain appending) |
//! | 9    | `v = c_h + c_l` | add |
//! | 10   | `c̃_m = c_m − v` | sub |
//! | 11   | `c_top = ((c_h‖c_l) ≫ n/2) + c̃_m` | add (LSB-optimized) |
//!
//! The final result is `c = c_top·2^(n/2) ‖ c_l mod 2^(n/2)` — the
//! paper's observation that the low `n/2` bits of `c_l` are already
//! final saves 25 % of the stage area (adder width `1.5n` instead of
//! `2n`).
//!
//! **Batching**: passes 1–2 process the `l` and `h` halves
//! side-by-side in disjoint column segments of the wide adder. In a
//! Kogge-Stone prefix graph a column with `p = 0` kills carry
//! propagation, so an add batch is isolated by the zero gap between
//! segments; a *sub* batch sets the minuend's gap bits to 1 (making
//! `p = ¬x⊕y = 0` there) to block borrow crossover. Tests verify
//! isolation exhaustively.
//!
//! The stage array is `(8 + 12) × 1.5n` cells as in the paper. Our
//! measured latency is `11·(20 + 11·⌈log2 1.5n⌉) + 1` — within ~2 % of
//! the paper's `121·⌈log2 1.5n⌉ + 187 + 18` (the delta is operand
//! staging, which the paper accounts under reorder/handoff; see
//! EXPERIMENTS.md).

use crate::chunks::LEAVES;
use cim_bigint::Uint;
use cim_crossbar::{Crossbar, CrossbarError, CycleStats, EnduranceReport, Executor, MicroOp};
use cim_logic::kogge_stone::{AddOp, AdderLayout, KoggeStoneAdder, SCRATCH_ROWS};
use cim_mir::OptLevel;
use cim_trace::{TrackId, Tracer};

/// Rows of the stage array: 8 data rows + 12 adder scratch rows.
pub const ROWS: usize = 8 + SCRATCH_ROWS;

/// One shared-adder pass as a verified micro-op program: reset the
/// adder's I/O rows, write the packed operands, run the addition.
/// Used by the stage-3 recombination here and by the depth-1 ablation
/// pipeline.
///
/// The program is self-contained (the resets and writes define every
/// cell the adder senses), so it is statically verified (`cim-check`,
/// debug/test builds) with no preload declarations.
///
/// # Panics
///
/// Panics if an operand does not fit in `adder.width() + 1` bits, or
/// (debug/test builds) if the composed program fails verification.
pub fn pass_program(adder: &KoggeStoneAdder, op: AddOp, x: &Uint, y: &Uint) -> Vec<MicroOp> {
    let mut prog = pass_staging(adder, x, y).to_vec();
    prog.extend_from_slice(&crate::progcache::adder_program(adder, op));
    cim_check::debug_assert_verified(
        &prog,
        &cim_check::VerifyConfig::new(adder.required_rows(), adder.required_cols()),
        "postcompute::pass_program",
    );
    prog
}

/// The operand-dependent staging prefix of one pass: reset the I/O
/// rows, write the packed operands.
fn pass_staging(adder: &KoggeStoneAdder, x: &Uint, y: &Uint) -> [MicroOp; 3] {
    let w = adder.width();
    let layout = adder.layout();
    let cols = layout.col_base..layout.col_base + w + 1;
    [
        MicroOp::reset_rows(&[layout.x_row, layout.y_row, layout.sum_row], cols),
        MicroOp::write_row_at(layout.x_row, layout.col_base, &x.to_bits(w + 1)),
        MicroOp::write_row_at(layout.y_row, layout.col_base, &y.to_bits(w + 1)),
    ]
}

/// Executes one pass as the staging prefix plus the *cached* adder
/// body ([`crate::progcache`]) — the op sequence is identical to
/// running [`pass_program`], without cloning the adder body per pass.
pub(crate) fn run_pass(
    exec: &mut Executor<'_>,
    adder: &KoggeStoneAdder,
    op: AddOp,
    opt: OptLevel,
    x: &Uint,
    y: &Uint,
) -> Result<(), CrossbarError> {
    let staging = pass_staging(adder, x, y);
    let body = crate::progcache::adder_program_opt(adder, op, opt);
    if cfg!(debug_assertions) {
        let mut full = staging.to_vec();
        full.extend_from_slice(&body);
        cim_check::debug_assert_verified(
            &full,
            &cim_check::VerifyConfig::new(adder.required_rows(), adder.required_cols()),
            "postcompute::pass_program",
        );
    }
    exec.run(&staging)?;
    exec.run(&body)
}

/// The batch counterpart of [`pass_staging`]: the reset is unchanged
/// (it is lane-oblivious) and the two operand writes carry one lane
/// word per column — same op count, same cycle cost.
fn pass_staging_batch(adder: &KoggeStoneAdder, xs: &[Uint], ys: &[Uint]) -> [MicroOp; 3] {
    let w = adder.width();
    let layout = adder.layout();
    let cols = layout.col_base..layout.col_base + w + 1;
    let transpose = |ops: &[Uint]| -> Vec<u64> {
        let refs: Vec<&[u64]> = ops
            .iter()
            .inspect(|op| {
                assert!(
                    op.bit_len() <= w + 1,
                    "operand of {} bits does not fit in width {}",
                    op.bit_len(),
                    w + 1
                );
            })
            .map(|op| op.limbs())
            .collect();
        cim_crossbar::lanes::transpose_lanes(&refs, w + 1)
    };
    [
        MicroOp::reset_rows(&[layout.x_row, layout.y_row, layout.sum_row], cols),
        MicroOp::write_row_lanes(layout.x_row, layout.col_base, &transpose(xs)),
        MicroOp::write_row_lanes(layout.y_row, layout.col_base, &transpose(ys)),
    ]
}

/// Executes one batched pass: lane-staged operands plus the cached
/// adder body — op-for-op the shape of [`run_pass`], with every lane
/// adding its own operands.
pub(crate) fn run_pass_batch(
    exec: &mut Executor<'_>,
    adder: &KoggeStoneAdder,
    op: AddOp,
    opt: OptLevel,
    xs: &[Uint],
    ys: &[Uint],
) -> Result<(), CrossbarError> {
    let staging = pass_staging_batch(adder, xs, ys);
    let body = crate::progcache::adder_program_opt(adder, op, opt);
    if cfg!(debug_assertions) {
        let mut full = staging.to_vec();
        full.extend_from_slice(&body);
        cim_check::debug_assert_verified(
            &full,
            &cim_check::VerifyConfig::new(adder.required_rows(), adder.required_cols()),
            "postcompute::batch_pass_program",
        );
    }
    exec.run(&staging)?;
    exec.run(&body)
}

/// Output of one postcomputation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostcomputeOutput {
    /// The final `2n`-bit product.
    pub product: Uint,
    /// Exact cycle statistics of the stage.
    pub stats: CycleStats,
    /// Endurance report of the stage array.
    pub endurance: EnduranceReport,
}

/// Output of one bit-sliced batch postcomputation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPostcomputeOutput {
    /// Per-lane final `2n`-bit products.
    pub products: Vec<Uint>,
    /// Cycle statistics — identical to a solo run.
    pub stats: CycleStats,
    /// Per-lane endurance reports of the stage array.
    pub endurance: Vec<EnduranceReport>,
}

/// The postcomputation stage for `n`-bit multiplications.
///
/// ```
/// use karatsuba_cim::postcompute::PostcomputeStage;
/// let stage = PostcomputeStage::new(256).expect("stage");
/// assert_eq!(stage.adder_width(), 384); // 1.5n
/// assert_eq!(stage.area_cells(), 7_680); // 20 × 384
/// ```
#[derive(Debug, Clone)]
pub struct PostcomputeStage {
    n: usize,
    opt: OptLevel,
}

impl PostcomputeStage {
    /// Creates the stage for `n`-bit multiplications at the
    /// paper-exact [`OptLevel::O0`].
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for interface symmetry.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` or `n` is not a multiple of 4.
    pub fn new(n: usize) -> Result<Self, CrossbarError> {
        Self::with_opt_level(n, OptLevel::O0)
    }

    /// Creates the stage with every shared-adder pass lowered through
    /// the cim-mir pipeline at `opt`.
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for interface symmetry.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` or `n` is not a multiple of 4.
    pub fn with_opt_level(n: usize, opt: OptLevel) -> Result<Self, CrossbarError> {
        assert!(
            n >= 8 && n.is_multiple_of(4),
            "operand width must be a multiple of 4, at least 8"
        );
        Ok(PostcomputeStage { n, opt })
    }

    /// The optimization level the stage's adder programs are lowered at.
    pub fn opt_level(&self) -> OptLevel {
        self.opt
    }

    /// Width of the shared adder: `1.5n` bits.
    pub fn adder_width(&self) -> usize {
        3 * self.n / 2
    }

    /// Stage area: `(8+12) × 1.5n` cells (the paper's 25 %-reduced
    /// figure; the simulator uses one extra carry-out column).
    pub fn area_cells(&self) -> u64 {
        (ROWS * self.adder_width()) as u64
    }

    /// Measured (implementation-exact) latency. At `O0`:
    /// `11·(20 + 11·⌈log2 1.5n⌉) + 1` cc; higher levels substitute the
    /// optimized adder body's cycle count.
    pub fn latency(&self) -> u64 {
        let adder = KoggeStoneAdder::new(self.adder_width());
        11 * (3 + adder.latency_at(self.opt)) + 1
    }

    /// The paper's closed-form latency:
    /// `121·⌈log2 1.5n⌉ + 187 + 18` cc.
    pub fn paper_latency(&self) -> u64 {
        let w = self.adder_width();
        let levels = (usize::BITS - (w - 1).leading_zeros()) as u64;
        121 * levels + 187 + 18
    }

    /// Runs the stage: combines the nine partial products (leaf order,
    /// see [`crate::chunks::PRODUCT_NAMES`]) into the final product.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from execution.
    ///
    /// # Panics
    ///
    /// Panics if a product exceeds its maximal width (`n/2 + 4` bits).
    pub fn run(&self, products: &[Uint; LEAVES]) -> Result<PostcomputeOutput, CrossbarError> {
        self.run_traced(products, &Tracer::disabled(), TrackId(0), 0)
    }

    /// Runs the stage for up to 64 product sets at once on a
    /// bit-sliced array: every one of the 11 shared-adder passes stages
    /// its operands lane-wise and runs the *same* cached adder body, so
    /// the cycle count equals [`PostcomputeStage::latency`] regardless
    /// of the lane count. The inter-pass recombination arithmetic runs
    /// per lane in the controller, exactly as it does for one instance.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from execution.
    ///
    /// # Panics
    ///
    /// Panics if `product_sets` is empty, holds more than 64 entries,
    /// or a product exceeds its maximal width (`n/2 + 4` bits).
    pub fn run_batch(
        &self,
        product_sets: &[[Uint; LEAVES]],
    ) -> Result<BatchPostcomputeOutput, CrossbarError> {
        let n = self.n;
        let q = n / 4;
        let w = self.adder_width(); // 6q
        let seg = w / 2; // 3q
        let cap = 2 * q + 2; // max width of c_lm / c_hm
        let lanes = product_sets.len();
        assert!(
            lanes > 0 && lanes <= 64,
            "batch must hold 1..=64 lanes"
        );

        let leaf = |i: usize| -> Vec<Uint> {
            product_sets.iter().map(|p| p[i].clone()).collect()
        };
        let [c_ll, c_lh, c_lm, c_hl, c_hh, c_hm, c_ml, c_mh, c_mm] =
            std::array::from_fn::<_, LEAVES, _>(leaf);

        let mut array = Crossbar::new_sliced(ROWS, w + 1, lanes)?;
        let mut exec = Executor::new(&mut array);
        let adder = KoggeStoneAdder::with_layout(
            w,
            AdderLayout {
                x_row: 0,
                y_row: 1,
                sum_row: 2,
                scratch: std::array::from_fn(|i| 8 + i),
                col_base: 0,
            },
        );

        // One batched adder pass; returns the per-lane sums.
        let pass = |exec: &mut Executor<'_>,
                    op: AddOp,
                    xs: &[Uint],
                    ys: &[Uint]|
         -> Result<Vec<Uint>, CrossbarError> {
            run_pass_batch(exec, &adder, op, self.opt, xs, ys)?;
            let mut sum_cols = Vec::new();
            exec.array().read_row_lane_words(2, 0..w + 1, &mut sum_cols)?;
            Ok(cim_crossbar::lanes::lane_limbs(&sum_cols, lanes)
                .into_iter()
                .map(|limbs| {
                    let full = Uint::from_limbs(limbs);
                    match op {
                        AddOp::Add => full,
                        AddOp::Sub => full.low_bits(w),
                    }
                })
                .collect())
        };
        let map = |xs: &[Uint], f: &dyn Fn(&Uint) -> Uint| -> Vec<Uint> {
            xs.iter().map(f).collect()
        };
        let zip = |xs: &[Uint], ys: &[Uint], f: &dyn Fn(&Uint, &Uint) -> Uint| -> Vec<Uint> {
            xs.iter().zip(ys).map(|(x, y)| f(x, y)).collect()
        };
        let gap_ones = |from: usize, to: usize| Uint::pow2(to).sub(&Uint::pow2(from));

        // Pass 1: t_l ‖ t_h (batched add).
        let s1 = pass(
            &mut exec,
            AddOp::Add,
            &zip(&c_ll, &c_hl, &|l, h| l.add(&h.shl(seg))),
            &zip(&c_lh, &c_hh, &|l, h| l.add(&h.shl(seg))),
        )?;
        let t_l = map(&s1, &|s| s.low_bits(seg));
        let t_h = map(&s1, &|s| s.shr(seg));

        // Pass 2: c̃_lm ‖ c̃_hm (batched sub; minuend gap bits = 1).
        let x2 = zip(&c_lm, &c_hm, &|lm, hm| {
            lm.add(&gap_ones(cap, seg))
                .add(&hm.shl(seg))
                .add(&gap_ones(seg + cap, w))
        });
        let s2 = pass(
            &mut exec,
            AddOp::Sub,
            &x2,
            &zip(&t_l, &t_h, &|l, h| l.add(&h.shl(seg))),
        )?;
        let ct_lm = map(&s2, &|s| s.low_bits(cap));
        let ct_hm = map(&s2, &|s| s.shr(seg).low_bits(cap));

        // Pass 3: t_m = c_ml + c_mh.
        let t_m = pass(&mut exec, AddOp::Add, &c_ml, &c_mh)?;

        // Pass 4: c̃_mm = c_mm − t_m.
        let ct_mm = pass(&mut exec, AddOp::Sub, &c_mm, &t_m)?;

        // Pass 5: c_l = (c_lh ‖ c_ll) + c̃_lm·2^q.
        let c_l = pass(
            &mut exec,
            AddOp::Add,
            &zip(&c_ll, &c_lh, &|l, h| l.add(&h.shl(2 * q))),
            &map(&ct_lm, &|x| x.shl(q)),
        )?;

        // Pass 6: c_h likewise.
        let c_h = pass(
            &mut exec,
            AddOp::Add,
            &zip(&c_hl, &c_hh, &|l, h| l.add(&h.shl(2 * q))),
            &map(&ct_hm, &|x| x.shl(q)),
        )?;

        // Passes 7–8: c_m in two additions.
        let u = pass(&mut exec, AddOp::Add, &c_ml, &map(&c_mh, &|x| x.shl(2 * q)))?;
        let c_m = pass(&mut exec, AddOp::Add, &u, &map(&ct_mm, &|x| x.shl(q)))?;

        // Passes 9–10: c̃_m = c_m − (c_h + c_l).
        let v = pass(&mut exec, AddOp::Add, &c_h, &c_l)?;
        let ct_m = pass(&mut exec, AddOp::Sub, &c_m, &v)?;

        // Pass 11 (LSB optimization).
        let base_top = zip(&c_l, &c_h, &|l, h| l.add(&h.shl(n)).shr(n / 2));
        let c_top = pass(&mut exec, AddOp::Add, &base_top, &ct_m)?;
        let products = zip(&c_top, &c_l, &|t, l| t.shl(n / 2).add(&l.low_bits(n / 2)));

        // Reset the stage array for the next batch — 1 cc.
        exec.step(&MicroOp::reset_region(0..ROWS, 0..w + 1))?;
        let stats = *exec.stats();
        let endurance = EnduranceReport::per_lane(&array);
        Ok(BatchPostcomputeOutput {
            products,
            stats,
            endurance,
        })
    }

    /// [`PostcomputeStage::run`] with tracing: the stage is wrapped in
    /// a `postcompute` span on `track` starting at `start_cycle`, with
    /// each of the 11 shared-adder passes as a named child span; the
    /// executor's per-op events nest under them. The micro-op sequence
    /// is identical to the untraced path.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from execution.
    ///
    /// # Panics
    ///
    /// Panics if a product exceeds its maximal width (`n/2 + 4` bits).
    pub fn run_traced(
        &self,
        products: &[Uint; LEAVES],
        tracer: &Tracer,
        track: TrackId,
        start_cycle: u64,
    ) -> Result<PostcomputeOutput, CrossbarError> {
        let n = self.n;
        let q = n / 4;
        let w = self.adder_width(); // 6q
        let seg = w / 2; // 3q
        let cap = 2 * q + 2; // max width of c_lm / c_hm

        let [c_ll, c_lh, c_lm, c_hl, c_hh, c_hm, c_ml, c_mh, c_mm] = products.clone();

        let mut array = Crossbar::new(ROWS, w + 1)?;
        let mut exec = Executor::new(&mut array);
        exec.attach_tracer_at(tracer, track, start_cycle);
        let stage = tracer.span_at(track, "postcompute", start_cycle);
        let adder = KoggeStoneAdder::with_layout(
            w,
            AdderLayout {
                x_row: 0,
                y_row: 1,
                sum_row: 2,
                scratch: std::array::from_fn(|i| 8 + i),
                col_base: 0,
            },
        );

        // One adder pass: reset I/O rows, write packed operands, run
        // the cached adder body — op-identical to `pass_program`,
        // wrapped in a named span.
        let pass = |exec: &mut Executor<'_>,
                        name: &'static str,
                        op: AddOp,
                        x: &Uint,
                        y: &Uint|
         -> Result<Uint, CrossbarError> {
            let span = tracer.span_at(track, name, start_cycle + exec.stats().cycles);
            run_pass(exec, &adder, op, self.opt, x, y)?;
            span.end(start_cycle + exec.stats().cycles);
            let bits = exec.array().read_row_bits(2, 0..w + 1)?;
            let full = Uint::from_bits(&bits);
            Ok(match op {
                AddOp::Add => full,
                AddOp::Sub => full.low_bits(w),
            })
        };

        // Ones in [from, to) — gap filler blocking borrow propagation
        // between the segments of a batched subtraction.
        let gap_ones = |from: usize, to: usize| Uint::pow2(to).sub(&Uint::pow2(from));

        // Pass 1: t_l ‖ t_h (batched add).
        let s1 = pass(&mut exec, "pass 1: t_l || t_h", AddOp::Add, &c_ll.add(&c_hl.shl(seg)), &c_lh.add(&c_hh.shl(seg)))?;
        let t_l = s1.low_bits(seg);
        let t_h = s1.shr(seg);

        // Pass 2: c̃_lm ‖ c̃_hm (batched sub; minuend gap bits = 1).
        let x2 = c_lm
            .add(&gap_ones(cap, seg))
            .add(&c_hm.shl(seg))
            .add(&gap_ones(seg + cap, w));
        let s2 = pass(&mut exec, "pass 2: c~_lm || c~_hm", AddOp::Sub, &x2, &t_l.add(&t_h.shl(seg)))?;
        let ct_lm = s2.low_bits(cap);
        let ct_hm = s2.shr(seg).low_bits(cap);

        // Pass 3: t_m = c_ml + c_mh.
        let t_m = pass(&mut exec, "pass 3: t_m", AddOp::Add, &c_ml, &c_mh)?;

        // Pass 4: c̃_mm = c_mm − t_m.
        let ct_mm = pass(&mut exec, "pass 4: c~_mm", AddOp::Sub, &c_mm, &t_m)?;

        // Pass 5: c_l = (c_lh ‖ c_ll) + c̃_lm·2^q.
        let c_l = pass(&mut exec, "pass 5: c_l", AddOp::Add, &c_ll.add(&c_lh.shl(2 * q)), &ct_lm.shl(q))?;

        // Pass 6: c_h likewise.
        let c_h = pass(&mut exec, "pass 6: c_h", AddOp::Add, &c_hl.add(&c_hh.shl(2 * q)), &ct_hm.shl(q))?;

        // Passes 7–8: c_m needs two additions (c_ml is n/2+2 bits wide,
        // so appending c_mh is not possible).
        let u = pass(&mut exec, "pass 7: u", AddOp::Add, &c_ml, &c_mh.shl(2 * q))?;
        let c_m = pass(&mut exec, "pass 8: c_m", AddOp::Add, &u, &ct_mm.shl(q))?;

        // Passes 9–10: c̃_m = c_m − (c_h + c_l).
        let v = pass(&mut exec, "pass 9: v", AddOp::Add, &c_h, &c_l)?;
        let ct_m = pass(&mut exec, "pass 10: c~_m", AddOp::Sub, &c_m, &v)?;

        // Pass 11 (LSB optimization): only the top 1.5n bits need the
        // final addition; the low n/2 bits of c_l pass through.
        let base_top = c_l.add(&c_h.shl(n)).shr(n / 2);
        let c_top = pass(&mut exec, "pass 11: c_top", AddOp::Add, &base_top, &ct_m)?;
        let product = c_top.shl(n / 2).add(&c_l.low_bits(n / 2));

        // Reset the stage array for the next multiplication — 1 cc.
        exec.step(&MicroOp::reset_region(0..ROWS, 0..w + 1))?;
        stage.end(start_cycle + exec.stats().cycles);

        let stats = *exec.stats();
        let endurance = EnduranceReport::from_array(&array);
        Ok(PostcomputeOutput {
            product,
            stats,
            endurance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunks::decompose_operand;
    use cim_bigint::rng::UintRng;

    fn products_of(a: &Uint, b: &Uint, n: usize) -> [Uint; LEAVES] {
        let da = decompose_operand(a, n);
        let db = decompose_operand(b, n);
        std::array::from_fn(|i| &da.leaves[i] * &db.leaves[i])
    }

    #[test]
    fn recombines_random_products() {
        let mut rng = UintRng::seeded(17);
        for n in [8usize, 16, 64, 128] {
            let stage = PostcomputeStage::new(n).unwrap();
            let a = rng.uniform(n);
            let b = rng.uniform(n);
            let out = stage.run(&products_of(&a, &b, n)).unwrap();
            assert_eq!(out.product, &a * &b, "n = {n}");
        }
    }

    #[test]
    fn all_ones_stresses_batching_gaps() {
        // Maximal products maximize both batched segments and the
        // borrow chains the gap bits must block.
        for n in [8usize, 16, 32, 64] {
            let stage = PostcomputeStage::new(n).unwrap();
            let a = Uint::pow2(n).sub(&Uint::one());
            let out = stage.run(&products_of(&a, &a, n)).unwrap();
            assert_eq!(out.product, &a * &a, "n = {n}");
        }
    }

    #[test]
    fn batch_recombination_matches_solo_runs_at_solo_cycle_cost() {
        let mut rng = UintRng::seeded(47);
        let n = 32;
        let lanes = 11;
        let stage = PostcomputeStage::new(n).unwrap();
        let sets: Vec<[Uint; LEAVES]> = (0..lanes)
            .map(|_| products_of(&rng.uniform(n), &rng.uniform(n), n))
            .collect();
        let batch = stage.run_batch(&sets).unwrap();
        assert_eq!(batch.stats.cycles, stage.latency());
        for (lane, set) in sets.iter().enumerate() {
            let solo = stage.run(set).unwrap();
            assert_eq!(batch.products[lane], solo.product, "lane {lane}");
            assert_eq!(batch.stats, solo.stats, "lane {lane}");
            assert_eq!(batch.endurance[lane], solo.endurance, "lane {lane}");
        }
    }

    #[test]
    fn exhaustive_8_bit() {
        // Every 8-bit × 8-bit product — exhaustively checks the
        // batched-segment isolation at the smallest supported width.
        let stage = PostcomputeStage::new(8).unwrap();
        for a in (0u64..256).step_by(17) {
            for b in (0u64..256).step_by(13) {
                let (a, b) = (Uint::from_u64(a), Uint::from_u64(b));
                let out = stage.run(&products_of(&a, &b, 8)).unwrap();
                assert_eq!(out.product, &a * &b);
            }
        }
    }

    #[test]
    fn measured_latency_is_deterministic_and_close_to_paper() {
        for n in [64usize, 128, 256, 384] {
            let stage = PostcomputeStage::new(n).unwrap();
            let a = Uint::pow2(n).sub(&Uint::one());
            let out = stage.run(&products_of(&a, &a, n)).unwrap();
            assert_eq!(out.stats.cycles, stage.latency(), "n = {n}");
            let paper = stage.paper_latency() as f64;
            let ours = stage.latency() as f64;
            assert!(
                (ours - paper).abs() / paper < 0.05,
                "n = {n}: measured {ours} vs paper {paper}"
            );
        }
    }

    #[test]
    fn area_matches_paper() {
        // (8+12) × 1.5n: n = 384 → 20 × 576 = 11,520.
        assert_eq!(PostcomputeStage::new(384).unwrap().area_cells(), 11_520);
        assert_eq!(PostcomputeStage::new(64).unwrap().area_cells(), 1_920);
    }

    #[test]
    fn zero_products() {
        let stage = PostcomputeStage::new(16).unwrap();
        let products: [Uint; LEAVES] = Default::default();
        let out = stage.run(&products).unwrap();
        assert!(out.product.is_zero());
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn rejects_tiny_widths() {
        let _ = PostcomputeStage::new(4);
    }
}
