//! Closed-form cost model of the paper's design (Secs. IV-C…IV-E and
//! Table I), generalized to arbitrary unroll depth `L` for Fig. 4.
//!
//! All formulas are taken verbatim from the paper for `L = 2`:
//!
//! * precompute latency: `8 + 10·(17 + 11·⌈log2(n/4+1)⌉) + 1`
//! * multiply latency:   `(n/4+2)·(⌈log2(n/4+2)⌉ + 14) + 3`
//! * postcompute latency: `121·⌈log2(1.5n)⌉ + 187 + 18`
//! * areas: `30·(n/4+2)`, `9·12·(n/4+2)`, `20·1.5n`
//!
//! Throughput is set by the slowest stage **plus the 27-cycle
//! operand/product handoff** (18 operand writes into the multiplication
//! stage + 9 partial-product reads out of it). With that constant the
//! model reproduces every "Our" row of Table I exactly — see
//! EXPERIMENTS.md for the paper-vs-model table.
//!
//! The per-cell write model (wear-leveled) is
//! `max(11·⌈log2 1.5n⌉ + 4, 2·(n/4+2) + 2)` — postcomputation adder
//! wear vs. multiplication-row wear — which also matches Table I
//! exactly.

use cim_logic::kogge_stone;

fn ceil_log2(n: usize) -> u64 {
    assert!(n > 0);
    (usize::BITS - (n - 1).leading_zeros()) as u64
}

/// Pipeline handoff cycles per multiplication: 18 precomputed operands
/// written into the multiplication stage plus 9 partial products read
/// out of it.
pub const HANDOFF_CYCLES: u64 = 27;

/// Per-stage and aggregate metrics for an `n`-bit multiplication at
/// unroll depth 2 (the paper's design point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Operand width in bits.
    pub n: usize,
    /// Stage 1 latency (cc).
    pub precompute_latency: u64,
    /// Stage 2 latency (cc).
    pub multiply_latency: u64,
    /// Stage 3 latency (cc).
    pub postcompute_latency: u64,
    /// Stage 1 area (cells).
    pub precompute_area: u64,
    /// Stage 2 area (cells).
    pub multiply_area: u64,
    /// Stage 3 area (cells).
    pub postcompute_area: u64,
    /// Wear-leveled maximum writes to any cell per multiplication.
    pub max_writes: u64,
}

impl DesignPoint {
    /// Evaluates the paper's formulas for an `n`-bit multiplier
    /// (`L = 2`; `n` must be divisible by 4).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 4.
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n.is_multiple_of(4), "operand width must be a multiple of 4");
        let q = n / 4;
        let w = q + 2; // multiplication-stage operand width
        DesignPoint {
            n,
            precompute_latency: 8 + 10 * (17 + 11 * ceil_log2(q + 1)) + 1,
            multiply_latency: w as u64 * (ceil_log2(w) + 14) + 3,
            postcompute_latency: 121 * ceil_log2(3 * n / 2) + 187 + 18,
            precompute_area: (8 + 10 + 12) * (w as u64),
            multiply_area: 9 * 12 * (w as u64),
            postcompute_area: (8 + 12) * (3 * n as u64 / 2),
            max_writes: (11 * ceil_log2(3 * n / 2) + 4).max(2 * w as u64 + 2),
        }
    }

    /// Total area in memristor cells (Table I "Area" column).
    pub fn area_cells(&self) -> u64 {
        self.precompute_area + self.multiply_area + self.postcompute_area
    }

    /// Latency of one multiplication: sum of stage latencies plus the
    /// three handoffs (operands in, products across, result written
    /// back to main memory).
    pub fn latency(&self) -> u64 {
        self.precompute_latency
            + self.multiply_latency
            + self.postcompute_latency
            + 3 * HANDOFF_CYCLES
    }

    /// Pipeline initiation interval: the slowest stage plus handoff.
    pub fn initiation_interval(&self) -> u64 {
        self.precompute_latency
            .max(self.multiply_latency)
            .max(self.postcompute_latency)
            + HANDOFF_CYCLES
    }

    /// Pipelined throughput in multiplications per 10^6 clock cycles
    /// (Table I "Throughput" column).
    pub fn throughput_per_mcc(&self) -> f64 {
        1.0e6 / self.initiation_interval() as f64
    }

    /// Area-time product: cells / throughput (Table I "ATP" column).
    pub fn atp(&self) -> f64 {
        self.area_cells() as f64 / self.throughput_per_mcc()
    }

    /// The widest crossbar row any stage needs (the paper's argument
    /// against single-row designs: ours stays 4× shorter than
    /// MultPIM's at n = 384).
    pub fn max_row_length(&self) -> u64 {
        let w = (self.n / 4 + 2) as u64;
        (12 * w).max(3 * self.n as u64 / 2)
    }
}

/// Generalized cost model for arbitrary unroll depth `L ≥ 1` — the
/// model behind Fig. 4 (ATP vs. depth). At `L = 2` it coincides with
/// [`DesignPoint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthCostModel {
    /// Operand width in bits.
    pub n: usize,
    /// Unroll depth.
    pub depth: u32,
}

impl DepthCostModel {
    /// Creates a model for an `n`-bit multiplier unrolled `depth`
    /// times.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` or `n < 2^depth`.
    pub fn new(n: usize, depth: u32) -> Self {
        assert!(depth > 0, "depth must be at least 1");
        assert!(n >= 1 << depth, "operand too small for depth {depth}");
        DepthCostModel { n, depth }
    }

    /// Base chunk width `n / 2^L` (rounded up).
    pub fn chunk_bits(&self) -> usize {
        self.n.div_ceil(1 << self.depth)
    }

    /// Precomputation adder width: widest precompute operand,
    /// `chunk + L − 1` bits.
    pub fn pre_adder_width(&self) -> usize {
        self.chunk_bits() + self.depth as usize - 1
    }

    /// Multiplication operand width: `chunk + L` bits.
    pub fn mult_width(&self) -> usize {
        self.chunk_bits() + self.depth as usize
    }

    /// Number of precomputation additions (both operands):
    /// 2, 10, 38, 140 for L = 1..4 (paper Sec. III-C2).
    pub fn precompute_additions(&self) -> u64 {
        cim_bigint::opcount::karatsuba_unrolled_counts(self.depth).precompute_additions
    }

    /// Number of partial multiplications: `3^L`.
    pub fn multiplications(&self) -> u64 {
        3u64.pow(self.depth)
    }

    /// Number of postcomputation adder passes after batching:
    /// `Σ_ℓ ⌈3^(L−ℓ)/2⌉·4 − 1` (3 for L = 1, 11 for L = 2 — both as
    /// in the paper; see DESIGN.md §1 for the derivation).
    pub fn postcompute_passes(&self) -> u64 {
        let mut passes = 0u64;
        for level in 1..=self.depth {
            let nodes = 3u64.pow(self.depth - level);
            passes += nodes.div_ceil(2) * 4;
        }
        passes - 1
    }

    /// Stage 1 latency: input writes + sequential additions + reset.
    pub fn precompute_latency(&self) -> u64 {
        let inputs = 2u64 << self.depth; // 2^(L+1) chunks
        inputs
            + self.precompute_additions() * (17 + 11 * ceil_log2(self.pre_adder_width()))
            + 1
    }

    /// Stage 2 latency: `3^L` parallel row multiplications.
    pub fn multiply_latency(&self) -> u64 {
        let w = self.mult_width();
        w as u64 * (ceil_log2(w) + 14) + 3
    }

    /// Stage 3 latency: batched passes on the `1.5n`-bit adder plus
    /// reorder/reset.
    pub fn postcompute_latency(&self) -> u64 {
        self.postcompute_passes() * (17 + 11 * ceil_log2(3 * self.n / 2)) + 18
    }

    /// Stage areas in cells, `(pre, mult, post)`.
    pub fn areas(&self) -> (u64, u64, u64) {
        let inputs = 2u64 << self.depth;
        let results = self.precompute_additions();
        let pre_cols = (self.pre_adder_width() + 1) as u64;
        let pre = (inputs + results + kogge_stone::SCRATCH_ROWS as u64) * pre_cols;
        let mult = self.multiplications() * 12 * self.mult_width() as u64;
        let post = 20 * (3 * self.n as u64 / 2);
        (pre, mult, post)
    }

    /// Total area in cells.
    pub fn area_cells(&self) -> u64 {
        let (a, b, c) = self.areas();
        a + b + c
    }

    /// Initiation interval: slowest stage + handoff (the handoff
    /// scales with the number of operands/products moved).
    pub fn initiation_interval(&self) -> u64 {
        let handoff = 2 * self.multiplications() + self.multiplications();
        self.precompute_latency()
            .max(self.multiply_latency())
            .max(self.postcompute_latency())
            + handoff
    }

    /// Throughput in multiplications per 10^6 cycles.
    pub fn throughput_per_mcc(&self) -> f64 {
        1.0e6 / self.initiation_interval() as f64
    }

    /// Area-time product (cells / throughput) — the Fig. 4 y-axis.
    pub fn atp(&self) -> f64 {
        self.area_cells() as f64 / self.throughput_per_mcc()
    }
}

/// Ablation of the **recursive** (non-unrolled) Karatsuba
/// precomputation the paper rejects in Sec. III-C1, quantified for
/// depth 2. Recursive precomputation needs additions at two widths
/// (`n/2` on level 1, `n/4+1` on level 2), leaving two bad options:
///
/// * **(i) one adder array per width** — extra area;
/// * **(ii) one oversized adder** — the narrow additions underutilize
///   it and every addition pays the wide adder's latency.
///
/// The unrolled design needs a single `n/4+1`-bit adder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecursivePrecomputeAblation {
    /// Operand width.
    pub n: usize,
    /// Area of strategy (i): two adder units (15 rows × width+1 each).
    pub multi_array_area: u64,
    /// Latency of strategy (i): 2 wide + 6 narrow additions
    /// (the level-1→level-2 dependency serializes them).
    pub multi_array_latency: u64,
    /// Area of strategy (ii): one n/2-bit adder unit.
    pub single_array_area: u64,
    /// Latency of strategy (ii): all 8 additions at full width.
    pub single_array_latency: u64,
    /// Area of the unrolled design's single n/4+1-bit adder unit.
    pub unrolled_area: u64,
    /// Latency of the unrolled design's 10 uniform additions.
    pub unrolled_latency: u64,
}

impl RecursivePrecomputeAblation {
    /// Evaluates the ablation for an `n`-bit multiplier (depth 2).
    ///
    /// Adder units are counted as 15 rows (2 operands + sum +
    /// 12 scratch) × (width + 1) columns; addition latency is the
    /// Kogge-Stone `17 + 11·⌈log2 w⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 4.
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n.is_multiple_of(4), "operand width must be a multiple of 4");
        let unit_area = |w: usize| 15 * (w as u64 + 1);
        let add_lat = |w: usize| 17 + 11 * ceil_log2(w);
        let wide = n / 2;
        let narrow = n / 4 + 1;
        RecursivePrecomputeAblation {
            n,
            multi_array_area: unit_area(wide) + unit_area(narrow),
            multi_array_latency: 2 * add_lat(wide) + 6 * add_lat(narrow),
            single_array_area: unit_area(wide),
            single_array_latency: 8 * add_lat(wide),
            unrolled_area: unit_area(narrow),
            unrolled_latency: 10 * add_lat(narrow),
        }
    }

    /// Area overhead of strategy (i) relative to the unrolled adder.
    pub fn multi_array_area_overhead(&self) -> f64 {
        self.multi_array_area as f64 / self.unrolled_area as f64
    }

    /// Utilization of the oversized adder in strategy (ii) for the
    /// narrow (level-2) additions.
    pub fn single_array_utilization(&self) -> f64 {
        (self.n as f64 / 4.0 + 1.0) / (self.n as f64 / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The model must reproduce every "Our" row of Table I exactly.
    #[test]
    fn table1_area_exact() {
        assert_eq!(DesignPoint::new(64).area_cells(), 4_404);
        assert_eq!(DesignPoint::new(128).area_cells(), 8_532);
        assert_eq!(DesignPoint::new(256).area_cells(), 16_788);
        assert_eq!(DesignPoint::new(384).area_cells(), 25_044);
    }

    #[test]
    fn table1_throughput_exact() {
        // Paper: 927, 833, 706, 479 mult/Mcc.
        let tput = |n: usize| DesignPoint::new(n).throughput_per_mcc().round() as u64;
        assert_eq!(tput(64), 927);
        assert_eq!(tput(128), 833);
        assert_eq!(tput(256), 706);
        assert_eq!(tput(384), 479);
    }

    #[test]
    fn table1_max_writes_exact() {
        assert_eq!(DesignPoint::new(64).max_writes, 81);
        assert_eq!(DesignPoint::new(128).max_writes, 92);
        assert_eq!(DesignPoint::new(256).max_writes, 134);
        assert_eq!(DesignPoint::new(384).max_writes, 198);
    }

    #[test]
    fn table1_atp_matches() {
        // Paper: 4.8, 10, 24, 52.
        assert!((DesignPoint::new(64).atp() - 4.8).abs() < 0.1);
        assert!((DesignPoint::new(128).atp() - 10.0).abs() < 0.3);
        assert!((DesignPoint::new(256).atp() - 24.0).abs() < 0.5);
        assert!((DesignPoint::new(384).atp() - 52.0).abs() < 0.5);
    }

    #[test]
    fn stage_latencies_follow_paper_formulas() {
        let p = DesignPoint::new(256);
        // pre: 8 + 10·(17 + 11·⌈log2 65⌉) + 1 = 8 + 10·94 + 1 = 949
        assert_eq!(p.precompute_latency, 949);
        // mult: 66·(7+14)+3 = 1389
        assert_eq!(p.multiply_latency, 1389);
        // post: 121·9 + 187 + 18 = 1294
        assert_eq!(p.postcompute_latency, 1294);
    }

    #[test]
    fn precompute_array_example_from_paper() {
        // Paper Sec. IV-C: n = 256 → precompute array = 1,980 memristors.
        assert_eq!(DesignPoint::new(256).precompute_area, 1_980);
    }

    #[test]
    fn depth_2_model_coincides_with_design_point() {
        for n in [64usize, 128, 256, 384] {
            let d = DesignPoint::new(n);
            let g = DepthCostModel::new(n, 2);
            assert_eq!(g.multiply_latency(), d.multiply_latency, "n={n}");
            assert_eq!(g.postcompute_latency(), d.postcompute_latency, "n={n}");
            assert_eq!(g.precompute_latency(), d.precompute_latency, "n={n}");
            assert_eq!(g.initiation_interval(), d.initiation_interval(), "n={n}");
            // Areas: mult and post identical; pre identical at L=2.
            assert_eq!(g.area_cells(), d.area_cells(), "n={n}");
        }
    }

    /// Fig. 4: L = 2 minimizes ATP across cryptographically relevant
    /// sizes. In our generalized model L = 1 and L = 2 are within ~1 %
    /// of each other up to n = 128 (crossover), and L = 2 wins strictly
    /// for n ≥ 192 — the paper's qualitative conclusion; see
    /// EXPERIMENTS.md.
    #[test]
    fn fig4_l2_is_optimal() {
        for n in [192usize, 256, 320, 384, 512] {
            let atps: Vec<f64> = (1..=4)
                .map(|l| DepthCostModel::new(n, l).atp())
                .collect();
            let best = atps
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .expect("non-empty")
                .0
                + 1;
            assert_eq!(best, 2, "n = {n}: ATPs = {atps:?}");
        }
        // Near the crossover L = 1 and L = 2 are within a few percent.
        for n in [64usize, 128] {
            let l1 = DepthCostModel::new(n, 1).atp();
            let l2 = DepthCostModel::new(n, 2).atp();
            assert!((l2 - l1).abs() / l1 < 1.0, "n = {n}: {l1} vs {l2}");
        }
        // Depth 3 and 4 are never competitive at any evaluated size.
        for n in [64usize, 384] {
            assert!(DepthCostModel::new(n, 3).atp() > DepthCostModel::new(n, 2).atp());
            assert!(DepthCostModel::new(n, 4).atp() > DepthCostModel::new(n, 3).atp());
        }
    }

    #[test]
    fn postcompute_pass_counts() {
        assert_eq!(DepthCostModel::new(64, 1).postcompute_passes(), 3);
        assert_eq!(DepthCostModel::new(64, 2).postcompute_passes(), 11);
        assert_eq!(DepthCostModel::new(64, 3).postcompute_passes(), 31);
    }

    #[test]
    fn row_length_advantage_over_multpim() {
        // Paper Sec. V: our design reduces the memory row length by 4×
        // vs MultPIM's 5,369-cell row at n = 384.
        let ours = DesignPoint::new(384).max_row_length();
        assert!(ours * 4 <= 5369 + ours, "row length {ours} too long");
        assert_eq!(ours, 1176); // 12·(n/4+2) = 1176 dominates 1.5n = 576
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn rejects_unaligned_width() {
        DesignPoint::new(100 + 1);
    }

    /// Sec. III-C1 quantified: both recursive strategies lose to the
    /// unrolled organization.
    #[test]
    fn recursive_precompute_is_strictly_worse() {
        for n in [64usize, 128, 256, 384] {
            let ab = RecursivePrecomputeAblation::new(n);
            // (i) multiple arrays: ~3x the adder area.
            assert!(
                ab.multi_array_area_overhead() > 2.5,
                "n={n}: overhead {}",
                ab.multi_array_area_overhead()
            );
            // (ii) oversized array: ~50% utilization on narrow adds
            // and no latency win over unrolled despite 2x area.
            assert!(ab.single_array_utilization() < 0.6, "n={n}");
            assert!(
                ab.single_array_area as f64 > 1.7 * ab.unrolled_area as f64,
                "n={n}"
            );
            // Latency: recursive does fewer (8 vs 10) additions, so it
            // can be slightly faster in pure adds — but never by
            // enough to pay for 2-3x area: the area-latency product
            // favors unrolled in both strategies.
            let unrolled_alp = ab.unrolled_area as f64 * ab.unrolled_latency as f64;
            let multi_alp = ab.multi_array_area as f64 * ab.multi_array_latency as f64;
            let single_alp = ab.single_array_area as f64 * ab.single_array_latency as f64;
            assert!(multi_alp > unrolled_alp, "n={n}: multi {multi_alp} vs {unrolled_alp}");
            assert!(single_alp > unrolled_alp, "n={n}: single {single_alp} vs {unrolled_alp}");
        }
    }
}
