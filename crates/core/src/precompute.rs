//! Stage 1 — precomputation (paper Sec. IV-C).
//!
//! Performs the 10 chunk additions of the L = 2 unrolled Karatsuba
//! tree on a single shared `n/4+1`-bit Kogge-Stone adder. The stage
//! array is `(8 + 10 + 12) × (n/4 + 2)`:
//!
//! * rows 0–7: the eight input chunks `a_0…a_3`, `b_0…b_3`;
//! * rows 8–17: the ten addition results;
//! * rows 18–29: the adder's 12-row scratch region.
//!
//! Latency (exact, verified by tests):
//!
//! ```text
//! 8 + 10·(17 + 11·⌈log2(n/4+1)⌉) + 1   clock cycles
//! ```
//!
//! (8 input-row writes, 10 sequential additions, 1 reset wave.)

use crate::chunks::{decompose_operand, LEAVES};
use crate::progcache::SuffixProgram;
use cim_bigint::Uint;
use cim_crossbar::{Crossbar, CrossbarError, CycleStats, EnduranceReport, Executor, MicroOp, Region};
use cim_logic::kogge_stone::{AddOp, AdderLayout, KoggeStoneAdder, SCRATCH_ROWS};
use cim_mir::{MirProgram, OptLevel, TileLimits};
use cim_trace::{TrackId, Tracer};

/// Output of one precomputation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecomputeOutput {
    /// The nine `a`-side multiplication operands (leaf order).
    pub a_leaves: [Uint; LEAVES],
    /// The nine `b`-side multiplication operands (leaf order).
    pub b_leaves: [Uint; LEAVES],
    /// Exact cycle statistics of the stage.
    pub stats: CycleStats,
    /// Endurance report of the stage array after the run.
    pub endurance: EnduranceReport,
}

/// Output of one bit-sliced batch precomputation run: one leaf set
/// per lane, one shared cycle count (the batch runs the *same*
/// micro-op program a single instance runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPrecomputeOutput {
    /// Per-lane `a`-side leaf operands.
    pub a_leaves: Vec<[Uint; LEAVES]>,
    /// Per-lane `b`-side leaf operands.
    pub b_leaves: Vec<[Uint; LEAVES]>,
    /// Cycle statistics — identical to a solo run.
    pub stats: CycleStats,
    /// Per-lane endurance reports of the stage array.
    pub endurance: Vec<EnduranceReport>,
}

/// The precomputation stage for `n`-bit multiplications.
///
/// ```
/// use cim_bigint::Uint;
/// use karatsuba_cim::precompute::PrecomputeStage;
///
/// # fn main() -> Result<(), cim_crossbar::CrossbarError> {
/// let stage = PrecomputeStage::new(64)?;
/// let out = stage.run(&Uint::from_u64(123), &Uint::from_u64(456))?;
/// assert_eq!(out.stats.cycles, stage.latency());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PrecomputeStage {
    n: usize,
    opt: OptLevel,
}

// Row map.
const INPUT_BASE: usize = 0; // a0 a1 a2 a3 b0 b1 b2 b3
const RESULT_BASE: usize = 8; // a10 a32 a20 a31 a3210 b10 b32 b20 b31 b3210
const SCRATCH_BASE: usize = 18;
/// Total rows: 8 inputs + 10 results + 12 scratch.
pub const ROWS: usize = 8 + 10 + SCRATCH_ROWS;

/// The ten additions: (x row, y row, result row), in execution order.
/// Rows 10–11 (a20/a31) must precede row 12 (a3210); same for b.
const ADDITIONS: [(usize, usize, usize); 10] = [
    (1, 0, 8),   // a10 = a1 + a0
    (3, 2, 9),   // a32 = a3 + a2
    (2, 0, 10),  // a20 = a2 + a0
    (3, 1, 11),  // a31 = a3 + a1
    (10, 11, 12), // a3210 = a20 + a31
    (5, 4, 13),  // b10
    (7, 6, 14),  // b32
    (6, 4, 15),  // b20
    (7, 5, 16),  // b31
    (15, 16, 17), // b3210
];

/// Leaf order → stage row holding that operand (a side; b side = +? see
/// [`PrecomputeStage::leaf_rows`]).
const A_LEAF_ROWS: [usize; LEAVES] = [0, 1, 8, 2, 3, 9, 10, 11, 12];
const B_LEAF_ROWS: [usize; LEAVES] = [4, 5, 13, 6, 7, 14, 15, 16, 17];

/// Span names of [`ADDITIONS`], in execution order.
const ADDITION_NAMES: [&str; 10] = [
    "add a10", "add a32", "add a20", "add a31", "add a3210", "add b10", "add b32", "add b20",
    "add b31", "add b3210",
];

impl PrecomputeStage {
    /// Creates the stage for `n`-bit multiplications.
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for interface stability with
    /// the other stages.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 4.
    pub fn new(n: usize) -> Result<Self, CrossbarError> {
        Self::with_opt_level(n, OptLevel::O0)
    }

    /// Creates the stage with its addition suffix lowered at `opt`
    /// through the `cim-mir` pass pipeline: above `O0`, dead writes
    /// are eliminated *across* addition boundaries (the inter-addition
    /// scratch resets fall to the next addition's init wave) and, at
    /// `O2`+, each addition is re-packed into co-issue bundles. The
    /// optimized suffix is verifier-gated and cached per
    /// `(width, count, opt)`.
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for interface stability.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 4.
    pub fn with_opt_level(n: usize, opt: OptLevel) -> Result<Self, CrossbarError> {
        assert!(n > 0 && n.is_multiple_of(4), "operand width must be a multiple of 4");
        Ok(PrecomputeStage { n, opt })
    }

    /// The optimization level this stage lowers its programs at.
    pub fn opt_level(&self) -> OptLevel {
        self.opt
    }

    /// Adder operand width: `n/4 + 1` bits.
    pub fn adder_width(&self) -> usize {
        self.n / 4 + 1
    }

    /// Columns of the stage array: `n/4 + 2`.
    pub fn cols(&self) -> usize {
        self.n / 4 + 2
    }

    /// Stage area in cells: `30 × (n/4 + 2)` (paper: 1,980 for n=256).
    pub fn area_cells(&self) -> u64 {
        (ROWS * self.cols()) as u64
    }

    /// Analytic latency. At `O0` this is the paper's
    /// `8 + 10·(17 + 11·⌈log2(n/4+1)⌉) + 1`; at higher levels the
    /// optimized suffix's exact cycle count replaces the `10·adder`
    /// term.
    pub fn latency(&self) -> u64 {
        if self.opt == OptLevel::O0 {
            let adder = KoggeStoneAdder::new(self.adder_width());
            8 + 10 * adder.latency() + 1
        } else {
            8 + cim_mir::program_cycles(&self.addition_suffix(ADDITIONS.len()).ops) + 1
        }
    }

    /// Rows of the stage array holding the 18 leaf operands after a
    /// run, `(a_rows, b_rows)` in leaf order — the multiplication
    /// stage's handoff reads these.
    pub fn leaf_rows(&self) -> ([usize; LEAVES], [usize; LEAVES]) {
        (A_LEAF_ROWS, B_LEAF_ROWS)
    }

    /// Latency of the squaring variant (`a = b`): only the five
    /// `a`-side additions run — `8 + 5·(17 + 11·⌈log2(n/4+1)⌉) + 1`
    /// at `O0`, the optimized five-addition suffix's count otherwise.
    pub fn square_latency(&self) -> u64 {
        if self.opt == OptLevel::O0 {
            let adder = KoggeStoneAdder::new(self.adder_width());
            8 + 5 * adder.latency() + 1
        } else {
            8 + cim_mir::program_cycles(&self.addition_suffix(5).ops) + 1
        }
    }

    /// The layout of the addition with result row `sum` on the stage's
    /// shared adder.
    fn adder_for(&self, x: usize, y: usize, sum: usize) -> KoggeStoneAdder {
        let scratch: [usize; SCRATCH_ROWS] = std::array::from_fn(|i| SCRATCH_BASE + i);
        KoggeStoneAdder::with_layout(
            self.adder_width(),
            AdderLayout {
                x_row: x,
                y_row: y,
                sum_row: sum,
                scratch,
                col_base: 0,
            },
        )
    }

    /// The operand-dependent program prefix: one packed write per
    /// chunk row. Always rebuilt — it embeds data bits.
    fn chunk_writes(&self, chunks: &[&Uint]) -> Vec<MicroOp> {
        let cols = self.cols();
        chunks
            .iter()
            .enumerate()
            .map(|(i, chunk)| MicroOp::write_row(INPUT_BASE + i, &chunk.to_bits(cols)))
            .collect()
    }

    /// The batch counterpart of [`PrecomputeStage::chunk_writes`]:
    /// each input row's write carries one lane word per column, so the
    /// whole batch loads in the same 8 cycles.
    fn chunk_writes_batch(&self, chunk_rows: &[Vec<&Uint>]) -> Vec<MicroOp> {
        let cols = self.cols();
        chunk_rows
            .iter()
            .enumerate()
            .map(|(i, lanes)| {
                let refs: Vec<&[u64]> = lanes
                    .iter()
                    .inspect(|chunk| {
                        assert!(
                            chunk.bit_len() <= cols,
                            "chunk of {} bits does not fit in {} columns",
                            chunk.bit_len(),
                            cols
                        );
                    })
                    .map(|chunk| chunk.limbs())
                    .collect();
                let words = cim_crossbar::lanes::transpose_lanes(&refs, cols);
                MicroOp::write_row_lanes(INPUT_BASE + i, 0, &words)
            })
            .collect()
    }

    /// Runs the stage for up to 64 multiplications at once on a
    /// bit-sliced array: lane `l` computes the leaf operands of
    /// `pairs[l]`. The micro-op program is the solo program with the
    /// eight chunk writes staged lane-wise, so the cycle count equals
    /// [`PrecomputeStage::latency`] regardless of the lane count.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from execution.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty, holds more than 64 entries, or an
    /// operand does not fit in `n` bits.
    pub fn run_batch(&self, pairs: &[(Uint, Uint)]) -> Result<BatchPrecomputeOutput, CrossbarError> {
        let cols = self.cols();
        assert!(
            !pairs.is_empty() && pairs.len() <= 64,
            "batch must hold 1..=64 lanes"
        );
        let decomps: Vec<_> = pairs
            .iter()
            .map(|(a, b)| (decompose_operand(a, self.n), decompose_operand(b, self.n)))
            .collect();
        // Row-major chunk staging: row i holds chunk i of every lane.
        let chunk_rows: Vec<Vec<&Uint>> = (0..8)
            .map(|i| {
                decomps
                    .iter()
                    .map(|(da, db)| {
                        if i < 4 {
                            &da.chunks[i]
                        } else {
                            &db.chunks[i - 4]
                        }
                    })
                    .collect()
            })
            .collect();

        let mut array = Crossbar::new_sliced(ROWS, cols, pairs.len())?;
        let mut exec = Executor::new(&mut array);
        let mut prog = self.chunk_writes_batch(&chunk_rows);
        prog.extend_from_slice(&self.addition_suffix(ADDITIONS.len()).ops);
        cim_check::debug_assert_verified(
            &prog,
            &cim_check::VerifyConfig::new(ROWS, cols),
            "PrecomputeStage::batch_program",
        );
        exec.run(&prog)?;

        // One word-level read per leaf row; `lane_limbs` fans the
        // column words back out into per-lane values.
        let read_leaf_row = |exec: &Executor<'_>, row: usize| -> Result<Vec<Uint>, CrossbarError> {
            let mut row_cols = Vec::new();
            exec.array().read_row_lane_words(row, 0..cols, &mut row_cols)?;
            Ok(cim_crossbar::lanes::lane_limbs(&row_cols, pairs.len())
                .into_iter()
                .map(Uint::from_limbs)
                .collect())
        };
        let mut a_rows: [Vec<Uint>; LEAVES] = Default::default();
        let mut b_rows: [Vec<Uint>; LEAVES] = Default::default();
        for i in 0..LEAVES {
            a_rows[i] = read_leaf_row(&exec, A_LEAF_ROWS[i])?;
            b_rows[i] = read_leaf_row(&exec, B_LEAF_ROWS[i])?;
        }
        let mut a_leaves = Vec::with_capacity(pairs.len());
        let mut b_leaves = Vec::with_capacity(pairs.len());
        for lane in 0..pairs.len() {
            let a_set: [Uint; LEAVES] = std::array::from_fn(|i| a_rows[i][lane].clone());
            let b_set: [Uint; LEAVES] = std::array::from_fn(|i| b_rows[i][lane].clone());
            debug_assert_eq!(a_set, decomps[lane].0.leaves);
            debug_assert_eq!(b_set, decomps[lane].1.leaves);
            a_leaves.push(a_set);
            b_leaves.push(b_set);
        }

        exec.step(&MicroOp::reset_region(0..RESULT_BASE + 10, 0..cols))?;
        let stats = *exec.stats();
        let endurance = EnduranceReport::per_lane(&array);
        Ok(BatchPrecomputeOutput {
            a_leaves,
            b_leaves,
            stats,
            endurance,
        })
    }

    /// The operand-independent addition suffix covering the first
    /// `additions` entries of [`ADDITIONS`], compiled once per
    /// `(adder width, count, opt)` and shared via [`crate::progcache`].
    /// The row map and layouts are constants, so the key captures
    /// everything the suffix depends on.
    ///
    /// Above `O0` the suffix is optimized as a *whole* (cross-stage
    /// program fusion): dead-write elimination runs over the
    /// concatenation with the result and scratch rows as live-out, so
    /// each addition's trailing scratch reset — overwritten unread by
    /// the next addition's init wave — is eliminated for all but the
    /// last addition, along with the per-adder dead ops. At `O2`+ each
    /// addition is then re-packed into co-issue bundles individually
    /// (bundles never straddle addition boundaries, preserving
    /// per-addition trace attribution). The returned bounds locate
    /// each addition's ops in the fused program.
    fn addition_suffix(&self, additions: usize) -> SuffixProgram {
        let opt = self.opt;
        let cols = self.cols();
        crate::progcache::precompute_suffix(self.adder_width(), additions, opt, || {
            let parts: Vec<_> = ADDITIONS[..additions]
                .iter()
                .map(|&(x, y, sum)| {
                    crate::progcache::adder_program(&self.adder_for(x, y, sum), AddOp::Add)
                })
                .collect();
            if opt == OptLevel::O0 {
                let mut ops = Vec::new();
                let mut bounds = Vec::with_capacity(additions);
                for part in &parts {
                    ops.extend_from_slice(part);
                    bounds.push(ops.len());
                }
                return SuffixProgram {
                    ops: ops.into(),
                    bounds: bounds.into(),
                };
            }
            // Tag every op with its addition, fuse, and eliminate dead
            // writes across the whole suffix. Live-out: the ten result
            // rows plus the scratch region (which the stage contract
            // requires reset — keeping exactly the final reset alive).
            let mut tags = Vec::new();
            let mut fused = Vec::new();
            for (i, part) in parts.iter().enumerate() {
                tags.extend(std::iter::repeat_n(i, part.len()));
                fused.extend_from_slice(part);
            }
            let mut live_out = vec![Region::new(
                RESULT_BASE..RESULT_BASE + 10,
                0..cols,
            )];
            live_out.push(Region::new(
                SCRATCH_BASE..SCRATCH_BASE + SCRATCH_ROWS,
                0..cols,
            ));
            let whole = MirProgram::from_ops(ROWS, cols, fused, live_out);
            let keep = cim_mir::dead_write_mask(&whole);
            let limits = TileLimits::for_array(ROWS, cols);
            let mut ops: Vec<MicroOp> = Vec::new();
            let mut bounds = Vec::with_capacity(additions);
            for i in 0..additions {
                let kept: Vec<MicroOp> = (0..whole.len())
                    .filter(|&j| keep[j] && tags[j] == i)
                    .map(|j| whole.ops()[j].clone())
                    .collect();
                if opt >= OptLevel::O2 {
                    let frag = MirProgram::from_ops(ROWS, cols, kept, Vec::new());
                    ops.extend(cim_mir::parallel_pack(&frag, &limits));
                } else {
                    ops.extend(kept);
                }
                bounds.push(ops.len());
            }
            SuffixProgram {
                ops: ops.into(),
                bounds: bounds.into(),
            }
        })
    }

    /// Composes the chunk writes and the given additions into one
    /// program and statically verifies it (debug/test builds). The
    /// composed program needs no preload declarations: the chunk
    /// writes define every operand the additions consume.
    fn compose_program(&self, chunks: &[&Uint], additions: usize) -> Vec<MicroOp> {
        let mut prog = self.chunk_writes(chunks);
        prog.extend_from_slice(&self.addition_suffix(additions).ops);
        cim_check::debug_assert_verified(
            &prog,
            &cim_check::VerifyConfig::new(ROWS, self.cols()),
            "PrecomputeStage::program",
        );
        prog
    }

    /// The full stage as one verified micro-op program: 8 chunk writes
    /// followed by the 10 tree additions. The closing reset wave is a
    /// separate step because the leaf handoff reads precede it.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `n` bits, or (debug/test
    /// builds) if the composed program fails static verification.
    pub fn program(&self, a: &Uint, b: &Uint) -> Vec<MicroOp> {
        let da = decompose_operand(a, self.n);
        let db = decompose_operand(b, self.n);
        let chunks: Vec<&Uint> = da.chunks.iter().chain(db.chunks.iter()).collect();
        self.compose_program(&chunks, ADDITIONS.len())
    }

    /// The squaring variant of [`PrecomputeStage::program`]: both
    /// operand banks hold `a`'s chunks and only the five `a`-side
    /// additions run.
    ///
    /// # Panics
    ///
    /// Panics as [`PrecomputeStage::program`] does.
    pub fn square_program(&self, a: &Uint) -> Vec<MicroOp> {
        let da = decompose_operand(a, self.n);
        let chunks: Vec<&Uint> = da.chunks.iter().chain(da.chunks.iter()).collect();
        self.compose_program(&chunks, 5)
    }

    /// Runs the stage for a squaring: the `b`-side sums equal the
    /// `a`-side sums, so only five additions execute and the controller
    /// mirrors the results — the stage runs in
    /// [`PrecomputeStage::square_latency`] cycles.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from execution.
    ///
    /// # Panics
    ///
    /// Panics if the operand does not fit in `n` bits.
    pub fn run_square(&self, a: &Uint) -> Result<PrecomputeOutput, CrossbarError> {
        let cols = self.cols();
        let da = decompose_operand(a, self.n);
        let mut array = Crossbar::new(ROWS, cols)?;
        let mut exec = Executor::new(&mut array);
        // The same four chunks go into BOTH operand banks (the paper's
        // write circuit can drive two word lines with the same word,
        // so this still charges 8 write cycles — kept identical to the
        // general case for a conservative count), then the five a-side
        // additions — all one verified program.
        exec.run(&self.square_program(a))?;
        let read_leaf = |exec: &Executor<'_>, row: usize| -> Result<Uint, CrossbarError> {
            Ok(Uint::from_bits(&exec.array().read_row_bits(row, 0..cols)?))
        };
        let mut a_leaves: [Uint; LEAVES] = Default::default();
        for i in 0..LEAVES {
            a_leaves[i] = read_leaf(&exec, A_LEAF_ROWS[i])?;
        }
        exec.step(&MicroOp::reset_region(0..RESULT_BASE + 10, 0..cols))?;
        let stats = *exec.stats();
        let endurance = EnduranceReport::from_array(&array);
        debug_assert_eq!(a_leaves, da.leaves);
        Ok(PrecomputeOutput {
            b_leaves: a_leaves.clone(),
            a_leaves,
            stats,
            endurance,
        })
    }

    /// Runs the stage on a fresh array.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from execution.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `n` bits.
    pub fn run(&self, a: &Uint, b: &Uint) -> Result<PrecomputeOutput, CrossbarError> {
        self.run_traced(a, b, &Tracer::disabled(), TrackId(0), 0)
    }

    /// [`PrecomputeStage::run`] with tracing: the stage is wrapped in a
    /// `precompute` span on `track` starting at `start_cycle`, with the
    /// 8 chunk writes and each of the 10 tree additions as child spans;
    /// the executor's per-op events nest under them.
    ///
    /// The micro-op sequence is identical to the untraced path, so
    /// cycle statistics, wear counts, and results do not change.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from execution.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `n` bits.
    pub fn run_traced(
        &self,
        a: &Uint,
        b: &Uint,
        tracer: &Tracer,
        track: TrackId,
        start_cycle: u64,
    ) -> Result<PrecomputeOutput, CrossbarError> {
        let n = self.n;
        let cols = self.cols();
        let da = decompose_operand(a, n);
        let db = decompose_operand(b, n);

        let mut array = Crossbar::new(ROWS, cols)?;
        let mut exec = Executor::new(&mut array);
        exec.attach_tracer_at(tracer, track, start_cycle);
        let stage = tracer.span_at(track, "precompute", start_cycle);

        // (i)+(ii) The 8 chunk writes and the ten tree additions —
        // 8 + 10·adder cc. The operand writes are rebuilt per call;
        // the addition suffix comes from the program cache and is
        // executed in per-addition slices so each addition's op events
        // nest under its own span. The op sequence is identical to
        // [`PrecomputeStage::program`] (asserted below in debug/test
        // builds via the same static verification).
        let chunks: Vec<&Uint> = da.chunks.iter().chain(db.chunks.iter()).collect();
        let writes_prog = self.chunk_writes(&chunks);
        let suffix = self.addition_suffix(ADDITIONS.len());
        if cfg!(debug_assertions) {
            let mut full = writes_prog.clone();
            full.extend_from_slice(&suffix.ops);
            cim_check::debug_assert_verified(
                &full,
                &cim_check::VerifyConfig::new(ROWS, cols),
                "PrecomputeStage::program",
            );
        }
        let writes = tracer.span_at(track, "write chunks", start_cycle);
        exec.run(&writes_prog)?;
        writes.end(start_cycle + exec.stats().cycles);
        // Per-addition slices come from the suffix's bounds — after
        // optimization the additions are no longer uniform in length.
        let mut slice_start = 0;
        for (i, name) in ADDITION_NAMES.iter().enumerate() {
            let from = start_cycle + exec.stats().cycles;
            let span = tracer.span_at(track, *name, from);
            exec.run(&suffix.ops[slice_start..suffix.bounds[i]])?;
            slice_start = suffix.bounds[i];
            span.end(start_cycle + exec.stats().cycles);
        }

        // Read the 18 leaves (handoff — charged at the pipeline level).
        let read_leaf = |exec: &Executor<'_>, row: usize| -> Result<Uint, CrossbarError> {
            Ok(Uint::from_bits(&exec.array().read_row_bits(row, 0..cols)?))
        };
        let mut a_leaves: [Uint; LEAVES] = Default::default();
        let mut b_leaves: [Uint; LEAVES] = Default::default();
        for i in 0..LEAVES {
            a_leaves[i] = read_leaf(&exec, A_LEAF_ROWS[i])?;
            b_leaves[i] = read_leaf(&exec, B_LEAF_ROWS[i])?;
        }

        // (iii) Reset the input/result region for the next
        // multiplication — 1 cc.
        exec.step(&MicroOp::reset_region(0..RESULT_BASE + 10, 0..cols))?;
        stage.end(start_cycle + exec.stats().cycles);

        let stats = *exec.stats();
        let endurance = EnduranceReport::from_array(&array);
        // Sanity: the stage must agree with the software decomposition.
        debug_assert_eq!(a_leaves, da.leaves);
        debug_assert_eq!(b_leaves, db.leaves);
        Ok(PrecomputeOutput {
            a_leaves,
            b_leaves,
            stats,
            endurance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_bigint::rng::UintRng;

    #[test]
    fn leaves_match_software_decomposition() {
        let mut rng = UintRng::seeded(9);
        for n in [16usize, 64, 128] {
            let stage = PrecomputeStage::new(n).unwrap();
            let a = rng.uniform(n);
            let b = rng.uniform(n);
            let out = stage.run(&a, &b).unwrap();
            let da = decompose_operand(&a, n);
            let db = decompose_operand(&b, n);
            assert_eq!(out.a_leaves, da.leaves, "n = {n}");
            assert_eq!(out.b_leaves, db.leaves, "n = {n}");
        }
    }

    #[test]
    fn measured_cycles_equal_paper_formula() {
        for n in [16usize, 64, 128, 256, 384] {
            let stage = PrecomputeStage::new(n).unwrap();
            let a = Uint::pow2(n).sub(&Uint::one());
            let out = stage.run(&a, &a).unwrap();
            assert_eq!(out.stats.cycles, stage.latency(), "n = {n}");
            // Cross-check against the closed form.
            let q = n / 4;
            let levels = (usize::BITS - (q + 1 - 1).leading_zeros()) as u64;
            assert_eq!(stage.latency(), 8 + 10 * (17 + 11 * levels) + 1, "n = {n}");
        }
    }

    #[test]
    fn batch_leaves_match_solo_runs_at_solo_cycle_cost() {
        let mut rng = UintRng::seeded(41);
        for (n, lanes) in [(16usize, 5usize), (64, 64)] {
            let stage = PrecomputeStage::new(n).unwrap();
            let pairs: Vec<(Uint, Uint)> =
                (0..lanes).map(|_| (rng.uniform(n), rng.uniform(n))).collect();
            let batch = stage.run_batch(&pairs).unwrap();
            assert_eq!(batch.stats.cycles, stage.latency(), "n = {n}");
            assert_eq!(batch.endurance.len(), lanes);
            for (lane, (a, b)) in pairs.iter().enumerate() {
                let solo = stage.run(a, b).unwrap();
                assert_eq!(batch.a_leaves[lane], solo.a_leaves, "lane {lane}, n = {n}");
                assert_eq!(batch.b_leaves[lane], solo.b_leaves, "lane {lane}, n = {n}");
                assert_eq!(batch.stats, solo.stats, "lane {lane}, n = {n}");
                // The stage program is lane-oblivious after the chunk
                // writes, so per-lane wear equals the solo array's.
                assert_eq!(
                    batch.endurance[lane], solo.endurance,
                    "lane {lane}, n = {n}"
                );
            }
        }
    }

    #[test]
    fn area_matches_paper_example() {
        // n = 256: 30 × 66 = 1,980 memristors (paper Sec. IV-C).
        assert_eq!(PrecomputeStage::new(256).unwrap().area_cells(), 1980);
    }

    #[test]
    fn array_is_clean_after_run() {
        let stage = PrecomputeStage::new(32).unwrap();
        // The result region reset is part of the program; verify by
        // running twice — a dirty array would corrupt MAGIC init checks.
        let a = Uint::from_u64(0xDEADBEEF);
        let out1 = stage.run(&a, &a).unwrap();
        let out2 = stage.run(&a, &a).unwrap();
        assert_eq!(out1.a_leaves, out2.a_leaves);
    }

    #[test]
    fn zero_operands() {
        let stage = PrecomputeStage::new(16).unwrap();
        let out = stage.run(&Uint::zero(), &Uint::zero()).unwrap();
        for leaf in &out.a_leaves {
            assert!(leaf.is_zero());
        }
    }
}
