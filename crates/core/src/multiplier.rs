//! The top-level multiplier: all three stages end-to-end on simulated
//! crossbars, with verification against the software gold model.

use crate::chunks::LEAVES;
use crate::cost::{DesignPoint, HANDOFF_CYCLES};
use crate::multiply::MultiplyStage;
use crate::postcompute::PostcomputeStage;
use crate::precompute::PrecomputeStage;
use cim_bigint::Uint;
use cim_crossbar::{CrossbarError, CycleStats, EnduranceReport, EnergyParams};
use cim_metrics::MetricsHub;
use cim_trace::{Args, ProcessId, Tracer};
use std::error::Error;
use std::fmt;

/// Error returned by [`KaratsubaCimMultiplier::multiply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiplyError {
    /// The underlying crossbar simulation failed.
    Crossbar(CrossbarError),
    /// The in-memory result disagreed with the software gold model —
    /// can only happen with injected faults.
    VerificationFailed {
        /// What the simulated hardware produced.
        got: Box<Uint>,
        /// What the gold model expected.
        expected: Box<Uint>,
    },
    /// The requested operand width cannot be served: not a positive
    /// multiple of 4, or wider than the hardware is provisioned for.
    UnsupportedWidth {
        /// The requested operand width in bits.
        width: usize,
        /// The widest operand the configuration supports.
        max: usize,
    },
}

impl fmt::Display for MultiplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiplyError::Crossbar(e) => write!(f, "crossbar error: {e}"),
            MultiplyError::VerificationFailed { got, expected } => write!(
                f,
                "in-memory product 0x{:x} disagrees with gold model 0x{:x}",
                got.as_ref(),
                expected.as_ref()
            ),
            MultiplyError::UnsupportedWidth { width, max } => write!(
                f,
                "operand width {width} unsupported (must be a positive multiple of 4, at most {max})"
            ),
        }
    }
}

impl Error for MultiplyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MultiplyError::Crossbar(e) => Some(e),
            MultiplyError::VerificationFailed { .. } | MultiplyError::UnsupportedWidth { .. } => {
                None
            }
        }
    }
}

impl From<CrossbarError> for MultiplyError {
    fn from(e: CrossbarError) -> Self {
        MultiplyError::Crossbar(e)
    }
}

/// Per-stage execution report of one multiplication.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Stage cycle statistics `[pre, mult, post]` (mult has only a
    /// latency, reported in `stage_cycles`).
    pub stage_cycles: [u64; 3],
    /// Detailed stats for the stages driven by the micro-op executor.
    pub precompute_stats: CycleStats,
    /// Detailed stats for the postcomputation stage.
    pub postcompute_stats: CycleStats,
    /// Endurance reports per stage array `[pre, mult, post]`.
    pub endurance: [EnduranceReport; 3],
    /// Total latency including the two inter-stage handoffs.
    pub total_latency: u64,
    /// Total cells across the three stage arrays (simulated geometry).
    pub area_cells: u64,
}

impl ExecutionReport {
    /// First-order energy estimate of this multiplication (see
    /// [`cim_crossbar::energy`]): per-stage write energy comes from
    /// the *exact* per-cell write counts, MAGIC/read energy from the
    /// cycle statistics, plus the inter-stage handoff modeled as
    /// on-chip reads+writes of the 18 operands and 9 products.
    pub fn energy(&self, n: usize, params: &cim_crossbar::EnergyParams) -> cim_crossbar::EnergyReport {
        use cim_crossbar::EnergyReport;
        let w = n / 4 + 2;
        let pre = EnergyReport::from_stats(&self.precompute_stats, w, params);
        let post = EnergyReport::from_stats(&self.postcompute_stats, 3 * n / 2 + 1, params);
        // Multiplication stage: exact write energy from wear counters;
        // MAGIC energy approximated as one row-wide evaluation per
        // cycle per active multiplier row.
        let mult = EnergyReport {
            write_pj: self.endurance[1].total_writes as f64 * params.write_pj,
            read_pj: 0.0,
            magic_pj: self.stage_cycles[1] as f64 * (9 * w) as f64 * params.magic_pj,
            controller_pj: self.stage_cycles[1] as f64 * params.controller_pj_per_cycle,
        };
        // Handoff: 18 operands of ~w bits + 9 products of ~2w bits,
        // each read once and written once (on-chip).
        let handoff_bits = (18 * w + 9 * 2 * w) as f64;
        let handoff = handoff_bits * (params.read_pj + params.write_pj);
        EnergyReport {
            write_pj: pre.write_pj + mult.write_pj + post.write_pj + handoff / 2.0,
            read_pj: pre.read_pj + mult.read_pj + post.read_pj + handoff / 2.0,
            magic_pj: pre.magic_pj + mult.magic_pj + post.magic_pj,
            controller_pj: pre.controller_pj + mult.controller_pj + post.controller_pj,
        }
    }
}

/// Outcome of [`KaratsubaCimMultiplier::multiply`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiplyOutcome {
    /// The verified `2n`-bit product.
    pub product: Uint,
    /// Cycle/area/endurance details.
    pub report: ExecutionReport,
}

/// Outcome of [`KaratsubaCimMultiplier::multiply_batch`]: up to 64
/// verified products computed in the cycle budget of one.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMultiplyOutcome {
    /// The verified `2n`-bit products, one per lane.
    pub products: Vec<Uint>,
    /// Stage cycle counts `[pre, mult, post]` — identical to a solo
    /// run; the batch amortizes them over every lane.
    pub stage_cycles: [u64; 3],
    /// Total latency including the inter-stage handoffs.
    pub total_latency: u64,
    /// Total cells across the three stage arrays (per lane-set; the
    /// sliced arrays hold every lane in the same cells).
    pub area_cells: u64,
    /// Per-lane endurance reports per stage `[pre, mult, post]`.
    pub lane_endurance: [Vec<EnduranceReport>; 3],
}

impl BatchMultiplyOutcome {
    /// Number of lanes that ran.
    pub fn lanes(&self) -> usize {
        self.products.len()
    }

    /// Batch throughput in products per kilocycle — the headline
    /// batching win: `lanes / total_latency · 1000`.
    pub fn products_per_kcc(&self) -> f64 {
        self.lanes() as f64 * 1000.0 / self.total_latency as f64
    }
}

/// The paper's three-stage pipelined Karatsuba multiplier for
/// `n`-bit operands on resistive CIM crossbars.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct KaratsubaCimMultiplier {
    n: usize,
    precompute: PrecomputeStage,
    multiply: MultiplyStage,
    postcompute: PostcomputeStage,
    /// Metrics destination + energy model; `None` keeps every
    /// multiplication free of publication overhead.
    meter: Option<(MetricsHub, EnergyParams)>,
}

impl KaratsubaCimMultiplier {
    /// Creates an `n`-bit multiplier (n ≥ 8, multiple of 4; the paper
    /// evaluates 64–384).
    ///
    /// # Errors
    ///
    /// Returns an error if a stage array cannot be constructed.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` or `n` is not a multiple of 4.
    pub fn new(n: usize) -> Result<Self, MultiplyError> {
        Self::with_opt_level(n, cim_mir::OptLevel::O0)
    }

    /// Creates an `n`-bit multiplier whose stage programs are lowered
    /// through the cim-mir pass pipeline at `opt`. `O0` reproduces the
    /// paper-exact programs byte for byte; higher levels eliminate dead
    /// writes (`O1`), co-issue independent NOR partitions (`O2`), and
    /// add crossbar-constrained placement (`O3`). Every optimized
    /// program is verified by `cim-check` at build time and every
    /// product is still checked against the software gold model.
    ///
    /// # Errors
    ///
    /// Returns an error if a stage array cannot be constructed.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` or `n` is not a multiple of 4.
    pub fn with_opt_level(n: usize, opt: cim_mir::OptLevel) -> Result<Self, MultiplyError> {
        Ok(KaratsubaCimMultiplier {
            n,
            precompute: PrecomputeStage::with_opt_level(n, opt)?,
            multiply: MultiplyStage::with_opt_level(n, opt)?,
            postcompute: PostcomputeStage::with_opt_level(n, opt)?,
            meter: None,
        })
    }

    /// The optimization level the stage programs are lowered at.
    pub fn opt_level(&self) -> cim_mir::OptLevel {
        self.precompute.opt_level()
    }

    /// Publishes an [`ExecutionReport`] into `hub` after every
    /// verified multiplication (see [`crate::metrics`] for the family
    /// catalogue), using `params` for the energy model. Publication is
    /// observational: reports are bit-identical with metrics on and
    /// off.
    pub fn attach_metrics(&mut self, hub: &MetricsHub, params: EnergyParams) {
        self.meter = hub.is_enabled().then(|| (hub.clone(), params));
    }

    fn publish(&self, report: &ExecutionReport) {
        if let Some((hub, params)) = &self.meter {
            report.publish_metrics(hub, self.n, params);
        }
    }

    /// Operand width in bits.
    pub fn width(&self) -> usize {
        self.n
    }

    /// The analytic design point for this width (paper formulas).
    pub fn design_point(&self) -> DesignPoint {
        DesignPoint::new(self.n)
    }

    /// Multiplies two `n`-bit integers fully in simulated memory,
    /// verifying the result against the software gold model.
    ///
    /// # Errors
    ///
    /// Returns [`MultiplyError::Crossbar`] on simulation failure and
    /// [`MultiplyError::VerificationFailed`] if the in-memory result
    /// diverges from the gold model (possible only under injected
    /// faults).
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `n` bits.
    pub fn multiply(&self, a: &Uint, b: &Uint) -> Result<MultiplyOutcome, MultiplyError> {
        self.multiply_traced(a, b, &Tracer::disabled())
    }

    /// [`KaratsubaCimMultiplier::multiply`] with tracing: the run is
    /// registered as one trace process (`karatsuba n=<width>`) with a
    /// track per pipeline stage (nine tracks for the parallel stage-2
    /// rows). Stage spans sit at their pipeline-global offsets — stage
    /// 2 starts after precompute plus one handoff, stage 3 after both —
    /// so the exported trace lays the stages out exactly as the Fig. 5
    /// pipeline would execute one job.
    ///
    /// Tracing never changes results or statistics: the untraced
    /// [`multiply`](Self::multiply) is this method with a disabled
    /// tracer, and a regression test asserts equality of the reports.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KaratsubaCimMultiplier::multiply`].
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `n` bits.
    pub fn multiply_traced(
        &self,
        a: &Uint,
        b: &Uint,
        tracer: &Tracer,
    ) -> Result<MultiplyOutcome, MultiplyError> {
        let enabled = tracer.is_enabled();
        let pid = if enabled {
            tracer.process(&format!("karatsuba n={}", self.n))
        } else {
            ProcessId(0)
        };
        let pre_track = tracer.track(pid, "stage 1 (precompute)");
        let pre = self.precompute.run_traced(a, b, tracer, pre_track, 0)?;
        if enabled {
            tracer.instant(
                pre_track,
                "handoff: 18 leaves to stage 2",
                pre.stats.cycles,
                Args::new().with("cycles", HANDOFF_CYCLES as i64),
            );
        }
        let mult_start = pre.stats.cycles + HANDOFF_CYCLES;
        let mult = self
            .multiply
            .run_traced(&pre.a_leaves, &pre.b_leaves, tracer, pid, mult_start)?;
        let post_track = tracer.track(pid, "stage 3 (postcompute)");
        let post_start = mult_start + mult.cycles + HANDOFF_CYCLES;
        if enabled {
            tracer.instant(
                post_track,
                "handoff: 9 products to stage 3",
                mult_start + mult.cycles,
                Args::new().with("cycles", HANDOFF_CYCLES as i64),
            );
        }
        let post = self.postcompute.run_traced(&mult.products, tracer, post_track, post_start)?;

        let expected = a * b;
        if post.product != expected {
            return Err(MultiplyError::VerificationFailed {
                got: Box::new(post.product),
                expected: Box::new(expected),
            });
        }

        let stage_cycles = [pre.stats.cycles, mult.cycles, post.stats.cycles];
        let total_latency = stage_cycles.iter().sum::<u64>() + 3 * HANDOFF_CYCLES;
        let area_cells = self.precompute.area_cells()
            + self.multiply.area_cells()
            + self.postcompute.area_cells();
        let report = ExecutionReport {
            stage_cycles,
            precompute_stats: pre.stats,
            postcompute_stats: post.stats,
            endurance: [pre.endurance, mult.endurance, post.endurance],
            total_latency,
            area_cells,
        };
        self.publish(&report);
        Ok(MultiplyOutcome {
            product: post.product,
            report,
        })
    }

    /// Multiplies up to 64 pairs of `n`-bit integers in one bit-sliced
    /// pass through the three stages — the same micro-op programs a
    /// single multiplication executes, with every lane riding its own
    /// bit of the lane words. Stage cycle counts are therefore
    /// identical to [`KaratsubaCimMultiplier::multiply`]; throughput
    /// scales with the lane count. Every lane's product is verified
    /// against the software gold model.
    ///
    /// # Errors
    ///
    /// Returns [`MultiplyError::Crossbar`] on simulation failure and
    /// [`MultiplyError::VerificationFailed`] for the first lane whose
    /// product diverges from the gold model.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty, holds more than 64 entries, or an
    /// operand does not fit in `n` bits.
    pub fn multiply_batch(
        &self,
        pairs: &[(Uint, Uint)],
    ) -> Result<BatchMultiplyOutcome, MultiplyError> {
        let pre = self.precompute.run_batch(pairs)?;
        let mult = self.multiply.run_batch(&pre.a_leaves, &pre.b_leaves)?;
        let post = self.postcompute.run_batch(&mult.products)?;

        for (lane, (a, b)) in pairs.iter().enumerate() {
            let expected = a * b;
            if post.products[lane] != expected {
                return Err(MultiplyError::VerificationFailed {
                    got: Box::new(post.products[lane].clone()),
                    expected: Box::new(expected),
                });
            }
        }

        let stage_cycles = [pre.stats.cycles, mult.cycles, post.stats.cycles];
        let total_latency = stage_cycles.iter().sum::<u64>() + 3 * HANDOFF_CYCLES;
        let area_cells = self.precompute.area_cells()
            + self.multiply.area_cells()
            + self.postcompute.area_cells();
        Ok(BatchMultiplyOutcome {
            products: post.products,
            stage_cycles,
            total_latency,
            area_cells,
            lane_endurance: [pre.endurance, mult.endurance, post.endurance],
        })
    }

    /// Squares an `n`-bit integer — stage 1 runs its squaring fast
    /// path (5 additions instead of 10, saving ~40 % of precompute
    /// latency), stages 2–3 run as usual.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KaratsubaCimMultiplier::multiply`].
    ///
    /// # Panics
    ///
    /// Panics if the operand does not fit in `n` bits.
    pub fn square(&self, a: &Uint) -> Result<MultiplyOutcome, MultiplyError> {
        let pre = self.precompute.run_square(a)?;
        let mult = self.multiply.run(&pre.a_leaves, &pre.b_leaves)?;
        let post = self.postcompute.run(&mult.products)?;
        let expected = a * a;
        if post.product != expected {
            return Err(MultiplyError::VerificationFailed {
                got: Box::new(post.product),
                expected: Box::new(expected),
            });
        }
        let stage_cycles = [pre.stats.cycles, mult.cycles, post.stats.cycles];
        let total_latency = stage_cycles.iter().sum::<u64>() + 3 * HANDOFF_CYCLES;
        let area_cells = self.precompute.area_cells()
            + self.multiply.area_cells()
            + self.postcompute.area_cells();
        let report = ExecutionReport {
            stage_cycles,
            precompute_stats: pre.stats,
            postcompute_stats: post.stats,
            endurance: [pre.endurance, mult.endurance, post.endurance],
            total_latency,
            area_cells,
        };
        self.publish(&report);
        Ok(MultiplyOutcome {
            product: post.product,
            report,
        })
    }

    /// Measured per-multiplication maximum cell writes across the
    /// three stage arrays (the Table I "Max. Writes" metric; the
    /// analytic counterpart is [`DesignPoint::max_writes`]).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn measured_max_writes(&self, a: &Uint, b: &Uint) -> Result<u64, MultiplyError> {
        let outcome = self.multiply(a, b)?;
        Ok(EnduranceReport::max_over(&outcome.report.endurance))
    }
}

/// Number of partial products the pipeline hands between stages —
/// re-exported for documentation purposes.
pub const PARTIAL_PRODUCTS: usize = LEAVES;

#[cfg(test)]
mod tests {
    use super::*;
    use cim_bigint::rng::{corner_cases, UintRng};

    #[test]
    fn end_to_end_random_multiplications() {
        let mut rng = UintRng::seeded(23);
        for n in [16usize, 64, 128] {
            let mult = KaratsubaCimMultiplier::new(n).unwrap();
            for _ in 0..3 {
                let a = rng.uniform(n);
                let b = rng.uniform(n);
                let out = mult.multiply(&a, &b).unwrap();
                assert_eq!(out.product, &a * &b, "n = {n}");
            }
        }
    }

    #[test]
    fn end_to_end_384_bit_zkp_size() {
        let mut rng = UintRng::seeded(24);
        let mult = KaratsubaCimMultiplier::new(384).unwrap();
        let a = rng.exact_bits(384);
        let b = rng.exact_bits(384);
        let out = mult.multiply(&a, &b).unwrap();
        assert_eq!(out.product, &a * &b);
        assert!(out.product.bit_len() >= 767);
    }

    #[test]
    fn batch_multiply_verifies_all_lanes_at_solo_cycle_cost() {
        let mut rng = UintRng::seeded(29);
        let n = 32;
        let lanes = 64;
        let mult = KaratsubaCimMultiplier::new(n).unwrap();
        let pairs: Vec<(Uint, Uint)> =
            (0..lanes).map(|_| (rng.uniform(n), rng.uniform(n))).collect();
        let batch = mult.multiply_batch(&pairs).unwrap();
        assert_eq!(batch.lanes(), lanes);
        let solo = mult.multiply(&pairs[0].0, &pairs[0].1).unwrap();
        assert_eq!(
            batch.stage_cycles, solo.report.stage_cycles,
            "batch must cost exactly one instance's cycles"
        );
        assert_eq!(batch.total_latency, solo.report.total_latency);
        assert_eq!(batch.area_cells, solo.report.area_cells);
        for (lane, (a, b)) in pairs.iter().enumerate() {
            assert_eq!(batch.products[lane], a * b, "lane {lane}");
        }
        // 64 lanes in one instance's cycles → 64× products per cycle.
        assert!(
            batch.products_per_kcc()
                >= 63.9 * (1000.0 / solo.report.total_latency as f64)
        );
    }

    #[test]
    fn batch_lane_endurance_matches_solo() {
        let mut rng = UintRng::seeded(31);
        let n = 16;
        let mult = KaratsubaCimMultiplier::new(n).unwrap();
        let pairs: Vec<(Uint, Uint)> =
            (0..5).map(|_| (rng.uniform(n), rng.uniform(n))).collect();
        let batch = mult.multiply_batch(&pairs).unwrap();
        for (lane, (a, b)) in pairs.iter().enumerate() {
            let solo = mult.multiply(a, b).unwrap();
            for stage in 0..3 {
                assert_eq!(
                    batch.lane_endurance[stage][lane], solo.report.endurance[stage],
                    "stage {stage}, lane {lane}"
                );
            }
        }
    }

    #[test]
    fn corner_cases_all_widths() {
        for n in [16usize, 64] {
            let mult = KaratsubaCimMultiplier::new(n).unwrap();
            for a in corner_cases(n) {
                for b in corner_cases(n) {
                    let out = mult.multiply(&a, &b).unwrap();
                    assert_eq!(out.product, &a * &b, "n={n} a={a:?} b={b:?}");
                }
            }
        }
    }

    #[test]
    fn report_cycles_match_stage_models() {
        let mult = KaratsubaCimMultiplier::new(64).unwrap();
        let a = Uint::from_u64(u64::MAX);
        let out = mult.multiply(&a, &a).unwrap();
        let d = mult.design_point();
        assert_eq!(out.report.stage_cycles[0], d.precompute_latency);
        assert_eq!(out.report.stage_cycles[1], d.multiply_latency);
        // Stage 3 measured is within 5 % of the paper's closed form.
        let paper = d.postcompute_latency as f64;
        let ours = out.report.stage_cycles[2] as f64;
        assert!((ours - paper).abs() / paper < 0.05);
    }

    #[test]
    fn report_area_matches_cost_model() {
        for n in [64usize, 256] {
            let mult = KaratsubaCimMultiplier::new(n).unwrap();
            let a = Uint::from_u64(3);
            let out = mult.multiply(&a, &a).unwrap();
            assert_eq!(out.report.area_cells, DesignPoint::new(n).area_cells());
        }
    }

    #[test]
    fn square_fast_path() {
        let mut rng = UintRng::seeded(25);
        for n in [16usize, 64] {
            let mult = KaratsubaCimMultiplier::new(n).unwrap();
            let a = rng.uniform(n);
            let sq = mult.square(&a).unwrap();
            assert_eq!(sq.product, &a * &a, "n = {n}");
            // Stage 1 must be faster than the general path.
            let general = mult.multiply(&a, &a).unwrap();
            assert!(
                sq.report.stage_cycles[0] < general.report.stage_cycles[0],
                "square pre {} vs general pre {}",
                sq.report.stage_cycles[0],
                general.report.stage_cycles[0]
            );
            // And exactly the advertised latency.
            assert_eq!(
                sq.report.stage_cycles[0],
                PrecomputeStage::new(n).unwrap().square_latency()
            );
        }
    }

    #[test]
    fn energy_report_structure() {
        let params = cim_crossbar::EnergyParams::default();
        let mut totals = Vec::new();
        for n in [64usize, 128] {
            let mult = KaratsubaCimMultiplier::new(n).unwrap();
            let a = Uint::pow2(n).sub(&Uint::one());
            let out = mult.multiply(&a, &a).unwrap();
            let e = out.report.energy(n, &params);
            assert!(e.total_pj() > 0.0, "n={n}");
            assert!(e.write_pj > 0.0 && e.magic_pj > 0.0 && e.read_pj > 0.0);
            totals.push(e.total_pj());
        }
        assert!(totals[1] > totals[0], "energy must grow with n");
        // Zeroed parameters zero the estimate (no hidden constants).
        let zero = cim_crossbar::EnergyParams {
            write_pj: 0.0,
            read_pj: 0.0,
            magic_pj: 0.0,
            controller_pj_per_cycle: 0.0,
            offchip_pj_per_bit: 0.0,
        };
        let mult = KaratsubaCimMultiplier::new(64).unwrap();
        let out = mult.multiply(&Uint::one(), &Uint::one()).unwrap();
        assert_eq!(out.report.energy(64, &zero).total_pj(), 0.0);
    }

    #[test]
    fn metrics_do_not_change_execution_reports() {
        let mut rng = UintRng::seeded(26);
        let a = rng.uniform(64);
        let b = rng.uniform(64);
        let plain = KaratsubaCimMultiplier::new(64).unwrap();
        let baseline = plain.multiply(&a, &b).unwrap();

        let mut metered = KaratsubaCimMultiplier::new(64).unwrap();
        let hub = MetricsHub::recording();
        metered.attach_metrics(&hub, EnergyParams::default());
        let observed = metered.multiply(&a, &b).unwrap();
        assert_eq!(observed.report, baseline.report, "metrics must be neutral");
        assert_eq!(observed.product, baseline.product);
        assert!(!hub.snapshot().families.is_empty(), "but metrics did publish");

        // Attaching a disabled hub is a no-op.
        let mut disabled = KaratsubaCimMultiplier::new(64).unwrap();
        let off = MetricsHub::disabled();
        disabled.attach_metrics(&off, EnergyParams::default());
        assert_eq!(disabled.multiply(&a, &b).unwrap().report, baseline.report);
        assert!(off.snapshot().families.is_empty());
    }

    #[test]
    fn measured_wear_within_model_envelope() {
        let mult = KaratsubaCimMultiplier::new(64).unwrap();
        let a = Uint::pow2(64).sub(&Uint::one());
        let measured = mult.measured_max_writes(&a, &a).unwrap();
        let model = DesignPoint::new(64).max_writes;
        // The model is wear-leveled (halved); the raw single-run
        // measurement must be the same order of magnitude.
        assert!(measured <= 4 * model, "measured {measured} model {model}");
        assert!(measured >= model / 4, "measured {measured} model {model}");
    }
}
