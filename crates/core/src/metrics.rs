//! Core-layer metrics publication.
//!
//! The multiplier publishes after each verified multiplication, keyed
//! by operand width (`width_bits`) so sweeps over sizes land in
//! separate series:
//!
//! * `cim_core_stage_cycles{stage,width_bits}` — per-stage cycle
//!   histograms (`precompute` / `multiply` / `postcompute`);
//! * `cim_core_total_latency_cycles{width_bits}` — end-to-end latency
//!   histogram including handoffs;
//! * `cim_core_multiplications_total{width_bits}` — verified products;
//! * `cim_core_writes_total{stage,width_bits}` — exact cell writes
//!   from the endurance counters;
//! * `cim_core_energy_pj_total{component,width_bits}` — the full
//!   [`crate::multiplier::ExecutionReport::energy`] model (all three
//!   stages plus handoffs);
//! * `cim_core_area_cells{width_bits}` — simulated geometry (gauge);
//! * `cim_core_progcache_{hits,misses,entries}` — program-cache
//!   health (gauges, process-wide; see [`crate::progcache`]);
//! * plus the crossbar families (`cim_xbar_*`) re-published from the
//!   stage-1/stage-3 [`cim_crossbar::CycleStats`] with
//!   `stage`/`width_bits` labels. Note the crossbar energy family
//!   covers only the executor-driven stages; `cim_core_energy_pj_total`
//!   is the complete model (adds stage 2 and the handoffs).
//!
//! Publication is a pure read of the [`ExecutionReport`] — a test
//! asserts reports are identical with metrics attached and not.

use crate::multiplier::ExecutionReport;
use cim_crossbar::{EnergyParams, MeterSpec};
use cim_metrics::{Labels, MetricsHub};

/// Family: per-stage cycles per multiplication (histogram).
pub const METRIC_CORE_STAGE_CYCLES: &str = "cim_core_stage_cycles";
/// Family: end-to-end latency per multiplication (histogram).
pub const METRIC_CORE_TOTAL_LATENCY: &str = "cim_core_total_latency_cycles";
/// Family: verified multiplications (counter).
pub const METRIC_CORE_MULTIPLICATIONS: &str = "cim_core_multiplications_total";
/// Family: cell writes by stage (counter).
pub const METRIC_CORE_WRITES: &str = "cim_core_writes_total";
/// Family: energy by component (counter, picojoules).
pub const METRIC_CORE_ENERGY: &str = "cim_core_energy_pj_total";
/// Family: simulated array cells (gauge).
pub const METRIC_CORE_AREA_CELLS: &str = "cim_core_area_cells";

/// Stage labels in `stage_cycles` order.
pub const STAGE_LABELS: [&str; 3] = ["precompute", "multiply", "postcompute"];

impl ExecutionReport {
    /// Publishes this report into `hub`, labeled with
    /// `width_bits = n`, using `params` for the energy model. See the
    /// [module docs](crate::metrics) for the family catalogue.
    pub fn publish_metrics(&self, hub: &MetricsHub, n: usize, params: &EnergyParams) {
        if !hub.is_enabled() {
            return;
        }
        let width = Labels::new().with("width_bits", n);
        for (i, stage) in STAGE_LABELS.iter().enumerate() {
            let labels = width.clone().with("stage", *stage);
            hub.observe(
                METRIC_CORE_STAGE_CYCLES,
                "per-stage cycles per multiplication",
                &labels,
                self.stage_cycles[i],
            );
            hub.add_counter(
                METRIC_CORE_WRITES,
                "cell writes by stage",
                &labels,
                self.endurance[i].total_writes as f64,
            );
        }
        hub.observe(
            METRIC_CORE_TOTAL_LATENCY,
            "end-to-end multiplication latency in cycles",
            &width,
            self.total_latency,
        );
        hub.add_counter(
            METRIC_CORE_MULTIPLICATIONS,
            "verified multiplications",
            &width,
            1.0,
        );
        hub.set_gauge(
            METRIC_CORE_AREA_CELLS,
            "simulated cells across the three stage arrays",
            &width,
            self.area_cells as f64,
        );
        for (component, pj) in self.energy(n, params).components() {
            hub.add_counter(
                METRIC_CORE_ENERGY,
                "multiplication energy in picojoules by component",
                &width.clone().with("component", component),
                pj,
            );
        }
        // Re-publish the executor-level cycle statistics under the
        // crossbar families so one multiplier run feeds both layers.
        // Stage row widths match the energy model in
        // `ExecutionReport::energy`.
        let stage_meter = |stage: &str| {
            MeterSpec::new(hub, width.clone().with("stage", stage)).with_params(*params)
        };
        let pre = stage_meter("precompute");
        pre.publish_stats(&self.precompute_stats);
        pre.publish_energy(&self.precompute_stats, n / 4 + 2);
        let post = stage_meter("postcompute");
        post.publish_stats(&self.postcompute_stats);
        post.publish_energy(&self.postcompute_stats, 3 * n / 2 + 1);
        // Program-cache health rides along with every report
        // (`cim_core_progcache_*` gauges): stage programs are compiled
        // once per (width, op, layout, opt-level) key, so hit rates
        // near 1 confirm the optimizer's lowering cost is amortized.
        crate::progcache::publish_metrics(hub);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::KaratsubaCimMultiplier;
    use cim_bigint::Uint;
    use cim_crossbar::meter::{METRIC_XBAR_CYCLES, METRIC_XBAR_ENERGY};

    #[test]
    fn publish_covers_all_families_keyed_by_width() {
        let mut mult = KaratsubaCimMultiplier::new(64).unwrap();
        let hub = MetricsHub::recording();
        mult.attach_metrics(&hub, EnergyParams::default());
        let a = Uint::from_u64(u64::MAX);
        let out = mult.multiply(&a, &a).unwrap();
        let snap = hub.snapshot();

        let width = Labels::new().with("width_bits", 64);
        for (i, stage) in STAGE_LABELS.iter().enumerate() {
            let labels = width.clone().with("stage", *stage);
            let h = snap
                .histogram_with(METRIC_CORE_STAGE_CYCLES, &labels)
                .unwrap_or_else(|| panic!("missing stage histogram {stage}"));
            assert_eq!(h.count(), 1);
            assert_eq!(h.max(), out.report.stage_cycles[i]);
            assert_eq!(
                snap.number_with(METRIC_CORE_WRITES, &labels),
                Some(out.report.endurance[i].total_writes as f64)
            );
        }
        assert_eq!(
            snap.histogram_with(METRIC_CORE_TOTAL_LATENCY, &width)
                .unwrap()
                .max(),
            out.report.total_latency
        );
        assert_eq!(
            snap.number_with(METRIC_CORE_MULTIPLICATIONS, &width),
            Some(1.0)
        );
        assert_eq!(
            snap.number_with(METRIC_CORE_AREA_CELLS, &width),
            Some(out.report.area_cells as f64)
        );
        let energy = out.report.energy(64, &EnergyParams::default());
        for (component, pj) in energy.components() {
            assert_eq!(
                snap.number_with(
                    METRIC_CORE_ENERGY,
                    &width.clone().with("component", component)
                ),
                Some(pj)
            );
        }
        // Crossbar families appear with stage labels, mirroring the
        // executor statistics exactly.
        assert_eq!(
            snap.number_with(
                METRIC_XBAR_CYCLES,
                &width
                    .clone()
                    .with("stage", "precompute")
                    .with("op_class", "magic")
            ),
            Some(out.report.precompute_stats.magic_cycles as f64)
        );
        assert!(snap
            .number_with(
                METRIC_XBAR_ENERGY,
                &width
                    .clone()
                    .with("stage", "postcompute")
                    .with("component", "magic")
            )
            .unwrap()
            > 0.0);
        // Program-cache gauges ride along with the report.
        assert!(
            snap.number("cim_core_progcache_entries").unwrap() >= 1.0,
            "progcache entry gauge must be published"
        );
        assert!(snap.number("cim_core_progcache_misses").unwrap() >= 1.0);
        assert!(snap.number("cim_core_progcache_hits").is_some());
    }

    #[test]
    fn repeated_multiplications_accumulate() {
        let mut mult = KaratsubaCimMultiplier::new(16).unwrap();
        let hub = MetricsHub::recording();
        mult.attach_metrics(&hub, EnergyParams::default());
        let a = Uint::from_u64(0x1234);
        for _ in 0..3 {
            mult.multiply(&a, &a).unwrap();
        }
        let snap = hub.snapshot();
        let width = Labels::new().with("width_bits", 16);
        assert_eq!(
            snap.number_with(METRIC_CORE_MULTIPLICATIONS, &width),
            Some(3.0)
        );
        assert_eq!(
            snap.histogram_with(METRIC_CORE_TOTAL_LATENCY, &width)
                .unwrap()
                .count(),
            3
        );
    }
}
