//! A functional depth-1 (classic one-level Karatsuba) pipeline — the
//! ablation counterpart to the paper's L = 2 design point.
//!
//! Fig. 4 compares unroll depths analytically; this module makes the
//! L = 1 alternative *executable* so the comparison can be simulated:
//!
//! * stage 1: two `n/2`-bit additions (`a_m = a_h + a_l`,
//!   `b_m = b_h + b_l`) on one shared Kogge-Stone adder;
//! * stage 2: three parallel in-row multiplications of `n/2+1`-bit
//!   operands — note the rows are ~4× longer than at L = 2, which is
//!   exactly the practicality cost Fig. 4's ATP captures;
//! * stage 3: three adder passes
//!   (`v = c_h + c_l`, `c̃_m = c_m − v`, final LSB-optimized add).

use cim_bigint::Uint;
use cim_crossbar::{Crossbar, CrossbarError, Executor, MicroOp};
use cim_logic::kogge_stone::{AddOp, AdderLayout, KoggeStoneAdder, SCRATCH_ROWS};
use cim_logic::multpim::RowMultiplier;
use cim_trace::{Args, ProcessId, Tracer};

/// Report of one depth-1 multiplication.
#[derive(Debug, Clone, PartialEq)]
pub struct Depth1Outcome {
    /// The verified product.
    pub product: Uint,
    /// Measured stage cycles `[pre, mult, post]`.
    pub stage_cycles: [u64; 3],
    /// Total area of the three stage arrays in cells.
    pub area_cells: u64,
}

/// One-level Karatsuba multiplier on simulated CIM crossbars.
///
/// ```
/// use cim_bigint::Uint;
/// use karatsuba_cim::depth1::KaratsubaDepth1Multiplier;
///
/// # fn main() -> Result<(), cim_crossbar::CrossbarError> {
/// let mult = KaratsubaDepth1Multiplier::new(32)?;
/// let out = mult.multiply(&Uint::from_u64(0xDEAD_BEEF), &Uint::from_u64(0x1234_5678))?;
/// assert_eq!(out.product, Uint::from_u128(0xDEAD_BEEFu128 * 0x1234_5678u128));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KaratsubaDepth1Multiplier {
    n: usize,
    multiplier: RowMultiplier,
}

impl KaratsubaDepth1Multiplier {
    /// Creates an `n`-bit depth-1 multiplier (`n` even, ≥ 8).
    ///
    /// # Errors
    ///
    /// Currently infallible; fallible for interface symmetry.
    ///
    /// # Panics
    ///
    /// Panics if `n` is odd or < 8.
    pub fn new(n: usize) -> Result<Self, CrossbarError> {
        assert!(n >= 8 && n.is_multiple_of(2), "width must be even, at least 8");
        Ok(KaratsubaDepth1Multiplier {
            n,
            multiplier: RowMultiplier::new(n / 2 + 1),
        })
    }

    /// Row length of one stage-2 multiplier row: `12·(n/2+1)` —
    /// compare `12·(n/4+2)` at L = 2.
    pub fn mult_row_length(&self) -> usize {
        self.multiplier.required_cols()
    }

    /// Total area: stage 1 `(4+2+12)×(n/2+2)` + stage 2 `3×12(n/2+1)`
    /// + stage 3 `20×1.5n`.
    pub fn area_cells(&self) -> u64 {
        let pre = (4 + 2 + SCRATCH_ROWS as u64) * (self.n as u64 / 2 + 2);
        let mult = 3 * self.mult_row_length() as u64;
        let post = 20 * (3 * self.n as u64 / 2);
        pre + mult + post
    }

    /// Multiplies on simulated hardware, measuring each stage.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from execution.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `n` bits.
    pub fn multiply(&self, a: &Uint, b: &Uint) -> Result<Depth1Outcome, CrossbarError> {
        self.multiply_traced(a, b, &Tracer::disabled())
    }

    /// [`KaratsubaDepth1Multiplier::multiply`] with tracing: the run is
    /// one trace process (`depth1 n=<width>`) with a track per stage
    /// (three tracks for the parallel stage-2 rows), stages laid out
    /// back-to-back. The micro-op sequence is identical to the
    /// untraced path.
    ///
    /// # Errors
    ///
    /// Propagates [`CrossbarError`] from execution.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `n` bits.
    pub fn multiply_traced(
        &self,
        a: &Uint,
        b: &Uint,
        tracer: &Tracer,
    ) -> Result<Depth1Outcome, CrossbarError> {
        let n = self.n;
        let h = n / 2;
        let enabled = tracer.is_enabled();
        let pid = if enabled {
            tracer.process(&format!("depth1 n={n}"))
        } else {
            ProcessId(0)
        };

        // ---- Stage 1: a_m, b_m on a shared (n/2)-bit adder ----
        // Rows: a_l a_h b_l b_h (0–3), a_m b_m (4–5), scratch 6–17.
        let pre_cols = h + 2;
        let mut pre = Crossbar::new(4 + 2 + SCRATCH_ROWS, pre_cols)?;
        let a_l = a.low_bits(h);
        let a_h = a.shr(h);
        let b_l = b.low_bits(h);
        let b_h = b.shr(h);
        let mut exec = Executor::new(&mut pre);
        let pre_track = tracer.track(pid, "stage 1 (precompute)");
        exec.attach_tracer_at(tracer, pre_track, 0);
        let pre_span = tracer.span_at(pre_track, "precompute", 0);
        // Operand writes + both additions as one verified program.
        let mut stage1 = Vec::new();
        for (i, v) in [&a_l, &a_h, &b_l, &b_h].iter().enumerate() {
            stage1.push(MicroOp::write_row(i, &v.to_bits(pre_cols)));
        }
        let scratch: [usize; SCRATCH_ROWS] = std::array::from_fn(|i| 6 + i);
        for (x, y, sum) in [(1usize, 0usize, 4usize), (3, 2, 5)] {
            let adder = KoggeStoneAdder::with_layout(
                h,
                AdderLayout {
                    x_row: x,
                    y_row: y,
                    sum_row: sum,
                    scratch,
                    col_base: 0,
                },
            );
            stage1.extend_from_slice(&crate::progcache::adder_program(&adder, AddOp::Add));
        }
        cim_check::debug_assert_verified(
            &stage1,
            &cim_check::VerifyConfig::new(4 + 2 + SCRATCH_ROWS, pre_cols),
            "KaratsubaDepth1Multiplier stage 1",
        );
        exec.run(&stage1)?;
        let a_m = Uint::from_bits(&exec.array().read_row_bits(4, 0..pre_cols)?);
        let b_m = Uint::from_bits(&exec.array().read_row_bits(5, 0..pre_cols)?);
        exec.step(&MicroOp::reset_region(0..6, 0..pre_cols))?;
        let pre_cycles = exec.stats().cycles;
        pre_span.end(pre_cycles);

        // ---- Stage 2: three parallel in-row multiplications ----
        let mut mult_array = Crossbar::new(3, self.mult_row_length())?;
        let (c_l, _) = self.multiplier.run_in(&mut mult_array, 0, 0, &a_l, &b_l)?;
        let (c_h, _) = self.multiplier.run_in(&mut mult_array, 1, 0, &a_h, &b_h)?;
        let (c_m, _) = self.multiplier.run_in(&mut mult_array, 2, 0, &a_m, &b_m)?;
        let mult_cycles = self.multiplier.latency();
        if enabled {
            for (i, name) in ["c_l", "c_h", "c_m"].iter().enumerate() {
                let track = tracer.track(pid, &format!("mult row {i}"));
                tracer.complete(
                    track,
                    *name,
                    pre_cycles,
                    mult_cycles,
                    Args::new().with("row", i as i64),
                );
            }
        }

        // ---- Stage 3: three passes on a 1.5n-bit adder ----
        let w = 3 * n / 2;
        let mut post = Crossbar::new(8 + SCRATCH_ROWS, w + 1)?;
        let adder = KoggeStoneAdder::with_layout(
            w,
            AdderLayout {
                x_row: 0,
                y_row: 1,
                sum_row: 2,
                scratch: std::array::from_fn(|i| 8 + i),
                col_base: 0,
            },
        );
        let mut exec = Executor::new(&mut post);
        let post_track = tracer.track(pid, "stage 3 (postcompute)");
        let post_start = pre_cycles + mult_cycles;
        exec.attach_tracer_at(tracer, post_track, post_start);
        let post_span = tracer.span_at(post_track, "postcompute", post_start);
        let pass = |exec: &mut Executor<'_>,
                        name: &'static str,
                        op: AddOp,
                        x: &Uint,
                        y: &Uint|
         -> Result<Uint, CrossbarError> {
            let span = tracer.span_at(post_track, name, post_start + exec.stats().cycles);
            crate::postcompute::run_pass(exec, &adder, op, cim_mir::OptLevel::O0, x, y)?;
            span.end(post_start + exec.stats().cycles);
            let bits = exec.array().read_row_bits(2, 0..w + 1)?;
            let full = Uint::from_bits(&bits);
            Ok(match op {
                AddOp::Add => full,
                AddOp::Sub => full.low_bits(w),
            })
        };
        let v = pass(&mut exec, "pass 1: v", AddOp::Add, &c_h, &c_l)?;
        let ct_m = pass(&mut exec, "pass 2: c~_m", AddOp::Sub, &c_m, &v)?;
        let base_top = c_l.add(&c_h.shl(n)).shr(h);
        let c_top = pass(&mut exec, "pass 3: c_top", AddOp::Add, &base_top, &ct_m)?;
        let product = c_top.shl(h).add(&c_l.low_bits(h));
        exec.step(&MicroOp::reset_region(0..8 + SCRATCH_ROWS, 0..w + 1))?;
        let post_cycles = exec.stats().cycles;
        post_span.end(post_start + post_cycles);

        debug_assert_eq!(product, a * b);
        Ok(Depth1Outcome {
            product,
            stage_cycles: [pre_cycles, mult_cycles, post_cycles],
            area_cells: self.area_cells(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DepthCostModel;
    use crate::multiplier::KaratsubaCimMultiplier;
    use cim_bigint::rng::UintRng;

    #[test]
    fn multiplies_correctly() {
        let mut rng = UintRng::seeded(111);
        for n in [8usize, 32, 64, 128] {
            let mult = KaratsubaDepth1Multiplier::new(n).unwrap();
            let a = rng.uniform(n);
            let b = rng.uniform(n);
            let out = mult.multiply(&a, &b).unwrap();
            assert_eq!(out.product, &a * &b, "n = {n}");
        }
    }

    #[test]
    fn agrees_with_depth2_pipeline() {
        let mut rng = UintRng::seeded(112);
        let n = 64;
        let d1 = KaratsubaDepth1Multiplier::new(n).unwrap();
        let d2 = KaratsubaCimMultiplier::new(n).unwrap();
        let a = rng.exact_bits(n);
        let b = rng.exact_bits(n);
        assert_eq!(
            d1.multiply(&a, &b).unwrap().product,
            d2.multiply(&a, &b).unwrap().product
        );
    }

    #[test]
    fn mult_rows_are_much_longer_than_depth2() {
        // The L = 1 practicality cost: ~2x longer multiplier rows.
        let n = 384;
        let d1 = KaratsubaDepth1Multiplier::new(n).unwrap();
        let d2_row = 12 * (n / 4 + 2);
        assert!(d1.mult_row_length() > 19 * n / 10, "{}", d1.mult_row_length());
        assert!(d1.mult_row_length() as f64 > 1.9 * d2_row as f64);
    }

    #[test]
    fn measured_stage_cycles_track_depth_model() {
        let n = 64;
        let d1 = KaratsubaDepth1Multiplier::new(n).unwrap();
        let model = DepthCostModel::new(n, 1);
        let a = Uint::pow2(n).sub(&Uint::one());
        let out = d1.multiply(&a, &a).unwrap();
        // Stage 2 exactly matches the model.
        assert_eq!(out.stage_cycles[1], model.multiply_latency());
        // Stages 1 and 3 within 15% (staging-op accounting differences).
        for (mine, theirs) in [
            (out.stage_cycles[0], model.precompute_latency()),
            (out.stage_cycles[2], model.postcompute_latency()),
        ] {
            let rel = (mine as f64 - theirs as f64).abs() / theirs as f64;
            assert!(rel < 0.15, "measured {mine} vs model {theirs}");
        }
    }

    #[test]
    fn simulated_atp_ordering_matches_fig4() {
        // At n = 384 the L = 2 design must win on simulated ATP.
        let n = 384;
        let mut rng = UintRng::seeded(113);
        let a = rng.exact_bits(n);
        let b = rng.exact_bits(n);

        let d1 = KaratsubaDepth1Multiplier::new(n).unwrap();
        let o1 = d1.multiply(&a, &b).unwrap();
        let ii1 = *o1.stage_cycles.iter().max().unwrap() + 9;
        let atp1 = o1.area_cells as f64 / (1.0e6 / ii1 as f64);

        let d2 = KaratsubaCimMultiplier::new(n).unwrap();
        let o2 = d2.multiply(&a, &b).unwrap();
        let ii2 = *o2.report.stage_cycles.iter().max().unwrap() + 27;
        let atp2 = o2.report.area_cells as f64 / (1.0e6 / ii2 as f64);

        assert!(atp2 < atp1, "L2 ATP {atp2} must beat L1 ATP {atp1}");
    }
}
