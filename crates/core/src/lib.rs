//! # karatsuba-cim — the paper's contribution
//!
//! A three-stage pipelined, depth-2 **unrolled-Karatsuba** large
//! integer multiplier for resistive CIM crossbars, reproducing
//! *"Exploring Large Integer Multiplication for Cryptography Targeting
//! In-Memory Computing"* (DATE 2025), Sec. IV:
//!
//! * [`chunks`] — operand decomposition and the Fig. 3 dataflow
//!   (chunk / partial-product naming used by the other stages);
//! * [`precompute`] — Stage 1 (Sec. IV-C): 10 chunk additions on a
//!   shared `n/4+1`-bit Kogge-Stone adder in a
//!   `(8+10+12) × (n/4+2)` array;
//! * [`multiply`] — Stage 2 (Sec. IV-D): 9 parallel single-row
//!   multipliers (`9 × 12·(n/4+2)` cells);
//! * [`postcompute`] — Stage 3 (Sec. IV-E): 11 batched Kogge-Stone
//!   passes on a `1.5n`-bit adder implementing the Fig. 7 schedule,
//!   including the paper's 25 % LSB area optimization;
//! * [`pipeline`] — the three-stage pipeline (Fig. 5): latency is the
//!   sum of the stage latencies, throughput is set by the slowest
//!   stage (plus the 27-cycle operand/product handoff);
//! * [`multiplier`] — [`multiplier::KaratsubaCimMultiplier`], the
//!   top-level API that runs all three stages on simulated crossbars
//!   and verifies the product against the software gold model;
//! * [`cost`] — the closed-form area/latency/throughput/ATP/endurance
//!   model for arbitrary `(n, L)`, reproducing the paper's Table I
//!   "Our" rows exactly and generating Fig. 4.
//!
//! ## Example
//!
//! ```
//! use cim_bigint::Uint;
//! use karatsuba_cim::multiplier::KaratsubaCimMultiplier;
//!
//! # fn main() -> Result<(), karatsuba_cim::multiplier::MultiplyError> {
//! let mult = KaratsubaCimMultiplier::new(64)?;
//! let a = Uint::from_hex("fedcba9876543210").expect("hex");
//! let b = Uint::from_hex("0123456789abcdef").expect("hex");
//! let outcome = mult.multiply(&a, &b)?;
//! assert_eq!(outcome.product, &a * &b);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunks;
pub mod depth1;
pub mod cost;
pub mod metrics;
pub mod multiplier;
pub mod multiply;
pub mod pipeline;
pub mod postcompute;
pub mod precompute;
pub mod progcache;

/// The paper's chosen unroll depth (Fig. 4 shows L = 2 minimizes the
/// area-time product across cryptographically relevant sizes).
pub const PAPER_DEPTH: u32 = 2;

/// Operand sizes evaluated in the paper's Table I.
pub const PAPER_SIZES: [usize; 4] = [64, 128, 256, 384];
