//! Batch execution: the Karatsuba Multiplication Controller (Fig. 5)
//! streaming many multiplications through the pipeline.
//!
//! Each stage keeps its subarray across jobs, so wear *accumulates*
//! exactly as it would in hardware; the timing of the overlapped
//! execution comes from the pipeline schedule. This is what turns the
//! per-multiplication endurance numbers of Table I into an array
//! lifetime statement.

use crate::cost::HANDOFF_CYCLES;
use crate::multiplier::{KaratsubaCimMultiplier, MultiplyError};
use crate::pipeline::PipelineSchedule;
use cim_bigint::Uint;
use cim_crossbar::{EnduranceReport, CELL_ENDURANCE_WRITES};

/// Report of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Number of multiplications executed (all verified).
    pub multiplications: usize,
    /// Pipelined makespan in cycles (from the schedule).
    pub makespan_cycles: u64,
    /// Steady-state throughput in multiplications per 10^6 cycles.
    pub throughput_per_mcc: f64,
    /// Accumulated endurance per stage `[pre, mult, post]`.
    pub endurance: [EnduranceReport; 3],
}

impl BatchReport {
    /// Worst per-cell writes across all three stage arrays.
    pub fn max_writes(&self) -> u64 {
        self.endurance
            .iter()
            .map(|e| e.max_writes)
            .max()
            .unwrap_or(0)
    }

    /// Writes to the hottest cell per multiplication (amortized).
    pub fn writes_per_multiplication(&self) -> f64 {
        self.max_writes() as f64 / self.multiplications.max(1) as f64
    }

    /// Multiplications until the hottest cell reaches the ReRAM
    /// endurance limit, extrapolated from this batch's wear rate.
    pub fn projected_lifetime_multiplications(&self) -> u64 {
        let per_mult = self.writes_per_multiplication();
        if per_mult <= 0.0 {
            u64::MAX
        } else {
            (CELL_ENDURANCE_WRITES as f64 / per_mult) as u64
        }
    }
}

/// Runs a batch of multiplications through a single multiplier
/// (persistent stage arrays), verifying every product.
///
/// # Errors
///
/// Propagates the first simulation or verification error.
///
/// # Panics
///
/// Panics if an operand does not fit the multiplier width.
pub fn run_batch(
    multiplier: &KaratsubaCimMultiplier,
    pairs: &[(Uint, Uint)],
) -> Result<BatchReport, MultiplyError> {
    let mut endurance: Option<[EnduranceReport; 3]> = None;
    let mut stage_cycles = [0u64; 3];
    for (a, b) in pairs {
        let out = multiplier.multiply(a, b)?;
        stage_cycles = out.report.stage_cycles;
        endurance = Some(match endurance {
            None => out.report.endurance,
            Some(acc) => accumulate(acc, out.report.endurance),
        });
    }
    let endurance = endurance.unwrap_or_else(|| {
        let empty = EnduranceReport {
            max_writes: 0,
            total_writes: 0,
            cells_touched: 0,
            cells_total: 0,
        };
        [empty.clone(), empty.clone(), empty]
    });
    let schedule = PipelineSchedule::simulate(pairs.len().max(1), stage_cycles, HANDOFF_CYCLES);
    Ok(BatchReport {
        multiplications: pairs.len(),
        makespan_cycles: schedule
            .jobs
            .last()
            .map(crate::pipeline::JobTiming::completed_at)
            .unwrap_or(0),
        throughput_per_mcc: schedule.throughput_per_mcc(),
        endurance,
    })
}

/// Accumulates per-stage endurance across jobs (the stage arrays are
/// physically the same cells each time).
fn accumulate(
    acc: [EnduranceReport; 3],
    add: [EnduranceReport; 3],
) -> [EnduranceReport; 3] {
    std::array::from_fn(|i| EnduranceReport {
        max_writes: acc[i].max_writes + add[i].max_writes,
        total_writes: acc[i].total_writes + add[i].total_writes,
        cells_touched: acc[i].cells_touched.max(add[i].cells_touched),
        cells_total: add[i].cells_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_bigint::rng::UintRng;

    fn pairs(n: usize, count: usize, seed: u64) -> Vec<(Uint, Uint)> {
        let mut rng = UintRng::seeded(seed);
        (0..count).map(|_| (rng.uniform(n), rng.uniform(n))).collect()
    }

    #[test]
    fn batch_reports_scale_with_size() {
        let mult = KaratsubaCimMultiplier::new(32).unwrap();
        let small = run_batch(&mult, &pairs(32, 2, 1)).unwrap();
        let large = run_batch(&mult, &pairs(32, 6, 1)).unwrap();
        assert_eq!(small.multiplications, 2);
        assert_eq!(large.multiplications, 6);
        assert!(large.makespan_cycles > small.makespan_cycles);
        assert!(large.max_writes() > small.max_writes());
        // Steady-state throughput is batch-size independent.
        assert!((large.throughput_per_mcc - small.throughput_per_mcc).abs() < 1e-9);
    }

    #[test]
    fn amortized_writes_are_stable() {
        let mult = KaratsubaCimMultiplier::new(16).unwrap();
        let r = run_batch(&mult, &pairs(16, 5, 2)).unwrap();
        let per = r.writes_per_multiplication();
        assert!(per > 0.0);
        // Within 2x of a single run's max writes (same workload shape).
        let single = run_batch(&mult, &pairs(16, 1, 2)).unwrap();
        assert!(per <= 2.0 * single.max_writes() as f64);
        assert!(r.projected_lifetime_multiplications() > 1_000_000);
    }

    #[test]
    fn empty_batch() {
        let mult = KaratsubaCimMultiplier::new(16).unwrap();
        let r = run_batch(&mult, &[]).unwrap();
        assert_eq!(r.multiplications, 0);
        assert_eq!(r.max_writes(), 0);
    }

    #[test]
    fn throughput_matches_design_point() {
        let mult = KaratsubaCimMultiplier::new(64).unwrap();
        let r = run_batch(&mult, &pairs(64, 4, 3)).unwrap();
        let d = mult.design_point();
        // Stage 3 measured differs ≤2% from the paper formula, so the
        // batch throughput must be within 2% of the model's.
        let rel = (r.throughput_per_mcc - d.throughput_per_mcc()).abs() / d.throughput_per_mcc();
        assert!(rel < 0.02, "rel = {rel}");
    }
}
