//! Compiled-program cache: memoized MAGIC micro-op programs.
//!
//! The micro-op programs the stages execute are functions of *widths
//! and layouts only* — the Kogge–Stone adder program for a given
//! `(width, op, layout)` triple, and therefore the whole operand-
//! independent addition suffix of the precompute stage, are identical
//! across multiplications. Regenerating them per multiply costs
//! allocation and network construction on every call; this module
//! caches them process-wide as `Arc<[MicroOp]>` slices, the same way
//! `cim-sched`'s profile table caches one `JobProfile` per job class.
//!
//! Only operand-*independent* program parts are cached (adder bodies,
//! the precompute addition tree). Operand writes are always rebuilt —
//! they embed data bits.
//!
//! Hit/miss counters are exposed via [`stats`] so benchmarks and tests
//! can assert the cache is actually doing something.

use cim_crossbar::MicroOp;
use cim_logic::kogge_stone::{AddOp, AdderLayout, KoggeStoneAdder};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Key of one cached adder program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AdderKey {
    width: usize,
    op: AddOp,
    layout: AdderLayout,
}

/// Key of one cached precompute addition suffix: the stage's adder
/// width plus how many tree additions run (10 for a general multiply,
/// 5 for a square).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SuffixKey {
    adder_width: usize,
    additions: usize,
}

/// One cache entry: a per-key [`OnceLock`] so construction runs
/// *exactly once* per key process-wide. Racing first callers block on
/// the slot (not the whole map) until the winner's compile finishes —
/// distinct keys still compile in parallel, and a duplicate compile
/// can never race into the cache.
type Slot = Arc<OnceLock<Arc<[MicroOp]>>>;

#[derive(Default)]
struct Caches {
    adders: HashMap<AdderKey, Slot>,
    suffixes: HashMap<SuffixKey, Slot>,
}

static CACHES: OnceLock<Mutex<Caches>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn caches() -> &'static Mutex<Caches> {
    CACHES.get_or_init(Mutex::default)
}

/// `(hits, misses)` of the process-wide program cache. A *miss* is a
/// call that ran the compile itself; every other call — including
/// those that blocked on a racing compile — is a hit, so
/// `misses` equals the number of distinct keys ever constructed and
/// `hits + misses` equals the number of lookups.
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Resolves a slot: at most one caller ever runs `compile` (the
/// `OnceLock` serializes same-key racers), everyone shares the single
/// stored allocation.
fn resolve(slot: &Slot, compile: impl FnOnce() -> Arc<[MicroOp]>) -> Arc<[MicroOp]> {
    let mut compiled = false;
    let prog = slot.get_or_init(|| {
        compiled = true;
        compile()
    });
    if compiled {
        MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    Arc::clone(prog)
}

/// The adder's program for `op`, compiled once per
/// `(width, op, layout)` and shared afterwards. Identical, op for op,
/// to what [`KoggeStoneAdder::program`] returns.
pub fn adder_program(adder: &KoggeStoneAdder, op: AddOp) -> Arc<[MicroOp]> {
    let key = AdderKey {
        width: adder.width(),
        op,
        layout: adder.layout().clone(),
    };
    // The map lock only guards slot lookup; compiles run outside it.
    let slot = {
        let mut guard = caches().lock().expect("progcache poisoned");
        Arc::clone(guard.adders.entry(key).or_default())
    };
    resolve(&slot, || adder.program(op).into())
}

/// An operand-independent addition suffix (a concatenation of adder
/// programs, all of the same length), compiled once per key via
/// `build` and shared afterwards. The caller keys by everything the
/// suffix depends on; `cim-core` uses `(adder_width, additions)` for
/// the precompute tree.
pub(crate) fn precompute_suffix(
    adder_width: usize,
    additions: usize,
    build: impl FnOnce() -> Vec<MicroOp>,
) -> Arc<[MicroOp]> {
    let key = SuffixKey {
        adder_width,
        additions,
    };
    let slot = {
        let mut guard = caches().lock().expect("progcache poisoned");
        Arc::clone(guard.suffixes.entry(key).or_default())
    };
    resolve(&slot, || build().into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_logic::kogge_stone::SCRATCH_ROWS;

    fn layout(sum_row: usize) -> AdderLayout {
        AdderLayout {
            x_row: 0,
            y_row: 1,
            sum_row,
            scratch: std::array::from_fn(|i| 8 + i),
            col_base: 0,
        }
    }

    #[test]
    fn cached_program_is_identical_to_fresh_compile() {
        let adder = KoggeStoneAdder::with_layout(16, layout(2));
        for op in [AddOp::Add, AddOp::Sub] {
            let cached = adder_program(&adder, op);
            assert_eq!(cached.as_ref(), adder.program(op).as_slice());
        }
    }

    #[test]
    fn same_key_shares_one_allocation() {
        let adder = KoggeStoneAdder::with_layout(24, layout(2));
        let a = adder_program(&adder, AddOp::Add);
        let b = adder_program(&adder, AddOp::Add);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let (hits, _) = stats();
        assert!(hits >= 1);
    }

    #[test]
    fn distinct_layouts_do_not_collide() {
        let a = adder_program(&KoggeStoneAdder::with_layout(16, layout(2)), AddOp::Add);
        let b = adder_program(&KoggeStoneAdder::with_layout(16, layout(3)), AddOp::Add);
        assert!(!Arc::ptr_eq(&a, &b));
        // Programs for different sum rows must differ somewhere.
        assert_ne!(a.as_ref(), b.as_ref());
        let _ = SCRATCH_ROWS; // layout() above must match the real count
    }

    #[test]
    fn concurrent_compilation_constructs_each_key_exactly_once() {
        use std::sync::atomic::AtomicUsize;

        // Keys unique to this test (other tests share the process-wide
        // cache, so reuse would turn first calls into hits).
        const THREADS: usize = 16;
        const ROUNDS: usize = 8;
        const SHARED_WIDTH: usize = 131; // all threads race this key
        const SUFFIX_KEYS: std::ops::Range<usize> = 7001..7005;

        let builds = SUFFIX_KEYS.map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        let (hits_before, misses_before) = stats();

        let canonical: Arc<[MicroOp]> = KoggeStoneAdder::with_layout(SHARED_WIDTH, layout(2))
            .program(AddOp::Add)
            .into();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let builds = &builds;
                let canonical = &canonical;
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        // Everyone hammers the same adder key…
                        let adder = KoggeStoneAdder::with_layout(SHARED_WIDTH, layout(2));
                        let prog = adder_program(&adder, AddOp::Add);
                        assert_eq!(prog.as_ref(), canonical.as_ref());
                        // …and a distinct-per-thread key, so distinct
                        // compiles overlap same-key races.
                        let own = KoggeStoneAdder::with_layout(140 + t, layout(2));
                        let own_prog = adder_program(&own, AddOp::Add);
                        assert_eq!(own_prog.as_ref(), own.program(AddOp::Add).as_slice());
                        // Suffix keys are contended by all threads; the
                        // per-key counter proves the builder can never
                        // run twice, even mid-race.
                        let k = (t + round) % builds.len();
                        let _ = precompute_suffix(SUFFIX_KEYS.start + k, 10, || {
                            builds[k].fetch_add(1, Ordering::Relaxed);
                            vec![MicroOp::reset_region(0..1, 0..4)]
                        });
                    }
                });
            }
        });

        for (k, b) in builds.iter().enumerate() {
            assert_eq!(
                b.load(Ordering::Relaxed),
                1,
                "suffix key {k} must be constructed exactly once"
            );
        }
        // All racers on the shared key resolved to one allocation.
        let shared = adder_program(
            &KoggeStoneAdder::with_layout(SHARED_WIDTH, layout(2)),
            AddOp::Add,
        );
        let again = adder_program(
            &KoggeStoneAdder::with_layout(SHARED_WIDTH, layout(2)),
            AddOp::Add,
        );
        assert!(Arc::ptr_eq(&shared, &again));
        // Stats stay consistent under the race: every lookup counted
        // exactly once (other tests run concurrently in this process,
        // so the delta is a lower bound, not an equality).
        let (hits_after, misses_after) = stats();
        let calls = (THREADS * ROUNDS * 3 + 2) as u64;
        assert!(
            hits_after + misses_after - hits_before - misses_before >= calls,
            "every lookup must be counted as hit or miss"
        );
        assert!(hits_after > hits_before, "contended keys must produce hits");
    }

    #[test]
    fn suffix_builder_runs_once_per_key() {
        use std::sync::atomic::AtomicUsize;
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        let build = || {
            BUILDS.fetch_add(1, Ordering::Relaxed);
            vec![MicroOp::reset_region(0..1, 0..909)]
        };
        let a = precompute_suffix(909, 10, build);
        let b = precompute_suffix(909, 10, build);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(BUILDS.load(Ordering::Relaxed), 1);
    }
}
