//! Compiled-program cache: memoized MAGIC micro-op programs.
//!
//! The micro-op programs the stages execute are functions of *widths
//! and layouts only* — the Kogge–Stone adder program for a given
//! `(width, op, layout, opt)` quadruple, and therefore the whole
//! operand-independent addition suffix of the precompute stage, are
//! identical across multiplications. Regenerating them per multiply
//! costs allocation, network construction and (at `O1`+) a full
//! optimizer pipeline run on every call; this module caches them
//! process-wide as `Arc<[MicroOp]>` slices, the same way `cim-sched`'s
//! profile table caches one `JobProfile` per job class.
//!
//! Only operand-*independent* program parts are cached (adder bodies,
//! the precompute addition tree). Operand writes are always rebuilt —
//! they embed data bits.
//!
//! Keys include the [`OptLevel`] the program was lowered at, so
//! paper-exact (`O0`) and optimized programs coexist without
//! invalidation. Hit/miss/entry counters are exposed via [`stats`] and
//! [`entries`], and published to a metrics hub as
//! `cim_core_progcache_*` counters by
//! [`publish_metrics`].

use cim_crossbar::MicroOp;
use cim_logic::kogge_stone::{AddOp, AdderLayout, KoggeStoneAdder};
use cim_mir::OptLevel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Key of one cached adder program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AdderKey {
    width: usize,
    op: AddOp,
    layout: AdderLayout,
    opt: OptLevel,
}

/// Key of one cached precompute addition suffix: the stage's adder
/// width, how many tree additions run (10 for a general multiply, 5
/// for a square), and the optimization level the suffix was lowered
/// at.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SuffixKey {
    adder_width: usize,
    additions: usize,
    opt: OptLevel,
}

/// A cached, possibly optimized addition suffix. `bounds[i]` is one
/// past the last op of addition `i`, so callers can attribute trace
/// spans per addition even when optimization leaves the additions with
/// different lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SuffixProgram {
    /// The concatenated per-addition programs.
    pub ops: Arc<[MicroOp]>,
    /// Cumulative per-addition end indices into `ops` (one per
    /// addition; the last equals `ops.len()`).
    pub bounds: Arc<[usize]>,
}

/// One cache entry: a per-key [`OnceLock`] so construction runs
/// *exactly once* per key process-wide. Racing first callers block on
/// the slot (not the whole map) until the winner's compile finishes —
/// distinct keys still compile in parallel, and a duplicate compile
/// can never race into the cache.
type Slot<T> = Arc<OnceLock<T>>;

#[derive(Default)]
struct Caches {
    adders: HashMap<AdderKey, Slot<Arc<[MicroOp]>>>,
    suffixes: HashMap<SuffixKey, Slot<SuffixProgram>>,
}

static CACHES: OnceLock<Mutex<Caches>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn caches() -> &'static Mutex<Caches> {
    CACHES.get_or_init(Mutex::default)
}

/// `(hits, misses)` of the process-wide program cache. A *miss* is a
/// call that ran the compile itself; every other call — including
/// those that blocked on a racing compile — is a hit, so
/// `misses` equals the number of distinct keys ever constructed and
/// `hits + misses` equals the number of lookups.
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Number of distinct programs resident in the cache.
pub fn entries() -> u64 {
    let guard = caches().lock().expect("progcache poisoned");
    (guard.adders.len() + guard.suffixes.len()) as u64
}

/// Publishes the cache counters to a metrics hub:
/// `cim_core_progcache_hits`, `cim_core_progcache_misses` and
/// `cim_core_progcache_entries`. Values are absolute process-wide
/// totals (published as gauges so repeated publication is idempotent
/// per scrape, not additive).
pub fn publish_metrics(hub: &cim_metrics::MetricsHub) {
    if !hub.is_enabled() {
        return;
    }
    let labels = cim_metrics::Labels::new();
    let (hits, misses) = stats();
    hub.set_gauge(
        "cim_core_progcache_hits",
        "compiled-program cache hits (process-wide total)",
        &labels,
        hits as f64,
    );
    hub.set_gauge(
        "cim_core_progcache_misses",
        "compiled-program cache misses, i.e. distinct programs compiled",
        &labels,
        misses as f64,
    );
    hub.set_gauge(
        "cim_core_progcache_entries",
        "programs resident in the compiled-program cache",
        &labels,
        entries() as f64,
    );
}

/// Resolves a slot: at most one caller ever runs `compile` (the
/// `OnceLock` serializes same-key racers), everyone shares the single
/// stored value.
fn resolve<T: Clone>(slot: &Slot<T>, compile: impl FnOnce() -> T) -> T {
    let mut compiled = false;
    let prog = slot.get_or_init(|| {
        compiled = true;
        compile()
    });
    if compiled {
        MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    prog.clone()
}

/// The adder's paper-exact (`O0`) program for `op`, compiled once per
/// key and shared afterwards. Identical, op for op, to what
/// [`KoggeStoneAdder::program`] returns.
pub fn adder_program(adder: &KoggeStoneAdder, op: AddOp) -> Arc<[MicroOp]> {
    adder_program_opt(adder, op, OptLevel::O0)
}

/// The adder's program lowered at `opt`, compiled (and, above `O0`,
/// optimized and verified) once per `(width, op, layout, opt)` and
/// shared afterwards.
pub fn adder_program_opt(adder: &KoggeStoneAdder, op: AddOp, opt: OptLevel) -> Arc<[MicroOp]> {
    let key = AdderKey {
        width: adder.width(),
        op,
        layout: adder.layout().clone(),
        opt,
    };
    // The map lock only guards slot lookup; compiles run outside it.
    let slot = {
        let mut guard = caches().lock().expect("progcache poisoned");
        Arc::clone(guard.adders.entry(key).or_default())
    };
    resolve(&slot, || adder.program_opt(op, opt).into())
}

/// An operand-independent addition suffix (a concatenation of
/// per-addition adder programs plus their end indices), compiled once
/// per key via `build` and shared afterwards. The caller keys by
/// everything the suffix depends on; `cim-core` uses
/// `(adder_width, additions, opt)` for the precompute tree.
pub(crate) fn precompute_suffix(
    adder_width: usize,
    additions: usize,
    opt: OptLevel,
    build: impl FnOnce() -> SuffixProgram,
) -> SuffixProgram {
    let key = SuffixKey {
        adder_width,
        additions,
        opt,
    };
    let slot = {
        let mut guard = caches().lock().expect("progcache poisoned");
        Arc::clone(guard.suffixes.entry(key).or_default())
    };
    resolve(&slot, build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_logic::kogge_stone::SCRATCH_ROWS;

    fn layout(sum_row: usize) -> AdderLayout {
        AdderLayout {
            x_row: 0,
            y_row: 1,
            sum_row,
            scratch: std::array::from_fn(|i| 8 + i),
            col_base: 0,
        }
    }

    fn one_op_suffix(cols: usize) -> SuffixProgram {
        let ops: Arc<[MicroOp]> = vec![MicroOp::reset_region(0..1, 0..cols)].into();
        let bounds: Arc<[usize]> = vec![ops.len()].into();
        SuffixProgram { ops, bounds }
    }

    #[test]
    fn cached_program_is_identical_to_fresh_compile() {
        let adder = KoggeStoneAdder::with_layout(16, layout(2));
        for op in [AddOp::Add, AddOp::Sub] {
            let cached = adder_program(&adder, op);
            assert_eq!(cached.as_ref(), adder.program(op).as_slice());
        }
    }

    #[test]
    fn same_key_shares_one_allocation() {
        let adder = KoggeStoneAdder::with_layout(24, layout(2));
        let a = adder_program(&adder, AddOp::Add);
        let b = adder_program(&adder, AddOp::Add);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let (hits, _) = stats();
        assert!(hits >= 1);
        assert!(entries() >= 1);
    }

    #[test]
    fn distinct_layouts_do_not_collide() {
        let a = adder_program(&KoggeStoneAdder::with_layout(16, layout(2)), AddOp::Add);
        let b = adder_program(&KoggeStoneAdder::with_layout(16, layout(3)), AddOp::Add);
        assert!(!Arc::ptr_eq(&a, &b));
        // Programs for different sum rows must differ somewhere.
        assert_ne!(a.as_ref(), b.as_ref());
        let _ = SCRATCH_ROWS; // layout() above must match the real count
    }

    #[test]
    fn distinct_opt_levels_do_not_collide() {
        let adder = KoggeStoneAdder::with_layout(48, layout(2));
        let o0 = adder_program_opt(&adder, AddOp::Add, OptLevel::O0);
        let o2 = adder_program_opt(&adder, AddOp::Add, OptLevel::O2);
        assert!(!Arc::ptr_eq(&o0, &o2));
        assert_eq!(o0.as_ref(), adder.program(AddOp::Add).as_slice());
        let o0_cycles: u64 = o0.iter().map(MicroOp::cycles).sum();
        let o2_cycles: u64 = o2.iter().map(MicroOp::cycles).sum();
        assert!(o2_cycles < o0_cycles, "optimized program must be shorter");
        // Same keys hit.
        let again = adder_program_opt(&adder, AddOp::Add, OptLevel::O2);
        assert!(Arc::ptr_eq(&o2, &again));
    }

    #[test]
    fn publish_metrics_exports_counters() {
        let adder = KoggeStoneAdder::with_layout(52, layout(2));
        let _ = adder_program(&adder, AddOp::Add);
        let _ = adder_program(&adder, AddOp::Add);
        let hub = cim_metrics::MetricsHub::recording();
        publish_metrics(&hub);
        let snap = hub.snapshot();
        assert!(snap.number("cim_core_progcache_hits").is_some_and(|v| v >= 1.0));
        assert!(snap.number("cim_core_progcache_misses").is_some_and(|v| v >= 1.0));
        assert!(snap.number("cim_core_progcache_entries").is_some_and(|v| v >= 1.0));
    }

    #[test]
    fn concurrent_compilation_constructs_each_key_exactly_once() {
        use std::sync::atomic::AtomicUsize;

        // Keys unique to this test (other tests share the process-wide
        // cache, so reuse would turn first calls into hits).
        const THREADS: usize = 16;
        const ROUNDS: usize = 8;
        const SHARED_WIDTH: usize = 131; // all threads race this key
        const SUFFIX_KEYS: std::ops::Range<usize> = 7001..7005;

        let builds = SUFFIX_KEYS.map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        let (hits_before, misses_before) = stats();

        let canonical: Arc<[MicroOp]> = KoggeStoneAdder::with_layout(SHARED_WIDTH, layout(2))
            .program(AddOp::Add)
            .into();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let builds = &builds;
                let canonical = &canonical;
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        // Everyone hammers the same adder key…
                        let adder = KoggeStoneAdder::with_layout(SHARED_WIDTH, layout(2));
                        let prog = adder_program(&adder, AddOp::Add);
                        assert_eq!(prog.as_ref(), canonical.as_ref());
                        // …and a distinct-per-thread key, so distinct
                        // compiles overlap same-key races.
                        let own = KoggeStoneAdder::with_layout(140 + t, layout(2));
                        let own_prog = adder_program(&own, AddOp::Add);
                        assert_eq!(own_prog.as_ref(), own.program(AddOp::Add).as_slice());
                        // Suffix keys are contended by all threads; the
                        // per-key counter proves the builder can never
                        // run twice, even mid-race.
                        let k = (t + round) % builds.len();
                        let _ = precompute_suffix(SUFFIX_KEYS.start + k, 10, OptLevel::O0, || {
                            builds[k].fetch_add(1, Ordering::Relaxed);
                            one_op_suffix(4)
                        });
                    }
                });
            }
        });

        for (k, b) in builds.iter().enumerate() {
            assert_eq!(
                b.load(Ordering::Relaxed),
                1,
                "suffix key {k} must be constructed exactly once"
            );
        }
        // All racers on the shared key resolved to one allocation.
        let shared = adder_program(
            &KoggeStoneAdder::with_layout(SHARED_WIDTH, layout(2)),
            AddOp::Add,
        );
        let again = adder_program(
            &KoggeStoneAdder::with_layout(SHARED_WIDTH, layout(2)),
            AddOp::Add,
        );
        assert!(Arc::ptr_eq(&shared, &again));
        // Stats stay consistent under the race: every lookup counted
        // exactly once (other tests run concurrently in this process,
        // so the delta is a lower bound, not an equality).
        let (hits_after, misses_after) = stats();
        let calls = (THREADS * ROUNDS * 3 + 2) as u64;
        assert!(
            hits_after + misses_after - hits_before - misses_before >= calls,
            "every lookup must be counted as hit or miss"
        );
        assert!(hits_after > hits_before, "contended keys must produce hits");
    }

    #[test]
    fn suffix_builder_runs_once_per_key() {
        use std::sync::atomic::AtomicUsize;
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        let build = || {
            BUILDS.fetch_add(1, Ordering::Relaxed);
            one_op_suffix(909)
        };
        let a = precompute_suffix(909, 10, OptLevel::O0, build);
        let b = precompute_suffix(909, 10, OptLevel::O0, build);
        assert!(Arc::ptr_eq(&a.ops, &b.ops));
        assert_eq!(BUILDS.load(Ordering::Relaxed), 1);
        // A different opt level is a different key.
        let c = precompute_suffix(909, 10, OptLevel::O3, build);
        assert_eq!(BUILDS.load(Ordering::Relaxed), 2);
        assert!(!Arc::ptr_eq(&a.ops, &c.ops));
    }
}
