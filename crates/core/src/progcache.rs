//! Compiled-program cache: memoized MAGIC micro-op programs.
//!
//! The micro-op programs the stages execute are functions of *widths
//! and layouts only* — the Kogge–Stone adder program for a given
//! `(width, op, layout)` triple, and therefore the whole operand-
//! independent addition suffix of the precompute stage, are identical
//! across multiplications. Regenerating them per multiply costs
//! allocation and network construction on every call; this module
//! caches them process-wide as `Arc<[MicroOp]>` slices, the same way
//! `cim-sched`'s profile table caches one `JobProfile` per job class.
//!
//! Only operand-*independent* program parts are cached (adder bodies,
//! the precompute addition tree). Operand writes are always rebuilt —
//! they embed data bits.
//!
//! Hit/miss counters are exposed via [`stats`] so benchmarks and tests
//! can assert the cache is actually doing something.

use cim_crossbar::MicroOp;
use cim_logic::kogge_stone::{AddOp, AdderLayout, KoggeStoneAdder};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Key of one cached adder program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AdderKey {
    width: usize,
    op: AddOp,
    layout: AdderLayout,
}

/// Key of one cached precompute addition suffix: the stage's adder
/// width plus how many tree additions run (10 for a general multiply,
/// 5 for a square).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SuffixKey {
    adder_width: usize,
    additions: usize,
}

#[derive(Default)]
struct Caches {
    adders: HashMap<AdderKey, Arc<[MicroOp]>>,
    suffixes: HashMap<SuffixKey, Arc<[MicroOp]>>,
}

static CACHES: OnceLock<Mutex<Caches>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn caches() -> &'static Mutex<Caches> {
    CACHES.get_or_init(Mutex::default)
}

/// `(hits, misses)` of the process-wide program cache.
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// The adder's program for `op`, compiled once per
/// `(width, op, layout)` and shared afterwards. Identical, op for op,
/// to what [`KoggeStoneAdder::program`] returns.
pub fn adder_program(adder: &KoggeStoneAdder, op: AddOp) -> Arc<[MicroOp]> {
    let key = AdderKey {
        width: adder.width(),
        op,
        layout: adder.layout().clone(),
    };
    if let Some(hit) = caches().lock().expect("progcache poisoned").adders.get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    // Compile outside the lock — first-call compiles of distinct
    // widths don't serialize each other.
    let prog: Arc<[MicroOp]> = adder.program(op).into();
    let mut guard = caches().lock().expect("progcache poisoned");
    Arc::clone(guard.adders.entry(key).or_insert(prog))
}

/// An operand-independent addition suffix (a concatenation of adder
/// programs, all of the same length), compiled once per key via
/// `build` and shared afterwards. The caller keys by everything the
/// suffix depends on; `cim-core` uses `(adder_width, additions)` for
/// the precompute tree.
pub(crate) fn precompute_suffix(
    adder_width: usize,
    additions: usize,
    build: impl FnOnce() -> Vec<MicroOp>,
) -> Arc<[MicroOp]> {
    let key = SuffixKey {
        adder_width,
        additions,
    };
    if let Some(hit) = caches()
        .lock()
        .expect("progcache poisoned")
        .suffixes
        .get(&key)
    {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let prog: Arc<[MicroOp]> = build().into();
    let mut guard = caches().lock().expect("progcache poisoned");
    Arc::clone(guard.suffixes.entry(key).or_insert(prog))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_logic::kogge_stone::SCRATCH_ROWS;

    fn layout(sum_row: usize) -> AdderLayout {
        AdderLayout {
            x_row: 0,
            y_row: 1,
            sum_row,
            scratch: std::array::from_fn(|i| 8 + i),
            col_base: 0,
        }
    }

    #[test]
    fn cached_program_is_identical_to_fresh_compile() {
        let adder = KoggeStoneAdder::with_layout(16, layout(2));
        for op in [AddOp::Add, AddOp::Sub] {
            let cached = adder_program(&adder, op);
            assert_eq!(cached.as_ref(), adder.program(op).as_slice());
        }
    }

    #[test]
    fn same_key_shares_one_allocation() {
        let adder = KoggeStoneAdder::with_layout(24, layout(2));
        let a = adder_program(&adder, AddOp::Add);
        let b = adder_program(&adder, AddOp::Add);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let (hits, _) = stats();
        assert!(hits >= 1);
    }

    #[test]
    fn distinct_layouts_do_not_collide() {
        let a = adder_program(&KoggeStoneAdder::with_layout(16, layout(2)), AddOp::Add);
        let b = adder_program(&KoggeStoneAdder::with_layout(16, layout(3)), AddOp::Add);
        assert!(!Arc::ptr_eq(&a, &b));
        // Programs for different sum rows must differ somewhere.
        assert_ne!(a.as_ref(), b.as_ref());
        let _ = SCRATCH_ROWS; // layout() above must match the real count
    }

    #[test]
    fn suffix_builder_runs_once_per_key() {
        use std::sync::atomic::AtomicUsize;
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        let build = || {
            BUILDS.fetch_add(1, Ordering::Relaxed);
            vec![MicroOp::reset_region(0..1, 0..909)]
        };
        let a = precompute_suffix(909, 10, build);
        let b = precompute_suffix(909, 10, build);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(BUILDS.load(Ordering::Relaxed), 1);
    }
}
