//! Tracing-neutrality and determinism tests for the instrumented
//! multiplier: attaching a recording tracer must not change a single
//! cycle, cell, or wear count, and the exported trace of a fixed
//! multiply is byte-identical across runs.

use cim_bigint::rng::UintRng;
use cim_trace::{chrome, folded, EventKind, Tracer};
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;

#[test]
fn tracing_changes_no_cycle_or_cell_counts() {
    let mut rng = UintRng::seeded(7);
    for n in [16usize, 64, 128] {
        let a = rng.uniform(n);
        let b = rng.uniform(n);
        let mult = KaratsubaCimMultiplier::new(n).unwrap();
        let plain = mult.multiply(&a, &b).unwrap();
        let tracer = Tracer::recording();
        let traced = mult.multiply_traced(&a, &b, &tracer).unwrap();
        assert_eq!(
            plain, traced,
            "n = {n}: tracing must not perturb the simulation"
        );
        let trace = tracer.finish().unwrap();
        assert!(!trace.events.is_empty(), "n = {n}: trace must not be empty");
    }
}

#[test]
fn fixed_64bit_multiply_trace_is_deterministic_with_stage_spans() {
    let export = || {
        let mut rng = UintRng::seeded(42);
        let a = rng.uniform(64);
        let b = rng.uniform(64);
        let mult = KaratsubaCimMultiplier::new(64).unwrap();
        let tracer = Tracer::recording();
        mult.multiply_traced(&a, &b, &tracer).unwrap();
        let trace = tracer.finish().unwrap();
        let json = chrome::to_chrome_json(&trace);
        let stacks = folded::to_folded(&trace).unwrap();
        (trace, json, stacks)
    };

    let (trace, json, stacks) = export();
    let (_, json2, stacks2) = export();
    assert_eq!(json, json2, "Chrome export must be byte-identical");
    assert_eq!(stacks, stacks2, "folded export must be byte-identical");
    chrome::validate_chrome_trace(&json).expect("export must be schema-valid");

    // All three pipeline stages appear as named spans.
    let span_names: Vec<&str> = trace
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Begin { name, .. } => Some(name.as_str()),
            EventKind::Complete { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    assert!(span_names.contains(&"precompute"), "stage 1 span missing");
    assert!(span_names.contains(&"postcompute"), "stage 3 span missing");
    assert!(
        span_names.contains(&"c_ll") && span_names.contains(&"c_mm"),
        "stage 2 per-row product spans missing"
    );
    // The per-op occupancy counter rides along on the stage tracks.
    assert!(
        trace.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::Counter { name, .. } if name.as_str() == "cells_active"
        )),
        "cells_active counter missing"
    );

    // Every span opened on a stage track is properly closed and
    // nested — the full multiply obeys the same invariants the unit
    // traces do.
    let forest = cim_trace::analysis::build_forest(&trace).unwrap();
    cim_trace::analysis::check_nesting(&forest).unwrap();
}
