//! Property-based tests for the three-stage Karatsuba CIM multiplier.

use cim_bigint::Uint;
use karatsuba_cim::chunks::{combine_products, decompose_operand, LEAVES};
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;
use karatsuba_cim::pipeline::PipelineSchedule;
use karatsuba_cim::postcompute::PostcomputeStage;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full simulated pipeline multiplies correctly for arbitrary
    /// operands at arbitrary supported widths.
    #[test]
    fn end_to_end_multiplication(words in 1usize..4, seed in any::<u64>()) {
        let n = words * 16; // 16..48 bits, multiple of 4 and ≥ 8
        let mut rng = cim_bigint::rng::UintRng::seeded(seed);
        let a = rng.uniform(n);
        let b = rng.uniform(n);
        let mult = KaratsubaCimMultiplier::new(n).unwrap();
        let out = mult.multiply(&a, &b).unwrap();
        prop_assert_eq!(out.product, &a * &b);
    }

    /// Decompose → (software) multiply leaves → combine is the
    /// identity on products.
    #[test]
    fn decompose_combine_identity(seed in any::<u64>(), n_sel in 0usize..4) {
        let n = [16usize, 64, 128, 256][n_sel];
        let mut rng = cim_bigint::rng::UintRng::seeded(seed);
        let a = rng.uniform(n);
        let b = rng.uniform(n);
        let da = decompose_operand(&a, n);
        let db = decompose_operand(&b, n);
        let products: [Uint; LEAVES] =
            std::array::from_fn(|i| &da.leaves[i] * &db.leaves[i]);
        prop_assert_eq!(combine_products(&products, n / 4), &a * &b);
    }

    /// The in-memory postcomputation equals the mathematical
    /// recombination for arbitrary (consistent) products.
    #[test]
    fn postcompute_equals_combine(seed in any::<u64>()) {
        let n = 32;
        let mut rng = cim_bigint::rng::UintRng::seeded(seed);
        let a = rng.uniform(n);
        let b = rng.uniform(n);
        let da = decompose_operand(&a, n);
        let db = decompose_operand(&b, n);
        let products: [Uint; LEAVES] =
            std::array::from_fn(|i| &da.leaves[i] * &db.leaves[i]);
        let stage = PostcomputeStage::new(n).unwrap();
        let out = stage.run(&products).unwrap();
        prop_assert_eq!(out.product, combine_products(&products, n / 4));
    }

    /// Pipeline schedules are causally consistent for arbitrary stage
    /// latencies.
    #[test]
    fn pipeline_causality(
        lat in prop::array::uniform3(1u64..5000),
        handoff in 0u64..100,
        count in 3usize..12,
    ) {
        let s = PipelineSchedule::simulate(count, lat, handoff);
        for t in &s.jobs {
            prop_assert!(t.start[0] <= t.start[1]);
            prop_assert!(t.finish[0] <= t.start[1]);
            prop_assert!(t.finish[1] <= t.start[2]);
        }
        // Steady-state interval is the bottleneck stage + handoff.
        let bottleneck = lat.iter().max().copied().expect("3 stages") + handoff;
        prop_assert_eq!(s.initiation_interval(), bottleneck);
    }

    /// Completion cycles are strictly monotone in job index: the
    /// pipeline never reorders or ties jobs (every stage occupies its
    /// subarray for at least one cycle).
    #[test]
    fn pipeline_completion_monotone(
        lat in prop::array::uniform3(1u64..5000),
        handoff in 0u64..100,
        count in 2usize..16,
    ) {
        let s = PipelineSchedule::simulate(count, lat, handoff);
        for w in s.jobs.windows(2) {
            prop_assert!(w[1].completed_at() > w[0].completed_at());
        }
    }

    /// Once the pipeline is full, jobs complete at exactly the
    /// initiation interval: all consecutive completion gaps from job 2
    /// onward equal `initiation_interval()`, which itself equals the
    /// bottleneck stage plus handoff.
    #[test]
    fn pipeline_steady_state_spacing(
        lat in prop::array::uniform3(1u64..5000),
        handoff in 0u64..100,
        count in 4usize..16,
    ) {
        let s = PipelineSchedule::simulate(count, lat, handoff);
        let ii = s.initiation_interval();
        for w in s.jobs[2..].windows(2) {
            prop_assert_eq!(w[1].completed_at() - w[0].completed_at(), ii);
        }
    }

    /// `single_latency()` is job 0's completion cycle and equals the
    /// sum of stage latencies plus the three handoffs, independent of
    /// how many jobs follow it.
    #[test]
    fn pipeline_single_latency_is_job_zero(
        lat in prop::array::uniform3(1u64..5000),
        handoff in 0u64..100,
        count in 1usize..16,
    ) {
        let s = PipelineSchedule::simulate(count, lat, handoff);
        prop_assert_eq!(s.single_latency(), s.jobs[0].completed_at());
        prop_assert_eq!(
            s.single_latency(),
            lat.iter().sum::<u64>() + 3 * handoff
        );
    }
}
