//! Property-based tests for the three-stage Karatsuba CIM multiplier.

use cim_bigint::Uint;
use karatsuba_cim::chunks::{combine_products, decompose_operand, LEAVES};
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;
use karatsuba_cim::pipeline::PipelineSchedule;
use karatsuba_cim::postcompute::PostcomputeStage;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full simulated pipeline multiplies correctly for arbitrary
    /// operands at arbitrary supported widths.
    #[test]
    fn end_to_end_multiplication(words in 1usize..4, seed in any::<u64>()) {
        let n = words * 16; // 16..48 bits, multiple of 4 and ≥ 8
        let mut rng = cim_bigint::rng::UintRng::seeded(seed);
        let a = rng.uniform(n);
        let b = rng.uniform(n);
        let mult = KaratsubaCimMultiplier::new(n).unwrap();
        let out = mult.multiply(&a, &b).unwrap();
        prop_assert_eq!(out.product, &a * &b);
    }

    /// Decompose → (software) multiply leaves → combine is the
    /// identity on products.
    #[test]
    fn decompose_combine_identity(seed in any::<u64>(), n_sel in 0usize..4) {
        let n = [16usize, 64, 128, 256][n_sel];
        let mut rng = cim_bigint::rng::UintRng::seeded(seed);
        let a = rng.uniform(n);
        let b = rng.uniform(n);
        let da = decompose_operand(&a, n);
        let db = decompose_operand(&b, n);
        let products: [Uint; LEAVES] =
            std::array::from_fn(|i| &da.leaves[i] * &db.leaves[i]);
        prop_assert_eq!(combine_products(&products, n / 4), &a * &b);
    }

    /// The in-memory postcomputation equals the mathematical
    /// recombination for arbitrary (consistent) products.
    #[test]
    fn postcompute_equals_combine(seed in any::<u64>()) {
        let n = 32;
        let mut rng = cim_bigint::rng::UintRng::seeded(seed);
        let a = rng.uniform(n);
        let b = rng.uniform(n);
        let da = decompose_operand(&a, n);
        let db = decompose_operand(&b, n);
        let products: [Uint; LEAVES] =
            std::array::from_fn(|i| &da.leaves[i] * &db.leaves[i]);
        let stage = PostcomputeStage::new(n).unwrap();
        let out = stage.run(&products).unwrap();
        prop_assert_eq!(out.product, combine_products(&products, n / 4));
    }

    /// Pipeline schedules are causally consistent for arbitrary stage
    /// latencies.
    #[test]
    fn pipeline_causality(
        lat in prop::array::uniform3(1u64..5000),
        handoff in 0u64..100,
        count in 3usize..12,
    ) {
        let s = PipelineSchedule::simulate(count, lat, handoff);
        for t in &s.jobs {
            prop_assert!(t.start[0] <= t.start[1]);
            prop_assert!(t.finish[0] <= t.start[1]);
            prop_assert!(t.finish[1] <= t.start[2]);
        }
        // Steady-state interval is the bottleneck stage + handoff.
        let bottleneck = lat.iter().max().copied().expect("3 stages") + handoff;
        prop_assert_eq!(s.initiation_interval(), bottleneck);
    }
}
