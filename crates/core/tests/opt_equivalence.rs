//! Differential equivalence of the cim-mir optimization pipeline.
//!
//! Every optimization level must produce the same products as the
//! paper-exact `O0` programs — on the scalar executor path
//! (`multiply`), the bit-sliced batch path (`multiply_batch`, all
//! lanes), and the squaring fast path — while never spending more
//! cycles or cell writes. `O0` itself must be byte-for-byte the legacy
//! pipeline: identical reports, not merely identical products.

use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use cim_mir::OptLevel;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;
use proptest::prelude::*;

#[test]
fn o0_is_the_legacy_pipeline_byte_for_byte() {
    let mut rng = UintRng::seeded(101);
    for n in [16usize, 64] {
        let a = rng.uniform(n);
        let b = rng.uniform(n);
        let legacy = KaratsubaCimMultiplier::new(n).unwrap();
        let o0 = KaratsubaCimMultiplier::with_opt_level(n, OptLevel::O0).unwrap();
        let lhs = legacy.multiply(&a, &b).unwrap();
        let rhs = o0.multiply(&a, &b).unwrap();
        assert_eq!(lhs.product, rhs.product, "n = {n}");
        assert_eq!(lhs.report, rhs.report, "n = {n}: O0 must be the identity");
    }
}

#[test]
fn every_opt_level_matches_gold_with_monotone_cycles() {
    let mut rng = UintRng::seeded(103);
    for n in [16usize, 64, 128] {
        let a = rng.uniform(n);
        let b = rng.uniform(n);
        let expected = &a * &b;
        let mut prev_latency = u64::MAX;
        let baseline = KaratsubaCimMultiplier::new(n)
            .unwrap()
            .multiply(&a, &b)
            .unwrap();
        for opt in OptLevel::ALL {
            let mult = KaratsubaCimMultiplier::with_opt_level(n, opt).unwrap();
            assert_eq!(mult.opt_level(), opt);
            let out = mult.multiply(&a, &b).unwrap();
            assert_eq!(out.product, expected, "n = {n}, {opt}");
            assert!(
                out.report.total_latency <= prev_latency,
                "n = {n}, {opt}: latency {} regressed over previous level {}",
                out.report.total_latency,
                prev_latency
            );
            prev_latency = out.report.total_latency;
            // Optimization may only remove work: never more cell
            // writes than the paper-exact program, in any stage.
            for stage in 0..3 {
                assert!(
                    out.report.endurance[stage].total_writes
                        <= baseline.report.endurance[stage].total_writes,
                    "n = {n}, {opt}: stage {stage} write count regressed"
                );
            }
        }
        // The full pipeline must beat the paper at max opt.
        let o3 = KaratsubaCimMultiplier::with_opt_level(n, OptLevel::MAX)
            .unwrap()
            .multiply(&a, &b)
            .unwrap();
        assert!(
            o3.report.total_latency < baseline.report.total_latency,
            "n = {n}: O3 {} must beat O0 {}",
            o3.report.total_latency,
            baseline.report.total_latency
        );
    }
}

#[test]
fn batch_lanes_are_equivalent_at_max_opt() {
    let mut rng = UintRng::seeded(107);
    let n = 32;
    let lanes = 64;
    let mult = KaratsubaCimMultiplier::with_opt_level(n, OptLevel::MAX).unwrap();
    let pairs: Vec<(Uint, Uint)> = (0..lanes)
        .map(|_| (rng.uniform(n), rng.uniform(n)))
        .collect();
    let batch = mult.multiply_batch(&pairs).unwrap();
    for (lane, (a, b)) in pairs.iter().enumerate() {
        assert_eq!(batch.products[lane], a * b, "lane {lane}");
    }
    // The sliced backend charges exactly the scalar backend's cycles.
    let solo = mult.multiply(&pairs[0].0, &pairs[0].1).unwrap();
    assert_eq!(batch.stage_cycles, solo.report.stage_cycles);
    assert_eq!(batch.total_latency, solo.report.total_latency);
}

#[test]
fn square_fast_path_is_equivalent_and_faster_at_max_opt() {
    let mut rng = UintRng::seeded(109);
    for n in [16usize, 64] {
        let a = rng.uniform(n);
        let o0 = KaratsubaCimMultiplier::new(n).unwrap().square(&a).unwrap();
        let o3 = KaratsubaCimMultiplier::with_opt_level(n, OptLevel::MAX)
            .unwrap()
            .square(&a)
            .unwrap();
        assert_eq!(o3.product, &a * &a, "n = {n}");
        assert!(
            o3.report.stage_cycles[0] < o0.report.stage_cycles[0],
            "n = {n}: optimized square precompute must be faster"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round trip across the whole opt ladder on random operands: the
    /// optimized hardware programs and the paper-exact ones agree with
    /// the software gold product for every input.
    #[test]
    fn prop_opt_ladder_round_trips(a_raw in 0u64..=u64::MAX, b_raw in 0u64..=u64::MAX, wide in any::<bool>()) {
        let n = if wide { 64 } else { 16 };
        let a = Uint::from_u64(a_raw).low_bits(n);
        let b = Uint::from_u64(b_raw).low_bits(n);
        let expected = &a * &b;
        for opt in OptLevel::ALL {
            let mult = KaratsubaCimMultiplier::with_opt_level(n, opt).unwrap();
            let out = mult.multiply(&a, &b).unwrap();
            prop_assert_eq!(&out.product, &expected, "n = {}, {}", n, opt);
        }
    }
}
