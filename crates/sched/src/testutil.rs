//! Shared test helpers for the `cim-sched` test modules.

use cim_bigint::rng::UintRng;
use cim_bigint::Uint;

/// `count` seeded random operand pairs of `n` bits each — the fixture
/// every batch/scheduler test feeds the simulated multiplier.
pub(crate) fn pairs(n: usize, count: usize, seed: u64) -> Vec<(Uint, Uint)> {
    let mut rng = UintRng::seeded(seed);
    (0..count).map(|_| (rng.uniform(n), rng.uniform(n))).collect()
}
