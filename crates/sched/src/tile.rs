//! A [`Tile`]: one pipelined multiplier instance in the farm.
//!
//! Each tile owns the three stage subarrays of one Karatsuba pipeline
//! (or hosts a single-row schoolbook multiplier in its middle stage)
//! and keeps a local clock per stage. Timing follows exactly the
//! recurrence of [`karatsuba_cim::pipeline::PipelineSchedule`]: a
//! stage starts when both its subarray and its input are free, and
//! occupies the subarray for its latency plus the drain handoff. A
//! one-tile FIFO farm therefore reproduces the single-pipeline
//! schedule cycle for cycle.
//!
//! Wear is tracked with a **rotation ledger**: each stage subarray is
//! provisioned with `rotation_slots` row offsets at which a job's hot
//! rows can be placed. Serving a job at slot `r` adds the job's
//! per-stage hot-cell writes to that slot only. Policies that never
//! rotate (FIFO, least-loaded) pin every job to slot 0 — all jobs
//! hammer the same physical rows, as in the seed's single-pipeline
//! batch model. The wear-leveling policy advances the slot per job,
//! spreading the hot cells and multiplying the array lifetime by up to
//! the slot count at zero latency cost.

use crate::job::Job;
use crate::profile::JobProfile;
use cim_crossbar::{CycleStats, EnergyParams, EnergyReport};

/// Default number of row-offset rotation slots per stage subarray.
///
/// Eight offsets cost no extra cells for the Karatsuba stages (the
/// hot rows are a small fraction of each subarray) and bound the
/// wear-leveling gain the scheduler can claim.
pub const DEFAULT_ROTATION_SLOTS: usize = 8;

/// Timing of one job on a tile, `[pre, mult, post]` per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileJobTiming {
    /// Stage start cycles.
    pub start: [u64; 3],
    /// Stage finish cycles (inclusive of the drain handoff).
    pub finish: [u64; 3],
}

impl TileJobTiming {
    /// Cycle at which the job's product is back in main memory.
    pub fn completed_at(&self) -> u64 {
        self.finish[2]
    }
}

/// One pipelined multiplier tile with local clocks, cumulative cycle
/// statistics, and a per-slot wear ledger.
#[derive(Debug, Clone)]
pub struct Tile {
    id: usize,
    /// Cycle at which each stage subarray becomes free.
    stage_free: [u64; 3],
    /// Cumulative cycle statistics across all jobs served.
    stats: CycleStats,
    /// Cumulative first-order energy across all jobs served.
    energy: EnergyReport,
    /// Sum of stage-occupancy cycles across all jobs (load metric).
    busy_cycles: u64,
    jobs_done: u64,
    /// `slot_wear[r][s]`: accumulated hot-cell writes at rotation
    /// slot `r` of stage `s`.
    slot_wear: Vec<[u64; 3]>,
    next_slot: usize,
}

impl Tile {
    /// A fresh tile with `rotation_slots ≥ 1` row offsets per stage.
    ///
    /// # Panics
    ///
    /// Panics if `rotation_slots == 0`.
    pub fn new(id: usize, rotation_slots: usize) -> Self {
        assert!(rotation_slots > 0, "a tile needs at least one rotation slot");
        Tile {
            id,
            stage_free: [0; 3],
            stats: CycleStats::default(),
            energy: EnergyReport::default(),
            busy_cycles: 0,
            jobs_done: 0,
            slot_wear: vec![[0; 3]; rotation_slots],
            next_slot: 0,
        }
    }

    /// Tile index in the farm.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Earliest cycle at which a job arriving at `arrival` could enter
    /// this tile's first stage.
    pub fn earliest_start(&self, arrival: u64) -> u64 {
        arrival.max(self.stage_free[0])
    }

    /// Serves `job` on this tile; `rotate` selects whether the wear
    /// ledger advances to the next rotation slot (wear-leveling) or
    /// pins the job to slot 0 (all other policies). `params` prices
    /// the job's first-order energy ([`JobProfile::energy`]), which
    /// accumulates into the tile's [`energy`](Tile::energy) ledger.
    ///
    /// Timing is the exact `PipelineSchedule::simulate` recurrence,
    /// seeded with the job's arrival cycle.
    pub fn execute(
        &mut self,
        job: &Job,
        profile: &JobProfile,
        rotate: bool,
        params: &EnergyParams,
    ) -> TileJobTiming {
        let timing = self.place(job, profile, rotate);
        self.apply_cost(profile, params);
        timing
    }

    /// Placement phase of [`Tile::execute`]: advances the stage
    /// clocks, the wear ledger, and the load/job counters — everything
    /// a [`crate::policy::Policy`] reads when picking the next tile.
    /// Placement is inherently sequential across the farm (each pick
    /// depends on the state the previous placements produced).
    pub(crate) fn place(&mut self, job: &Job, profile: &JobProfile, rotate: bool) -> TileJobTiming {
        let mut start = [0u64; 3];
        let mut finish = [0u64; 3];
        let mut input_ready = job.arrival;
        for s in 0..3 {
            start[s] = input_ready.max(self.stage_free[s]);
            finish[s] = start[s] + profile.stage_latency[s] + profile.handoff;
            self.stage_free[s] = finish[s];
            input_ready = finish[s];
            self.busy_cycles += profile.stage_latency[s] + profile.handoff;
        }
        let slot = if rotate {
            let r = self.next_slot;
            self.next_slot = (self.next_slot + 1) % self.slot_wear.len();
            r
        } else {
            0
        };
        for s in 0..3 {
            self.slot_wear[slot][s] += profile.wear[s].max_writes;
        }
        self.jobs_done += 1;
        TileJobTiming { start, finish }
    }

    /// Accounting phase of [`Tile::execute`]: folds the job's cycle
    /// statistics and priced energy into the tile's ledgers. No policy
    /// reads these, so the farm's parallel path defers them and
    /// applies each tile's jobs (in dispatch order) from its own
    /// thread — the fold order per tile matches the sequential path,
    /// making the resulting ledgers bit-identical.
    pub(crate) fn apply_cost(&mut self, profile: &JobProfile, params: &EnergyParams) {
        self.stats.merge(&profile.stats);
        self.energy.merge(&profile.energy(params));
    }

    /// Worst accumulated per-cell writes anywhere on this tile.
    pub fn max_cell_writes(&self) -> u64 {
        self.slot_wear
            .iter()
            .flat_map(|slot| slot.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Cumulative cycle statistics for all jobs served.
    pub fn stats(&self) -> &CycleStats {
        &self.stats
    }

    /// Cumulative first-order energy for all jobs served.
    pub fn energy(&self) -> &EnergyReport {
        &self.energy
    }

    /// Total stage-occupancy cycles accumulated (load metric).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Jobs this tile has completed.
    pub fn jobs_done(&self) -> u64 {
        self.jobs_done
    }

    /// Cycle at which the tile finishes its last accepted job.
    pub fn drained_at(&self) -> u64 {
        self.stage_free[2]
    }

    /// Fraction of stage-cycles in use over `0..makespan` (three
    /// stages count as three cycle streams).
    pub fn utilization(&self, makespan: u64) -> f64 {
        if makespan == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / (3 * makespan) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Algo;
    use karatsuba_cim::pipeline::PipelineSchedule;

    fn job(id: u64, arrival: u64) -> Job {
        Job { id, width: 256, algo: Algo::Karatsuba, arrival }
    }

    #[test]
    fn single_tile_reproduces_pipeline_schedule() {
        let profile = JobProfile::karatsuba_analytic(256);
        let params = EnergyParams::default();
        let mut tile = Tile::new(0, 1);
        let reference = PipelineSchedule::for_design(256, 12);
        for (i, expect) in reference.jobs.iter().enumerate() {
            let t = tile.execute(&job(i as u64, 0), &profile, false, &params);
            assert_eq!(t.start, expect.start, "job {i}");
            assert_eq!(t.finish, expect.finish, "job {i}");
        }
        assert_eq!(tile.drained_at(), reference.jobs.last().unwrap().completed_at());
    }

    #[test]
    fn arrival_delays_entry() {
        let profile = JobProfile::karatsuba_analytic(256);
        let mut tile = Tile::new(0, 1);
        let late = 1_000_000;
        let t = tile.execute(&job(0, late), &profile, false, &EnergyParams::default());
        assert_eq!(t.start[0], late);
        assert_eq!(t.completed_at(), late + profile.service_latency());
    }

    #[test]
    fn rotation_divides_wear() {
        let profile = JobProfile::karatsuba_analytic(256);
        let params = EnergyParams::default();
        let mut pinned = Tile::new(0, 8);
        let mut rotated = Tile::new(1, 8);
        for i in 0..16 {
            pinned.execute(&job(i, 0), &profile, false, &params);
            rotated.execute(&job(i, 0), &profile, true, &params);
        }
        assert_eq!(pinned.max_cell_writes(), 16 * profile.max_writes());
        // 16 jobs over 8 slots: 2 per slot.
        assert_eq!(rotated.max_cell_writes(), 2 * profile.max_writes());
        // Rotation costs no cycles.
        assert_eq!(pinned.drained_at(), rotated.drained_at());
    }

    #[test]
    fn stats_accumulate_across_jobs() {
        let profile = JobProfile::schoolbook_analytic(256);
        let params = EnergyParams::default();
        let mut tile = Tile::new(0, 4);
        for i in 0..5 {
            tile.execute(&job(i, 0), &profile, true, &params);
        }
        assert_eq!(tile.jobs_done(), 5);
        assert_eq!(tile.stats().cycles, 5 * profile.stats.cycles);
        assert_eq!(
            tile.busy_cycles(),
            5 * profile.stage_occupancy().iter().sum::<u64>()
        );
        let per_job = profile.energy(&params).total_pj();
        assert!((tile.energy().total_pj() - 5.0 * per_job).abs() < 1e-6);
    }
}
