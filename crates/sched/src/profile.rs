//! Per-class execution profiles: what one job of a given
//! `(width, algo)` costs a tile in cycles and wear.
//!
//! Profiles come from two sources:
//!
//! * **analytic** — the paper's closed-form cost model
//!   ([`karatsuba_cim::cost::DesignPoint`] for Karatsuba, the MultPIM
//!   row formula for schoolbook). Instant, exact for latency (the
//!   model reproduces Table I), first-order for per-stage wear.
//! * **measured** — one calibration run of the real simulated
//!   multiplier ([`KaratsubaCimMultiplier`]), capturing exact cycle
//!   statistics and per-stage endurance. Used where simulation cost
//!   permits (small widths, tests, calibration of the sweep binary).
//!
//! The farm scheduler treats both identically; a [`ProfileTable`]
//! caches one profile per class.

use crate::job::{Algo, Job};
use cim_bigint::rng::UintRng;
use cim_crossbar::{CycleStats, EnduranceReport, EnergyParams, EnergyReport, OpClass};
use cim_logic::multpim::CELLS_PER_BIT;
use karatsuba_cim::cost::{DesignPoint, HANDOFF_CYCLES};
use karatsuba_cim::multiplier::{KaratsubaCimMultiplier, MultiplyError};
use std::collections::HashMap;

fn ceil_log2(n: usize) -> u64 {
    assert!(n > 0);
    (usize::BITS - (n - 1).leading_zeros()) as u64
}

/// Widest operand any tile profile is provisioned for. Jobs beyond it
/// (or with a width that is not a positive multiple of 4) are rejected
/// with [`MultiplyError::UnsupportedWidth`] rather than panicking —
/// the serving layer forwards untrusted request widths here.
pub const MAX_JOB_WIDTH: usize = 1 << 16;

/// Validates a job width against the class the profiles support.
///
/// # Errors
///
/// [`MultiplyError::UnsupportedWidth`] when `width` is zero, not a
/// multiple of 4, or above [`MAX_JOB_WIDTH`].
pub fn validate_width(width: usize) -> Result<(), MultiplyError> {
    if width == 0 || !width.is_multiple_of(4) || width > MAX_JOB_WIDTH {
        return Err(MultiplyError::UnsupportedWidth { width, max: MAX_JOB_WIDTH });
    }
    Ok(())
}

/// Wear one job inflicts on one stage array of a tile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageWear {
    /// Writes to the stage's hottest cell.
    pub max_writes: u64,
    /// Total writes across the stage array.
    pub total_writes: u64,
    /// Cells in the stage array (for wear-density metrics).
    pub cells: u64,
}

impl StageWear {
    fn from_endurance(e: &EnduranceReport) -> Self {
        StageWear {
            max_writes: e.max_writes,
            total_writes: e.total_writes,
            cells: e.cells_total as u64,
        }
    }
}

/// The cost of one job of a given class, as seen by a tile.
#[derive(Debug, Clone, PartialEq)]
pub struct JobProfile {
    /// Operand width in bits.
    pub width: usize,
    /// Serving algorithm.
    pub algo: Algo,
    /// Stage latencies `[pre, mult, post]` in cycles (schoolbook jobs
    /// occupy only the mult stage; its pre/post latencies are 0).
    pub stage_latency: [u64; 3],
    /// Controller handoff charged after each stage.
    pub handoff: u64,
    /// Wear per stage array.
    pub wear: [StageWear; 3],
    /// Whole-job cycle statistics (all three stages plus handoffs).
    pub stats: CycleStats,
    /// Cells of the stage arrays a tile must provision for this class.
    pub area_cells: u64,
    /// Products delivered per job (bit-sliced batch classes carry up
    /// to 64 multiplications through one job's cycles).
    pub lanes: usize,
}

impl JobProfile {
    /// Closed-form profile for a Karatsuba job (paper Table I model).
    ///
    /// Per-stage wear, first-order (see `karatsuba_cim::cost`): the
    /// multiplication row takes `2·(n/4+2) + 2` writes per cell, the
    /// postcompute adder `11·⌈log2 1.5n⌉ + 4`; the precompute adder
    /// runs 10 of the 11 analogous Kogge-Stone passes at its own
    /// width, `10·⌈log2(n/4+1)⌉ + 4`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 4.
    pub fn karatsuba_analytic(n: usize) -> Self {
        let d = DesignPoint::new(n);
        let w = n / 4 + 2;
        let stage_latency = [
            d.precompute_latency,
            d.multiply_latency,
            d.postcompute_latency,
        ];
        let pre_max = 10 * ceil_log2(n / 4 + 1) + 4;
        let mult_max = 2 * w as u64 + 2;
        let post_max = 11 * ceil_log2(3 * n / 2) + 4;
        let wear = [
            StageWear {
                max_writes: pre_max,
                // First-order: half the array at hot-cell rate.
                total_writes: pre_max * d.precompute_area / 2,
                cells: d.precompute_area,
            },
            StageWear {
                max_writes: mult_max,
                total_writes: mult_max * d.multiply_area / 2,
                cells: d.multiply_area,
            },
            StageWear {
                max_writes: post_max,
                total_writes: post_max * d.postcompute_area / 2,
                cells: d.postcompute_area,
            },
        ];
        JobProfile {
            width: n,
            algo: Algo::Karatsuba,
            stage_latency,
            handoff: HANDOFF_CYCLES,
            wear,
            stats: synth_stats(stage_latency, HANDOFF_CYCLES),
            area_cells: d.area_cells(),
            lanes: 1,
        }
    }

    /// Closed-form profile for a bit-sliced 64-lane Karatsuba batch
    /// job: the stage latencies (and thus occupancy and handoff) are
    /// exactly the solo profile's — batching executes the same micro-op
    /// program with one instance per `u64` lane — while every lane
    /// wears its own bit plane, so total writes, provisioned cells and
    /// area scale by 64. Per-plane hot-cell writes are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 4.
    pub fn karatsuba_batch_analytic(n: usize) -> Self {
        let solo = Self::karatsuba_analytic(n);
        let lanes = Algo::KaratsubaBatch64.lanes() as u64;
        let wear = solo.wear.map(|w| StageWear {
            max_writes: w.max_writes,
            total_writes: w.total_writes * lanes,
            cells: w.cells * lanes,
        });
        JobProfile {
            algo: Algo::KaratsubaBatch64,
            wear,
            area_cells: solo.area_cells * lanes,
            lanes: lanes as usize,
            ..solo
        }
    }

    /// Closed-form profile for a schoolbook job: one MultPIM-style
    /// single-row multiplier at full width `n` — latency
    /// `n·(⌈log2 n⌉ + 14) + 3`, row wear `2n + 2`, area `12·n` cells.
    /// The job passes through the pipeline but only the mult stage
    /// does work; the handoff models operand load / product drain.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 4.
    pub fn schoolbook_analytic(n: usize) -> Self {
        assert!(n > 0 && n.is_multiple_of(4), "operand width must be a multiple of 4");
        let lat = n as u64 * (ceil_log2(n) + 14) + 3;
        let area = (CELLS_PER_BIT * n) as u64;
        let stage_latency = [0, lat, 0];
        // Operands in (2 row writes) + product out (1 row read).
        let handoff = 3;
        let wear = [
            StageWear::default(),
            StageWear {
                max_writes: 2 * n as u64 + 2,
                total_writes: (2 * n as u64 + 2) * area / 2,
                cells: area,
            },
            StageWear::default(),
        ];
        JobProfile {
            width: n,
            algo: Algo::Schoolbook,
            stage_latency,
            handoff,
            wear,
            stats: synth_stats(stage_latency, handoff),
            area_cells: area,
            lanes: 1,
        }
    }

    /// Measured profile: runs one real simulated multiplication and
    /// captures exact stats and per-stage endurance.
    ///
    /// # Errors
    ///
    /// Propagates simulation/verification errors.
    pub fn karatsuba_measured(n: usize, seed: u64) -> Result<Self, MultiplyError> {
        let mult = KaratsubaCimMultiplier::new(n)?;
        let mut rng = UintRng::seeded(seed);
        let a = rng.uniform(n);
        let b = rng.uniform(n);
        let out = mult.multiply(&a, &b)?;
        let r = &out.report;
        let mut stats = CycleStats::default();
        stats.merge(&r.precompute_stats);
        // The mult stage is latency-modeled (see cim-logic::multpim);
        // charge its cycles as one op so totals stay exact.
        stats.record(OpClass::Magic, r.stage_cycles[1]);
        stats.merge(&r.postcompute_stats);
        stats.record(OpClass::Write, 3 * HANDOFF_CYCLES);
        Ok(JobProfile {
            width: n,
            algo: Algo::Karatsuba,
            stage_latency: r.stage_cycles,
            handoff: HANDOFF_CYCLES,
            wear: [
                StageWear::from_endurance(&r.endurance[0]),
                StageWear::from_endurance(&r.endurance[1]),
                StageWear::from_endurance(&r.endurance[2]),
            ],
            stats,
            area_cells: r.area_cells,
            lanes: 1,
        })
    }

    /// Sum of stage latencies plus handoffs: unloaded job latency.
    pub fn service_latency(&self) -> u64 {
        self.stage_latency.iter().sum::<u64>() + 3 * self.handoff
    }

    /// Cycles the job occupies each stage `[pre, mult, post]`
    /// (latency + drain handoff), as charged by the tile.
    pub fn stage_occupancy(&self) -> [u64; 3] {
        std::array::from_fn(|s| self.stage_latency[s] + self.handoff)
    }

    /// Worst per-cell writes this job inflicts anywhere on a tile.
    pub fn max_writes(&self) -> u64 {
        self.wear.iter().map(|w| w.max_writes).max().unwrap_or(0)
    }

    /// First-order energy for one job of this class: the whole-job
    /// [`CycleStats`] run through [`EnergyReport::from_stats`] at the
    /// class's dominant row width — `n/4+2` cells for the Karatsuba
    /// stage arrays, `n` for the single-row schoolbook multiplier.
    /// Tiles accumulate this per job served; farm totals are the sum.
    pub fn energy(&self, params: &EnergyParams) -> EnergyReport {
        let row_width = match self.algo {
            Algo::Karatsuba => self.width / 4 + 2,
            Algo::Schoolbook => self.width,
            // Every cycle evaluates all 64 bit planes of the row.
            Algo::KaratsubaBatch64 => 64 * (self.width / 4 + 2),
        };
        EnergyReport::from_stats(&self.stats, row_width, params)
    }
}

/// Synthesizes whole-job [`CycleStats`] from stage latencies when no
/// measured breakdown exists: stage cycles are charged as one op per
/// active stage, handoffs as writes (operand/product movement).
fn synth_stats(stage_latency: [u64; 3], handoff: u64) -> CycleStats {
    let mut stats = CycleStats::default();
    for lat in stage_latency.into_iter().filter(|&l| l > 0) {
        stats.record(OpClass::Magic, lat);
    }
    stats.record(OpClass::Write, 3 * handoff);
    stats
}

/// How a [`ProfileTable`] obtains profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileSource {
    /// Closed-form model only (instant; any width).
    Analytic,
    /// Calibrate Karatsuba classes by running the real simulator once
    /// per class (schoolbook remains analytic).
    Measured {
        /// Seed for the calibration operands.
        seed: u64,
    },
}

/// Cache of one [`JobProfile`] per `(width, algo)` class.
#[derive(Debug, Clone)]
pub struct ProfileTable {
    source: ProfileSource,
    profiles: HashMap<(usize, Algo), JobProfile>,
}

impl ProfileTable {
    /// An empty table that resolves classes on demand from `source`.
    pub fn new(source: ProfileSource) -> Self {
        ProfileTable {
            source,
            profiles: HashMap::new(),
        }
    }

    /// Analytic-only table (the common case for sweeps).
    pub fn analytic() -> Self {
        Self::new(ProfileSource::Analytic)
    }

    /// The profile for `job`'s class, computing and caching it on
    /// first use.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors in measured mode.
    pub fn profile(&mut self, job: &Job) -> Result<&JobProfile, MultiplyError> {
        let key = (job.width, job.algo);
        if !self.profiles.contains_key(&key) {
            let p = Self::resolve(self.source, job.width, job.algo)?;
            self.profiles.insert(key, p);
        }
        Ok(&self.profiles[&key])
    }

    /// The cached profile for a class, if resolved.
    pub(crate) fn get(&self, key: (usize, Algo)) -> Option<&JobProfile> {
        self.profiles.get(&key)
    }

    /// Computes the profile of one class from `source` (no caching).
    fn resolve(source: ProfileSource, width: usize, algo: Algo) -> Result<JobProfile, MultiplyError> {
        validate_width(width)?;
        Ok(match (algo, source) {
            (Algo::Karatsuba, ProfileSource::Analytic) => JobProfile::karatsuba_analytic(width),
            (Algo::Karatsuba, ProfileSource::Measured { seed }) => {
                JobProfile::karatsuba_measured(width, seed ^ width as u64)?
            }
            (Algo::Schoolbook, _) => JobProfile::schoolbook_analytic(width),
            // Batch latencies equal the solo analytic latencies by
            // construction (verified against the simulator in
            // karatsuba-cim), so both sources resolve analytically.
            (Algo::KaratsubaBatch64, _) => JobProfile::karatsuba_batch_analytic(width),
        })
    }

    /// Resolves every class appearing in `jobs` that the table has not
    /// cached yet, computing the missing profiles concurrently — one
    /// scoped thread per class. In measured mode each class costs a
    /// full simulated multiplication, so distinct widths calibrate in
    /// parallel; analytic classes resolve near-instantly either way.
    ///
    /// Determinism: the class list is sorted and deduplicated before
    /// the fan-out and results are inserted in that same order, so the
    /// table's final state is independent of thread finish order. Each
    /// class's profile is itself a pure function of `(source, class)`.
    ///
    /// # Errors
    ///
    /// Propagates the first simulation error in class-sorted order.
    ///
    /// # Panics
    ///
    /// Panics if a calibration thread panics.
    pub fn prewarm(&mut self, jobs: &[Job]) -> Result<(), MultiplyError> {
        let mut classes: Vec<(usize, Algo)> = jobs.iter().map(|j| (j.width, j.algo)).collect();
        classes.sort_unstable();
        classes.dedup();
        classes.retain(|key| !self.profiles.contains_key(key));
        if classes.is_empty() {
            return Ok(());
        }
        let source = self.source;
        let results: Vec<Result<JobProfile, MultiplyError>> = std::thread::scope(|s| {
            let handles: Vec<_> = classes
                .iter()
                .map(|&(width, algo)| s.spawn(move || Self::resolve(source, width, algo)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("profile calibration thread panicked"))
                .collect()
        });
        for (key, result) in classes.into_iter().zip(results) {
            self.profiles.insert(key, result?);
        }
        Ok(())
    }

    /// Inserts a pre-built profile (used by the batch bridge, which
    /// derives the profile from the multiplications it just ran).
    pub fn insert(&mut self, profile: JobProfile) {
        self.profiles.insert((profile.width, profile.algo), profile);
    }

    /// Largest stage-array area any cached class needs (tile sizing).
    pub fn max_area_cells(&self) -> u64 {
        self.profiles.values().map(|p| p.area_cells).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_matches_design_point_latency() {
        for n in [64usize, 256, 1024, 2048] {
            let p = JobProfile::karatsuba_analytic(n);
            let d = DesignPoint::new(n);
            assert_eq!(p.service_latency(), d.latency(), "n={n}");
            assert_eq!(
                p.stage_occupancy().into_iter().max().unwrap(),
                d.initiation_interval(),
                "n={n}"
            );
            assert_eq!(p.area_cells, d.area_cells(), "n={n}");
        }
    }

    #[test]
    fn analytic_wear_bounded_by_model() {
        // The model's wear-leveled max is the max of the mult/post
        // stage wear; the per-stage split must reproduce it.
        for n in [64usize, 256, 2048] {
            let p = JobProfile::karatsuba_analytic(n);
            let d = DesignPoint::new(n);
            assert_eq!(
                p.wear[1].max_writes.max(p.wear[2].max_writes),
                d.max_writes,
                "n={n}"
            );
        }
    }

    #[test]
    fn batch_profile_same_latency_64x_products_and_wear() {
        for n in [256usize, 2048] {
            let solo = JobProfile::karatsuba_analytic(n);
            let batch = JobProfile::karatsuba_batch_analytic(n);
            assert_eq!(batch.stage_latency, solo.stage_latency, "n={n}");
            assert_eq!(batch.handoff, solo.handoff);
            assert_eq!(batch.service_latency(), solo.service_latency());
            assert_eq!(batch.stage_occupancy(), solo.stage_occupancy());
            assert_eq!(batch.lanes, 64);
            assert_eq!(batch.max_writes(), solo.max_writes(), "per-plane wear unchanged");
            for s in 0..3 {
                assert_eq!(batch.wear[s].total_writes, 64 * solo.wear[s].total_writes);
                assert_eq!(batch.wear[s].cells, 64 * solo.wear[s].cells);
            }
            assert_eq!(batch.area_cells, 64 * solo.area_cells);
            // Energy per job grows with the lane count (MAGIC term).
            let params = EnergyParams::default();
            assert!(batch.energy(&params).total_pj() > solo.energy(&params).total_pj());
        }
    }

    #[test]
    fn batch_class_resolves_in_both_profile_sources() {
        for source in [ProfileSource::Analytic, ProfileSource::Measured { seed: 1 }] {
            let mut t = ProfileTable::new(source);
            let job = Job {
                id: 0,
                width: 256,
                algo: Algo::KaratsubaBatch64,
                arrival: 0,
            };
            let p = t.profile(&job).unwrap();
            assert_eq!(p.lanes, 64);
            assert_eq!(
                p.stage_latency,
                JobProfile::karatsuba_analytic(256).stage_latency
            );
        }
    }

    #[test]
    fn schoolbook_profile_single_stage() {
        let p = JobProfile::schoolbook_analytic(256);
        assert_eq!(p.stage_latency[0], 0);
        assert_eq!(p.stage_latency[2], 0);
        // 256·(8+14)+3
        assert_eq!(p.stage_latency[1], 256 * 22 + 3);
        assert_eq!(p.area_cells, 12 * 256);
        assert_eq!(p.max_writes(), 2 * 256 + 2);
    }

    #[test]
    fn measured_profile_agrees_with_model_envelope() {
        let p = JobProfile::karatsuba_measured(64, 5).unwrap();
        let d = DesignPoint::new(64);
        assert_eq!(p.stage_latency[0], d.precompute_latency);
        assert_eq!(p.stage_latency[1], d.multiply_latency);
        let rel = (p.stage_latency[2] as f64 - d.postcompute_latency as f64).abs()
            / d.postcompute_latency as f64;
        assert!(rel < 0.05, "stage 3 off by {rel}");
        // Stats cycles equal stage cycles + handoffs exactly.
        assert_eq!(p.stats.cycles, p.service_latency());
        // Measured wear is the real thing; model within 4x (same
        // envelope the simulator tests use).
        assert!(p.max_writes() <= 4 * d.max_writes);
        assert!(p.max_writes() >= d.max_writes / 4);
    }

    #[test]
    fn energy_scales_with_width_and_sums_components() {
        let params = EnergyParams::default();
        let small = JobProfile::karatsuba_analytic(64).energy(&params);
        let big = JobProfile::karatsuba_analytic(256).energy(&params);
        assert!(big.total_pj() > small.total_pj());
        for e in [small, big] {
            assert!(e.magic_pj > 0.0, "stage cycles are charged as MAGIC");
            assert!(e.write_pj > 0.0, "handoffs are charged as writes");
            let sum: f64 = e.components().iter().map(|(_, pj)| pj).sum();
            assert!((sum - e.total_pj()).abs() < 1e-9);
        }
        // Schoolbook charges its single row at full width.
        let sb = JobProfile::schoolbook_analytic(256).energy(&params);
        assert!(sb.total_pj() > 0.0);
    }

    #[test]
    fn table_caches_per_class() {
        let mut t = ProfileTable::analytic();
        let job = Job {
            id: 0,
            width: 256,
            algo: Algo::Karatsuba,
            arrival: 0,
        };
        let a = t.profile(&job).unwrap().clone();
        let b = t.profile(&job).unwrap().clone();
        assert_eq!(a, b);
        assert_eq!(t.max_area_cells(), a.area_cells);
    }
}
