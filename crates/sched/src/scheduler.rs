//! The farm scheduler: admission, tile selection, dispatch.
//!
//! [`Scheduler::run`] serves an arrival-ordered job stream on a fresh
//! farm of [`Tile`]s. Admission is FIFO with an optional bounded
//! queue: a job is rejected when the number of admitted-but-not-yet-
//! dispatched jobs at its arrival cycle has reached the queue depth.
//! Accepted jobs are placed by the configured [`Policy`] and executed
//! to completion on their tile (jobs never migrate between tiles;
//! operands would have to be rewritten, costing the very writes the
//! farm is trying to save).

use crate::job::Job;
use crate::policy::Policy;
use crate::profile::{ProfileSource, ProfileTable};
use crate::report::{FarmReport, JobRecord, TileReport};
use crate::tile::{Tile, DEFAULT_ROTATION_SLOTS};
use cim_crossbar::{CycleStats, EnergyParams, EnergyReport};
use cim_metrics::{Histogram, MetricsHub};
use cim_trace::{Args, ProcessId, TrackId, Tracer};
use karatsuba_cim::multiplier::MultiplyError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of one farm run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmConfig {
    /// Number of tiles.
    pub tiles: usize,
    /// Tile-selection policy.
    pub policy: Policy,
    /// Bounded admission-queue depth (`None` = unbounded).
    pub queue_depth: Option<usize>,
    /// Row-offset rotation slots per tile stage subarray.
    pub rotation_slots: usize,
}

impl FarmConfig {
    /// A farm of `tiles` tiles under `policy`, unbounded queue,
    /// default rotation slots.
    ///
    /// # Panics
    ///
    /// Panics if `tiles == 0`.
    pub fn new(tiles: usize, policy: Policy) -> Self {
        assert!(tiles > 0, "farm needs at least one tile");
        FarmConfig {
            tiles,
            policy,
            queue_depth: None,
            rotation_slots: DEFAULT_ROTATION_SLOTS,
        }
    }

    /// Bounds the admission queue to `depth` waiting jobs.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = Some(depth);
        self
    }

    /// Overrides the per-tile rotation-slot count.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn with_rotation_slots(mut self, slots: usize) -> Self {
        assert!(slots > 0, "a tile needs at least one rotation slot");
        self.rotation_slots = slots;
        self
    }
}

/// A reusable farm scheduler; each [`run`](Scheduler::run) starts from
/// a fresh (unworn, idle) farm.
#[derive(Debug, Clone)]
pub struct Scheduler {
    config: FarmConfig,
    profiles: ProfileTable,
    energy_params: EnergyParams,
    hub: MetricsHub,
}

impl Scheduler {
    /// A scheduler with analytic job profiles (the common case).
    pub fn new(config: FarmConfig) -> Self {
        Self::with_profiles(config, ProfileTable::new(ProfileSource::Analytic))
    }

    /// A scheduler with a caller-provided profile table (measured
    /// profiles, or pre-seeded by the batch bridge).
    pub fn with_profiles(config: FarmConfig, profiles: ProfileTable) -> Self {
        Scheduler {
            config,
            profiles,
            energy_params: EnergyParams::default(),
            hub: MetricsHub::disabled(),
        }
    }

    /// Overrides the energy parameters pricing the per-tile and farm
    /// energy reports (defaults to [`EnergyParams::default`]).
    ///
    /// The parameters live on the scheduler, not on [`FarmConfig`]:
    /// the config is a hashable/comparable identity key, and energy
    /// prices are floats that never influence the schedule.
    pub fn with_energy_params(mut self, params: EnergyParams) -> Self {
        self.energy_params = params;
        self
    }

    /// The active energy parameters.
    pub fn energy_params(&self) -> &EnergyParams {
        &self.energy_params
    }

    /// Attaches a metrics hub; every subsequent run publishes its
    /// [`FarmReport`] (see [`crate::metrics`]). Metrics never change
    /// the schedule or the report.
    pub fn attach_metrics(&mut self, hub: &MetricsHub) {
        self.hub = hub.clone();
    }

    /// The active configuration.
    pub fn config(&self) -> &FarmConfig {
        &self.config
    }

    /// Serves `jobs` on a fresh farm and reports the run.
    ///
    /// Jobs are admitted in `(arrival, id)` order regardless of input
    /// order. The result is fully deterministic for a given job
    /// stream and configuration.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from measured-profile resolution.
    pub fn run(&mut self, jobs: &[Job]) -> Result<FarmReport, MultiplyError> {
        self.run_traced(jobs, &Tracer::disabled())
    }

    /// [`Scheduler::run`] on the farm's concurrent execution path.
    ///
    /// Two parts of a run parallelize without touching the schedule:
    ///
    /// 1. **Profile calibration** — the distinct `(width, algo)`
    ///    classes of the stream resolve on one scoped thread each
    ///    ([`ProfileTable::prewarm`]); in measured mode every class is
    ///    a full simulated multiplication, so a mixed-width stream
    ///    calibrates concurrently instead of serially on first use.
    /// 2. **Tile ledger application** — per-tile cycle/energy
    ///    accounting ([`Tile::apply_cost`]) is deferred during the
    ///    placement pass and then applied with one scoped thread per
    ///    tile, so a 4-tile farm folds 4 ledgers concurrently.
    ///
    /// Tile *selection* stays sequential: every [`Policy`] pick reads
    /// the clocks and wear produced by the previous placements.
    ///
    /// The report is byte-for-byte the one [`Scheduler::run`]
    /// produces: placement order is unchanged, each tile folds its own
    /// jobs in dispatch order regardless of thread timing, and tiles
    /// merge into farm totals in tile-id order. (The only observable
    /// difference is the profile table: prewarming also resolves
    /// classes whose every job gets rejected.)
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from measured-profile resolution.
    pub fn run_parallel(&mut self, jobs: &[Job]) -> Result<FarmReport, MultiplyError> {
        self.profiles.prewarm(jobs)?;
        self.serve(jobs, &Tracer::disabled(), true)
    }

    /// [`Scheduler::run`] with tracing: the farm becomes one trace
    /// process with a `scheduler` track carrying the job lifecycle
    /// (`submit`/`reject`/`dispatch`/`retire` instants plus a
    /// `queue_depth` counter sampled at each arrival), one track per
    /// tile carrying a span per job served, and an `occupancy` track
    /// with a farm-wide `jobs_running` gauge.
    ///
    /// Tracing never changes the schedule: the report is byte-for-byte
    /// the one [`Scheduler::run`] produces.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from measured-profile resolution.
    pub fn run_traced(
        &mut self,
        jobs: &[Job],
        tracer: &Tracer,
    ) -> Result<FarmReport, MultiplyError> {
        self.serve(jobs, tracer, false)
    }

    /// The one scheduling loop behind [`Scheduler::run_traced`] and
    /// [`Scheduler::run_parallel`]. With `defer_costs`, tiles only
    /// *place* jobs during the loop and the per-tile cost ledgers are
    /// applied afterwards, one scoped thread per tile.
    fn serve(
        &mut self,
        jobs: &[Job],
        tracer: &Tracer,
        defer_costs: bool,
    ) -> Result<FarmReport, MultiplyError> {
        let mut order: Vec<&Job> = jobs.iter().collect();
        order.sort_by_key(|j| (j.arrival, j.id));

        let enabled = tracer.is_enabled();
        let pid = if enabled {
            tracer.process(&format!(
                "farm: {} tiles, {}",
                self.config.tiles,
                self.config.policy.label()
            ))
        } else {
            ProcessId(0)
        };
        let sched_track = tracer.track(pid, "scheduler");
        let tile_tracks: Vec<TrackId> = if enabled {
            (0..self.config.tiles)
                .map(|i| tracer.track(pid, &format!("tile {i}")))
                .collect()
        } else {
            Vec::new()
        };

        let mut tiles: Vec<Tile> = (0..self.config.tiles)
            .map(|i| Tile::new(i, self.config.rotation_slots))
            .collect();
        // Per-tile job classes whose cost application is deferred to
        // the post-placement parallel phase (dispatch order per tile).
        let mut deferred: Vec<Vec<(usize, crate::job::Algo)>> =
            vec![Vec::new(); if defer_costs { self.config.tiles } else { 0 }];
        let mut records = Vec::with_capacity(order.len());
        let mut rejected = 0usize;
        let mut queue_peak = 0u64;
        // Dispatch cycles of admitted jobs still waiting (start >
        // current arrival): the backlog the bounded queue counts.
        let mut waiting: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
        let rotate = self.config.policy.rotates();

        for job in order {
            while waiting.peek().is_some_and(|Reverse(s)| *s <= job.arrival) {
                waiting.pop();
            }
            if enabled {
                tracer.instant(
                    sched_track,
                    "submit",
                    job.arrival,
                    Args::new()
                        .with("job", job.id as i64)
                        .with("width", job.width as i64),
                );
            }
            if self
                .config
                .queue_depth
                .is_some_and(|depth| waiting.len() >= depth)
            {
                rejected += 1;
                if enabled {
                    tracer.instant(
                        sched_track,
                        "reject",
                        job.arrival,
                        Args::new()
                            .with("job", job.id as i64)
                            .with("queue_depth", waiting.len() as i64),
                    );
                }
                continue;
            }
            let profile = self.profiles.profile(job)?.clone();
            let pick = self.config.policy.pick(&tiles, job.arrival);
            let timing = if defer_costs {
                deferred[pick].push((job.width, job.algo));
                tiles[pick].place(job, &profile, rotate)
            } else {
                tiles[pick].execute(job, &profile, rotate, &self.energy_params)
            };
            waiting.push(Reverse(timing.start[0]));
            queue_peak = queue_peak.max(waiting.len() as u64);
            if enabled {
                tracer.counter(
                    sched_track,
                    "queue_depth",
                    job.arrival,
                    waiting.len() as f64,
                );
                tracer.instant(
                    sched_track,
                    "dispatch",
                    timing.start[0],
                    Args::new()
                        .with("job", job.id as i64)
                        .with("tile", pick as i64),
                );
                tracer.instant(
                    sched_track,
                    "retire",
                    timing.completed_at(),
                    Args::new()
                        .with("job", job.id as i64)
                        .with("tile", pick as i64),
                );
                tracer.complete(
                    tile_tracks[pick],
                    format!("job {}", job.id),
                    timing.start[0],
                    timing.completed_at() - timing.start[0],
                    Args::new()
                        .with("job", job.id as i64)
                        .with("width", job.width as i64)
                        .with("queue_cycles", (timing.start[0] - job.arrival) as i64),
                );
            }
            records.push(JobRecord {
                job: *job,
                tile: pick,
                start: timing.start[0],
                finish: timing.completed_at(),
            });
        }

        if enabled {
            // Farm-wide jobs-in-service gauge: +1 at dispatch, −1 at
            // retire, sampled at every transition cycle.
            let occupancy = tracer.track(pid, "occupancy");
            let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(2 * records.len());
            for r in &records {
                deltas.push((r.start, 1));
                deltas.push((r.finish, -1));
            }
            deltas.sort_unstable();
            let mut running = 0i64;
            let mut i = 0;
            while i < deltas.len() {
                let cycle = deltas[i].0;
                while i < deltas.len() && deltas[i].0 == cycle {
                    running += deltas[i].1;
                    i += 1;
                }
                tracer.counter(occupancy, "jobs_running", cycle, running as f64);
            }
        }

        if defer_costs {
            // Parallel accounting phase: each tile folds its own jobs'
            // cycle/energy costs in dispatch order on its own thread.
            // Tiles share nothing mutable, so the per-tile ledgers are
            // bit-identical to the sequential path's.
            let profiles = &self.profiles;
            let params = &self.energy_params;
            std::thread::scope(|s| {
                for (tile, classes) in tiles.iter_mut().zip(&deferred) {
                    s.spawn(move || {
                        for &key in classes {
                            let profile = profiles.get(key).expect("class placed, so cached");
                            tile.apply_cost(profile, params);
                        }
                    });
                }
            });
        }

        let makespan = records.iter().map(|r| r.finish).max().unwrap_or(0);
        // Per-tile queue-wait vs service-time split, folded from the
        // job records so attribution reports don't have to infer it.
        let mut queue_wait = vec![0u64; self.config.tiles];
        let mut service = vec![0u64; self.config.tiles];
        for r in &records {
            queue_wait[r.tile] += r.queue_cycles();
            service[r.tile] += r.finish - r.start;
        }
        let mut total_stats = CycleStats::default();
        let mut total_energy = EnergyReport::default();
        let tile_reports = tiles
            .iter()
            .map(|t| {
                total_stats.merge(t.stats());
                total_energy.merge(t.energy());
                TileReport {
                    tile: t.id(),
                    jobs_done: t.jobs_done(),
                    busy_cycles: t.busy_cycles(),
                    queue_wait_cycles: queue_wait[t.id()],
                    service_cycles: service[t.id()],
                    max_cell_writes: t.max_cell_writes(),
                    utilization: t.utilization(makespan),
                    stats: *t.stats(),
                    energy: *t.energy(),
                }
            })
            .collect();
        let mut latency_histogram = Histogram::new();
        for r in &records {
            latency_histogram.record(r.latency());
        }

        let report = FarmReport {
            policy: self.config.policy,
            tiles: self.config.tiles,
            jobs_submitted: jobs.len(),
            jobs_rejected: rejected,
            queue_peak,
            makespan_cycles: makespan,
            records,
            latency_histogram,
            tile_reports,
            total_stats,
            total_energy,
        };
        report.publish_metrics(&self.hub);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Algo, JobMix};
    use karatsuba_cim::pipeline::PipelineSchedule;

    fn closed_batch(count: usize) -> Vec<Job> {
        JobMix::uniform(256, Algo::Karatsuba, 0).generate(count, 1)
    }

    #[test]
    fn one_tile_fifo_matches_pipeline_schedule() {
        let jobs = closed_batch(10);
        let report = Scheduler::new(FarmConfig::new(1, Policy::Fifo))
            .run(&jobs)
            .unwrap();
        let reference = PipelineSchedule::for_design(256, 10);
        assert_eq!(
            report.makespan_cycles,
            reference.jobs.last().unwrap().completed_at()
        );
        assert_eq!(report.initiation_interval(), reference.initiation_interval());
        for (rec, expect) in report.records.iter().zip(&reference.jobs) {
            assert_eq!(rec.start, expect.start[0]);
            assert_eq!(rec.finish, expect.completed_at());
        }
    }

    #[test]
    fn farm_cycle_totals_equal_sum_of_tile_stats() {
        for policy in Policy::all() {
            let jobs = JobMix::crypto_default(200).generate(120, 5);
            let report = Scheduler::new(FarmConfig::new(4, policy)).run(&jobs).unwrap();
            let sum: u64 = report.tile_reports.iter().map(|t| t.stats.cycles).sum();
            assert_eq!(report.total_stats.cycles, sum, "{policy:?}");
            let ops: u64 = report.tile_reports.iter().map(|t| t.stats.ops).sum();
            assert_eq!(report.total_stats.ops, ops, "{policy:?}");
            let jobs_sum: u64 = report.tile_reports.iter().map(|t| t.jobs_done).sum();
            assert_eq!(jobs_sum as usize, report.jobs_done(), "{policy:?}");
        }
    }

    #[test]
    fn more_tiles_never_hurt_makespan() {
        let jobs = closed_batch(32);
        let mut last = u64::MAX;
        for tiles in [1usize, 2, 4, 8] {
            let report = Scheduler::new(FarmConfig::new(tiles, Policy::Fifo))
                .run(&jobs)
                .unwrap();
            assert!(report.makespan_cycles <= last, "{tiles} tiles");
            last = report.makespan_cycles;
        }
    }

    #[test]
    fn wear_leveling_extends_lifetime_at_equal_makespan() {
        let jobs = closed_batch(256);
        let fifo = Scheduler::new(FarmConfig::new(16, Policy::Fifo))
            .run(&jobs)
            .unwrap();
        let wl = Scheduler::new(FarmConfig::new(16, Policy::WearLeveling))
            .run(&jobs)
            .unwrap();
        let spread = (wl.makespan_cycles as f64 - fifo.makespan_cycles as f64).abs()
            / fifo.makespan_cycles as f64;
        assert!(spread <= 0.05, "makespan spread {spread}");
        assert!(
            wl.projected_lifetime_multiplications() > fifo.projected_lifetime_multiplications(),
            "wear-leveling must outlive FIFO: {} vs {}",
            wl.projected_lifetime_multiplications(),
            fifo.projected_lifetime_multiplications()
        );
    }

    #[test]
    fn bounded_queue_rejects_under_overload() {
        // Mean gap far below the service interval: the queue grows
        // without bound unless admission is limited.
        let jobs = JobMix::uniform(2048, Algo::Karatsuba, 10).generate(100, 9);
        let bounded = Scheduler::new(FarmConfig::new(1, Policy::Fifo).with_queue_depth(4))
            .run(&jobs)
            .unwrap();
        assert!(bounded.jobs_rejected > 0);
        assert_eq!(bounded.jobs_done() + bounded.jobs_rejected, jobs.len());
        let unbounded = Scheduler::new(FarmConfig::new(1, Policy::Fifo))
            .run(&jobs)
            .unwrap();
        assert_eq!(unbounded.jobs_rejected, 0);
        assert_eq!(unbounded.jobs_done(), jobs.len());
        // Rejection keeps the accepted jobs' tail latency in check.
        assert!(bounded.p99_latency() < unbounded.p99_latency());
    }

    #[test]
    fn runs_are_deterministic() {
        let jobs = JobMix::crypto_default(300).generate(80, 21);
        let a = Scheduler::new(FarmConfig::new(8, Policy::WearLeveling))
            .run(&jobs)
            .unwrap();
        let b = Scheduler::new(FarmConfig::new(8, Policy::WearLeveling))
            .run(&jobs)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        for policy in Policy::all() {
            let jobs = JobMix::crypto_default(300).generate(120, 7);
            let config = FarmConfig::new(4, policy).with_queue_depth(16);
            let seq = Scheduler::new(config).run(&jobs).unwrap();
            let par = Scheduler::new(config).run_parallel(&jobs).unwrap();
            assert_eq!(seq, par, "{policy:?}");
        }
    }

    #[test]
    fn parallel_run_matches_with_measured_profiles() {
        // Two distinct Karatsuba widths so the prewarm fan-out really
        // calibrates more than one class concurrently.
        let mut jobs = JobMix::uniform(16, Algo::Karatsuba, 40).generate(6, 3);
        for (i, job) in JobMix::uniform(32, Algo::Karatsuba, 40)
            .generate(6, 4)
            .into_iter()
            .enumerate()
        {
            jobs.push(Job {
                id: 100 + i as u64,
                ..job
            });
        }
        let config = FarmConfig::new(2, Policy::WearLeveling);
        let source = ProfileSource::Measured { seed: 5 };
        let seq = Scheduler::with_profiles(config, ProfileTable::new(source))
            .run(&jobs)
            .unwrap();
        let par = Scheduler::with_profiles(config, ProfileTable::new(source))
            .run_parallel(&jobs)
            .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_run_empty_job_list() {
        for policy in Policy::all() {
            let report = Scheduler::new(FarmConfig::new(4, policy))
                .run_parallel(&[])
                .expect("an empty stream is a valid (trivial) run");
            assert_eq!(report.jobs_submitted, 0);
            assert_eq!(report.jobs_done(), 0);
            assert_eq!(report.makespan_cycles, 0);
            assert_eq!(report.tile_reports.len(), 4);
            // The empty parallel run matches the empty sequential run.
            let seq = Scheduler::new(FarmConfig::new(4, policy))
                .run(&[])
                .expect("empty sequential run");
            assert_eq!(report, seq, "{policy:?}");
        }
    }

    #[test]
    fn parallel_run_single_tile_farm() {
        let jobs = JobMix::crypto_default(200).generate(40, 13);
        for policy in Policy::all() {
            let config = FarmConfig::new(1, policy).with_queue_depth(8);
            let seq = Scheduler::new(config).run(&jobs).expect("sequential run");
            let par = Scheduler::new(config)
                .run_parallel(&jobs)
                .expect("parallel run");
            assert_eq!(seq, par, "{policy:?}");
            assert_eq!(par.tile_reports.len(), 1);
            assert_eq!(par.jobs_done() + par.jobs_rejected, jobs.len());
        }
    }

    #[test]
    fn oversized_job_width_errors_instead_of_panicking() {
        use crate::profile::MAX_JOB_WIDTH;

        let too_wide = Job {
            id: 0,
            width: 2 * MAX_JOB_WIDTH,
            algo: Algo::Karatsuba,
            arrival: 0,
        };
        let unaligned = Job { id: 1, width: 30, ..too_wide };
        for bad in [too_wide, unaligned] {
            for parallel in [false, true] {
                let mut sched = Scheduler::new(FarmConfig::new(2, Policy::Fifo));
                let result = if parallel {
                    sched.run_parallel(&[bad])
                } else {
                    sched.run(&[bad])
                };
                match result {
                    Err(MultiplyError::UnsupportedWidth { width, max }) => {
                        assert_eq!(width, bad.width);
                        assert_eq!(max, MAX_JOB_WIDTH);
                    }
                    other => panic!("width {} must be rejected, got {other:?}", bad.width),
                }
            }
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_lifecycle() {
        use cim_trace::EventKind;

        let jobs = JobMix::crypto_default(300).generate(40, 3);
        let config = FarmConfig::new(4, Policy::WearLeveling).with_queue_depth(6);
        let plain = Scheduler::new(config).run(&jobs).unwrap();
        let tracer = cim_trace::Tracer::recording();
        let traced = Scheduler::new(config).run_traced(&jobs, &tracer).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the schedule");

        let trace = tracer.finish().unwrap();
        let instants: Vec<&str> = trace
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Instant { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        let count = |what: &str| instants.iter().filter(|n| **n == what).count();
        assert_eq!(count("submit"), plain.jobs_submitted);
        assert_eq!(count("dispatch"), plain.jobs_done());
        assert_eq!(count("retire"), plain.jobs_done());
        assert_eq!(count("reject"), plain.jobs_rejected);
        // One span per served job on the tile tracks.
        let spans = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Complete { .. }))
            .count();
        assert_eq!(spans, plain.jobs_done());
        // The counters cover the queue and the in-service gauge.
        let counters: Vec<&str> = trace
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Counter { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert!(counters.contains(&"queue_depth"));
        assert!(counters.contains(&"jobs_running"));
    }

    #[test]
    fn tile_queue_service_split_matches_records() {
        let jobs = JobMix::crypto_default(300).generate(80, 17);
        let report = Scheduler::new(FarmConfig::new(4, Policy::LeastLoaded).with_queue_depth(8))
            .run(&jobs)
            .unwrap();
        assert!(report.jobs_done() > 0);
        for t in &report.tile_reports {
            let of_tile = || report.records.iter().filter(|r| r.tile == t.tile);
            assert_eq!(
                t.queue_wait_cycles,
                of_tile().map(|r| r.queue_cycles()).sum::<u64>(),
                "tile {}",
                t.tile
            );
            assert_eq!(
                t.service_cycles,
                of_tile().map(|r| r.finish - r.start).sum::<u64>(),
                "tile {}",
                t.tile
            );
        }
        let json = report.to_json();
        assert!(json.contains("\"queue_wait_cycles\""));
        assert!(json.contains("\"service_cycles\""));
    }

    #[test]
    fn metrics_do_not_change_the_report() {
        let jobs = JobMix::crypto_default(300).generate(60, 11);
        let config = FarmConfig::new(4, Policy::WearLeveling).with_queue_depth(8);
        let plain = Scheduler::new(config).run(&jobs).unwrap();

        let hub = cim_metrics::MetricsHub::recording();
        let mut metered = Scheduler::new(config);
        metered.attach_metrics(&hub);
        let report = metered.run(&jobs).unwrap();
        assert_eq!(plain, report, "metrics must not perturb the schedule");
        assert!(!hub.snapshot().families.is_empty());

        let disabled = cim_metrics::MetricsHub::disabled();
        let mut off = Scheduler::new(config);
        off.attach_metrics(&disabled);
        assert_eq!(plain, off.run(&jobs).unwrap());
        assert!(disabled.snapshot().families.is_empty());
    }

    #[test]
    fn farm_energy_is_sum_of_tiles_and_prices_scale() {
        let jobs = closed_batch(24);
        let report = Scheduler::new(FarmConfig::new(3, Policy::LeastLoaded))
            .run(&jobs)
            .unwrap();
        let sum: f64 = report.tile_reports.iter().map(|t| t.energy.total_pj()).sum();
        assert!((report.total_energy.total_pj() - sum).abs() < 1e-6);
        assert!(report.total_energy.magic_pj > 0.0);

        // Doubling every price doubles the bill without touching timing.
        let base = cim_crossbar::EnergyParams::default();
        let doubled = cim_crossbar::EnergyParams {
            write_pj: 2.0 * base.write_pj,
            read_pj: 2.0 * base.read_pj,
            magic_pj: 2.0 * base.magic_pj,
            controller_pj_per_cycle: 2.0 * base.controller_pj_per_cycle,
            offchip_pj_per_bit: 2.0 * base.offchip_pj_per_bit,
        };
        let pricey = Scheduler::new(FarmConfig::new(3, Policy::LeastLoaded))
            .with_energy_params(doubled)
            .run(&jobs)
            .unwrap();
        assert_eq!(pricey.makespan_cycles, report.makespan_cycles);
        assert_eq!(pricey.records, report.records);
        let ratio = pricey.total_energy.total_pj() / report.total_energy.total_pj();
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn mixed_widths_all_complete() {
        let jobs = JobMix::crypto_default(0).generate(60, 2);
        let report = Scheduler::new(FarmConfig::new(4, Policy::LeastLoaded))
            .run(&jobs)
            .unwrap();
        assert_eq!(report.jobs_done(), 60);
        assert!(report.mean_utilization() > 0.0);
        assert!(report.p99_latency() >= report.p50_latency());
    }
}
