//! Scheduler-layer metrics publication.
//!
//! After each farm run the scheduler publishes its [`FarmReport`] into
//! the attached [`MetricsHub`], labeled by dispatch `policy` (and by
//! `tile` for the per-tile families):
//!
//! * `cim_sched_job_latency_cycles{policy}` — end-to-end job latency
//!   histogram, an exact element-wise merge of the report's
//!   [`FarmReport::latency_histogram`] (repeated runs aggregate);
//! * `cim_sched_jobs_total{policy,outcome}` — jobs by outcome
//!   (`done` / `rejected`);
//! * `cim_sched_queue_depth_peak{policy}` — peak admission backlog
//!   (gauge, max over runs);
//! * `cim_sched_jobs_running_peak{policy}` — peak jobs simultaneously
//!   in service (gauge, max over runs);
//! * `cim_sched_makespan_cycles{policy}` — longest run's makespan
//!   (gauge, max over runs);
//! * `cim_sched_farm_clock_cycles_total{policy}` — cumulative farm
//!   virtual-clock cycles across published runs (counter); this is
//!   the scheduler's virtual-time scrape point for the pulse timeline
//!   — successive snapshots of it recover per-run makespans exactly;
//! * `cim_sched_tile_cycles_total{policy,tile,op_class}` — per-tile
//!   cycle totals by micro-op class;
//! * `cim_sched_tile_energy_pj_total{policy,tile,component}` —
//!   per-tile first-order energy by component;
//! * `cim_sched_tile_utilization{policy,tile}` — per-tile utilization
//!   over the makespan (gauge).
//!
//! Publication is a pure read of the report: a test asserts the
//! [`FarmReport`] is identical with metrics attached and not.

use crate::report::FarmReport;
use cim_crossbar::OpClass;
use cim_metrics::{Labels, MetricsHub};

/// Family: end-to-end job latency (histogram, cycles).
pub const METRIC_SCHED_JOB_LATENCY: &str = "cim_sched_job_latency_cycles";
/// Family: jobs by outcome (counter).
pub const METRIC_SCHED_JOBS: &str = "cim_sched_jobs_total";
/// Family: peak admission-queue backlog (gauge).
pub const METRIC_SCHED_QUEUE_DEPTH_PEAK: &str = "cim_sched_queue_depth_peak";
/// Family: peak jobs simultaneously in service (gauge).
pub const METRIC_SCHED_JOBS_RUNNING_PEAK: &str = "cim_sched_jobs_running_peak";
/// Family: makespan of the longest published run (gauge, cycles).
pub const METRIC_SCHED_MAKESPAN: &str = "cim_sched_makespan_cycles";
/// Family: cumulative farm virtual-clock cycles (counter).
pub const METRIC_SCHED_FARM_CLOCK: &str = "cim_sched_farm_clock_cycles_total";
/// Family: per-tile cycles by op class (counter).
pub const METRIC_SCHED_TILE_CYCLES: &str = "cim_sched_tile_cycles_total";
/// Family: per-tile energy by component (counter, picojoules).
pub const METRIC_SCHED_TILE_ENERGY: &str = "cim_sched_tile_energy_pj_total";
/// Family: per-tile utilization over the makespan (gauge).
pub const METRIC_SCHED_TILE_UTILIZATION: &str = "cim_sched_tile_utilization";

impl FarmReport {
    /// Publishes this report into `hub`. See the
    /// [module docs](crate::metrics) for the family catalogue. A no-op
    /// on a disabled hub.
    pub fn publish_metrics(&self, hub: &MetricsHub) {
        if !hub.is_enabled() {
            return;
        }
        let policy = Labels::new().with("policy", self.policy.label());
        hub.merge_histogram(
            METRIC_SCHED_JOB_LATENCY,
            "end-to-end job latency in cycles",
            &policy,
            &self.latency_histogram,
        );
        for (outcome, count) in [
            ("done", self.jobs_done()),
            ("rejected", self.jobs_rejected),
        ] {
            hub.add_counter(
                METRIC_SCHED_JOBS,
                "jobs by outcome",
                &policy.clone().with("outcome", outcome),
                count as f64,
            );
        }
        hub.gauge(
            METRIC_SCHED_QUEUE_DEPTH_PEAK,
            "peak admitted-but-undispatched backlog",
            &policy,
        )
        .set_max(self.queue_peak as f64);
        hub.gauge(
            METRIC_SCHED_JOBS_RUNNING_PEAK,
            "peak jobs simultaneously in service",
            &policy,
        )
        .set_max(self.peak_jobs_running() as f64);
        hub.gauge(
            METRIC_SCHED_MAKESPAN,
            "makespan of the longest published run in cycles",
            &policy,
        )
        .set_max(self.makespan_cycles as f64);
        hub.add_counter(
            METRIC_SCHED_FARM_CLOCK,
            "cumulative farm virtual-clock cycles across published runs",
            &policy,
            self.makespan_cycles as f64,
        );
        for t in &self.tile_reports {
            let tile = policy.clone().with("tile", t.tile);
            for class in OpClass::ALL {
                hub.add_counter(
                    METRIC_SCHED_TILE_CYCLES,
                    "per-tile cycles by micro-op class",
                    &tile.clone().with("op_class", class.label()),
                    t.stats.cycles_of(class) as f64,
                );
            }
            for (component, pj) in t.energy.components() {
                hub.add_counter(
                    METRIC_SCHED_TILE_ENERGY,
                    "per-tile first-order energy in picojoules by component",
                    &tile.clone().with("component", component),
                    pj,
                );
            }
            hub.set_gauge(
                METRIC_SCHED_TILE_UTILIZATION,
                "per-tile utilization over the makespan",
                &tile,
                t.utilization,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobMix;
    use crate::policy::Policy;
    use crate::scheduler::{FarmConfig, Scheduler};

    #[test]
    fn publish_covers_all_sched_families() {
        let jobs = JobMix::crypto_default(300).generate(48, 7);
        let mut sched = Scheduler::new(FarmConfig::new(4, Policy::LeastLoaded));
        let hub = MetricsHub::recording();
        sched.attach_metrics(&hub);
        let report = sched.run(&jobs).unwrap();
        let snap = hub.snapshot();

        let policy = Labels::new().with("policy", "least-loaded");
        let lat = snap
            .histogram_with(METRIC_SCHED_JOB_LATENCY, &policy)
            .expect("latency histogram");
        assert_eq!(lat.count(), report.jobs_done() as u64);
        assert_eq!(&report.latency_histogram, lat);
        assert_eq!(
            snap.number_with(METRIC_SCHED_JOBS, &policy.clone().with("outcome", "done")),
            Some(report.jobs_done() as f64)
        );
        assert_eq!(
            snap.number_with(METRIC_SCHED_JOBS_RUNNING_PEAK, &policy),
            Some(report.peak_jobs_running() as f64)
        );
        assert_eq!(
            snap.number_with(METRIC_SCHED_MAKESPAN, &policy),
            Some(report.makespan_cycles as f64)
        );
        assert_eq!(
            snap.number_with(METRIC_SCHED_FARM_CLOCK, &policy),
            Some(report.makespan_cycles as f64)
        );
        for t in &report.tile_reports {
            let tile = policy.clone().with("tile", t.tile);
            assert_eq!(
                snap.number_with(
                    METRIC_SCHED_TILE_CYCLES,
                    &tile.clone().with("op_class", "magic")
                ),
                Some(t.stats.magic_cycles as f64),
                "tile {}",
                t.tile
            );
            assert_eq!(
                snap.number_with(
                    METRIC_SCHED_TILE_ENERGY,
                    &tile.clone().with("component", "write")
                ),
                Some(t.energy.write_pj),
                "tile {}",
                t.tile
            );
        }
    }

    #[test]
    fn repeated_runs_merge_latency_histograms() {
        let jobs = JobMix::crypto_default(500).generate(20, 3);
        let mut sched = Scheduler::new(FarmConfig::new(2, Policy::Fifo));
        let hub = MetricsHub::recording();
        sched.attach_metrics(&hub);
        let makespan = sched.run(&jobs).unwrap().makespan_cycles;
        sched.run(&jobs).unwrap();
        let snap = hub.snapshot();
        let policy = Labels::new().with("policy", "fifo");
        // The virtual clock accumulates: two identical runs, twice the
        // makespan.
        assert_eq!(
            snap.number_with(METRIC_SCHED_FARM_CLOCK, &policy),
            Some(2.0 * makespan as f64)
        );
        let lat = snap
            .histogram_with(METRIC_SCHED_JOB_LATENCY, &policy)
            .expect("latency histogram");
        assert_eq!(lat.count(), 40);
        assert_eq!(
            snap.number_with(METRIC_SCHED_JOBS, &policy.with("outcome", "done")),
            Some(40.0)
        );
    }
}
