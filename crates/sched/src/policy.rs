//! Tile-selection policies.
//!
//! All three policies serve jobs in admission (arrival) order; they
//! differ only in which tile a job lands on and whether the tile's
//! wear ledger rotates:
//!
//! * [`Policy::Fifo`] — earliest-available tile, lowest id on ties.
//!   The baseline: work-conserving, wear-oblivious.
//! * [`Policy::LeastLoaded`] — tile with the fewest accumulated
//!   stage-occupancy cycles. Balances *lifetime load* rather than
//!   instantaneous availability, which evens utilization under mixed
//!   job widths.
//! * [`Policy::WearLeveling`] — among the earliest-available tiles,
//!   the one with the lowest accumulated per-cell wear; the tile also
//!   rotates its row offsets between jobs. Start cycles are chosen
//!   from the same earliest-available frontier as FIFO, so makespan is
//!   preserved while hot-cell wear drops by the rotation factor.

use crate::tile::Tile;

/// Tile-selection policy for the farm scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Earliest-available tile, lowest id on ties.
    Fifo,
    /// Tile with the fewest accumulated busy cycles.
    LeastLoaded,
    /// Earliest-available tile with the lowest wear; rotates row
    /// offsets inside the tile.
    WearLeveling,
}

impl Policy {
    /// All policies, in presentation order.
    pub fn all() -> [Policy; 3] {
        [Policy::Fifo, Policy::LeastLoaded, Policy::WearLeveling]
    }

    /// Short label used in tables and bench names.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::LeastLoaded => "least-loaded",
            Policy::WearLeveling => "wear-level",
        }
    }

    /// Whether tiles rotate their wear ledger under this policy.
    pub fn rotates(self) -> bool {
        matches!(self, Policy::WearLeveling)
    }

    /// Picks the tile for a job arriving at `arrival`.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is empty.
    pub fn pick(self, tiles: &[Tile], arrival: u64) -> usize {
        assert!(!tiles.is_empty(), "farm needs at least one tile");
        match self {
            Policy::Fifo => tiles
                .iter()
                .min_by_key(|t| (t.earliest_start(arrival), t.id()))
                .expect("non-empty")
                .id(),
            Policy::LeastLoaded => tiles
                .iter()
                .min_by_key(|t| (t.busy_cycles(), t.id()))
                .expect("non-empty")
                .id(),
            Policy::WearLeveling => tiles
                .iter()
                .min_by_key(|t| (t.earliest_start(arrival), t.max_cell_writes(), t.id()))
                .expect("non-empty")
                .id(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Algo, Job};
    use crate::profile::JobProfile;
    use cim_crossbar::EnergyParams;

    fn farm(n: usize) -> Vec<Tile> {
        (0..n).map(|i| Tile::new(i, 8)).collect()
    }

    #[test]
    fn fifo_prefers_idle_tiles_in_id_order() {
        let mut tiles = farm(3);
        let profile = JobProfile::karatsuba_analytic(256);
        let job = Job { id: 0, width: 256, algo: Algo::Karatsuba, arrival: 0 };
        assert_eq!(Policy::Fifo.pick(&tiles, 0), 0);
        tiles[0].execute(&job, &profile, false, &EnergyParams::default());
        assert_eq!(Policy::Fifo.pick(&tiles, 0), 1);
    }

    #[test]
    fn least_loaded_tracks_busy_cycles() {
        let mut tiles = farm(2);
        let big = JobProfile::karatsuba_analytic(2048);
        let job = Job { id: 0, width: 2048, algo: Algo::Karatsuba, arrival: 0 };
        tiles[0].execute(&job, &big, false, &EnergyParams::default());
        assert_eq!(Policy::LeastLoaded.pick(&tiles, 0), 1);
    }

    #[test]
    fn wear_leveling_breaks_ties_by_wear() {
        let mut tiles = farm(2);
        let profile = JobProfile::karatsuba_analytic(256);
        let job = Job { id: 0, width: 256, algo: Algo::Karatsuba, arrival: 0 };
        tiles[0].execute(&job, &profile, true, &EnergyParams::default());
        // Both tiles are free far in the future; tile 1 has no wear.
        let later = tiles[0].drained_at();
        assert_eq!(Policy::WearLeveling.pick(&tiles, later), 1);
    }
}
