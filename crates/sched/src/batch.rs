//! Batch execution: the Karatsuba Multiplication Controller (Fig. 5)
//! streaming many multiplications through one pipeline.
//!
//! Moved here from `karatsuba_cim::batch`: a batch is now the
//! degenerate farm — one tile, FIFO admission, all jobs arriving at
//! cycle 0 — so single-pipeline and multi-tile numbers come from the
//! same scheduler. The multiplications themselves still run on the
//! real simulated crossbars ([`KaratsubaCimMultiplier`]) and every
//! product is verified; each stage keeps its subarray across jobs, so
//! wear *accumulates* exactly as it would in hardware. This is what
//! turns the per-multiplication endurance numbers of Table I into an
//! array lifetime statement.

use crate::job::{Algo, Job};
use crate::policy::Policy;
use crate::profile::{JobProfile, ProfileTable};
use crate::scheduler::{FarmConfig, Scheduler};
use cim_bigint::Uint;
use cim_crossbar::{EnduranceReport, CELL_ENDURANCE_WRITES};
use karatsuba_cim::cost::HANDOFF_CYCLES;
use karatsuba_cim::multiplier::{KaratsubaCimMultiplier, MultiplyError};

/// Report of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Number of multiplications executed (all verified).
    pub multiplications: usize,
    /// Pipelined makespan in cycles (from the 1-tile farm schedule).
    pub makespan_cycles: u64,
    /// Steady-state throughput in multiplications per 10^6 cycles.
    pub throughput_per_mcc: f64,
    /// Accumulated endurance per stage `[pre, mult, post]`.
    pub endurance: [EnduranceReport; 3],
}

impl BatchReport {
    /// Worst per-cell writes across all three stage arrays.
    pub fn max_writes(&self) -> u64 {
        EnduranceReport::max_over(&self.endurance)
    }

    /// Writes to the hottest cell per multiplication (amortized).
    pub fn writes_per_multiplication(&self) -> f64 {
        self.max_writes() as f64 / self.multiplications.max(1) as f64
    }

    /// Multiplications until the hottest cell reaches the ReRAM
    /// endurance limit, extrapolated from this batch's wear rate.
    pub fn projected_lifetime_multiplications(&self) -> u64 {
        let per_mult = self.writes_per_multiplication();
        if per_mult <= 0.0 {
            u64::MAX
        } else {
            (CELL_ENDURANCE_WRITES as f64 / per_mult) as u64
        }
    }
}

/// Runs a batch of multiplications through a single multiplier
/// (persistent stage arrays), verifying every product. Timing comes
/// from a one-tile FIFO farm fed a closed batch — identical, job for
/// job, to the seed's `PipelineSchedule` recurrence.
///
/// # Errors
///
/// Propagates the first simulation or verification error.
///
/// # Panics
///
/// Panics if an operand does not fit the multiplier width.
pub fn run_batch(
    multiplier: &KaratsubaCimMultiplier,
    pairs: &[(Uint, Uint)],
) -> Result<BatchReport, MultiplyError> {
    let mut endurance: Option<[EnduranceReport; 3]> = None;
    let mut stage_cycles = [0u64; 3];
    for (a, b) in pairs {
        let out = multiplier.multiply(a, b)?;
        stage_cycles = out.report.stage_cycles;
        endurance = Some(match endurance {
            None => out.report.endurance,
            Some(acc) => accumulate(acc, out.report.endurance),
        });
    }
    let endurance = endurance.unwrap_or_else(|| {
        let empty = EnduranceReport {
            max_writes: 0,
            total_writes: 0,
            cells_touched: 0,
            cells_total: 0,
        };
        [empty.clone(), empty.clone(), empty]
    });

    // Timing: the measured stage latencies drive a one-tile FIFO farm.
    let n = multiplier.width();
    let mut profile = JobProfile::karatsuba_analytic(n);
    profile.stage_latency = stage_cycles;
    profile.handoff = HANDOFF_CYCLES;
    let mut table = ProfileTable::analytic();
    table.insert(profile);
    let jobs: Vec<Job> = (0..pairs.len() as u64)
        .map(|id| Job { id, width: n, algo: Algo::Karatsuba, arrival: 0 })
        .collect();
    let farm = Scheduler::with_profiles(FarmConfig::new(1, Policy::Fifo), table).run(&jobs)?;

    Ok(BatchReport {
        multiplications: pairs.len(),
        makespan_cycles: farm.makespan_cycles,
        throughput_per_mcc: match farm.initiation_interval() {
            0 => 0.0,
            ii => 1.0e6 / ii as f64,
        },
        endurance,
    })
}

/// Accumulates per-stage endurance across jobs (the stage arrays are
/// physically the same cells each time).
fn accumulate(
    acc: [EnduranceReport; 3],
    add: [EnduranceReport; 3],
) -> [EnduranceReport; 3] {
    std::array::from_fn(|i| EnduranceReport {
        max_writes: acc[i].max_writes + add[i].max_writes,
        total_writes: acc[i].total_writes + add[i].total_writes,
        cells_touched: acc[i].cells_touched.max(add[i].cells_touched),
        cells_total: add[i].cells_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::pairs;
    use karatsuba_cim::pipeline::PipelineSchedule;

    #[test]
    fn batch_reports_scale_with_size() {
        let mult = KaratsubaCimMultiplier::new(32).expect("32 is a valid multiplier width");
        let small = run_batch(&mult, &pairs(32, 2, 1)).expect("2-pair batch must run");
        let large = run_batch(&mult, &pairs(32, 6, 1)).expect("6-pair batch must run");
        assert_eq!(small.multiplications, 2);
        assert_eq!(large.multiplications, 6);
        assert!(large.makespan_cycles > small.makespan_cycles);
        assert!(large.max_writes() > small.max_writes());
        // Steady-state throughput is batch-size independent.
        assert!((large.throughput_per_mcc - small.throughput_per_mcc).abs() < 1e-9);
    }

    #[test]
    fn amortized_writes_are_stable() {
        let mult = KaratsubaCimMultiplier::new(16).expect("16 is a valid multiplier width");
        let r = run_batch(&mult, &pairs(16, 5, 2)).expect("5-pair batch must run");
        let per = r.writes_per_multiplication();
        assert!(per > 0.0);
        // Within 2x of a single run's max writes (same workload shape).
        let single = run_batch(&mult, &pairs(16, 1, 2)).expect("1-pair batch must run");
        assert!(per <= 2.0 * single.max_writes() as f64);
        assert!(r.projected_lifetime_multiplications() > 1_000_000);
    }

    #[test]
    fn empty_batch() {
        let mult = KaratsubaCimMultiplier::new(16).expect("16 is a valid multiplier width");
        let r = run_batch(&mult, &[]).expect("empty batch must run");
        assert_eq!(r.multiplications, 0);
        assert_eq!(r.max_writes(), 0);
    }

    #[test]
    fn throughput_matches_design_point() {
        let mult = KaratsubaCimMultiplier::new(64).expect("64 is a valid multiplier width");
        let r = run_batch(&mult, &pairs(64, 4, 3)).expect("4-pair batch must run");
        let d = mult.design_point();
        // Stage 3 measured differs ≤2% from the paper formula, so the
        // batch throughput must be within 2% of the model's.
        let rel = (r.throughput_per_mcc - d.throughput_per_mcc()).abs() / d.throughput_per_mcc();
        assert!(rel < 0.02, "rel = {rel}");
    }

    /// The farm-backed batch must time exactly like the seed's
    /// single-pipeline schedule it replaced.
    #[test]
    fn farm_timing_matches_pipeline_schedule() {
        let mult = KaratsubaCimMultiplier::new(32).expect("32 is a valid multiplier width");
        let ps = pairs(32, 5, 4);
        let r = run_batch(&mult, &ps).expect("5-pair batch must run");
        let out = mult
            .multiply(&ps[0].0, &ps[0].1)
            .expect("verified multiply must succeed");
        let schedule =
            PipelineSchedule::simulate(ps.len(), out.report.stage_cycles, HANDOFF_CYCLES);
        assert_eq!(
            r.makespan_cycles,
            schedule.jobs.last().expect("nonempty schedule").completed_at()
        );
        assert!((r.throughput_per_mcc - schedule.throughput_per_mcc()).abs() < 1e-9);
    }
}
