//! # cim-sched — a multi-tile, wear-leveling job scheduler for
//! crossbar multiplication farms
//!
//! The paper's pipeline (see `karatsuba-cim`) keeps three
//! multiplications in flight on one set of stage subarrays. A
//! deployment serving cryptographic workloads — TLS handshakes, MSM
//! batches, RSA signing — replicates that pipeline across a **farm of
//! tiles** and must decide which tile serves which job. That decision
//! is where ReRAM's finite endurance bites: a wear-oblivious
//! dispatcher hammers the same hot cells of the same tiles, and the
//! farm dies with most of its endurance budget unspent.
//!
//! This crate provides a cycle-accurate farm simulator:
//!
//! * [`job`] — jobs, weighted job mixes, reproducible arrival streams;
//! * [`profile`] — per-class cost profiles (analytic from the paper's
//!   closed forms, or measured on the real simulated multiplier);
//! * [`tile`] — one pipelined multiplier with local stage clocks,
//!   cumulative [`cim_crossbar::CycleStats`], and a rotation-slot
//!   wear ledger;
//! * [`policy`] — FIFO, least-loaded, and wear-leveling dispatch;
//! * [`scheduler`] — bounded admission plus tile selection;
//! * [`report`] — per-job, per-tile, and farm-level telemetry
//!   (makespan, utilization, p50/p99 latency via a mergeable
//!   log-bucketed histogram, energy breakdowns, projected lifetime);
//! * [`metrics`] — publication of a [`FarmReport`] into a
//!   [`cim_metrics::MetricsHub`] (latency histograms, queue/occupancy
//!   peaks, per-tile cycle and energy counters);
//! * [`batch`] — the single-pipeline batch API (moved here from
//!   `karatsuba_cim::batch`), now the one-tile degenerate farm.
//!
//! ## Example
//!
//! ```
//! use cim_sched::{FarmConfig, JobMix, Policy, Scheduler};
//!
//! // 2000-cycle mean inter-arrival gap of mixed crypto widths.
//! let jobs = JobMix::crypto_default(2000).generate(100, 7);
//! let mut farm = Scheduler::new(FarmConfig::new(4, Policy::WearLeveling));
//! let report = farm.run(&jobs).unwrap();
//! assert_eq!(report.jobs_done(), 100);
//! assert!(report.projected_lifetime_multiplications() > 1_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod job;
#[cfg(test)]
pub(crate) mod testutil;
pub mod metrics;
pub mod policy;
pub mod profile;
pub mod report;
pub mod scheduler;
pub mod tile;

pub use batch::{run_batch, BatchReport};
pub use job::{Algo, Job, JobClass, JobMix};
pub use policy::Policy;
pub use profile::{
    validate_width, JobProfile, ProfileSource, ProfileTable, StageWear, MAX_JOB_WIDTH,
};
pub use report::{FarmReport, JobRecord, TileReport};
pub use scheduler::{FarmConfig, Scheduler};
pub use tile::{Tile, TileJobTiming, DEFAULT_ROTATION_SLOTS};
