//! Farm-level telemetry: per-job records, per-tile summaries, and the
//! aggregate [`FarmReport`] the sweep binary prints.

use crate::job::Job;
use crate::policy::Policy;
use cim_crossbar::{CycleStats, EnergyReport, OpClass, CELL_ENDURANCE_WRITES};
use cim_metrics::Histogram;
use cim_trace::json::JsonWriter;

/// Telemetry for one accepted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// The job as admitted.
    pub job: Job,
    /// Tile that served it.
    pub tile: usize,
    /// Cycle at which it entered the tile's first stage.
    pub start: u64,
    /// Cycle at which its product was back in main memory.
    pub finish: u64,
}

impl JobRecord {
    /// Cycles spent waiting between arrival and dispatch.
    pub fn queue_cycles(&self) -> u64 {
        self.start - self.job.arrival
    }

    /// End-to-end latency from arrival to completion.
    pub fn latency(&self) -> u64 {
        self.finish - self.job.arrival
    }
}

/// Summary of one tile after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct TileReport {
    /// Tile index.
    pub tile: usize,
    /// Jobs served.
    pub jobs_done: u64,
    /// Stage-occupancy cycles accumulated.
    pub busy_cycles: u64,
    /// Total cycles this tile's jobs spent waiting between arrival
    /// and dispatch (Σ start − arrival over the tile's records).
    pub queue_wait_cycles: u64,
    /// Total cycles this tile's jobs spent in service (Σ finish −
    /// start), the complement of the queue-wait split attribution
    /// reports consume directly.
    pub service_cycles: u64,
    /// Worst accumulated per-cell writes on the tile.
    pub max_cell_writes: u64,
    /// Fraction of stage-cycles in use over the makespan.
    pub utilization: f64,
    /// Cumulative cycle statistics.
    pub stats: CycleStats,
    /// Cumulative first-order energy (see [`crate::profile::JobProfile::energy`]).
    pub energy: EnergyReport,
}

/// Aggregate result of one farm run.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmReport {
    /// Policy that produced this run.
    pub policy: Policy,
    /// Number of tiles in the farm.
    pub tiles: usize,
    /// Jobs submitted (accepted + rejected).
    pub jobs_submitted: usize,
    /// Jobs rejected by the bounded admission queue.
    pub jobs_rejected: usize,
    /// Peak admitted-but-not-yet-dispatched backlog over the run.
    pub queue_peak: u64,
    /// Cycle at which the last accepted job completed.
    pub makespan_cycles: u64,
    /// Per-job telemetry in admission order.
    pub records: Vec<JobRecord>,
    /// End-to-end job latencies as a mergeable log-bucketed
    /// [`Histogram`] (the same shape the metrics registry exports, so
    /// multi-run aggregation is an exact element-wise merge).
    pub latency_histogram: Histogram,
    /// Per-tile summaries.
    pub tile_reports: Vec<TileReport>,
    /// Farm-wide cycle statistics (sum of the per-tile statistics).
    pub total_stats: CycleStats,
    /// Farm-wide energy (sum of the per-tile energy reports).
    pub total_energy: EnergyReport,
}

impl FarmReport {
    /// Jobs actually served.
    pub fn jobs_done(&self) -> usize {
        self.records.len()
    }

    /// Latency percentile over accepted jobs (`p` in `0..=100`),
    /// nearest-rank on the log-bucketed [`latency_histogram`]
    /// (relative bucket error ≤ 1/16 above the histogram's linear
    /// range, clamped to the observed min/max); 0 with no jobs.
    ///
    /// [`latency_histogram`]: FarmReport::latency_histogram
    pub fn latency_percentile(&self, p: f64) -> u64 {
        self.latency_histogram.percentile(p)
    }

    /// Median end-to-end job latency.
    pub fn p50_latency(&self) -> u64 {
        self.latency_percentile(50.0)
    }

    /// 99th-percentile end-to-end job latency.
    pub fn p99_latency(&self) -> u64 {
        self.latency_percentile(99.0)
    }

    /// Mean cycles jobs spent queued before dispatch.
    pub fn mean_queue_cycles(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.queue_cycles() as f64).sum::<f64>()
            / self.records.len() as f64
    }

    /// Mean per-tile utilization over the makespan.
    pub fn mean_utilization(&self) -> f64 {
        if self.tile_reports.is_empty() {
            return 0.0;
        }
        self.tile_reports.iter().map(|t| t.utilization).sum::<f64>()
            / self.tile_reports.len() as f64
    }

    /// Worst accumulated per-cell writes anywhere in the farm.
    pub fn max_cell_writes(&self) -> u64 {
        self.tile_reports
            .iter()
            .map(|t| t.max_cell_writes)
            .max()
            .unwrap_or(0)
    }

    /// Writes to the farm's hottest cell per multiplication served.
    pub fn writes_per_multiplication(&self) -> f64 {
        self.max_cell_writes() as f64 / self.jobs_done().max(1) as f64
    }

    /// Multiplications until the farm's hottest cell reaches the ReRAM
    /// endurance limit, extrapolated from this run's wear rate.
    pub fn projected_lifetime_multiplications(&self) -> u64 {
        let per_mult = self.writes_per_multiplication();
        if per_mult <= 0.0 {
            u64::MAX
        } else {
            (CELL_ENDURANCE_WRITES as f64 / per_mult) as u64
        }
    }

    /// Farm throughput over the whole run, in multiplications per
    /// 10^6 cycles (includes pipeline fill; 0 for an empty run).
    pub fn throughput_per_mcc(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.jobs_done() as f64 * 1.0e6 / self.makespan_cycles as f64
    }

    /// Serializes the report as one deterministic JSON object:
    /// farm-level aggregates, latency percentiles (p50/p90/p95/p99),
    /// the farm-wide cycle statistics and energy breakdown, and a
    /// per-tile array (each tile with its own energy breakdown).
    /// Field order is fixed, so equal reports serialize byte-for-byte
    /// identically.
    pub fn to_json(&self) -> String {
        fn stats_json(w: &mut JsonWriter, s: &CycleStats) {
            w.open_object()
                .field_uint("cycles", s.cycles)
                .field_uint("ops", s.ops)
                .field_float("utilization", s.utilization());
            for class in OpClass::ALL {
                w.key(&format!("{}_cycles", class.label()))
                    .uint(s.cycles_of(class));
                w.key(&format!("{}_ops", class.label())).uint(s.ops_of(class));
            }
            w.close_object();
        }

        fn energy_json(w: &mut JsonWriter, e: &EnergyReport) {
            w.open_object();
            for (component, pj) in e.components() {
                w.field_float(&format!("{component}_pj"), pj);
            }
            w.field_float("total_pj", e.total_pj());
            w.close_object();
        }

        let mut w = JsonWriter::new();
        w.open_object()
            .field_str("policy", self.policy.label())
            .field_uint("tiles", self.tiles as u64)
            .field_uint("jobs_submitted", self.jobs_submitted as u64)
            .field_uint("jobs_done", self.jobs_done() as u64)
            .field_uint("jobs_rejected", self.jobs_rejected as u64)
            .field_uint("queue_peak", self.queue_peak)
            .field_uint("makespan_cycles", self.makespan_cycles)
            .field_uint("initiation_interval", self.initiation_interval())
            .field_float("throughput_per_mcc", self.throughput_per_mcc())
            .field_float("mean_queue_cycles", self.mean_queue_cycles())
            .field_float("mean_utilization", self.mean_utilization())
            .field_uint("max_cell_writes", self.max_cell_writes())
            .field_float("writes_per_multiplication", self.writes_per_multiplication())
            .field_uint(
                "projected_lifetime_multiplications",
                self.projected_lifetime_multiplications(),
            );
        w.key("latency_percentiles").open_object();
        for (label, p) in [("p50", 50.0), ("p90", 90.0), ("p95", 95.0), ("p99", 99.0)] {
            w.field_uint(label, self.latency_percentile(p));
        }
        w.close_object();
        w.key("total_stats");
        stats_json(&mut w, &self.total_stats);
        w.key("total_energy");
        energy_json(&mut w, &self.total_energy);
        w.key("tile_reports").open_array();
        for t in &self.tile_reports {
            w.open_object()
                .field_uint("tile", t.tile as u64)
                .field_uint("jobs_done", t.jobs_done)
                .field_uint("busy_cycles", t.busy_cycles)
                .field_uint("queue_wait_cycles", t.queue_wait_cycles)
                .field_uint("service_cycles", t.service_cycles)
                .field_uint("max_cell_writes", t.max_cell_writes)
                .field_float("utilization", t.utilization);
            w.key("stats");
            stats_json(&mut w, &t.stats);
            w.key("energy");
            energy_json(&mut w, &t.energy);
            w.close_object();
        }
        w.close_array().close_object();
        w.finish()
    }

    /// Peak number of jobs simultaneously in service (dispatched and
    /// not yet retired), reconstructed from the job records.
    pub fn peak_jobs_running(&self) -> u64 {
        let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(2 * self.records.len());
        for r in &self.records {
            deltas.push((r.start, 1));
            deltas.push((r.finish, -1));
        }
        deltas.sort_unstable();
        let mut running = 0i64;
        let mut peak = 0i64;
        for (_, d) in deltas {
            running += d;
            peak = peak.max(running);
        }
        peak as u64
    }

    /// Steady-state initiation interval: completion spacing of the
    /// last two jobs (farm-wide), or the single job's latency.
    pub fn initiation_interval(&self) -> u64 {
        let mut finishes: Vec<u64> = self.records.iter().map(|r| r.finish).collect();
        finishes.sort_unstable();
        match finishes.len() {
            0 => 0,
            1 => self.records[0].latency(),
            k => finishes[k - 1] - finishes[k - 2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Algo;

    fn record(id: u64, arrival: u64, start: u64, finish: u64) -> JobRecord {
        JobRecord {
            job: Job { id, width: 256, algo: Algo::Karatsuba, arrival },
            tile: 0,
            start,
            finish,
        }
    }

    fn report(records: Vec<JobRecord>) -> FarmReport {
        let makespan = records.iter().map(|r| r.finish).max().unwrap_or(0);
        let mut latency_histogram = Histogram::new();
        for r in &records {
            latency_histogram.record(r.latency());
        }
        FarmReport {
            policy: Policy::Fifo,
            tiles: 1,
            jobs_submitted: records.len(),
            jobs_rejected: 0,
            queue_peak: 0,
            makespan_cycles: makespan,
            records,
            latency_histogram,
            tile_reports: vec![],
            total_stats: CycleStats::default(),
            total_energy: EnergyReport::default(),
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let r = report((0..100).map(|i| record(i, 0, 0, (i + 1) * 10)).collect());
        // Nearest rank on 100 samples: round(0.5·99) = 50 → the 51st
        // latency, 510, reported as its histogram bucket's upper
        // bound 511 (≤ 1/16 relative error by construction).
        assert_eq!(r.p50_latency(), 511);
        // round(0.99·99) = 98 → 990, bucket upper bound 991.
        assert_eq!(r.p99_latency(), 991);
        // The top percentile clamps to the observed max exactly.
        assert_eq!(r.latency_percentile(100.0), 1000);
    }

    #[test]
    fn peak_jobs_running_counts_overlap() {
        let r = report(vec![
            record(0, 0, 0, 100),
            record(1, 0, 50, 150),
            record(2, 0, 160, 200),
        ]);
        assert_eq!(r.peak_jobs_running(), 2);
        assert_eq!(report(vec![]).peak_jobs_running(), 0);
    }

    #[test]
    fn queue_and_latency_split() {
        let r = record(0, 100, 150, 400);
        assert_eq!(r.queue_cycles(), 50);
        assert_eq!(r.latency(), 300);
    }

    #[test]
    fn empty_report_is_benign() {
        let r = report(vec![]);
        assert_eq!(r.p50_latency(), 0);
        assert_eq!(r.throughput_per_mcc(), 0.0);
        assert_eq!(r.max_cell_writes(), 0);
        assert_eq!(r.projected_lifetime_multiplications(), u64::MAX);
    }

    #[test]
    fn to_json_is_well_formed_and_deterministic() {
        let r = report((0..20).map(|i| record(i, i * 5, i * 5, i * 5 + 300)).collect());
        let json = r.to_json();
        cim_trace::json::check(&json).expect("report JSON must parse");
        assert_eq!(json, r.to_json(), "serialization must be deterministic");
        for key in [
            "\"policy\":\"fifo\"",
            "\"latency_percentiles\"",
            "\"p50\":300",
            "\"p99\":300",
            "\"queue_peak\":0",
            "\"total_stats\"",
            "\"magic_cycles\":0",
            "\"total_energy\"",
            "\"write_pj\":0",
            "\"total_pj\":0",
            "\"tile_reports\":[]",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn empty_report_serializes_cleanly() {
        let json = report(vec![]).to_json();
        cim_trace::json::check(&json).expect("empty-report JSON must parse");
        assert!(json.contains(&format!(
            "\"projected_lifetime_multiplications\":{}",
            u64::MAX
        )));
    }
}
