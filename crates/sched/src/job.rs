//! Jobs and workload generation.
//!
//! A [`Job`] is one multiplication request: an operand width, the
//! algorithm that will serve it, and the cycle at which it arrives at
//! the farm. [`JobMix`] turns a weighted recipe of job classes into a
//! reproducible arrival stream.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Which in-memory multiplier serves a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Algo {
    /// The paper's three-stage unrolled-Karatsuba pipeline (L = 2).
    Karatsuba,
    /// A single-row MultPIM-style schoolbook multiplier at full
    /// operand width — one stage, no pipelining within the job.
    Schoolbook,
    /// The Karatsuba pipeline on bit-sliced arrays: one job carries 64
    /// independent multiplications through the same micro-op programs
    /// (one per `u64` lane), so it costs one instance's cycles and
    /// delivers 64 products.
    KaratsubaBatch64,
}

impl Algo {
    /// Short label used in tables and bench names.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Karatsuba => "karatsuba",
            Algo::Schoolbook => "schoolbook",
            Algo::KaratsubaBatch64 => "karatsuba_batch64",
        }
    }

    /// Products one job of this algorithm delivers.
    pub fn lanes(self) -> usize {
        match self {
            Algo::Karatsuba | Algo::Schoolbook => 1,
            Algo::KaratsubaBatch64 => 64,
        }
    }
}

/// One multiplication request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Monotone job id (admission order at equal arrival).
    pub id: u64,
    /// Operand width in bits (positive multiple of 4).
    pub width: usize,
    /// Serving algorithm.
    pub algo: Algo,
    /// Cycle at which the job reaches the admission queue.
    pub arrival: u64,
}

/// One weighted class in a [`JobMix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobClass {
    /// Operand width in bits.
    pub width: usize,
    /// Serving algorithm.
    pub algo: Algo,
    /// Relative weight (any positive scale).
    pub weight: f64,
}

/// A reproducible workload recipe: weighted job classes plus a mean
/// inter-arrival gap in cycles (geometric, memoryless — the discrete
/// analogue of Poisson traffic).
#[derive(Debug, Clone)]
pub struct JobMix {
    classes: Vec<JobClass>,
    mean_gap: u64,
}

impl JobMix {
    /// Builds a mix from weighted classes and a mean inter-arrival gap
    /// (`0` = all jobs arrive at cycle 0, i.e. a closed batch).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty, any weight is not positive, or
    /// any width is not a positive multiple of 4.
    pub fn new(classes: Vec<JobClass>, mean_gap: u64) -> Self {
        assert!(!classes.is_empty(), "job mix needs at least one class");
        for c in &classes {
            assert!(c.weight > 0.0, "class weights must be positive");
            assert!(
                c.width > 0 && c.width % 4 == 0,
                "operand width must be a positive multiple of 4"
            );
        }
        JobMix { classes, mean_gap }
    }

    /// The paper-motivated cryptographic mix: 256-bit (ECC field),
    /// 1024-bit and 2048-bit (RSA-grade) operands, Karatsuba-heavy
    /// with a schoolbook minority at the small width.
    pub fn crypto_default(mean_gap: u64) -> Self {
        JobMix::new(
            vec![
                JobClass { width: 256, algo: Algo::Karatsuba, weight: 4.0 },
                JobClass { width: 256, algo: Algo::Schoolbook, weight: 1.0 },
                JobClass { width: 1024, algo: Algo::Karatsuba, weight: 2.0 },
                JobClass { width: 2048, algo: Algo::Karatsuba, weight: 1.0 },
            ],
            mean_gap,
        )
    }

    /// A single-class mix (every job identical).
    pub fn uniform(width: usize, algo: Algo, mean_gap: u64) -> Self {
        JobMix::new(vec![JobClass { width, algo, weight: 1.0 }], mean_gap)
    }

    /// The distinct `(width, algo)` classes in this mix.
    pub fn classes(&self) -> &[JobClass] {
        &self.classes
    }

    /// Generates `count` jobs with arrivals sorted by cycle,
    /// deterministically for a given `seed`.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(seed);
        let total_weight: f64 = self.classes.iter().map(|c| c.weight).sum();
        let mut arrival = 0u64;
        (0..count as u64)
            .map(|id| {
                let mut pick = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total_weight;
                let mut class = self.classes[0];
                for c in &self.classes {
                    if pick < c.weight {
                        class = *c;
                        break;
                    }
                    pick -= c.weight;
                }
                let job = Job {
                    id,
                    width: class.width,
                    algo: class.algo,
                    arrival,
                };
                if self.mean_gap > 0 {
                    // Geometric gap with the requested mean: memoryless
                    // arrivals without floating-point state.
                    arrival += sample_geometric(&mut rng, self.mean_gap);
                }
                job
            })
            .collect()
    }
}

/// Geometric sample with mean `mean` (support `0..`), via inversion.
fn sample_geometric(rng: &mut StdRng, mean: u64) -> u64 {
    let p = 1.0 / (mean as f64 + 1.0);
    let u: f64 = rng.gen_range(0.0_f64..1.0);
    // Inverse CDF of the geometric distribution on {0, 1, 2, …}.
    let g = (1.0 - u).ln() / (1.0 - p).ln();
    g.floor().min(1e15) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let mix = JobMix::crypto_default(500);
        let a = mix.generate(200, 7);
        let b = mix.generate(200, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn mix_produces_every_class() {
        let mix = JobMix::crypto_default(0);
        let jobs = mix.generate(500, 3);
        for class in mix.classes() {
            assert!(
                jobs.iter()
                    .any(|j| j.width == class.width && j.algo == class.algo),
                "class {class:?} never generated"
            );
        }
        assert!(jobs.iter().all(|j| j.arrival == 0), "closed batch arrives at 0");
    }

    #[test]
    fn mean_gap_roughly_respected() {
        let mix = JobMix::uniform(256, Algo::Karatsuba, 1000);
        let jobs = mix.generate(2000, 11);
        let span = jobs.last().unwrap().arrival;
        let mean = span as f64 / (jobs.len() - 1) as f64;
        assert!(
            (mean - 1000.0).abs() < 150.0,
            "observed mean gap {mean} too far from 1000"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn rejects_unaligned_width() {
        JobMix::uniform(250, Algo::Karatsuba, 0);
    }
}
