//! # cim-crossbar — cycle-accurate memristive crossbar simulator
//!
//! A from-scratch simulator of a resistive (ReRAM) memory crossbar with
//! **MAGIC** (Memristor-Aided loGIC) in-memory computation, reproducing
//! the execution model of the paper *"Exploring Large Integer
//! Multiplication for Cryptography Targeting In-Memory Computing"*
//! (DATE 2025), Sec. II:
//!
//! * a grid of memristors stores one bit per cell (low resistance = 1,
//!   high resistance = 0);
//! * whole rows are written (`V_set`/`V_reset`) or read (sense
//!   amplifiers) in one clock cycle;
//! * MAGIC **NOR** executes *inside* the array: two (or more) input
//!   rows and one output row, all bit lines in parallel (SIMD), one
//!   clock cycle. The output cell must be initialized to logic 1 and
//!   can only be pulled towards 0 — the simulator models (and, in
//!   strict mode, polices) exactly this;
//! * the same NOR is available column-wise within rows, with optional
//!   partition isolation, as used by single-row multipliers (MultPIM);
//! * a small periphery circuit performs column shifts (read + shift +
//!   write back), which MAGIC alone cannot do;
//! * every cell write is counted for **endurance** analysis
//!   (ReRAM cells survive ~10^10–10^11 writes), and stuck-at faults
//!   can be injected to test robustness.
//!
//! Programs are sequences of [`MicroOp`]s executed by an [`Executor`],
//! which accumulates exact cycle and write statistics.
//!
//! ## Example: a MAGIC NOR across three bit lines (paper Fig. 1b)
//!
//! ```
//! use cim_crossbar::{Crossbar, Executor, MicroOp};
//!
//! # fn main() -> Result<(), cim_crossbar::CrossbarError> {
//! let mut xbar = Crossbar::new(3, 3)?;
//! let mut exec = Executor::new(&mut xbar);
//! exec.run(&[
//!     MicroOp::write_row(0, &[true, false, true]),   // a0 a1 a2
//!     MicroOp::write_row(1, &[false, false, true]),  // b0 b1 b2
//!     MicroOp::init_rows(&[2], 0..3),                // output row to 1
//!     MicroOp::nor_rows(&[0, 1], 2, 0..3),           // c = NOR(a, b)
//! ])?;
//! assert_eq!(exec.array().read_row_bits(2, 0..3)?, vec![false, true, false]);
//! assert_eq!(exec.stats().cycles, 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod cell;
mod endurance;
pub mod energy;
mod error;
mod exec;
mod geometry;
mod isa;
pub mod lanes;
pub mod meter;
mod packed;
pub mod parasitics;
mod sliced;
mod stats;
mod wear;

pub use array::{BackendKind, Crossbar};
pub use cell::{Cell, Fault};
pub use endurance::{EnduranceReport, CELL_ENDURANCE_WRITES};
pub use energy::{EnergyParams, EnergyReport};
pub use error::{Axis, CrossbarError};
pub use exec::{ExecConfig, Executor, OpTrace, TraceEntry};
pub use geometry::{ColRange, Region};
pub use isa::{MicroOp, OpFootprint};
pub use meter::MeterSpec;
pub use stats::{CycleStats, OpClass};

/// Maximum batch lanes a sliced ([`BackendKind::Sliced`]) array can
/// carry: one per bit of the `u64` lane word.
pub const MAX_BATCH_LANES: usize = sliced::MAX_LANES;

/// Practical upper bound on bit-line length (cells per line) before
/// parasitic IR-drop makes sensing unreliable — the paper (Sec. II-C,
/// citing \[7\], \[20\]) flags MultPIM's 5,369-memristor rows as
/// impractical; crossbars in the literature rarely exceed 1–2 K cells
/// per line. Used by [`Crossbar::check_practical_dimensions`].
pub const PRACTICAL_LINE_LIMIT: usize = 2048;
