//! Bit-packed crossbar backend: one `u64` bit-plane word per 64 cells.
//!
//! Cell values live in a dense `value` plane; stuck-at faults in two
//! sparse planes (`sa0`/`sa1`, allocated only once a fault is
//! injected); wear in a lazily materialized [`WearPlane`] keyed by
//! per-op column-range increments. A MAGIC NOR across k columns is
//! `O(k/64)` word ops plus one wear push, instead of `O(k)` per-cell
//! scalar updates — with read/write/drive semantics, error ordering
//! and wear counts bit-identical to the scalar [`crate::Cell`] loops.

use crate::cell::{Cell, Fault};
use crate::geometry::ColRange;
use crate::wear::WearPlane;

const WORD_BITS: usize = 64;

/// Iterates the words a column range touches as `(word, mask, lo)`:
/// `mask` selects the range's bits within the word, `lo` is the first
/// selected bit position.
fn word_spans(cols: ColRange) -> impl Iterator<Item = (usize, u64, usize)> {
    let (start, end) = (cols.start, cols.end);
    let first = start / WORD_BITS;
    let count = if start >= end {
        0
    } else {
        (end - 1) / WORD_BITS + 1 - first
    };
    (0..count).map(move |k| {
        let w = first + k;
        let lo = start.max(w * WORD_BITS) - w * WORD_BITS;
        let hi = end.min(w * WORD_BITS + WORD_BITS) - w * WORD_BITS;
        let mask = if hi - lo == WORD_BITS {
            u64::MAX
        } else {
            ((1u64 << (hi - lo)) - 1) << lo
        };
        (w, mask, lo)
    })
}

/// The packed backend's planes for a rows × cols array.
#[derive(Debug, Clone)]
pub(crate) struct PackedPlanes {
    /// Words per row.
    wpr: usize,
    /// Raw stored bits (the underlying value, unaffected by faults —
    /// exactly like [`Cell`]'s private `value`).
    value: Vec<u64>,
    /// Stuck-at-0 mask; empty until a fault is injected.
    sa0: Vec<u64>,
    /// Stuck-at-1 mask; empty until a fault is injected.
    sa1: Vec<u64>,
    /// Lazily materialized per-cell write counters.
    pub(crate) wear: WearPlane,
}

impl PackedPlanes {
    pub(crate) fn new(rows: usize, cols: usize) -> Self {
        let wpr = cols.div_ceil(WORD_BITS);
        PackedPlanes {
            wpr,
            value: vec![0; rows * wpr],
            sa0: Vec::new(),
            sa1: Vec::new(),
            wear: WearPlane::new(rows, cols),
        }
    }

    #[inline]
    fn idx(&self, row: usize, word: usize) -> usize {
        row * self.wpr + word
    }

    /// Sense-amplifier view of one word: stuck-at-1 forces 1, stuck-at-0
    /// forces 0 (mirrors [`Cell::read`]).
    #[inline]
    fn read_word(&self, row: usize, word: usize) -> u64 {
        let i = self.idx(row, word);
        let v = self.value[i];
        if self.sa0.is_empty() {
            v
        } else {
            (v | self.sa1[i]) & !self.sa0[i]
        }
    }

    /// Bits of `(row, word)` that host any stuck-at fault (writes and
    /// MAGIC drives leave them untouched, like [`Cell::write`]).
    #[inline]
    fn fault_word(&self, row: usize, word: usize) -> u64 {
        if self.sa0.is_empty() {
            0
        } else {
            let i = self.idx(row, word);
            self.sa0[i] | self.sa1[i]
        }
    }

    pub(crate) fn read_bit(&self, row: usize, col: usize) -> bool {
        (self.read_word(row, col / WORD_BITS) >> (col % WORD_BITS)) & 1 == 1
    }

    pub(crate) fn fault_at(&self, row: usize, col: usize) -> Option<Fault> {
        if self.sa0.is_empty() {
            return None;
        }
        let (i, bit) = (self.idx(row, col / WORD_BITS), col % WORD_BITS);
        if (self.sa0[i] >> bit) & 1 == 1 {
            Some(Fault::StuckAt0)
        } else if (self.sa1[i] >> bit) & 1 == 1 {
            Some(Fault::StuckAt1)
        } else {
            None
        }
    }

    pub(crate) fn set_fault(&mut self, row: usize, col: usize, fault: Option<Fault>) {
        if self.sa0.is_empty() {
            if fault.is_none() {
                return;
            }
            self.sa0 = vec![0; self.value.len()];
            self.sa1 = vec![0; self.value.len()];
        }
        let (i, bit) = (self.idx(row, col / WORD_BITS), col % WORD_BITS);
        self.sa0[i] &= !(1 << bit);
        self.sa1[i] &= !(1 << bit);
        match fault {
            Some(Fault::StuckAt0) => self.sa0[i] |= 1 << bit,
            Some(Fault::StuckAt1) => self.sa1[i] |= 1 << bit,
            None => {}
        }
    }

    /// Synthesizes the [`Cell`] view of one coordinate (raw value,
    /// exact wear, fault) — identical to what the scalar backend
    /// stores.
    pub(crate) fn cell(&self, row: usize, col: usize) -> Cell {
        let raw = (self.value[self.idx(row, col / WORD_BITS)] >> (col % WORD_BITS)) & 1 == 1;
        Cell::from_parts(raw, self.wear.writes_at(row, col), self.fault_at(row, col))
    }

    pub(crate) fn read_into(&self, row: usize, cols: ColRange, out: &mut Vec<bool>) {
        out.clear();
        out.reserve(cols.len());
        for (w, mask, lo) in word_spans(cols) {
            let bits = self.read_word(row, w);
            let hi = WORD_BITS - mask.leading_zeros() as usize;
            for b in lo..hi {
                out.push((bits >> b) & 1 == 1);
            }
        }
    }

    /// Reads `cols` as little-endian words aligned to `cols.start`
    /// (bit 0 of `out[0]` = column `cols.start`), fault-adjusted.
    pub(crate) fn read_words_into(&self, row: usize, cols: ColRange, out: &mut Vec<u64>) {
        let len = cols.len();
        out.clear();
        out.resize(len.div_ceil(WORD_BITS), 0);
        let base = cols.start / WORD_BITS;
        let shift = cols.start % WORD_BITS;
        for (k, slot) in out.iter_mut().enumerate() {
            let lo = self.read_word_or_zero(row, base + k) >> shift;
            let hi = if shift == 0 {
                0
            } else {
                self.read_word_or_zero(row, base + k + 1) << (WORD_BITS - shift)
            };
            *slot = lo | hi;
        }
        mask_tail(out, len);
    }

    #[inline]
    fn read_word_or_zero(&self, row: usize, word: usize) -> u64 {
        if word < self.wpr {
            self.read_word(row, word)
        } else {
            0
        }
    }

    /// Writes `len` bits from little-endian `words` into `row` at
    /// `col_offset`: one wear increment per cell, fault cells keep
    /// their value (but still wear) — exactly [`Cell::write`] applied
    /// across the range.
    pub(crate) fn write_words(&mut self, row: usize, col_offset: usize, words: &[u64], len: usize) {
        let range = col_offset..col_offset + len;
        for (w, mask, lo) in word_spans(range.clone()) {
            let src_bit = w * WORD_BITS + lo - col_offset;
            let (si, sh) = (src_bit / WORD_BITS, src_bit % WORD_BITS);
            let bits = (words.get(si).copied().unwrap_or(0) >> sh)
                | if sh == 0 {
                    0
                } else {
                    words.get(si + 1).copied().unwrap_or(0) << (WORD_BITS - sh)
                };
            let m = mask & !self.fault_word(row, w);
            let i = self.idx(row, w);
            self.value[i] = (self.value[i] & !m) | ((bits << lo) & m);
        }
        self.wear.add(row, range, 1);
    }

    /// Sets one cell's raw value without wear — the value half of a
    /// write. A fault cell keeps its value, as under a real write.
    pub(crate) fn store_bit(&mut self, row: usize, col: usize, value: bool) {
        if self.fault_at(row, col).is_some() {
            return;
        }
        let i = self.idx(row, col / WORD_BITS);
        let bit = 1u64 << (col % WORD_BITS);
        if value {
            self.value[i] |= bit;
        } else {
            self.value[i] &= !bit;
        }
    }

    pub(crate) fn write_bits(&mut self, row: usize, col_offset: usize, bits: &[bool]) {
        let mut words = [0u64; 4];
        if bits.len() <= words.len() * WORD_BITS {
            for (j, &b) in bits.iter().enumerate() {
                if b {
                    words[j / WORD_BITS] |= 1 << (j % WORD_BITS);
                }
            }
            self.write_words(row, col_offset, &words, bits.len());
        } else {
            let mut words = vec![0u64; bits.len().div_ceil(WORD_BITS)];
            for (j, &b) in bits.iter().enumerate() {
                if b {
                    words[j / WORD_BITS] |= 1 << (j % WORD_BITS);
                }
            }
            self.write_words(row, col_offset, &words, bits.len());
        }
    }

    /// Parallel set/reset wave over the span of each row in `rows`.
    pub(crate) fn fill(&mut self, rows: std::ops::Range<usize>, cols: ColRange, value: bool) {
        let fill = if value { u64::MAX } else { 0 };
        for row in rows {
            for (w, mask, _) in word_spans(cols.clone()) {
                let m = mask & !self.fault_word(row, w);
                let i = self.idx(row, w);
                self.value[i] = (self.value[i] & !m) | (fill & m);
            }
            self.wear.add(row, cols.clone(), 1);
        }
    }

    /// First column in `cols` whose fault-adjusted read of `row` is 0
    /// — the strict-init scan for MAGIC outputs.
    fn first_zero(&self, row: usize, cols: &ColRange) -> Option<usize> {
        for (w, mask, _) in word_spans(cols.clone()) {
            let fail = mask & !self.read_word(row, w);
            if fail != 0 {
                return Some(w * WORD_BITS + fail.trailing_zeros() as usize);
            }
        }
        None
    }

    /// MAGIC NOR across rows. On a strict-init failure the columns
    /// *before* the failing one are driven and worn (the scalar loop
    /// processes columns left to right), and `Err(col)` is returned.
    pub(crate) fn nor_rows(
        &mut self,
        inputs: &[usize],
        out: usize,
        cols: ColRange,
        strict: bool,
    ) -> Result<(), usize> {
        let fail_col = if strict {
            self.first_zero(out, &cols)
        } else {
            None
        };
        let drive = cols.start..fail_col.unwrap_or(cols.end);
        if drive.start < drive.end {
            for (w, mask, _) in word_spans(drive.clone()) {
                let mut any = 0u64;
                for &r in inputs {
                    any |= self.read_word(r, w);
                }
                // magic_drive(!any): non-fault cells are pulled down
                // where the gate result is 0 (any input read 1).
                let pulldown = any & mask & !self.fault_word(out, w);
                let i = self.idx(out, w);
                self.value[i] &= !pulldown;
            }
            self.wear.add(out, drive, 1);
        }
        match fail_col {
            Some(col) => Err(col),
            None => Ok(()),
        }
    }

    /// MAGIC NOR along rows (column-oriented): one output bit per row,
    /// rows processed in order like the scalar loop. `Err(row)` on a
    /// strict-init failure; preceding rows stay driven.
    pub(crate) fn nor_cols(
        &mut self,
        in_cols: &[usize],
        out_col: usize,
        rows: std::ops::Range<usize>,
        strict: bool,
    ) -> Result<(), usize> {
        for row in rows {
            let any = in_cols.iter().any(|&c| self.read_bit(row, c));
            if strict && !self.read_bit(row, out_col) {
                return Err(row);
            }
            self.drive_bit(row, out_col, !any);
        }
        Ok(())
    }

    /// Partitioned MAGIC NOR; iteration order (row-major, then
    /// partition base) matches the scalar loop. `Err((row, col))` on a
    /// strict-init failure.
    pub(crate) fn nor_cols_partitioned(
        &mut self,
        rows: std::ops::Range<usize>,
        cols: ColRange,
        part_width: usize,
        in_offsets: &[usize],
        out_offset: usize,
        strict: bool,
    ) -> Result<(), (usize, usize)> {
        for row in rows {
            for base in (cols.start..cols.end).step_by(part_width) {
                let any = in_offsets.iter().any(|&off| self.read_bit(row, base + off));
                if strict && !self.read_bit(row, base + out_offset) {
                    return Err((row, base + out_offset));
                }
                self.drive_bit(row, base + out_offset, !any);
            }
        }
        Ok(())
    }

    /// [`Cell::magic_drive`] on a single coordinate.
    fn drive_bit(&mut self, row: usize, col: usize, gate_result: bool) {
        let (w, bit) = (col / WORD_BITS, col % WORD_BITS);
        if !gate_result && self.fault_word(row, w) & (1 << bit) == 0 {
            let i = self.idx(row, w);
            self.value[i] &= !(1 << bit);
        }
        self.wear.add(row, col..col + 1, 1);
    }

    /// `true` when no cell of `row` in `cols` has a stuck-at fault.
    pub(crate) fn region_fault_free(&self, row: usize, cols: ColRange) -> bool {
        if self.sa0.is_empty() {
            return true;
        }
        word_spans(cols).all(|(w, mask, _)| self.fault_word(row, w) & mask == 0)
    }
}

/// Clears bits at positions `>= len` in a little-endian word buffer.
pub(crate) fn mask_tail(words: &mut [u64], len: usize) {
    let tail = len % WORD_BITS;
    if tail != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

/// Shifts a `len`-bit LSB-aligned word vector by `offset` bit
/// positions (positive = towards higher indices), filling vacated
/// positions with `fill` — the word-parallel core of the periphery
/// shift ([`crate::Crossbar::shift_row_to`]).
pub(crate) fn shift_words(words: &[u64], len: usize, offset: isize, fill: bool) -> Vec<u64> {
    let n = len.div_ceil(WORD_BITS);
    let mut out = vec![0u64; n];
    let k = offset.unsigned_abs();
    let (fill_lo, fill_hi);
    if k >= len {
        (fill_lo, fill_hi) = (0, len);
    } else if offset >= 0 {
        let (ws, bs) = (k / WORD_BITS, k % WORD_BITS);
        for i in (ws..n).rev() {
            let lo = words.get(i - ws).copied().unwrap_or(0) << bs;
            let hi = if bs > 0 && i > ws {
                words.get(i - ws - 1).copied().unwrap_or(0) >> (WORD_BITS - bs)
            } else {
                0
            };
            out[i] = lo | hi;
        }
        (fill_lo, fill_hi) = (0, k);
    } else {
        let (ws, bs) = (k / WORD_BITS, k % WORD_BITS);
        for (i, slot) in out.iter_mut().enumerate() {
            let lo = words.get(i + ws).copied().unwrap_or(0) >> bs;
            let hi = if bs > 0 {
                words.get(i + ws + 1).copied().unwrap_or(0) << (WORD_BITS - bs)
            } else {
                0
            };
            *slot = lo | hi;
        }
        (fill_lo, fill_hi) = (len - k, len);
    }
    if fill {
        for (w, mask, _) in word_spans(fill_lo..fill_hi) {
            out[w] |= mask;
        }
    }
    mask_tail(&mut out, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_spans_cover_range_exactly() {
        let spans: Vec<_> = word_spans(60..70).collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], (0, 0xF000_0000_0000_0000, 60));
        assert_eq!(spans[1], (1, 0x3F, 0));
        assert_eq!(word_spans(8..8).count(), 0);
        assert_eq!(word_spans(0..64).next().unwrap().1, u64::MAX);
    }

    #[test]
    fn unaligned_word_read_write_roundtrip() {
        let mut p = PackedPlanes::new(1, 200);
        let words = [0xDEAD_BEEF_0123_4567u64, 0x0FED_CBA9_8765_4321];
        p.write_words(0, 37, &words, 100);
        let mut back = Vec::new();
        p.read_words_into(0, 37..137, &mut back);
        let mut expect = words.to_vec();
        mask_tail(&mut expect, 100);
        assert_eq!(back, expect);
        // Neighbouring cells untouched.
        assert!(!p.read_bit(0, 36));
        assert!(!p.read_bit(0, 137));
    }

    #[test]
    fn faults_pin_reads_and_block_writes() {
        let mut p = PackedPlanes::new(1, 70);
        p.set_fault(0, 65, Some(Fault::StuckAt1));
        p.set_fault(0, 2, Some(Fault::StuckAt0));
        assert!(p.read_bit(0, 65));
        assert!(!p.read_bit(0, 2));
        p.write_bits(0, 0, &[true; 70]);
        assert!(!p.read_bit(0, 2), "stuck-at-0 still reads 0");
        // Clearing the fault reveals the preserved underlying value.
        p.set_fault(0, 2, None);
        assert!(!p.read_bit(0, 2), "write was blocked while faulty");
        p.set_fault(0, 65, None);
        assert!(!p.read_bit(0, 65), "underlying value never changed while faulty");
    }

    #[test]
    fn fault_free_region_check() {
        let mut p = PackedPlanes::new(2, 130);
        assert!(p.region_fault_free(0, 0..130));
        p.set_fault(1, 100, Some(Fault::StuckAt0));
        assert!(p.region_fault_free(0, 0..130));
        assert!(p.region_fault_free(1, 0..100));
        assert!(!p.region_fault_free(1, 64..130));
    }
}
