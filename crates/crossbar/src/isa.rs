//! The micro-operation ISA executed by the crossbar controller.
//!
//! Cycle costs follow the paper's accounting (Sec. IV-B/IV-C):
//!
//! | Op                         | Cycles | Notes                              |
//! |----------------------------|--------|------------------------------------|
//! | `WriteRow`                 | 1      | write circuit drives one word line |
//! | `ReadRow`                  | 1      | sense amplifiers                   |
//! | `InitRows` / `ResetRegion` | 1      | parallel set/reset wave            |
//! | `NorRows` / `NotRow`       | 1      | MAGIC, SIMD over bit lines         |
//! | `NorCols` / `NotCol`       | 1      | MAGIC, SIMD over word lines        |
//! | `Shift`                    | 2      | periphery read + write back        |

use crate::geometry::{ColRange, Region};

/// One micro-operation of a CIM program.
///
/// Construct via the helper constructors, which keep call sites
/// readable; see the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicroOp {
    /// Write `bits` into `row` starting at `col_offset` (1 cc).
    WriteRow {
        /// Target word line.
        row: usize,
        /// First column written.
        col_offset: usize,
        /// Bit payload.
        bits: Vec<bool>,
    },
    /// Read a row span; the value is latched into the executor's
    /// read buffer (1 cc).
    ReadRow {
        /// Word line to sense.
        row: usize,
        /// Columns sensed.
        cols: ColRange,
    },
    /// Drive all cells of the given rows (over `cols`) to logic 1 —
    /// MAGIC output initialization (1 cc, parallel set wave).
    InitRows {
        /// Rows initialized.
        rows: Vec<usize>,
        /// Column span.
        cols: ColRange,
    },
    /// Drive a whole region to logic 0 (1 cc, parallel reset wave).
    ResetRegion(Region),
    /// Drive all cells of the given (not necessarily contiguous) rows
    /// to logic 0 over `cols` (1 cc, parallel reset wave).
    ResetRows {
        /// Rows reset.
        rows: Vec<usize>,
        /// Column span.
        cols: ColRange,
    },
    /// MAGIC NOR across rows, SIMD over the column span (1 cc).
    NorRows {
        /// Input word lines.
        inputs: Vec<usize>,
        /// Output word line (must be initialized to 1).
        out: usize,
        /// Column span.
        cols: ColRange,
    },
    /// MAGIC NOR along a row, SIMD over the row span (1 cc).
    NorCols {
        /// Input bit lines.
        in_cols: Vec<usize>,
        /// Output bit line (must be initialized to 1).
        out_col: usize,
        /// Rows the operation applies to in parallel.
        rows: std::ops::Range<usize>,
    },
    /// Partitioned MAGIC NOR along rows (1 cc): every `part_width`
    /// partition of the span computes
    /// `NOR(in_offsets…) → out_offset` simultaneously, for all rows in
    /// `rows` — MultPIM's partition parallelism.
    NorColsPartitioned {
        /// Rows the operation applies to in parallel.
        rows: std::ops::Range<usize>,
        /// Column span (must be a multiple of `part_width`).
        cols: ColRange,
        /// Partition width in columns.
        part_width: usize,
        /// Input offsets within each partition.
        in_offsets: Vec<usize>,
        /// Output offset within each partition.
        out_offset: usize,
    },
    /// Periphery shift of a row span by `offset` columns (2 cc):
    /// read `src`, shift, write into `dst` (may equal `src`).
    Shift {
        /// Word line read.
        src: usize,
        /// Word line written.
        dst: usize,
        /// Columns shifted (window).
        cols: ColRange,
        /// Shift distance; positive = towards higher columns.
        offset: isize,
        /// Bit filled into vacated positions (carry-in injection).
        fill: bool,
    },
}

impl MicroOp {
    /// Writes `bits` into `row` starting at column 0.
    pub fn write_row(row: usize, bits: &[bool]) -> Self {
        MicroOp::WriteRow {
            row,
            col_offset: 0,
            bits: bits.to_vec(),
        }
    }

    /// Writes `bits` into `row` starting at `col_offset`.
    pub fn write_row_at(row: usize, col_offset: usize, bits: &[bool]) -> Self {
        MicroOp::WriteRow {
            row,
            col_offset,
            bits: bits.to_vec(),
        }
    }

    /// Reads the given span of `row` into the executor's read buffer.
    pub fn read_row(row: usize, cols: ColRange) -> Self {
        MicroOp::ReadRow { row, cols }
    }

    /// Initializes rows to logic 1 over the column span.
    pub fn init_rows(rows: &[usize], cols: ColRange) -> Self {
        MicroOp::InitRows {
            rows: rows.to_vec(),
            cols,
        }
    }

    /// Resets a region to logic 0.
    pub fn reset_region(rows: std::ops::Range<usize>, cols: ColRange) -> Self {
        MicroOp::ResetRegion(Region::new(rows, cols))
    }

    /// Resets the listed rows to logic 0 over the column span.
    pub fn reset_rows(rows: &[usize], cols: ColRange) -> Self {
        MicroOp::ResetRows {
            rows: rows.to_vec(),
            cols,
        }
    }

    /// MAGIC NOR across rows.
    pub fn nor_rows(inputs: &[usize], out: usize, cols: ColRange) -> Self {
        MicroOp::NorRows {
            inputs: inputs.to_vec(),
            out,
            cols,
        }
    }

    /// MAGIC NOT (single-input NOR) across rows.
    pub fn not_row(input: usize, out: usize, cols: ColRange) -> Self {
        MicroOp::NorRows {
            inputs: vec![input],
            out,
            cols,
        }
    }

    /// MAGIC NOR along rows (column-oriented).
    pub fn nor_cols(in_cols: &[usize], out_col: usize, rows: std::ops::Range<usize>) -> Self {
        MicroOp::NorCols {
            in_cols: in_cols.to_vec(),
            out_col,
            rows,
        }
    }

    /// Partitioned MAGIC NOR along rows.
    pub fn nor_cols_partitioned(
        rows: std::ops::Range<usize>,
        cols: ColRange,
        part_width: usize,
        in_offsets: &[usize],
        out_offset: usize,
    ) -> Self {
        MicroOp::NorColsPartitioned {
            rows,
            cols,
            part_width,
            in_offsets: in_offsets.to_vec(),
            out_offset,
        }
    }

    /// In-place periphery shift with zero fill.
    pub fn shift(row: usize, cols: ColRange, offset: isize) -> Self {
        MicroOp::Shift {
            src: row,
            dst: row,
            cols,
            offset,
            fill: false,
        }
    }

    /// Periphery shift from `src` into `dst` with an explicit fill bit.
    pub fn shift_to(src: usize, dst: usize, cols: ColRange, offset: isize, fill: bool) -> Self {
        MicroOp::Shift {
            src,
            dst,
            cols,
            offset,
            fill,
        }
    }

    /// Clock cycles this operation takes.
    pub fn cycles(&self) -> u64 {
        match self {
            MicroOp::Shift { .. } => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_costs() {
        assert_eq!(MicroOp::write_row(0, &[true]).cycles(), 1);
        assert_eq!(MicroOp::read_row(0, 0..4).cycles(), 1);
        assert_eq!(MicroOp::init_rows(&[1, 2], 0..4).cycles(), 1);
        assert_eq!(MicroOp::reset_region(0..2, 0..4).cycles(), 1);
        assert_eq!(MicroOp::nor_rows(&[0, 1], 2, 0..4).cycles(), 1);
        assert_eq!(MicroOp::nor_cols(&[0, 1], 2, 0..4).cycles(), 1);
        assert_eq!(MicroOp::shift(0, 0..4, 1).cycles(), 2);
    }

    #[test]
    fn not_is_single_input_nor() {
        let op = MicroOp::not_row(3, 5, 0..2);
        assert_eq!(op, MicroOp::nor_rows(&[3], 5, 0..2));
    }
}
