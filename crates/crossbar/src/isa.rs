//! The micro-operation ISA executed by the crossbar controller.
//!
//! Cycle costs follow the paper's accounting (Sec. IV-B/IV-C):
//!
//! | Op                         | Cycles | Notes                              |
//! |----------------------------|--------|------------------------------------|
//! | `WriteRow`                 | 1      | write circuit drives one word line |
//! | `ReadRow`                  | 1      | sense amplifiers                   |
//! | `InitRows` / `ResetRegion` | 1      | parallel set/reset wave            |
//! | `NorRows` / `NotRow`       | 1      | MAGIC, SIMD over bit lines         |
//! | `NorCols` / `NotCol`       | 1      | MAGIC, SIMD over word lines        |
//! | `Shift`                    | 2      | periphery read + write back        |

use crate::geometry::{ColRange, Region};

/// One micro-operation of a CIM program.
///
/// Construct via the helper constructors, which keep call sites
/// readable; see the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicroOp {
    /// Write `bits` into `row` starting at `col_offset` (1 cc).
    WriteRow {
        /// Target word line.
        row: usize,
        /// First column written.
        col_offset: usize,
        /// Bit payload.
        bits: Vec<bool>,
    },
    /// Write one *lane word* per column into `row` starting at
    /// `col_offset` (1 cc): bit `l` of `lane_words[j]` is the bit for
    /// batch lane `l` of column `col_offset + j`. On a sliced array
    /// this stages up to 64 independent operands in the same write
    /// pulse a [`MicroOp::WriteRow`] would take; on scalar/packed
    /// arrays the lane-0 bits are written. Cycle cost, wear and trace
    /// shape are identical to `WriteRow` of the same span.
    WriteRowLanes {
        /// Target word line.
        row: usize,
        /// First column written.
        col_offset: usize,
        /// One lane word per column.
        lane_words: Vec<u64>,
    },
    /// Read a row span; the value is latched into the executor's
    /// read buffer (1 cc).
    ReadRow {
        /// Word line to sense.
        row: usize,
        /// Columns sensed.
        cols: ColRange,
    },
    /// Drive all cells of the given rows (over `cols`) to logic 1 —
    /// MAGIC output initialization (1 cc, parallel set wave).
    InitRows {
        /// Rows initialized.
        rows: Vec<usize>,
        /// Column span.
        cols: ColRange,
    },
    /// Drive a whole region to logic 0 (1 cc, parallel reset wave).
    ResetRegion(Region),
    /// Drive all cells of the given (not necessarily contiguous) rows
    /// to logic 0 over `cols` (1 cc, parallel reset wave).
    ResetRows {
        /// Rows reset.
        rows: Vec<usize>,
        /// Column span.
        cols: ColRange,
    },
    /// MAGIC NOR across rows, SIMD over the column span (1 cc).
    NorRows {
        /// Input word lines.
        inputs: Vec<usize>,
        /// Output word line (must be initialized to 1).
        out: usize,
        /// Column span.
        cols: ColRange,
    },
    /// MAGIC NOR along a row, SIMD over the row span (1 cc).
    NorCols {
        /// Input bit lines.
        in_cols: Vec<usize>,
        /// Output bit line (must be initialized to 1).
        out_col: usize,
        /// Rows the operation applies to in parallel.
        rows: std::ops::Range<usize>,
    },
    /// Partitioned MAGIC NOR along rows (1 cc): every `part_width`
    /// partition of the span computes
    /// `NOR(in_offsets…) → out_offset` simultaneously, for all rows in
    /// `rows` — MultPIM's partition parallelism.
    NorColsPartitioned {
        /// Rows the operation applies to in parallel.
        rows: std::ops::Range<usize>,
        /// Column span (must be a multiple of `part_width`).
        cols: ColRange,
        /// Partition width in columns.
        part_width: usize,
        /// Input offsets within each partition.
        in_offsets: Vec<usize>,
        /// Output offset within each partition.
        out_offset: usize,
    },
    /// Periphery shift of a row span by `offset` columns (2 cc):
    /// read `src`, shift, write into `dst` (may equal `src`).
    Shift {
        /// Word line read.
        src: usize,
        /// Word line written.
        dst: usize,
        /// Columns shifted (window).
        cols: ColRange,
        /// Shift distance; positive = towards higher columns.
        offset: isize,
        /// Bit filled into vacated positions (carry-in injection).
        fill: bool,
    },
    /// Co-issued bundle: every inner op executes in the *same* clock
    /// cycle(s), so the bundle charges the maximum inner cost instead
    /// of the sum — the multi-partition issue model the optimizing
    /// compiler (`cim-mir`) exploits.
    ///
    /// Only controller-free in-array waves may co-issue: the MAGIC NOR
    /// family and init/reset waves. Ops that occupy the serial
    /// periphery (row writes/reads, shifts) never bundle, matching the
    /// paper's single-read/write-circuit model. Inner ops must be
    /// pairwise independent (no op's written cells may intersect
    /// another's read or written cells — shared *read* rows are fine:
    /// one driven word line can feed several gates); the executor and
    /// the static verifier both reject bundles that break these rules,
    /// so sequential simulation of the bundle is semantically identical
    /// to true parallel issue.
    Parallel(Vec<MicroOp>),
}

impl MicroOp {
    /// Writes `bits` into `row` starting at column 0.
    pub fn write_row(row: usize, bits: &[bool]) -> Self {
        MicroOp::WriteRow {
            row,
            col_offset: 0,
            bits: bits.to_vec(),
        }
    }

    /// Writes `bits` into `row` starting at `col_offset`.
    pub fn write_row_at(row: usize, col_offset: usize, bits: &[bool]) -> Self {
        MicroOp::WriteRow {
            row,
            col_offset,
            bits: bits.to_vec(),
        }
    }

    /// Writes one lane word per column into `row` at `col_offset`.
    pub fn write_row_lanes(row: usize, col_offset: usize, lane_words: &[u64]) -> Self {
        MicroOp::WriteRowLanes {
            row,
            col_offset,
            lane_words: lane_words.to_vec(),
        }
    }

    /// Reads the given span of `row` into the executor's read buffer.
    pub fn read_row(row: usize, cols: ColRange) -> Self {
        MicroOp::ReadRow { row, cols }
    }

    /// Initializes rows to logic 1 over the column span.
    pub fn init_rows(rows: &[usize], cols: ColRange) -> Self {
        MicroOp::InitRows {
            rows: rows.to_vec(),
            cols,
        }
    }

    /// Resets a region to logic 0.
    pub fn reset_region(rows: std::ops::Range<usize>, cols: ColRange) -> Self {
        MicroOp::ResetRegion(Region::new(rows, cols))
    }

    /// Resets the listed rows to logic 0 over the column span.
    pub fn reset_rows(rows: &[usize], cols: ColRange) -> Self {
        MicroOp::ResetRows {
            rows: rows.to_vec(),
            cols,
        }
    }

    /// MAGIC NOR across rows.
    pub fn nor_rows(inputs: &[usize], out: usize, cols: ColRange) -> Self {
        MicroOp::NorRows {
            inputs: inputs.to_vec(),
            out,
            cols,
        }
    }

    /// MAGIC NOT (single-input NOR) across rows.
    pub fn not_row(input: usize, out: usize, cols: ColRange) -> Self {
        MicroOp::NorRows {
            inputs: vec![input],
            out,
            cols,
        }
    }

    /// MAGIC NOR along rows (column-oriented).
    pub fn nor_cols(in_cols: &[usize], out_col: usize, rows: std::ops::Range<usize>) -> Self {
        MicroOp::NorCols {
            in_cols: in_cols.to_vec(),
            out_col,
            rows,
        }
    }

    /// Partitioned MAGIC NOR along rows.
    pub fn nor_cols_partitioned(
        rows: std::ops::Range<usize>,
        cols: ColRange,
        part_width: usize,
        in_offsets: &[usize],
        out_offset: usize,
    ) -> Self {
        MicroOp::NorColsPartitioned {
            rows,
            cols,
            part_width,
            in_offsets: in_offsets.to_vec(),
            out_offset,
        }
    }

    /// In-place periphery shift with zero fill.
    pub fn shift(row: usize, cols: ColRange, offset: isize) -> Self {
        MicroOp::Shift {
            src: row,
            dst: row,
            cols,
            offset,
            fill: false,
        }
    }

    /// Periphery shift from `src` into `dst` with an explicit fill bit.
    pub fn shift_to(src: usize, dst: usize, cols: ColRange, offset: isize, fill: bool) -> Self {
        MicroOp::Shift {
            src,
            dst,
            cols,
            offset,
            fill,
        }
    }

    /// Wraps independent co-issue-class ops into a same-cycle bundle.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on an empty bundle — the executor and
    /// verifier additionally reject illegal bundles at run/check time.
    pub fn parallel(ops: Vec<MicroOp>) -> Self {
        debug_assert!(!ops.is_empty(), "empty co-issue bundle");
        MicroOp::Parallel(ops)
    }

    /// Clock cycles this operation takes. A [`MicroOp::Parallel`]
    /// bundle costs the maximum of its inner ops — that is the whole
    /// point of co-issue.
    pub fn cycles(&self) -> u64 {
        match self {
            MicroOp::Shift { .. } => 2,
            MicroOp::Parallel(ops) => ops.iter().map(MicroOp::cycles).max().unwrap_or(0),
            _ => 1,
        }
    }

    /// Whether this op is an in-array MAGIC gate (NOR family) — the
    /// ops whose output cells must be pre-initialized and must not
    /// alias an input. A bundle is not itself a gate; its inner ops
    /// keep their own classification.
    pub fn is_magic(&self) -> bool {
        matches!(
            self,
            MicroOp::NorRows { .. } | MicroOp::NorCols { .. } | MicroOp::NorColsPartitioned { .. }
        )
    }

    /// Whether this op may appear inside a [`MicroOp::Parallel`]
    /// bundle: in-array waves (MAGIC NORs, init/reset) co-issue across
    /// partitions; periphery ops (write/read/shift) are serial-only.
    pub fn can_co_issue(&self) -> bool {
        matches!(
            self,
            MicroOp::NorRows { .. }
                | MicroOp::NorCols { .. }
                | MicroOp::NorColsPartitioned { .. }
                | MicroOp::InitRows { .. }
                | MicroOp::ResetRows { .. }
                | MicroOp::ResetRegion(_)
        )
    }

    /// Returns the first co-issue rule violation among `ops` (a
    /// prospective [`MicroOp::Parallel`] bundle), or `None` when the
    /// bundle is legal: non-empty, no nesting, every op in the
    /// co-issue class, and pairwise independent (no op's writes
    /// intersect another op's reads or writes). Shared read regions
    /// are allowed. Used by the executor at issue time and by the
    /// `cim-mir` scheduler when packing; the static verifier in
    /// `cim-check` re-implements the same rules independently.
    pub fn bundle_conflict(ops: &[MicroOp]) -> Option<String> {
        if ops.is_empty() {
            return Some("bundle is empty".to_string());
        }
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, MicroOp::Parallel(_)) {
                return Some(format!("op {i}: nested bundle"));
            }
            if !op.can_co_issue() {
                return Some(format!("op {i}: serial-only op cannot co-issue"));
            }
        }
        let fps: Vec<OpFootprint> = ops.iter().map(MicroOp::footprint).collect();
        for (i, a) in fps.iter().enumerate() {
            for (j, b) in fps.iter().enumerate() {
                if i == j {
                    continue;
                }
                let hits_write = |w: &Region| {
                    b.writes.iter().chain(b.reads.iter()).any(|r| w.intersects(r))
                };
                if a.writes.iter().any(hits_write) {
                    return Some(format!("ops {i} and {j} touch the same cells"));
                }
            }
        }
        None
    }

    /// The cells this op senses (reads) and drives (writes), as
    /// rectangular regions — the metadata static analyzers build on.
    ///
    /// Regions are exact except for a [`MicroOp::NorColsPartitioned`]
    /// with inconsistent geometry (zero or non-dividing partition
    /// width, or an offset outside the partition), where the whole
    /// span is conservatively reported as both read and written; the
    /// executor rejects such an op before touching any cell anyway.
    pub fn footprint(&self) -> OpFootprint {
        let row_span = |row: usize, cols: &ColRange| Region::new(row..row + 1, cols.clone());
        match self {
            MicroOp::WriteRow {
                row,
                col_offset,
                bits,
            } => OpFootprint {
                reads: Vec::new(),
                writes: vec![row_span(*row, &(*col_offset..col_offset + bits.len()))],
            },
            MicroOp::WriteRowLanes {
                row,
                col_offset,
                lane_words,
            } => OpFootprint {
                reads: Vec::new(),
                writes: vec![row_span(*row, &(*col_offset..col_offset + lane_words.len()))],
            },
            MicroOp::ReadRow { row, cols } => OpFootprint {
                reads: vec![row_span(*row, cols)],
                writes: Vec::new(),
            },
            MicroOp::InitRows { rows, cols } | MicroOp::ResetRows { rows, cols } => OpFootprint {
                reads: Vec::new(),
                writes: rows.iter().map(|&r| row_span(r, cols)).collect(),
            },
            MicroOp::ResetRegion(region) => OpFootprint {
                reads: Vec::new(),
                writes: vec![region.clone()],
            },
            MicroOp::NorRows { inputs, out, cols } => OpFootprint {
                reads: inputs.iter().map(|&r| row_span(r, cols)).collect(),
                writes: vec![row_span(*out, cols)],
            },
            MicroOp::NorCols {
                in_cols,
                out_col,
                rows,
            } => OpFootprint {
                reads: in_cols
                    .iter()
                    .map(|&c| Region::new(rows.clone(), c..c + 1))
                    .collect(),
                writes: vec![Region::new(rows.clone(), *out_col..out_col + 1)],
            },
            MicroOp::NorColsPartitioned {
                rows,
                cols,
                part_width,
                in_offsets,
                out_offset,
            } => {
                let geometry_ok = *part_width > 0
                    && cols.len() % part_width == 0
                    && in_offsets
                        .iter()
                        .chain(std::iter::once(out_offset))
                        .all(|&off| off < *part_width);
                if !geometry_ok {
                    let whole = Region::new(rows.clone(), cols.clone());
                    return OpFootprint {
                        reads: vec![whole.clone()],
                        writes: vec![whole],
                    };
                }
                let bases = (cols.start..cols.end).step_by(*part_width);
                OpFootprint {
                    reads: bases
                        .clone()
                        .flat_map(|base| {
                            in_offsets.iter().map(move |&off| {
                                Region::new(rows.clone(), base + off..base + off + 1)
                            })
                        })
                        .collect(),
                    writes: bases
                        .map(|base| {
                            Region::new(rows.clone(), base + out_offset..base + out_offset + 1)
                        })
                        .collect(),
                }
            }
            MicroOp::Shift {
                src, dst, cols, ..
            } => OpFootprint {
                reads: vec![row_span(*src, cols)],
                writes: vec![row_span(*dst, cols)],
            },
            MicroOp::Parallel(ops) => {
                let mut fp = OpFootprint::default();
                for op in ops {
                    let inner = op.footprint();
                    fp.reads.extend(inner.reads);
                    fp.writes.extend(inner.writes);
                }
                fp
            }
        }
    }
}

/// The cells a [`MicroOp`] reads and writes, as rectangular regions.
///
/// Produced by [`MicroOp::footprint`]; consumed by static analyzers
/// (bounds checking, wear accounting, MAGIC legality) that must reason
/// about programs without executing them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpFootprint {
    /// Regions the op senses. Empty regions may appear (zero-width
    /// spans); they touch no cells.
    pub reads: Vec<Region>,
    /// Regions the op drives.
    pub writes: Vec<Region>,
}

impl OpFootprint {
    /// One past the highest row touched (0 if the op touches nothing).
    pub fn row_bound(&self) -> usize {
        self.regions().map(|r| r.rows.end).max().unwrap_or(0)
    }

    /// One past the highest column touched (0 if the op touches
    /// nothing).
    pub fn col_bound(&self) -> usize {
        self.regions().map(|r| r.cols.end).max().unwrap_or(0)
    }

    /// Whether any written region shares a cell with any read region —
    /// for MAGIC ops, the statically-checkable in/out overlap
    /// condition.
    pub fn writes_overlap_reads(&self) -> bool {
        self.writes
            .iter()
            .any(|w| self.reads.iter().any(|r| w.intersects(r)))
    }

    /// Whether the op touches the given cell at all.
    pub fn touches(&self, row: usize, col: usize) -> bool {
        self.regions().any(|r| r.contains(row, col))
    }

    fn regions(&self) -> impl Iterator<Item = &Region> {
        self.reads.iter().chain(self.writes.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_costs() {
        assert_eq!(MicroOp::write_row(0, &[true]).cycles(), 1);
        assert_eq!(MicroOp::read_row(0, 0..4).cycles(), 1);
        assert_eq!(MicroOp::init_rows(&[1, 2], 0..4).cycles(), 1);
        assert_eq!(MicroOp::reset_region(0..2, 0..4).cycles(), 1);
        assert_eq!(MicroOp::nor_rows(&[0, 1], 2, 0..4).cycles(), 1);
        assert_eq!(MicroOp::nor_cols(&[0, 1], 2, 0..4).cycles(), 1);
        assert_eq!(MicroOp::shift(0, 0..4, 1).cycles(), 2);
    }

    #[test]
    fn not_is_single_input_nor() {
        let op = MicroOp::not_row(3, 5, 0..2);
        assert_eq!(op, MicroOp::nor_rows(&[3], 5, 0..2));
    }

    #[test]
    fn footprint_of_row_nor() {
        let fp = MicroOp::nor_rows(&[0, 1], 2, 4..8).footprint();
        assert_eq!(fp.reads.len(), 2);
        assert_eq!(fp.writes, vec![Region::new(2..3, 4..8)]);
        assert_eq!(fp.row_bound(), 3);
        assert_eq!(fp.col_bound(), 8);
        assert!(!fp.writes_overlap_reads());
        assert!(fp.touches(0, 5));
        assert!(!fp.touches(0, 3));
    }

    #[test]
    fn footprint_flags_aliased_nor() {
        let fp = MicroOp::nor_rows(&[0, 2], 2, 0..4).footprint();
        assert!(fp.writes_overlap_reads());
        let fp = MicroOp::nor_cols(&[1, 3], 3, 0..2).footprint();
        assert!(fp.writes_overlap_reads());
    }

    #[test]
    fn footprint_of_partitioned_nor_is_per_partition() {
        let fp = MicroOp::nor_cols_partitioned(0..2, 0..8, 4, &[0, 1], 2).footprint();
        // 2 partitions × 2 inputs read, 2 outputs written.
        assert_eq!(fp.reads.len(), 4);
        assert_eq!(fp.writes.len(), 2);
        assert!(fp.touches(1, 6), "second partition's output");
        assert!(!fp.touches(0, 3), "offset 3 unused");
        assert!(!fp.writes_overlap_reads());
    }

    #[test]
    fn footprint_of_bad_partition_is_conservative() {
        let fp = MicroOp::nor_cols_partitioned(0..1, 0..8, 3, &[0], 1).footprint();
        assert_eq!(fp.reads, vec![Region::new(0..1, 0..8)]);
        assert_eq!(fp.writes, vec![Region::new(0..1, 0..8)]);
        assert!(fp.writes_overlap_reads());
    }

    #[test]
    fn parallel_bundle_costs_max_and_unions_footprints() {
        let bundle = MicroOp::parallel(vec![
            MicroOp::nor_rows(&[0, 1], 2, 0..4),
            MicroOp::not_row(0, 3, 0..4),
            MicroOp::init_rows(&[5], 0..4),
        ]);
        assert_eq!(bundle.cycles(), 1, "co-issue charges the max, not the sum");
        assert!(!bundle.is_magic());
        let fp = bundle.footprint();
        assert_eq!(fp.writes.len(), 3);
        assert_eq!(fp.row_bound(), 6);
        assert!(fp.touches(3, 0) && fp.touches(5, 3));
    }

    #[test]
    fn co_issue_class_excludes_serial_periphery() {
        assert!(MicroOp::nor_rows(&[0], 1, 0..2).can_co_issue());
        assert!(MicroOp::nor_cols(&[0], 1, 0..2).can_co_issue());
        assert!(MicroOp::init_rows(&[0], 0..2).can_co_issue());
        assert!(MicroOp::reset_rows(&[0], 0..2).can_co_issue());
        assert!(MicroOp::reset_region(0..1, 0..2).can_co_issue());
        assert!(!MicroOp::write_row(0, &[true]).can_co_issue());
        assert!(!MicroOp::read_row(0, 0..2).can_co_issue());
        assert!(!MicroOp::shift(0, 0..2, 1).can_co_issue());
    }

    #[test]
    fn shift_reads_src_writes_dst() {
        let fp = MicroOp::shift_to(1, 4, 2..6, 1, false).footprint();
        assert_eq!(fp.reads, vec![Region::new(1..2, 2..6)]);
        assert_eq!(fp.writes, vec![Region::new(4..5, 2..6)]);
        // In-place shift overlaps by design; it is not a MAGIC op.
        let inplace = MicroOp::shift(1, 2..6, 1);
        assert!(inplace.footprint().writes_overlap_reads());
        assert!(!inplace.is_magic());
        assert!(MicroOp::nor_rows(&[0], 1, 0..2).is_magic());
    }
}
