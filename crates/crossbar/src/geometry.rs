//! Geometric helpers: column ranges and rectangular regions.

use std::ops::Range;

/// A half-open range of column indices within a crossbar row.
pub type ColRange = Range<usize>;

/// A rectangular region of a crossbar (rows × columns), used for
/// region-wide initialization/reset and wear-leveling swaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Rows covered (half-open).
    pub rows: Range<usize>,
    /// Columns covered (half-open).
    pub cols: Range<usize>,
}

impl Region {
    /// Creates a region from row and column ranges.
    pub fn new(rows: Range<usize>, cols: Range<usize>) -> Self {
        Region { rows, cols }
    }

    /// Number of cells in the region.
    pub fn cells(&self) -> usize {
        self.rows.len() * self.cols.len()
    }

    /// Whether the region contains the given cell.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        self.rows.contains(&row) && self.cols.contains(&col)
    }

    /// Whether this region shares at least one cell with `other`.
    pub fn intersects(&self, other: &Region) -> bool {
        self.cells() > 0
            && other.cells() > 0
            && self.rows.start < other.rows.end
            && other.rows.start < self.rows.end
            && self.cols.start < other.cols.end
            && other.cols.start < self.cols.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_cells_and_contains() {
        let r = Region::new(2..5, 0..4);
        assert_eq!(r.cells(), 12);
        assert!(r.contains(2, 0));
        assert!(r.contains(4, 3));
        assert!(!r.contains(5, 0));
        assert!(!r.contains(2, 4));
    }

    #[test]
    fn empty_region() {
        let r = Region::new(3..3, 0..10);
        assert_eq!(r.cells(), 0);
        assert!(!r.contains(3, 0));
    }

    #[test]
    fn intersection_is_symmetric_and_exact() {
        let a = Region::new(0..2, 0..4);
        assert!(a.intersects(&Region::new(1..3, 3..5)));
        assert!(Region::new(1..3, 3..5).intersects(&a));
        // Touching edges do not overlap (half-open ranges).
        assert!(!a.intersects(&Region::new(2..4, 0..4)));
        assert!(!a.intersects(&Region::new(0..2, 4..8)));
        // Empty regions overlap nothing, not even themselves.
        let empty = Region::new(1..1, 0..4);
        assert!(!empty.intersects(&a));
        assert!(!empty.intersects(&empty));
    }
}
