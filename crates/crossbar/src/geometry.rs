//! Geometric helpers: column ranges and rectangular regions.

use std::ops::Range;

/// A half-open range of column indices within a crossbar row.
pub type ColRange = Range<usize>;

/// A rectangular region of a crossbar (rows × columns), used for
/// region-wide initialization/reset and wear-leveling swaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Rows covered (half-open).
    pub rows: Range<usize>,
    /// Columns covered (half-open).
    pub cols: Range<usize>,
}

impl Region {
    /// Creates a region from row and column ranges.
    pub fn new(rows: Range<usize>, cols: Range<usize>) -> Self {
        Region { rows, cols }
    }

    /// Number of cells in the region.
    pub fn cells(&self) -> usize {
        self.rows.len() * self.cols.len()
    }

    /// Whether the region contains the given cell.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        self.rows.contains(&row) && self.cols.contains(&col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_cells_and_contains() {
        let r = Region::new(2..5, 0..4);
        assert_eq!(r.cells(), 12);
        assert!(r.contains(2, 0));
        assert!(r.contains(4, 3));
        assert!(!r.contains(5, 0));
        assert!(!r.contains(2, 4));
    }

    #[test]
    fn empty_region() {
        let r = Region::new(3..3, 0..10);
        assert_eq!(r.cells(), 0);
        assert!(!r.contains(3, 0));
    }
}
