//! Energy accounting for crossbar operations.
//!
//! The paper evaluates throughput/area/endurance; energy is the other
//! first-class CIM metric (the von-Neumann data-movement energy is the
//! paper's core motivation). This module attaches per-operation energy
//! costs to the micro-op classes using typical ReRAM numbers from the
//! literature the paper cites (\[5\], \[10\]):
//!
//! * SET/RESET write pulse: ~2 pJ per cell switched;
//! * MAGIC NOR evaluation: ~0.9 pJ per participating output cell
//!   (current through input and output memristors for one cycle);
//! * read/sense: ~0.5 pJ per cell sensed;
//! * periphery shift: read + latch + write ≈ 2·read + write per cell.
//!
//! Absolute values are configurable; the *relative* comparisons
//! (in-memory vs data movement, Karatsuba vs schoolbook baselines) are
//! what the model is for.

use crate::stats::CycleStats;

/// Per-operation energy parameters in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy per cell write pulse (SET or RESET), pJ.
    pub write_pj: f64,
    /// Energy per cell read/sense, pJ.
    pub read_pj: f64,
    /// Energy per MAGIC output cell per NOR/NOT evaluation, pJ.
    pub magic_pj: f64,
    /// Controller/periphery overhead per clock cycle, pJ.
    pub controller_pj_per_cycle: f64,
    /// Energy to move one bit over an off-chip memory bus, pJ —
    /// the von-Neumann cost CIM avoids (DDR-class ~15 pJ/bit).
    pub offchip_pj_per_bit: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            write_pj: 2.0,
            read_pj: 0.5,
            magic_pj: 0.9,
            controller_pj_per_cycle: 0.3,
            offchip_pj_per_bit: 15.0,
        }
    }
}

/// An energy estimate broken down by contribution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyReport {
    /// Energy spent in write pulses, pJ.
    pub write_pj: f64,
    /// Energy spent in reads, pJ.
    pub read_pj: f64,
    /// Energy spent in MAGIC evaluations, pJ.
    pub magic_pj: f64,
    /// Controller overhead, pJ.
    pub controller_pj: f64,
}

impl EnergyReport {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.write_pj + self.read_pj + self.magic_pj + self.controller_pj
    }

    /// Estimates energy from cycle statistics and the touched-cell
    /// width (cells per row-wide operation). This is a first-order
    /// model: every op of a class is assumed to touch `row_width`
    /// cells.
    pub fn from_stats(stats: &CycleStats, row_width: usize, params: &EnergyParams) -> Self {
        let w = row_width as f64;
        EnergyReport {
            // Writes, inits and shift write-backs all pulse cells.
            write_pj: (stats.write_cycles as f64 + stats.init_cycles as f64
                + stats.shift_cycles as f64 / 2.0)
                * w
                * params.write_pj,
            read_pj: (stats.read_cycles as f64 + stats.shift_cycles as f64 / 2.0)
                * w
                * params.read_pj,
            magic_pj: stats.magic_cycles as f64 * w * params.magic_pj,
            controller_pj: stats.cycles as f64 * params.controller_pj_per_cycle,
        }
    }

    /// Energy a von-Neumann system would spend just *moving* `bits`
    /// of operand/result data over an off-chip bus (no compute).
    pub fn offchip_movement_pj(bits: usize, params: &EnergyParams) -> f64 {
        bits as f64 * params.offchip_pj_per_bit
    }

    /// Accumulates another report into this one — per-tile reports
    /// fold into farm totals this way.
    pub fn merge(&mut self, other: &EnergyReport) {
        self.write_pj += other.write_pj;
        self.read_pj += other.read_pj;
        self.magic_pj += other.magic_pj;
        self.controller_pj += other.controller_pj;
    }

    /// The `(component, pJ)` breakdown in fixed report order — the
    /// iteration exporters and metrics use.
    pub fn components(&self) -> [(&'static str, f64); 4] {
        [
            ("write", self.write_pj),
            ("read", self.read_pj),
            ("magic", self.magic_pj),
            ("controller", self.controller_pj),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OpClass;

    fn stats_with(class: OpClass, cycles: u64) -> CycleStats {
        let mut s = CycleStats::default();
        s.record(class, cycles);
        s
    }

    #[test]
    fn totals_sum_components() {
        let r = EnergyReport {
            write_pj: 1.0,
            read_pj: 2.0,
            magic_pj: 3.0,
            controller_pj: 4.0,
        };
        assert!((r.total_pj() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn magic_energy_scales_with_width_and_ops() {
        let params = EnergyParams::default();
        let s = stats_with(OpClass::Magic, 10);
        let narrow = EnergyReport::from_stats(&s, 8, &params);
        let wide = EnergyReport::from_stats(&s, 80, &params);
        assert!((wide.magic_pj / narrow.magic_pj - 10.0).abs() < 1e-9);
    }

    #[test]
    fn shift_splits_between_read_and_write() {
        let params = EnergyParams::default();
        let s = stats_with(OpClass::Shift, 2); // one shift op
        let r = EnergyReport::from_stats(&s, 4, &params);
        assert!(r.read_pj > 0.0 && r.write_pj > 0.0);
    }

    #[test]
    fn offchip_movement_dwarfs_in_memory_ops() {
        let params = EnergyParams::default();
        // Moving a 256-bit operand off-chip vs one 256-wide MAGIC NOR.
        let movement = EnergyReport::offchip_movement_pj(256, &params);
        let s = stats_with(OpClass::Magic, 1);
        let compute = EnergyReport::from_stats(&s, 256, &params).magic_pj;
        assert!(
            movement > 10.0 * compute,
            "movement {movement} pJ vs compute {compute} pJ"
        );
    }
}
