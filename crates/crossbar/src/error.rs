//! Error type for crossbar operations.

use std::error::Error;
use std::fmt;

/// Which physical line orientation an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// A word line (row index).
    Row,
    /// A bit line (column index; for partitioned ops, the offset
    /// within a partition).
    Col,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Row => write!(f, "row"),
            Axis::Col => write!(f, "column"),
        }
    }
}

/// Error raised by crossbar construction or micro-op execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrossbarError {
    /// A row index was outside the array.
    RowOutOfRange {
        /// Offending row index.
        row: usize,
        /// Number of rows in the array.
        rows: usize,
    },
    /// A column index or range end was outside the array.
    ColOutOfRange {
        /// Offending column index.
        col: usize,
        /// Number of columns in the array.
        cols: usize,
    },
    /// An array dimension was zero.
    EmptyDimension,
    /// A MAGIC operation listed the same cell as both input and output
    /// (physically the gate would destroy its own input).
    MagicInOutOverlap {
        /// Orientation of the conflicting line.
        axis: Axis,
        /// The conflicting row/column index (partition offset for
        /// partitioned ops).
        index: usize,
    },
    /// Strict mode: a MAGIC output cell was not initialized to logic 1.
    OutputNotInitialized {
        /// Row of the uninitialized output cell.
        row: usize,
        /// Column of the uninitialized output cell.
        col: usize,
    },
    /// A `WriteRow` payload did not match the addressed column span.
    WidthMismatch {
        /// Bits supplied.
        got: usize,
        /// Bits expected (span width).
        expected: usize,
    },
    /// Partitioned op: the column span is not a multiple of the
    /// partition size, or an offset is outside a partition.
    BadPartition {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A co-issue bundle broke the issue rules: empty, nested, a
    /// serial-only op inside, or two inner ops touching the same cells
    /// (write/write or write/read).
    InvalidBundle {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A batch lane index (or lane count) was outside the array's
    /// lane range — only the sliced backend carries more than one.
    LaneOutOfRange {
        /// Offending lane index or requested lane count.
        lane: usize,
        /// Lanes the array carries.
        lanes: usize,
    },
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for {rows}-row array")
            }
            CrossbarError::ColOutOfRange { col, cols } => {
                write!(f, "column {col} out of range for {cols}-column array")
            }
            CrossbarError::EmptyDimension => write!(f, "array dimensions must be non-zero"),
            CrossbarError::MagicInOutOverlap { axis, index } => {
                write!(f, "MAGIC {axis} {index} is listed as both input and output")
            }
            CrossbarError::OutputNotInitialized { row, col } => write!(
                f,
                "MAGIC output cell ({row}, {col}) was not initialized to logic 1"
            ),
            CrossbarError::WidthMismatch { got, expected } => {
                write!(f, "row write of {got} bits into a span of {expected} columns")
            }
            CrossbarError::BadPartition { detail } => write!(f, "bad partition: {detail}"),
            CrossbarError::InvalidBundle { detail } => {
                write!(f, "invalid co-issue bundle: {detail}")
            }
            CrossbarError::LaneOutOfRange { lane, lanes } => {
                write!(f, "lane {lane} out of range for {lanes}-lane array")
            }
        }
    }
}

impl Error for CrossbarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CrossbarError::RowOutOfRange { row: 9, rows: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = CrossbarError::OutputNotInitialized { row: 1, col: 2 };
        assert!(e.to_string().contains("initialized"));
    }

    #[test]
    fn overlap_display_names_the_axis() {
        let e = CrossbarError::MagicInOutOverlap {
            axis: Axis::Row,
            index: 7,
        };
        assert!(e.to_string().contains("row 7"));
        let e = CrossbarError::MagicInOutOverlap {
            axis: Axis::Col,
            index: 3,
        };
        assert!(e.to_string().contains("column 3"));
    }
}
