//! Error type for crossbar operations.

use std::error::Error;
use std::fmt;

/// Error raised by crossbar construction or micro-op execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrossbarError {
    /// A row index was outside the array.
    RowOutOfRange {
        /// Offending row index.
        row: usize,
        /// Number of rows in the array.
        rows: usize,
    },
    /// A column index or range end was outside the array.
    ColOutOfRange {
        /// Offending column index.
        col: usize,
        /// Number of columns in the array.
        cols: usize,
    },
    /// An array dimension was zero.
    EmptyDimension,
    /// A MAGIC operation's output row coincided with one of its inputs
    /// (physically the gate would destroy its own input).
    OutputAliasesInput {
        /// The conflicting row or column index.
        index: usize,
    },
    /// Strict mode: a MAGIC output cell was not initialized to logic 1.
    OutputNotInitialized {
        /// Row of the uninitialized output cell.
        row: usize,
        /// Column of the uninitialized output cell.
        col: usize,
    },
    /// A `WriteRow` payload did not match the addressed column span.
    WidthMismatch {
        /// Bits supplied.
        got: usize,
        /// Bits expected (span width).
        expected: usize,
    },
    /// Partitioned op: the column span is not a multiple of the
    /// partition size, or an offset is outside a partition.
    BadPartition {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for {rows}-row array")
            }
            CrossbarError::ColOutOfRange { col, cols } => {
                write!(f, "column {col} out of range for {cols}-column array")
            }
            CrossbarError::EmptyDimension => write!(f, "array dimensions must be non-zero"),
            CrossbarError::OutputAliasesInput { index } => {
                write!(f, "MAGIC output line {index} aliases an input line")
            }
            CrossbarError::OutputNotInitialized { row, col } => write!(
                f,
                "MAGIC output cell ({row}, {col}) was not initialized to logic 1"
            ),
            CrossbarError::WidthMismatch { got, expected } => {
                write!(f, "row write of {got} bits into a span of {expected} columns")
            }
            CrossbarError::BadPartition { detail } => write!(f, "bad partition: {detail}"),
        }
    }
}

impl Error for CrossbarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CrossbarError::RowOutOfRange { row: 9, rows: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = CrossbarError::OutputNotInitialized { row: 1, col: 2 };
        assert!(e.to_string().contains("initialized"));
    }
}
