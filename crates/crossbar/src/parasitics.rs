//! Bit-line parasitics: why very long memory lines are impractical.
//!
//! The paper (Sec. II-C, citing \[7\] and the IR-drop study \[20\])
//! rejects MultPIM's 5,369-memristor rows at n = 384 because parasitic
//! wire resistance degrades the sensing margin as lines grow. This
//! module provides the first-order model behind that argument:
//!
//! A bit line of `L` cells has wire resistance `L·r_wire` in series
//! with the selected memristor. Reading distinguishes low resistance
//! (`R_on`) from high (`R_off`) by the line current; the *sense
//! margin* is the relative current separation, which shrinks as the
//! accumulated wire resistance and the sneak-path leakage of `L − 1`
//! half-selected cells grow.

/// Electrical parameters of a crossbar line (typical ReRAM values:
/// R_on = 10 kΩ, R_off = 1 MΩ, ~2.5 Ω wire resistance per cell pitch,
/// sneak-path factor from half-selected cells).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineParams {
    /// Low-resistance (logic 1) state, ohms.
    pub r_on: f64,
    /// High-resistance (logic 0) state, ohms.
    pub r_off: f64,
    /// Wire resistance per cell pitch, ohms.
    pub r_wire_per_cell: f64,
    /// Fraction of read current leaking per half-selected cell
    /// (models sneak paths under a 1T1R/selector assumption — small).
    pub leak_per_cell: f64,
    /// Minimum relative margin the sense amplifier needs (e.g. 0.5 =
    /// the two currents must differ by 50 % of the larger one).
    pub min_margin: f64,
}

impl Default for LineParams {
    fn default() -> Self {
        LineParams {
            r_on: 10_000.0,
            r_off: 1_000_000.0,
            r_wire_per_cell: 2.5,
            leak_per_cell: 6.0e-5,
            min_margin: 0.5,
        }
    }
}

/// Sense-margin analysis of a line of `cells` memristors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineAnalysis {
    /// Number of cells on the line.
    pub cells: usize,
    /// Relative sensing margin in [0, 1].
    pub margin: f64,
    /// Whether the margin clears the sense-amplifier requirement.
    pub reliable: bool,
}

/// Analyzes reading the *far-end* cell of a line of `cells` cells —
/// the worst case for IR drop.
pub fn analyze_line(cells: usize, params: &LineParams) -> LineAnalysis {
    let r_wire = cells as f64 * params.r_wire_per_cell;
    // Effective currents (unit read voltage): worst case reads the
    // far-end cell through the full wire.
    let i_on = 1.0 / (params.r_on + r_wire);
    let i_off = 1.0 / (params.r_off + r_wire);
    // Sneak-path leakage raises the "off" current floor.
    let leak = params.leak_per_cell * (cells.saturating_sub(1)) as f64 / params.r_on;
    let i_off = i_off + leak;
    let margin = if i_on <= i_off {
        0.0
    } else {
        (i_on - i_off) / i_on
    };
    LineAnalysis {
        cells,
        margin,
        reliable: margin >= params.min_margin,
    }
}

/// The longest line that still senses reliably under `params`
/// (binary search; the margin is monotone decreasing in length).
pub fn max_reliable_line(params: &LineParams) -> usize {
    let mut lo = 1usize;
    let mut hi = 1usize;
    while analyze_line(hi, params).reliable {
        lo = hi;
        hi *= 2;
        if hi > 1 << 24 {
            return hi; // effectively unlimited under these params
        }
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if analyze_line(mid, params).reliable {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_decreases_with_length() {
        let p = LineParams::default();
        let short = analyze_line(64, &p);
        let medium = analyze_line(1024, &p);
        let long = analyze_line(8192, &p);
        assert!(short.margin > medium.margin);
        assert!(medium.margin > long.margin);
    }

    #[test]
    fn short_lines_are_reliable() {
        let p = LineParams::default();
        assert!(analyze_line(64, &p).reliable);
        assert!(analyze_line(576, &p).reliable, "our 1.5n row at n=384");
    }

    #[test]
    fn multpim_row_at_384_fails_where_ours_passes() {
        // The paper's practicality argument, quantified: MultPIM's
        // 5,369-cell row vs our longest row (1,176 cells at n = 384).
        let p = LineParams::default();
        let ours = analyze_line(1176, &p);
        let multpim = analyze_line(5369, &p);
        assert!(ours.margin > multpim.margin);
        assert!(
            ours.reliable && !multpim.reliable,
            "ours {} vs multpim {}",
            ours.margin,
            multpim.margin
        );
    }

    #[test]
    fn max_reliable_line_is_consistent() {
        let p = LineParams::default();
        let max = max_reliable_line(&p);
        assert!(analyze_line(max, &p).reliable);
        assert!(!analyze_line(max + 1, &p).reliable);
        // And it lands in the 1–4 K range the literature reports.
        assert!((1_000..5_000).contains(&max), "max = {max}");
    }

    #[test]
    fn degenerate_params() {
        // Zero wire resistance and leakage → near-perfect margin at
        // any length.
        let p = LineParams {
            r_wire_per_cell: 0.0,
            leak_per_cell: 0.0,
            ..LineParams::default()
        };
        assert!(analyze_line(1 << 20, &p).margin > 0.95);
    }
}
