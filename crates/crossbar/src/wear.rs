//! Lazily materialized per-cell wear plane for the packed backend.
//!
//! The scalar backend pays one counter increment per cell per write
//! pulse. The packed backend instead records *column-range increments*
//! — one `(start, end, delta)` entry per operation and row — and only
//! materializes per-cell counters when an entry buffer grows past a
//! threshold (or when a per-cell query forces a read through the
//! pending entries). A MAGIC NOR over 3,000 columns therefore costs
//! one range push instead of 3,000 increments, while every per-cell
//! count stays exactly equal to the scalar backend's.

use std::ops::Range;

/// Pending entries per row before they are folded into the dense
/// per-cell base plane. Bounds both the memory of the pending buffer
/// and the cost of a per-cell query (`O(threshold)`).
const COMPACT_THRESHOLD: usize = 192;

/// One row's wear state: an optional dense base plane plus pending
/// range increments not yet folded in.
#[derive(Debug, Clone, Default)]
struct RowWear {
    /// Dense per-cell counters; empty until the first compaction.
    base: Vec<u64>,
    /// Range increments `(start, end, delta)` applied after `base`.
    pending: Vec<(u32, u32, u64)>,
}

/// Per-row wear counters stored as lazy range increments.
#[derive(Debug, Clone)]
pub(crate) struct WearPlane {
    cols: usize,
    rows: Vec<RowWear>,
}

impl WearPlane {
    pub(crate) fn new(rows: usize, cols: usize) -> Self {
        WearPlane {
            cols,
            rows: vec![RowWear::default(); rows],
        }
    }

    /// Records `delta` write pulses for every cell of `row` in `cols`.
    pub(crate) fn add(&mut self, row: usize, cols: Range<usize>, delta: u64) {
        if cols.start >= cols.end || delta == 0 {
            return;
        }
        let rw = &mut self.rows[row];
        let entry = (cols.start as u32, cols.end as u32, delta);
        // Coalesce immediate repeats over the same span (common for
        // staging cells rewritten op after op).
        if let Some(last) = rw.pending.last_mut() {
            if last.0 == entry.0 && last.1 == entry.1 {
                last.2 += delta;
                return;
            }
        }
        rw.pending.push(entry);
        if rw.pending.len() > COMPACT_THRESHOLD {
            Self::compact(rw, self.cols);
        }
    }

    /// Folds a row's pending entries into its dense base plane using a
    /// difference array: `O(cols + pending)`.
    fn compact(rw: &mut RowWear, cols: usize) {
        if rw.base.is_empty() {
            rw.base = vec![0; cols];
        }
        let mut diff = vec![0i64; cols + 1];
        for &(s, e, d) in &rw.pending {
            diff[s as usize] += d as i64;
            diff[e as usize] -= d as i64;
        }
        rw.pending.clear();
        let mut running = 0i64;
        for (cell, d) in rw.base.iter_mut().zip(&diff) {
            running += d;
            *cell += running as u64;
        }
    }

    /// Exact write count of one cell — reads through the pending
    /// entries without materializing anything (`O(threshold)`).
    pub(crate) fn writes_at(&self, row: usize, col: usize) -> u64 {
        let rw = &self.rows[row];
        let base = rw.base.get(col).copied().unwrap_or(0);
        let col = col as u32;
        base + rw
            .pending
            .iter()
            .filter(|&&(s, e, _)| s <= col && col < e)
            .map(|&(_, _, d)| d)
            .sum::<u64>()
    }

    /// Visits disjoint segments of constant wear covering all columns
    /// of `row` as `(writes, cell_count)` pairs. When the base plane is
    /// unmaterialized this is a sweep over the pending boundaries
    /// (`O(pending log pending)`); otherwise one `O(cols)` walk —
    /// never a forced compaction, so `&self` suffices on hot paths.
    pub(crate) fn for_each_segment<F: FnMut(u64, usize)>(&self, row: usize, mut f: F) {
        let rw = &self.rows[row];
        if rw.base.is_empty() {
            // Sweep-line over range boundaries; gaps are zero-wear.
            let mut events: Vec<(u32, i64)> = Vec::with_capacity(rw.pending.len() * 2);
            for &(s, e, d) in &rw.pending {
                events.push((s, d as i64));
                events.push((e, -(d as i64)));
            }
            events.sort_unstable();
            let mut prev = 0u32;
            let mut level = 0i64;
            for (pos, d) in events {
                if pos > prev {
                    f(level as u64, (pos - prev) as usize);
                }
                level += d;
                prev = pos.max(prev);
            }
            if (prev as usize) < self.cols {
                f(0, self.cols - prev as usize);
            }
        } else {
            let mut diff = vec![0i64; self.cols + 1];
            for &(s, e, d) in &rw.pending {
                diff[s as usize] += d as i64;
                diff[e as usize] -= d as i64;
            }
            let mut running = 0i64;
            for (cell, d) in rw.base.iter().zip(&diff) {
                running += d;
                f(cell + running as u64, 1);
            }
        }
    }

    /// Clears all counters (both planes).
    pub(crate) fn reset(&mut self) {
        for rw in &mut self.rows {
            rw.base.clear();
            rw.pending.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn materialize(plane: &WearPlane, row: usize) -> Vec<u64> {
        let mut out = Vec::new();
        plane.for_each_segment(row, |w, n| out.extend(std::iter::repeat_n(w, n)));
        out
    }

    #[test]
    fn range_increments_accumulate() {
        let mut p = WearPlane::new(2, 8);
        p.add(0, 0..4, 1);
        p.add(0, 2..6, 2);
        p.add(1, 7..8, 5);
        assert_eq!(materialize(&p, 0), vec![1, 1, 3, 3, 2, 2, 0, 0]);
        assert_eq!(materialize(&p, 1), vec![0, 0, 0, 0, 0, 0, 0, 5]);
        assert_eq!(p.writes_at(0, 3), 3);
        assert_eq!(p.writes_at(0, 6), 0);
    }

    #[test]
    fn coalesces_repeated_spans() {
        let mut p = WearPlane::new(1, 4);
        for _ in 0..10 {
            p.add(0, 1..3, 1);
        }
        assert_eq!(p.rows[0].pending.len(), 1, "identical spans coalesce");
        assert_eq!(p.writes_at(0, 1), 10);
    }

    #[test]
    fn compaction_preserves_counts() {
        let mut p = WearPlane::new(1, 16);
        let mut expect = vec![0u64; 16];
        // Alternate spans so coalescing never fires and compaction does.
        for i in 0..3 * COMPACT_THRESHOLD {
            let s = i % 13;
            let e = s + 1 + (i % 3);
            let e = e.min(16);
            p.add(0, s..e, 1);
            for w in &mut expect[s..e] {
                *w += 1;
            }
        }
        assert!(!p.rows[0].base.is_empty(), "compaction must have fired");
        assert_eq!(materialize(&p, 0), expect);
        for (c, &w) in expect.iter().enumerate() {
            assert_eq!(p.writes_at(0, c), w, "cell {c}");
        }
    }

    #[test]
    fn segments_cover_all_columns() {
        let mut p = WearPlane::new(1, 10);
        p.add(0, 3..5, 2);
        let mut cells = 0;
        p.for_each_segment(0, |_, n| cells += n);
        assert_eq!(cells, 10);
    }

    #[test]
    fn reset_clears_both_planes() {
        let mut p = WearPlane::new(1, 8);
        for i in 0..COMPACT_THRESHOLD + 10 {
            p.add(0, i % 7..i % 7 + 1, 1);
        }
        p.reset();
        assert_eq!(materialize(&p, 0), vec![0; 8]);
        assert_eq!(p.writes_at(0, 0), 0);
    }

    #[test]
    fn zero_width_and_zero_delta_are_no_ops() {
        let mut p = WearPlane::new(1, 4);
        p.add(0, 2..2, 1);
        p.add(0, 0..4, 0);
        assert!(p.rows[0].pending.is_empty());
    }
}
