//! Endurance analysis: per-cell write statistics and lifetime estimates.
//!
//! ReRAM cells endure between 10^10 and 10^11 write cycles (paper
//! Sec. II-A, citing \[10\]–\[12\]); a CIM design must both minimize writes
//! and spread them evenly (wear-leveling, paper Sec. IV-B).

use crate::array::Crossbar;

/// Conservative per-cell write endurance of a ReRAM cell (10^10).
pub const CELL_ENDURANCE_WRITES: u64 = 10_000_000_000;

/// Aggregate endurance report over a crossbar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnduranceReport {
    /// Most writes any single cell received — the paper's
    /// "Max. Writes" metric (Table I).
    pub max_writes: u64,
    /// Total writes over all cells.
    pub total_writes: u64,
    /// Number of cells that received at least one write.
    pub cells_touched: usize,
    /// Number of cells in the array.
    pub cells_total: usize,
}

impl EnduranceReport {
    /// Computes the report for an array.
    ///
    /// Reads through the backend's wear representation directly — on
    /// the packed backend this walks the lazy wear plane's constant
    /// segments instead of materializing one [`crate::Cell`] per bit,
    /// so per-multiply endurance reporting stays off the hot path.
    pub fn from_array(array: &Crossbar) -> Self {
        let (max_writes, total_writes, cells_touched) = array.wear_stats();
        EnduranceReport {
            max_writes,
            total_writes,
            cells_touched,
            cells_total: array.cell_count(),
        }
    }

    /// Computes the report for one batch lane of a sliced array — the
    /// wear that lane's instance would have accumulated on a solo
    /// array running the same program. On the scalar/packed backends
    /// lane 0 is the whole array.
    pub fn from_lane(array: &Crossbar, lane: usize) -> Self {
        let (max_writes, total_writes, cells_touched) = array.lane_wear_stats(lane);
        EnduranceReport {
            max_writes,
            total_writes,
            cells_touched,
            cells_total: array.cell_count(),
        }
    }

    /// Per-lane reports for every active lane of the array, computed
    /// in one sweep over the wear representation (cheaper than calling
    /// [`EnduranceReport::from_lane`] per lane).
    pub fn per_lane(array: &Crossbar) -> Vec<Self> {
        let lanes = array.lanes();
        array
            .lane_wear_stats_all()
            .into_iter()
            .take(lanes)
            .map(|(max_writes, total_writes, cells_touched)| EnduranceReport {
                max_writes,
                total_writes,
                cells_touched,
                cells_total: array.cell_count(),
            })
            .collect()
    }

    /// `(max, mean)` per-cell write counts in one call — the summary
    /// the wear-leveling scheduler and `FarmReport` consume, so they
    /// never have to walk raw cells themselves.
    pub fn max_and_mean(&self) -> (u64, f64) {
        (self.max_writes, self.mean_writes())
    }

    /// Worst per-cell writes across several reports (e.g. the three
    /// stage arrays of a multiplier) — replaces the hand-rolled
    /// max-loops previously duplicated in `karatsuba-cim`.
    pub fn max_over<'a, I>(reports: I) -> u64
    where
        I: IntoIterator<Item = &'a EnduranceReport>,
    {
        reports.into_iter().map(|r| r.max_writes).max().unwrap_or(0)
    }

    /// Mean writes per touched cell.
    pub fn mean_writes(&self) -> f64 {
        if self.cells_touched == 0 {
            0.0
        } else {
            self.total_writes as f64 / self.cells_touched as f64
        }
    }

    /// Wear-balance factor: mean/max writes in (0, 1]; 1 = perfectly
    /// even wear. Returns 1.0 for an untouched array.
    pub fn balance(&self) -> f64 {
        if self.max_writes == 0 {
            1.0
        } else {
            self.mean_writes() / self.max_writes as f64
        }
    }

    /// Fraction of the array's cells that participated at all —
    /// the array-utilization metric behind the paper's Sec. III-C1
    /// argument against oversized shared adders.
    pub fn utilization(&self) -> f64 {
        if self.cells_total == 0 {
            0.0
        } else {
            self.cells_touched as f64 / self.cells_total as f64
        }
    }

    /// How many operations of this write profile the array survives
    /// before the most-stressed cell reaches [`CELL_ENDURANCE_WRITES`].
    pub fn lifetime_operations(&self) -> u64 {
        CELL_ENDURANCE_WRITES
            .checked_div(self.max_writes)
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Region;

    #[test]
    fn report_on_fresh_array() {
        let x = Crossbar::new(4, 4).unwrap();
        let r = EnduranceReport::from_array(&x);
        assert_eq!(r.max_writes, 0);
        assert_eq!(r.total_writes, 0);
        assert_eq!(r.cells_touched, 0);
        assert_eq!(r.cells_total, 16);
        assert_eq!(r.balance(), 1.0);
        assert_eq!(r.lifetime_operations(), u64::MAX);
    }

    #[test]
    fn report_counts_uneven_wear() {
        let mut x = Crossbar::new(2, 2).unwrap();
        x.write_row(0, 0, &[true, true]).unwrap();
        x.write_row(0, 0, &[false, false]).unwrap();
        x.init_region(&Region::new(0..1, 0..1)).unwrap(); // cell (0,0): 3 writes
        let r = EnduranceReport::from_array(&x);
        assert_eq!(r.max_writes, 3);
        assert_eq!(r.total_writes, 5);
        assert_eq!(r.cells_touched, 2);
        assert!((r.mean_writes() - 2.5).abs() < 1e-9);
        assert!((r.balance() - 2.5 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_fraction() {
        let mut x = Crossbar::new(2, 2).unwrap();
        x.write_row(0, 0, &[true, true]).unwrap();
        let r = EnduranceReport::from_array(&x);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        let fresh = EnduranceReport::from_array(&Crossbar::new(1, 1).unwrap());
        assert_eq!(fresh.utilization(), 0.0);
    }

    #[test]
    fn wear_summary_matches_report() {
        let mut x = Crossbar::new(2, 2).unwrap();
        x.write_row(0, 0, &[true, true]).unwrap();
        x.write_row(0, 0, &[false, false]).unwrap();
        x.init_region(&Region::new(0..1, 0..1)).unwrap();
        let r = EnduranceReport::from_array(&x);
        assert_eq!(x.wear_summary(), r.max_and_mean());
        assert_eq!(x.wear_summary(), (3, 2.5));
        assert_eq!(Crossbar::new(3, 3).unwrap().wear_summary(), (0, 0.0));
    }

    #[test]
    fn max_over_reports() {
        let reports: Vec<EnduranceReport> = [2u64, 7, 5]
            .iter()
            .map(|&m| EnduranceReport {
                max_writes: m,
                total_writes: m,
                cells_touched: 1,
                cells_total: 1,
            })
            .collect();
        assert_eq!(EnduranceReport::max_over(&reports), 7);
        assert_eq!(EnduranceReport::max_over(&[]), 0);
    }

    #[test]
    fn lifetime_scales_inversely_with_max_writes() {
        let mut x = Crossbar::new(1, 1).unwrap();
        for _ in 0..100 {
            x.write_row(0, 0, &[true]).unwrap();
        }
        let r = EnduranceReport::from_array(&x);
        assert_eq!(r.lifetime_operations(), CELL_ENDURANCE_WRITES / 100);
    }
}
