//! Cycle accounting.

/// Classification of micro-ops for the per-class cycle breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Row writes from the periphery.
    Write,
    /// Row reads into the periphery.
    Read,
    /// Init/reset waves.
    Init,
    /// In-array MAGIC NOR/NOT operations.
    Magic,
    /// Periphery shifts.
    Shift,
}

impl OpClass {
    /// All classes, in the fixed breakdown/report order.
    pub const ALL: [OpClass; 5] = [
        OpClass::Write,
        OpClass::Read,
        OpClass::Init,
        OpClass::Magic,
        OpClass::Shift,
    ];

    /// Position of this class in [`OpClass::ALL`] — the index used by
    /// per-class metric handle arrays.
    pub fn index(self) -> usize {
        match self {
            OpClass::Write => 0,
            OpClass::Read => 1,
            OpClass::Init => 2,
            OpClass::Magic => 3,
            OpClass::Shift => 4,
        }
    }

    /// Short lowercase label (`"write"`, `"read"`, …).
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Write => "write",
            OpClass::Read => "read",
            OpClass::Init => "init",
            OpClass::Magic => "magic",
            OpClass::Shift => "shift",
        }
    }
}

/// Cycle statistics accumulated by an [`crate::Executor`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Total clock cycles.
    pub cycles: u64,
    /// Number of micro-ops executed.
    pub ops: u64,
    /// Cycles spent in row writes.
    pub write_cycles: u64,
    /// Cycles spent in row reads.
    pub read_cycles: u64,
    /// Cycles spent in init/reset waves.
    pub init_cycles: u64,
    /// Cycles spent in MAGIC NOR/NOT.
    pub magic_cycles: u64,
    /// Cycles spent in periphery shifts.
    pub shift_cycles: u64,
    /// Row-write ops executed.
    pub write_ops: u64,
    /// Row-read ops executed.
    pub read_ops: u64,
    /// Init/reset ops executed.
    pub init_ops: u64,
    /// MAGIC NOR/NOT ops executed.
    pub magic_ops: u64,
    /// Periphery shift ops executed.
    pub shift_ops: u64,
}

impl CycleStats {
    /// Records an operation of the given class and cycle cost.
    pub fn record(&mut self, class: OpClass, cycles: u64) {
        self.cycles += cycles;
        self.ops += 1;
        match class {
            OpClass::Write => {
                self.write_cycles += cycles;
                self.write_ops += 1;
            }
            OpClass::Read => {
                self.read_cycles += cycles;
                self.read_ops += 1;
            }
            OpClass::Init => {
                self.init_cycles += cycles;
                self.init_ops += 1;
            }
            OpClass::Magic => {
                self.magic_cycles += cycles;
                self.magic_ops += 1;
            }
            OpClass::Shift => {
                self.shift_cycles += cycles;
                self.shift_ops += 1;
            }
        }
    }

    /// Records an operation that co-issues inside a
    /// [`Parallel`](crate::MicroOp::Parallel) bundle: the per-class
    /// cycle/op counters advance (the gate still burns its energy and
    /// occupies its partition), but the wall-clock total does *not* —
    /// the caller charges the bundle's maximum once. As a consequence,
    /// the per-class cycle sums of a program with co-issued bundles
    /// may exceed its wall `cycles`.
    pub fn record_co_issued(&mut self, class: OpClass, cycles: u64) {
        let wall = self.cycles;
        self.record(class, cycles);
        self.cycles = wall;
    }

    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &CycleStats) {
        self.cycles += other.cycles;
        self.ops += other.ops;
        self.write_cycles += other.write_cycles;
        self.read_cycles += other.read_cycles;
        self.init_cycles += other.init_cycles;
        self.magic_cycles += other.magic_cycles;
        self.shift_cycles += other.shift_cycles;
        self.write_ops += other.write_ops;
        self.read_ops += other.read_ops;
        self.init_ops += other.init_ops;
        self.magic_ops += other.magic_ops;
        self.shift_ops += other.shift_ops;
    }

    /// Cycles spent in the given class.
    pub fn cycles_of(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Write => self.write_cycles,
            OpClass::Read => self.read_cycles,
            OpClass::Init => self.init_cycles,
            OpClass::Magic => self.magic_cycles,
            OpClass::Shift => self.shift_cycles,
        }
    }

    /// Ops executed in the given class.
    pub fn ops_of(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Write => self.write_ops,
            OpClass::Read => self.read_ops,
            OpClass::Init => self.init_ops,
            OpClass::Magic => self.magic_ops,
            OpClass::Shift => self.shift_ops,
        }
    }

    /// Compute utilization: the fraction of total cycles spent in
    /// in-array MAGIC logic (vs. data movement and housekeeping).
    /// `0.0` when no cycles have elapsed.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.magic_cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_class() {
        let mut s = CycleStats::default();
        s.record(OpClass::Magic, 1);
        s.record(OpClass::Shift, 2);
        s.record(OpClass::Write, 1);
        assert_eq!(s.cycles, 4);
        assert_eq!(s.ops, 3);
        assert_eq!(s.magic_cycles, 1);
        assert_eq!(s.shift_cycles, 2);
        assert_eq!(s.write_cycles, 1);
        assert_eq!(s.magic_ops, 1);
        assert_eq!(s.shift_ops, 1);
        assert_eq!(s.write_ops, 1);
        assert_eq!(s.read_ops, 0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = CycleStats::default();
        a.record(OpClass::Read, 1);
        let mut b = CycleStats::default();
        b.record(OpClass::Init, 1);
        b.record(OpClass::Magic, 1);
        a.merge(&b);
        assert_eq!(a.cycles, 3);
        assert_eq!(a.ops, 3);
        assert_eq!(a.read_cycles, 1);
        assert_eq!(a.init_cycles, 1);
        assert_eq!(a.read_ops, 1);
        assert_eq!(a.init_ops, 1);
        assert_eq!(a.magic_ops, 1);
    }

    #[test]
    fn merge_preserves_op_counts_alongside_cycles() {
        let mut a = CycleStats::default();
        for _ in 0..5 {
            a.record(OpClass::Magic, 1);
        }
        a.record(OpClass::Shift, 2);
        let mut b = CycleStats::default();
        b.record(OpClass::Shift, 2);
        b.record(OpClass::Write, 1);
        a.merge(&b);
        assert_eq!(a.ops, 8);
        assert_eq!(a.magic_ops, 5);
        assert_eq!(a.shift_ops, 2);
        assert_eq!(a.shift_cycles, 4);
        assert_eq!(a.write_ops, 1);
        // Per-class ops sum to the total.
        let total: u64 = OpClass::ALL.iter().map(|&c| a.ops_of(c)).sum();
        assert_eq!(total, a.ops);
    }

    #[test]
    fn utilization_is_magic_share() {
        let mut s = CycleStats::default();
        assert_eq!(s.utilization(), 0.0, "empty stats divide safely");
        s.record(OpClass::Magic, 3);
        s.record(OpClass::Write, 1);
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        s.record(OpClass::Shift, 4);
        assert!((s.utilization() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn class_accessors_match_fields() {
        let mut s = CycleStats::default();
        s.record(OpClass::Shift, 2);
        s.record(OpClass::Read, 1);
        assert_eq!(s.cycles_of(OpClass::Shift), 2);
        assert_eq!(s.ops_of(OpClass::Shift), 1);
        assert_eq!(s.cycles_of(OpClass::Read), 1);
        assert_eq!(s.cycles_of(OpClass::Magic), 0);
        assert_eq!(OpClass::Magic.label(), "magic");
    }
}
