//! Cycle accounting.

/// Classification of micro-ops for the per-class cycle breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Row writes from the periphery.
    Write,
    /// Row reads into the periphery.
    Read,
    /// Init/reset waves.
    Init,
    /// In-array MAGIC NOR/NOT operations.
    Magic,
    /// Periphery shifts.
    Shift,
}

/// Cycle statistics accumulated by an [`crate::Executor`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Total clock cycles.
    pub cycles: u64,
    /// Number of micro-ops executed.
    pub ops: u64,
    /// Cycles spent in row writes.
    pub write_cycles: u64,
    /// Cycles spent in row reads.
    pub read_cycles: u64,
    /// Cycles spent in init/reset waves.
    pub init_cycles: u64,
    /// Cycles spent in MAGIC NOR/NOT.
    pub magic_cycles: u64,
    /// Cycles spent in periphery shifts.
    pub shift_cycles: u64,
}

impl CycleStats {
    /// Records an operation of the given class and cycle cost.
    pub fn record(&mut self, class: OpClass, cycles: u64) {
        self.cycles += cycles;
        self.ops += 1;
        match class {
            OpClass::Write => self.write_cycles += cycles,
            OpClass::Read => self.read_cycles += cycles,
            OpClass::Init => self.init_cycles += cycles,
            OpClass::Magic => self.magic_cycles += cycles,
            OpClass::Shift => self.shift_cycles += cycles,
        }
    }

    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &CycleStats) {
        self.cycles += other.cycles;
        self.ops += other.ops;
        self.write_cycles += other.write_cycles;
        self.read_cycles += other.read_cycles;
        self.init_cycles += other.init_cycles;
        self.magic_cycles += other.magic_cycles;
        self.shift_cycles += other.shift_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_class() {
        let mut s = CycleStats::default();
        s.record(OpClass::Magic, 1);
        s.record(OpClass::Shift, 2);
        s.record(OpClass::Write, 1);
        assert_eq!(s.cycles, 4);
        assert_eq!(s.ops, 3);
        assert_eq!(s.magic_cycles, 1);
        assert_eq!(s.shift_cycles, 2);
        assert_eq!(s.write_cycles, 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = CycleStats::default();
        a.record(OpClass::Read, 1);
        let mut b = CycleStats::default();
        b.record(OpClass::Init, 1);
        b.record(OpClass::Magic, 1);
        a.merge(&b);
        assert_eq!(a.cycles, 3);
        assert_eq!(a.ops, 3);
        assert_eq!(a.read_cycles, 1);
        assert_eq!(a.init_cycles, 1);
    }
}
