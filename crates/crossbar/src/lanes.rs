//! Lane-word transposition for the bit-sliced backend's controller
//! paths.
//!
//! The sliced backend stores one `u64` per cell where bit `l` is lane
//! `l`'s value, while controllers (the batch multiplier stages) hold
//! each lane's operand as little-endian `u64` limbs where bit `j` is
//! column `j`. Moving between the two representations bit by bit costs
//! `lanes × cols` shift/or operations per staging or readout — the
//! dominant controller cost of a 64-lane batch. These helpers do the
//! same conversion as 64×64 bit-matrix transposes, `O(cols · log 64)`
//! word operations total.

/// In-place 64×64 bit-matrix transpose: afterwards, bit `i` of
/// `m[b]` equals what bit `b` of `m[i]` was (Hacker's Delight 7-3,
/// widened to 64 bits).
fn transpose64(m: &mut [u64; 64]) {
    let mut j = 32;
    let mut mask = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = (m[k] >> j ^ m[k + j]) & mask;
            m[k] ^= t << j;
            m[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

/// Transposes per-lane limb slices into per-column lane words: bit `l`
/// of `out[j]` is bit `j` of `per_lane[l]` (reading missing limbs and
/// missing lanes as zero). `out` has exactly `cols` words — lane bits
/// at column `cols` and beyond are truncated, like `Uint::to_bits`.
///
/// # Panics
///
/// Panics if more than 64 lanes are given.
pub fn transpose_lanes(per_lane: &[&[u64]], cols: usize) -> Vec<u64> {
    assert!(per_lane.len() <= 64, "at most 64 lanes per word");
    let mut out = vec![0u64; cols];
    let mut buf = [0u64; 64];
    for (bi, chunk) in out.chunks_mut(64).enumerate() {
        buf.fill(0);
        for (l, limbs) in per_lane.iter().enumerate() {
            buf[l] = limbs.get(bi).copied().unwrap_or(0);
        }
        transpose64(&mut buf);
        chunk.copy_from_slice(&buf[..chunk.len()]);
    }
    out
}

/// The inverse of [`transpose_lanes`]: per-column lane words back into
/// per-lane limb vectors. `out[l]` has `col_words.len().div_ceil(64)`
/// limbs with bit `j` equal to bit `l` of `col_words[j]`.
///
/// # Panics
///
/// Panics if more than 64 lanes are requested.
pub fn lane_limbs(col_words: &[u64], lanes: usize) -> Vec<Vec<u64>> {
    assert!(lanes <= 64, "at most 64 lanes per word");
    let blocks = col_words.len().div_ceil(64);
    let mut out = vec![vec![0u64; blocks]; lanes];
    let mut buf = [0u64; 64];
    for (bi, chunk) in col_words.chunks(64).enumerate() {
        buf.fill(0);
        buf[..chunk.len()].copy_from_slice(chunk);
        transpose64(&mut buf);
        for (l, limbs) in out.iter_mut().enumerate() {
            limbs[bi] = buf[l];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose64_moves_single_bits() {
        let mut m = [0u64; 64];
        m[3] = 1 << 5;
        m[60] = 1 << 0;
        transpose64(&mut m);
        assert_eq!(m[5], 1 << 3);
        assert_eq!(m[0], 1 << 60);
        assert_eq!(m.iter().map(|w| w.count_ones()).sum::<u32>(), 2);
    }

    #[test]
    fn transpose64_is_an_involution() {
        let mut m: [u64; 64] =
            std::array::from_fn(|i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xabcd);
        let orig = m;
        transpose64(&mut m);
        transpose64(&mut m);
        assert_eq!(m, orig);
    }

    #[test]
    fn lanes_round_trip_through_columns() {
        // 3 lanes, 130 columns (one full block + a ragged tail).
        let lanes: Vec<Vec<u64>> = vec![
            vec![0xdead_beef_0123_4567, 0x89ab_cdef_fedc_ba98, 0x3],
            vec![0x1111_2222_3333_4444, 0, 0x1],
            vec![u64::MAX, u64::MAX, 0x3],
        ];
        let refs: Vec<&[u64]> = lanes.iter().map(|v| v.as_slice()).collect();
        let cols = transpose_lanes(&refs, 130);
        assert_eq!(cols.len(), 130);
        for (l, limbs) in lanes.iter().enumerate() {
            for (j, word) in cols.iter().enumerate() {
                let expect = (limbs[j / 64] >> (j % 64)) & 1;
                assert_eq!(word >> l & 1, expect, "lane {l} col {j}");
            }
        }
        let back = lane_limbs(&cols, 3);
        for (l, limbs) in lanes.iter().enumerate() {
            // Bits at column 130 and beyond are truncated by the
            // forward transpose; mask them off the expectation.
            let mut expect = limbs.clone();
            expect[2] &= (1 << 2) - 1;
            assert_eq!(back[l], expect, "lane {l}");
        }
    }

    #[test]
    fn truncation_and_zero_fill_match_bitwise_semantics() {
        // A lane with fewer limbs than the span reads as zero-padded;
        // columns past `cols` never leak into the output.
        let lane0: &[u64] = &[0b1011];
        let cols = transpose_lanes(&[lane0], 3);
        assert_eq!(cols, vec![1, 1, 0]); // bit 3 of the lane truncated
        let back = lane_limbs(&cols, 2);
        assert_eq!(back[0], vec![0b011]);
        assert_eq!(back[1], vec![0]);
    }
}
