//! Crossbar-level metrics publication.
//!
//! A [`MeterSpec`] bundles everything a crossbar-layer component needs
//! to publish into the metrics plane: the [`MetricsHub`] handle, the
//! base [`Labels`] identifying the component (`tile`, `stage`, …), and
//! the [`EnergyParams`] used to convert cycle statistics to energy.
//! Attach it to an [`crate::Executor`] with
//! [`crate::Executor::attach_meter`] and per-op-class cycle/op
//! counters update live as the program runs; call
//! [`crate::Executor::publish_energy`] at the end of a program to emit
//! the derived energy breakdown and utilization.
//!
//! Metering follows the same neutrality rule as tracing: it only
//! observes — cycle statistics, wear counts and array contents are
//! bit-identical with metering on and off (asserted by tests).

use crate::energy::{EnergyParams, EnergyReport};
use crate::stats::{CycleStats, OpClass};
use cim_metrics::{Counter, Labels, MetricsHub};

/// Family: total crossbar cycles by op class (counter).
pub const METRIC_XBAR_CYCLES: &str = "cim_xbar_cycles_total";
/// Family: total crossbar micro-ops by op class (counter).
pub const METRIC_XBAR_OPS: &str = "cim_xbar_ops_total";
/// Family: crossbar energy by component (counter, picojoules).
pub const METRIC_XBAR_ENERGY: &str = "cim_xbar_energy_pj_total";
/// Family: compute utilization — MAGIC-cycle share (gauge, 0..1).
pub const METRIC_XBAR_UTILIZATION: &str = "cim_xbar_utilization";

const HELP_CYCLES: &str = "crossbar cycles by micro-op class";
const HELP_OPS: &str = "crossbar micro-ops executed by class";
const HELP_ENERGY: &str = "crossbar energy in picojoules by component";
const HELP_UTILIZATION: &str = "fraction of cycles spent in MAGIC logic";

/// How a crossbar-layer component publishes metrics: hub handle, base
/// label set, and the energy model.
#[derive(Debug, Clone, Default)]
pub struct MeterSpec {
    /// Destination registry (disabled hub → all publishing is free).
    pub hub: MetricsHub,
    /// Base labels merged into every series (`tile`, `stage`, …).
    pub labels: Labels,
    /// Energy model used by [`MeterSpec::publish_energy`].
    pub params: EnergyParams,
}

impl MeterSpec {
    /// A spec publishing into `hub` under `labels` with the default
    /// energy parameters.
    pub fn new(hub: &MetricsHub, labels: Labels) -> Self {
        MeterSpec {
            hub: hub.clone(),
            labels,
            params: EnergyParams::default(),
        }
    }

    /// Replaces the energy model.
    #[must_use]
    pub fn with_params(mut self, params: EnergyParams) -> Self {
        self.params = params;
        self
    }

    /// Whether publishing through this spec does anything.
    pub fn is_enabled(&self) -> bool {
        self.hub.is_enabled()
    }

    /// Publishes `stats` as one-shot increments of the per-class cycle
    /// and op counters — the path for code that aggregates a
    /// [`CycleStats`] itself rather than metering an executor live.
    pub fn publish_stats(&self, stats: &CycleStats) {
        if !self.is_enabled() {
            return;
        }
        for class in OpClass::ALL {
            let labels = self.labels.clone().with("op_class", class.label());
            self.hub.add_counter(
                METRIC_XBAR_CYCLES,
                HELP_CYCLES,
                &labels,
                stats.cycles_of(class) as f64,
            );
            self.hub.add_counter(
                METRIC_XBAR_OPS,
                HELP_OPS,
                &labels,
                stats.ops_of(class) as f64,
            );
        }
    }

    /// Converts `stats` to an [`EnergyReport`] (first-order model:
    /// every op touches `row_width` cells), publishes the per-component
    /// energy counters and the utilization gauge, and returns the
    /// report.
    pub fn publish_energy(&self, stats: &CycleStats, row_width: usize) -> EnergyReport {
        let report = EnergyReport::from_stats(stats, row_width, &self.params);
        if self.is_enabled() {
            for (component, pj) in report.components() {
                self.hub.add_counter(
                    METRIC_XBAR_ENERGY,
                    HELP_ENERGY,
                    &self.labels.clone().with("component", component),
                    pj,
                );
            }
            self.hub.set_gauge(
                METRIC_XBAR_UTILIZATION,
                HELP_UTILIZATION,
                &self.labels,
                stats.utilization(),
            );
        }
        report
    }
}

/// Live per-op-class counter handles, pre-registered at attach time so
/// the per-op hot path is two indexed adds.
#[derive(Debug)]
pub(crate) struct AttachedMeter {
    pub(crate) spec: MeterSpec,
    cycles: [Counter; 5],
    ops: [Counter; 5],
}

impl AttachedMeter {
    pub(crate) fn new(spec: &MeterSpec) -> Self {
        let handle = |family: &str, help: &str, class: OpClass| {
            spec.hub.counter(
                family,
                help,
                &spec.labels.clone().with("op_class", class.label()),
            )
        };
        AttachedMeter {
            spec: spec.clone(),
            cycles: OpClass::ALL.map(|c| handle(METRIC_XBAR_CYCLES, HELP_CYCLES, c)),
            ops: OpClass::ALL.map(|c| handle(METRIC_XBAR_OPS, HELP_OPS, c)),
        }
    }

    /// Records one executed op.
    pub(crate) fn record(&self, class: OpClass, cycles: u64) {
        let i = class.index();
        self.cycles[i].add_u64(cycles);
        self.ops[i].inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> CycleStats {
        let mut s = CycleStats::default();
        s.record(OpClass::Write, 3);
        s.record(OpClass::Magic, 5);
        s.record(OpClass::Magic, 2);
        s.record(OpClass::Shift, 2);
        s
    }

    #[test]
    fn publish_stats_mirrors_cycle_stats() {
        let hub = MetricsHub::recording();
        let spec = MeterSpec::new(&hub, Labels::new().with("tile", 0));
        spec.publish_stats(&sample_stats());
        let snap = hub.snapshot();
        for class in OpClass::ALL {
            let labels = Labels::new().with("tile", 0).with("op_class", class.label());
            assert_eq!(
                snap.number_with(METRIC_XBAR_CYCLES, &labels),
                Some(sample_stats().cycles_of(class) as f64),
                "{}",
                class.label()
            );
            assert_eq!(
                snap.number_with(METRIC_XBAR_OPS, &labels),
                Some(sample_stats().ops_of(class) as f64)
            );
        }
    }

    #[test]
    fn publish_energy_matches_from_stats_and_sets_utilization() {
        let hub = MetricsHub::recording();
        let spec = MeterSpec::new(&hub, Labels::new());
        let stats = sample_stats();
        let report = spec.publish_energy(&stats, 64);
        let expect = EnergyReport::from_stats(&stats, 64, &EnergyParams::default());
        assert_eq!(report, expect);
        let snap = hub.snapshot();
        for (component, pj) in expect.components() {
            assert_eq!(
                snap.number_with(
                    METRIC_XBAR_ENERGY,
                    &Labels::new().with("component", component)
                ),
                Some(pj)
            );
        }
        assert_eq!(
            snap.number(METRIC_XBAR_UTILIZATION),
            Some(stats.utilization())
        );
    }

    #[test]
    fn disabled_spec_publishes_nothing_but_still_reports_energy() {
        let spec = MeterSpec::default();
        assert!(!spec.is_enabled());
        spec.publish_stats(&sample_stats());
        let report = spec.publish_energy(&sample_stats(), 64);
        assert!(report.total_pj() > 0.0, "energy math works without a hub");
    }

    #[test]
    fn op_class_index_matches_all_order() {
        for (i, class) in OpClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }
}
