//! The crossbar array: state, MAGIC operations and periphery.
//!
//! Methods on [`Crossbar`] mutate state and update per-cell wear; clock
//! cycles are charged by the [`crate::Executor`] that drives them.

use crate::cell::{Cell, Fault};
use crate::error::{Axis, CrossbarError};
use crate::geometry::{ColRange, Region};
use crate::PRACTICAL_LINE_LIMIT;

/// A rows × columns grid of memristors with MAGIC compute support.
///
/// See the [crate-level documentation](crate) for the execution model
/// and a usage example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    cells: Vec<Cell>,
}

impl Crossbar {
    /// Creates a crossbar of `rows × cols` cells, all logic 0.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::EmptyDimension`] if either dimension is
    /// zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self, CrossbarError> {
        if rows == 0 || cols == 0 {
            return Err(CrossbarError::EmptyDimension);
        }
        Ok(Crossbar {
            rows,
            cols,
            cells: vec![Cell::default(); rows * cols],
        })
    }

    /// Number of word lines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit lines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of memristors — the paper's "area" metric.
    pub fn cell_count(&self) -> usize {
        self.rows * self.cols
    }

    fn idx(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    fn check_row(&self, row: usize) -> Result<(), CrossbarError> {
        if row >= self.rows {
            Err(CrossbarError::RowOutOfRange {
                row,
                rows: self.rows,
            })
        } else {
            Ok(())
        }
    }

    fn check_cols(&self, cols: &ColRange) -> Result<(), CrossbarError> {
        if cols.end > self.cols {
            Err(CrossbarError::ColOutOfRange {
                col: cols.end.saturating_sub(1),
                cols: self.cols,
            })
        } else {
            Ok(())
        }
    }

    /// Reads a single cell.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn read_cell(&self, row: usize, col: usize) -> Result<bool, CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col..col + 1))?;
        Ok(self.cells[self.idx(row, col)].read())
    }

    /// Reads the bits of `row` over the column span (sense amplifiers).
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn read_row_bits(&self, row: usize, cols: ColRange) -> Result<Vec<bool>, CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&cols)?;
        Ok(cols.map(|c| self.cells[self.idx(row, c)].read()).collect())
    }

    /// Writes `bits` into `row` starting at column `col_offset`.
    ///
    /// # Errors
    ///
    /// Returns an error if the span exceeds the array.
    pub fn write_row(
        &mut self,
        row: usize,
        col_offset: usize,
        bits: &[bool],
    ) -> Result<(), CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col_offset..col_offset + bits.len()))?;
        for (i, &b) in bits.iter().enumerate() {
            let idx = self.idx(row, col_offset + i);
            self.cells[idx].write(b);
        }
        Ok(())
    }

    /// Drives every cell of `region` to logic 1 (MAGIC output
    /// initialization) — one parallel set pulse.
    ///
    /// # Errors
    ///
    /// Returns an error if the region exceeds the array.
    pub fn init_region(&mut self, region: &Region) -> Result<(), CrossbarError> {
        self.fill_region(region, true)
    }

    /// Drives every cell of `region` to logic 0 (array reset).
    ///
    /// # Errors
    ///
    /// Returns an error if the region exceeds the array.
    pub fn reset_region(&mut self, region: &Region) -> Result<(), CrossbarError> {
        self.fill_region(region, false)
    }

    fn fill_region(&mut self, region: &Region, value: bool) -> Result<(), CrossbarError> {
        if region.rows.end > self.rows {
            return Err(CrossbarError::RowOutOfRange {
                row: region.rows.end - 1,
                rows: self.rows,
            });
        }
        self.check_cols(&region.cols)?;
        for row in region.rows.clone() {
            for col in region.cols.clone() {
                let idx = self.idx(row, col);
                self.cells[idx].write(value);
            }
        }
        Ok(())
    }

    /// MAGIC NOR across rows: for every column in `cols`, drives
    /// `out = NOR(inputs…)` — all bit lines in parallel (SIMD).
    ///
    /// The output cells must have been initialized to logic 1; with
    /// `strict` the operation fails if any was not, otherwise the
    /// physical behaviour (output can only be pulled down) is applied
    /// silently.
    ///
    /// # Errors
    ///
    /// Returns an error on bad coordinates, if `out` is also an input,
    /// or (strict mode) on an uninitialized output cell.
    pub fn nor_rows(
        &mut self,
        inputs: &[usize],
        out: usize,
        cols: ColRange,
        strict: bool,
    ) -> Result<(), CrossbarError> {
        for &r in inputs {
            self.check_row(r)?;
            if r == out {
                return Err(CrossbarError::MagicInOutOverlap {
                    axis: Axis::Row,
                    index: r,
                });
            }
        }
        self.check_row(out)?;
        self.check_cols(&cols)?;
        for col in cols {
            let any = inputs
                .iter()
                .any(|&r| self.cells[self.idx(r, col)].read());
            let out_idx = self.idx(out, col);
            if strict && !self.cells[out_idx].read() {
                return Err(CrossbarError::OutputNotInitialized { row: out, col });
            }
            self.cells[out_idx].magic_drive(!any);
        }
        Ok(())
    }

    /// MAGIC NOR along rows (column-oriented): for every row in
    /// `rows`, drives `row[out_col] = NOR(row[in_cols]…)` — all word
    /// lines in parallel.
    ///
    /// This is the orientation used by single-row multipliers such as
    /// MultPIM, where each row hosts an independent multiplication.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Crossbar::nor_rows`].
    pub fn nor_cols(
        &mut self,
        in_cols: &[usize],
        out_col: usize,
        rows: std::ops::Range<usize>,
        strict: bool,
    ) -> Result<(), CrossbarError> {
        for &c in in_cols {
            self.check_cols(&(c..c + 1))?;
            if c == out_col {
                return Err(CrossbarError::MagicInOutOverlap {
                    axis: Axis::Col,
                    index: c,
                });
            }
        }
        self.check_cols(&(out_col..out_col + 1))?;
        if rows.end > self.rows {
            return Err(CrossbarError::RowOutOfRange {
                row: rows.end - 1,
                rows: self.rows,
            });
        }
        for row in rows {
            let any = in_cols
                .iter()
                .any(|&c| self.cells[self.idx(row, c)].read());
            let out_idx = self.idx(row, out_col);
            if strict && !self.cells[out_idx].read() {
                return Err(CrossbarError::OutputNotInitialized { row, col: out_col });
            }
            self.cells[out_idx].magic_drive(!any);
        }
        Ok(())
    }

    /// Partitioned MAGIC NOR along rows: the column span `cols` is
    /// divided into partitions of `part_width` columns; within *every*
    /// partition (and for every row in `rows`) simultaneously,
    /// `row[base + out_offset] = NOR(row[base + in_offsets…])` — the
    /// partition-parallel execution MultPIM \[9\] uses to get its
    /// `log n` factor. One clock cycle.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::BadPartition`] if the span is not a
    /// multiple of `part_width` or an offset falls outside a
    /// partition, plus the usual geometry/aliasing/init errors.
    #[allow(clippy::too_many_arguments)]
    pub fn nor_cols_partitioned(
        &mut self,
        rows: std::ops::Range<usize>,
        cols: ColRange,
        part_width: usize,
        in_offsets: &[usize],
        out_offset: usize,
        strict: bool,
    ) -> Result<(), CrossbarError> {
        if part_width == 0 || !cols.len().is_multiple_of(part_width) {
            return Err(CrossbarError::BadPartition {
                detail: format!(
                    "span of {} columns is not a multiple of partition width {part_width}",
                    cols.len()
                ),
            });
        }
        for &off in in_offsets.iter().chain(std::iter::once(&out_offset)) {
            if off >= part_width {
                return Err(CrossbarError::BadPartition {
                    detail: format!("offset {off} outside partition width {part_width}"),
                });
            }
        }
        if in_offsets.contains(&out_offset) {
            return Err(CrossbarError::MagicInOutOverlap {
                axis: Axis::Col,
                index: out_offset,
            });
        }
        self.check_cols(&cols)?;
        if rows.end > self.rows {
            return Err(CrossbarError::RowOutOfRange {
                row: rows.end - 1,
                rows: self.rows,
            });
        }
        for row in rows {
            for base in (cols.start..cols.end).step_by(part_width) {
                let any = in_offsets
                    .iter()
                    .any(|&off| self.cells[self.idx(row, base + off)].read());
                let out_idx = self.idx(row, base + out_offset);
                if strict && !self.cells[out_idx].read() {
                    return Err(CrossbarError::OutputNotInitialized {
                        row,
                        col: base + out_offset,
                    });
                }
                self.cells[out_idx].magic_drive(!any);
            }
        }
        Ok(())
    }

    /// Periphery shift: reads `src[cols]`, shifts by `offset` columns
    /// (positive = towards higher column indices / more significant)
    /// filling vacated positions with `fill`, and writes the span into
    /// `dst` (which may equal `src`).
    ///
    /// MAGIC cannot move data across bit lines (paper Sec. IV-B), so
    /// this is done by the periphery: one read cycle plus one write
    /// cycle, charged as 2 cc by the executor. A `fill` of `true`
    /// injects a carry-in bit (used by the subtractor).
    ///
    /// # Errors
    ///
    /// Returns an error if the span exceeds the array.
    pub fn shift_row_to(
        &mut self,
        src: usize,
        dst: usize,
        cols: ColRange,
        offset: isize,
        fill: bool,
    ) -> Result<(), CrossbarError> {
        let bits = self.read_row_bits(src, cols.clone())?;
        let w = bits.len();
        let mut shifted = vec![fill; w];
        for (i, &b) in bits.iter().enumerate() {
            let j = i as isize + offset;
            if (0..w as isize).contains(&j) {
                shifted[j as usize] = b;
            }
        }
        self.write_row(dst, cols.start, &shifted)
    }

    /// In-place periphery shift with zero fill; see
    /// [`Crossbar::shift_row_to`].
    ///
    /// # Errors
    ///
    /// Returns an error if the span exceeds the array.
    pub fn shift_row(
        &mut self,
        row: usize,
        cols: ColRange,
        offset: isize,
    ) -> Result<(), CrossbarError> {
        self.shift_row_to(row, row, cols, offset, false)
    }

    /// Injects a stuck-at fault at a cell (or clears it with `None`).
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn inject_fault(
        &mut self,
        row: usize,
        col: usize,
        fault: Option<Fault>,
    ) -> Result<(), CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col..col + 1))?;
        let idx = self.idx(row, col);
        self.cells[idx].set_fault(fault);
        Ok(())
    }

    /// Immutable access to a cell (wear inspection, tests).
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn cell(&self, row: usize, col: usize) -> Result<&Cell, CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col..col + 1))?;
        Ok(&self.cells[self.idx(row, col)])
    }

    /// Iterates over all cells (row-major) — used by endurance reports.
    pub fn cells(&self) -> impl Iterator<Item = &Cell> {
        self.cells.iter()
    }

    /// `(max, mean)` per-cell write counts — the one-call wear summary
    /// schedulers and reports consume instead of walking raw cells.
    /// The mean is over touched cells (0.0 for an unworn array).
    pub fn wear_summary(&self) -> (u64, f64) {
        crate::endurance::EnduranceReport::from_array(self).max_and_mean()
    }

    /// Clears all wear counters (keeps values and faults).
    pub fn reset_wear(&mut self) {
        for c in &mut self.cells {
            c.reset_wear();
        }
    }

    /// Checks the array against practical line-length limits
    /// ([`PRACTICAL_LINE_LIMIT`]); returns the offending dimension.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ColOutOfRange`] (columns) or
    /// [`CrossbarError::RowOutOfRange`] (rows) when a line exceeds the
    /// practical limit, as used in the paper's critique of very long
    /// single-row multipliers.
    pub fn check_practical_dimensions(&self) -> Result<(), CrossbarError> {
        if self.cols > PRACTICAL_LINE_LIMIT {
            return Err(CrossbarError::ColOutOfRange {
                col: self.cols,
                cols: PRACTICAL_LINE_LIMIT,
            });
        }
        if self.rows > PRACTICAL_LINE_LIMIT {
            return Err(CrossbarError::RowOutOfRange {
                row: self.rows,
                rows: PRACTICAL_LINE_LIMIT,
            });
        }
        Ok(())
    }

    /// Renders a region as an ASCII grid (`1`/`0`, `X`/`x` for stuck
    /// cells) — used by the figure-reproduction binaries.
    pub fn render_region(&self, region: &Region) -> String {
        let mut out = String::new();
        for row in region.rows.clone() {
            for col in region.cols.clone() {
                let cell = &self.cells[self.idx(row, col)];
                let ch = match (cell.fault(), cell.read()) {
                    (Some(_), true) => 'X',
                    (Some(_), false) => 'x',
                    (None, true) => '1',
                    (None, false) => '0',
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bar(rows: usize, cols: usize) -> Crossbar {
        Crossbar::new(rows, cols).expect("valid dims")
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(Crossbar::new(0, 4), Err(CrossbarError::EmptyDimension));
        assert_eq!(Crossbar::new(4, 0), Err(CrossbarError::EmptyDimension));
    }

    #[test]
    fn write_read_roundtrip() {
        let mut x = bar(4, 8);
        x.write_row(2, 1, &[true, false, true]).unwrap();
        assert_eq!(
            x.read_row_bits(2, 0..5).unwrap(),
            vec![false, true, false, true, false]
        );
    }

    #[test]
    fn write_out_of_range_errors() {
        let mut x = bar(2, 4);
        assert!(x.write_row(5, 0, &[true]).is_err());
        assert!(x.write_row(0, 3, &[true, true]).is_err());
    }

    #[test]
    fn nor_rows_truth_table() {
        let mut x = bar(3, 4);
        x.write_row(0, 0, &[false, false, true, true]).unwrap();
        x.write_row(1, 0, &[false, true, false, true]).unwrap();
        x.init_region(&Region::new(2..3, 0..4)).unwrap();
        x.nor_rows(&[0, 1], 2, 0..4, true).unwrap();
        assert_eq!(
            x.read_row_bits(2, 0..4).unwrap(),
            vec![true, false, false, false]
        );
    }

    #[test]
    fn nor_rows_strict_catches_missing_init() {
        let mut x = bar(3, 2);
        x.write_row(0, 0, &[false, false]).unwrap();
        // Output row left at 0 — strict mode must flag it.
        let err = x.nor_rows(&[0], 2, 0..2, true).unwrap_err();
        assert!(matches!(err, CrossbarError::OutputNotInitialized { .. }));
        // Non-strict: physically the cell just stays 0.
        x.nor_rows(&[0], 2, 0..2, false).unwrap();
        assert_eq!(x.read_row_bits(2, 0..2).unwrap(), vec![false, false]);
    }

    #[test]
    fn nor_rows_rejects_aliased_output() {
        let mut x = bar(3, 2);
        let err = x.nor_rows(&[0, 1], 1, 0..2, false).unwrap_err();
        assert!(matches!(
            err,
            CrossbarError::MagicInOutOverlap {
                axis: Axis::Row,
                index: 1
            }
        ));
    }

    #[test]
    fn not_via_single_input_nor() {
        let mut x = bar(2, 3);
        x.write_row(0, 0, &[true, false, true]).unwrap();
        x.init_region(&Region::new(1..2, 0..3)).unwrap();
        x.nor_rows(&[0], 1, 0..3, true).unwrap();
        assert_eq!(
            x.read_row_bits(1, 0..3).unwrap(),
            vec![false, true, false]
        );
    }

    #[test]
    fn nor_cols_runs_on_all_rows_simultaneously() {
        let mut x = bar(2, 4);
        // row 0: a=1, b=0 → NOR = 0 ; row 1: a=0, b=0 → NOR = 1
        x.write_row(0, 0, &[true, false, false, false]).unwrap();
        x.write_row(1, 0, &[false, false, false, false]).unwrap();
        x.init_region(&Region::new(0..2, 2..3)).unwrap();
        x.nor_cols(&[0, 1], 2, 0..2, true).unwrap();
        assert!(!x.read_cell(0, 2).unwrap());
        assert!(x.read_cell(1, 2).unwrap());
    }

    #[test]
    fn shift_row_moves_bits_and_fills_zero() {
        let mut x = bar(1, 6);
        x.write_row(0, 0, &[true, true, false, false, false, true])
            .unwrap();
        x.shift_row(0, 0..6, 2).unwrap();
        assert_eq!(
            x.read_row_bits(0, 0..6).unwrap(),
            vec![false, false, true, true, false, false]
        );
        x.shift_row(0, 0..6, -2).unwrap();
        assert_eq!(
            x.read_row_bits(0, 0..6).unwrap(),
            vec![true, true, false, false, false, false]
        );
    }

    #[test]
    fn shift_respects_column_window() {
        let mut x = bar(1, 6);
        x.write_row(0, 0, &[true, true, true, true, true, true])
            .unwrap();
        x.shift_row(0, 2..5, 1).unwrap();
        // Columns outside 2..5 untouched; within, shifted with 0 fill.
        assert_eq!(
            x.read_row_bits(0, 0..6).unwrap(),
            vec![true, true, false, true, true, true]
        );
    }

    #[test]
    fn partitioned_nor_computes_every_partition_at_once() {
        // 2 rows × 8 cols, partitions of 4: out[3] = NOR(in[0], in[1]).
        let mut x = bar(2, 8);
        // row 0 partitions: (1,0,·,init) and (0,0,·,init)
        x.write_row(0, 0, &[true, false, false, true, false, false, false, true])
            .unwrap();
        x.write_row(1, 0, &[false, true, false, true, true, true, false, true])
            .unwrap();
        // Outputs (offset 2) must be pre-initialized.
        // Partition bases: 0 and 4 → output cols 2 and 6.
        for row in 0..2 {
            for col in [2usize, 6] {
                x.init_region(&Region::new(row..row + 1, col..col + 1))
                    .unwrap();
            }
        }
        x.nor_cols_partitioned(0..2, 0..8, 4, &[0, 1], 2, true).unwrap();
        // row 0: partition 0 inputs (1,0) → 0 ; partition 1 inputs (0,0) → 1
        assert!(!x.read_cell(0, 2).unwrap());
        assert!(x.read_cell(0, 6).unwrap());
        // row 1: (0,1) → 0 ; (1,1) → 0
        assert!(!x.read_cell(1, 2).unwrap());
        assert!(!x.read_cell(1, 6).unwrap());
    }

    #[test]
    fn partitioned_nor_validates_geometry() {
        let mut x = bar(1, 8);
        assert!(matches!(
            x.nor_cols_partitioned(0..1, 0..8, 3, &[0], 1, false),
            Err(CrossbarError::BadPartition { .. })
        ));
        assert!(matches!(
            x.nor_cols_partitioned(0..1, 0..8, 4, &[5], 1, false),
            Err(CrossbarError::BadPartition { .. })
        ));
        assert!(matches!(
            x.nor_cols_partitioned(0..1, 0..8, 4, &[1], 1, false),
            Err(CrossbarError::MagicInOutOverlap {
                axis: Axis::Col,
                index: 1
            })
        ));
    }

    #[test]
    fn shift_to_other_row_preserves_source_and_fills_carry() {
        let mut x = bar(2, 4);
        x.write_row(0, 0, &[true, false, true, false]).unwrap();
        x.shift_row_to(0, 1, 0..4, 1, true).unwrap();
        // Source untouched.
        assert_eq!(
            x.read_row_bits(0, 0..4).unwrap(),
            vec![true, false, true, false]
        );
        // Destination: shifted by +1, carry-in 1 at position 0.
        assert_eq!(
            x.read_row_bits(1, 0..4).unwrap(),
            vec![true, true, false, true]
        );
    }

    #[test]
    fn faults_affect_magic_results() {
        let mut x = bar(3, 1);
        x.inject_fault(0, 0, Some(Fault::StuckAt1)).unwrap();
        // inputs read 1 even after writing 0
        x.write_row(0, 0, &[false]).unwrap();
        x.init_region(&Region::new(2..3, 0..1)).unwrap();
        x.nor_rows(&[0, 1], 2, 0..1, true).unwrap();
        assert!(!x.read_cell(2, 0).unwrap(), "stuck-1 input forces NOR to 0");
    }

    #[test]
    fn wear_counting() {
        let mut x = bar(2, 2);
        x.write_row(0, 0, &[true, true]).unwrap();
        x.init_region(&Region::new(1..2, 0..2)).unwrap();
        x.nor_rows(&[0], 1, 0..2, true).unwrap();
        assert_eq!(x.cell(0, 0).unwrap().writes(), 1); // written once
        assert_eq!(x.cell(1, 0).unwrap().writes(), 2); // init + magic drive
        x.reset_wear();
        assert_eq!(x.cell(1, 0).unwrap().writes(), 0);
    }

    #[test]
    fn practical_dimension_check() {
        let x = bar(4, 8);
        assert!(x.check_practical_dimensions().is_ok());
        let long = bar(1, crate::PRACTICAL_LINE_LIMIT + 1);
        assert!(long.check_practical_dimensions().is_err());
    }

    #[test]
    fn render_region_shows_bits() {
        let mut x = bar(2, 3);
        x.write_row(0, 0, &[true, false, true]).unwrap();
        let s = x.render_region(&Region::new(0..2, 0..3));
        assert_eq!(s, "101\n000\n");
    }
}
