//! The crossbar array: state, MAGIC operations and periphery.
//!
//! Methods on [`Crossbar`] mutate state and update per-cell wear; clock
//! cycles are charged by the [`crate::Executor`] that drives them.
//!
//! Two interchangeable backends store the state (see [`BackendKind`]):
//! the original per-cell [`Cell`] vector, and a bit-packed plane of
//! `u64` words per row that executes row-parallel MAGIC as `O(words)`
//! bitwise ops. Both are observationally identical — values, faults,
//! wear counts and error ordering — which the `cim-check` differential
//! suite asserts case by case.

use crate::cell::{Cell, Fault};
use crate::error::{Axis, CrossbarError};
use crate::geometry::{ColRange, Region};
use crate::packed::PackedPlanes;
use crate::sliced::{SlicedPlanes, MAX_LANES};
use crate::PRACTICAL_LINE_LIMIT;
use std::sync::OnceLock;

/// Which state backend a [`Crossbar`] uses.
///
/// The default is [`BackendKind::Packed`]; set the environment
/// variable `CIM_XBAR_BACKEND=scalar` to flip new arrays back to the
/// per-cell backend (read once per process), or construct explicitly
/// via [`Crossbar::with_backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// One [`Cell`] struct per bit — simple, the differential gold.
    Scalar,
    /// `u64` bit-plane words per row, sparse fault masks, lazy wear.
    Packed,
    /// Lane-transposed batch backend: one `u64` word per cell, each
    /// bit an independent problem instance (see
    /// [`Crossbar::new_sliced`]). Via [`Crossbar::with_backend`] it
    /// carries the full 64 lanes.
    Sliced,
}

impl BackendKind {
    /// The process-wide default backend: `Packed`, unless the
    /// `CIM_XBAR_BACKEND` environment variable says `scalar`.
    pub fn default_kind() -> BackendKind {
        static DEFAULT: OnceLock<BackendKind> = OnceLock::new();
        *DEFAULT.get_or_init(|| match std::env::var("CIM_XBAR_BACKEND").as_deref() {
            Ok("scalar") => BackendKind::Scalar,
            _ => BackendKind::Packed,
        })
    }
}

#[derive(Debug, Clone)]
enum Backing {
    Scalar(Vec<Cell>),
    Packed(PackedPlanes),
    Sliced(SlicedPlanes),
}

/// A rows × columns grid of memristors with MAGIC compute support.
///
/// See the [crate-level documentation](crate) for the execution model
/// and a usage example.
#[derive(Debug, Clone)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    state: Backing,
}

impl Crossbar {
    /// Creates a crossbar of `rows × cols` cells, all logic 0, on the
    /// process default backend ([`BackendKind::default_kind`]).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::EmptyDimension`] if either dimension is
    /// zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self, CrossbarError> {
        Self::with_backend(rows, cols, BackendKind::default_kind())
    }

    /// Creates a crossbar on the scalar per-cell backend.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::EmptyDimension`] if either dimension is
    /// zero.
    pub fn new_scalar(rows: usize, cols: usize) -> Result<Self, CrossbarError> {
        Self::with_backend(rows, cols, BackendKind::Scalar)
    }

    /// Creates a crossbar on an explicit backend.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::EmptyDimension`] if either dimension is
    /// zero.
    pub fn with_backend(
        rows: usize,
        cols: usize,
        kind: BackendKind,
    ) -> Result<Self, CrossbarError> {
        if rows == 0 || cols == 0 {
            return Err(CrossbarError::EmptyDimension);
        }
        let state = match kind {
            BackendKind::Scalar => Backing::Scalar(vec![Cell::default(); rows * cols]),
            BackendKind::Packed => Backing::Packed(PackedPlanes::new(rows, cols)),
            BackendKind::Sliced => Backing::Sliced(SlicedPlanes::new(rows, cols, MAX_LANES)),
        };
        Ok(Crossbar { rows, cols, state })
    }

    /// Creates a lane-transposed batch crossbar: every cell holds one
    /// bit per *lane*, and each of the `lanes` (1..=64) lanes is an
    /// independent problem instance driven by the same program. See
    /// the `sliced` module docs for the accounting model.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::EmptyDimension`] on a zero dimension
    /// and [`CrossbarError::LaneOutOfRange`] when `lanes` is 0 or
    /// above 64.
    pub fn new_sliced(rows: usize, cols: usize, lanes: usize) -> Result<Self, CrossbarError> {
        if rows == 0 || cols == 0 {
            return Err(CrossbarError::EmptyDimension);
        }
        if lanes == 0 || lanes > MAX_LANES {
            return Err(CrossbarError::LaneOutOfRange {
                lane: lanes,
                lanes: MAX_LANES,
            });
        }
        Ok(Crossbar {
            rows,
            cols,
            state: Backing::Sliced(SlicedPlanes::new(rows, cols, lanes)),
        })
    }

    /// Batch lanes this array carries: 1 on the scalar/packed
    /// backends, the constructed lane count on the sliced backend.
    pub fn lanes(&self) -> usize {
        match &self.state {
            Backing::Sliced(p) => p.lanes(),
            _ => 1,
        }
    }

    fn check_lane(&self, lane: usize) -> Result<(), CrossbarError> {
        let lanes = self.lanes();
        if lane >= lanes {
            Err(CrossbarError::LaneOutOfRange { lane, lanes })
        } else {
            Ok(())
        }
    }

    /// The backend this array runs on.
    pub fn backend_kind(&self) -> BackendKind {
        match &self.state {
            Backing::Scalar(_) => BackendKind::Scalar,
            Backing::Packed(_) => BackendKind::Packed,
            Backing::Sliced(_) => BackendKind::Sliced,
        }
    }

    /// Number of word lines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit lines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of memristors — the paper's "area" metric.
    pub fn cell_count(&self) -> usize {
        self.rows * self.cols
    }

    fn idx(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    fn check_row(&self, row: usize) -> Result<(), CrossbarError> {
        if row >= self.rows {
            Err(CrossbarError::RowOutOfRange {
                row,
                rows: self.rows,
            })
        } else {
            Ok(())
        }
    }

    fn check_cols(&self, cols: &ColRange) -> Result<(), CrossbarError> {
        if cols.end > self.cols {
            Err(CrossbarError::ColOutOfRange {
                col: cols.end.saturating_sub(1),
                cols: self.cols,
            })
        } else {
            Ok(())
        }
    }

    /// Reads a single cell.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn read_cell(&self, row: usize, col: usize) -> Result<bool, CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col..col + 1))?;
        Ok(match &self.state {
            Backing::Scalar(cells) => cells[self.idx(row, col)].read(),
            Backing::Packed(p) => p.read_bit(row, col),
            Backing::Sliced(p) => p.read_bit(row, col),
        })
    }

    /// Reads the bits of `row` over the column span (sense amplifiers).
    ///
    /// Allocates a fresh buffer per call; hot paths should prefer
    /// [`Crossbar::read_row_into`], which reuses one.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn read_row_bits(&self, row: usize, cols: ColRange) -> Result<Vec<bool>, CrossbarError> {
        let mut out = Vec::new();
        self.read_row_into(row, cols, &mut out)?;
        Ok(out)
    }

    /// Reads the bits of `row` over the column span into `out`
    /// (cleared first) — the allocation-free variant of
    /// [`Crossbar::read_row_bits`].
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn read_row_into(
        &self,
        row: usize,
        cols: ColRange,
        out: &mut Vec<bool>,
    ) -> Result<(), CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&cols)?;
        match &self.state {
            Backing::Scalar(cells) => {
                out.clear();
                out.extend(cols.map(|c| cells[row * self.cols + c].read()));
            }
            Backing::Packed(p) => p.read_into(row, cols, out),
            Backing::Sliced(p) => p.read_into(row, cols, out),
        }
        Ok(())
    }

    /// Reads the bits of `row` over the column span as little-endian
    /// `u64` words aligned to `cols.start` — the word-parallel sense
    /// path used by bulk arithmetic such as the in-row multiplier.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn read_row_words(
        &self,
        row: usize,
        cols: ColRange,
        out: &mut Vec<u64>,
    ) -> Result<(), CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&cols)?;
        match &self.state {
            Backing::Scalar(cells) => {
                let len = cols.len();
                out.clear();
                out.resize(len.div_ceil(64), 0);
                for (j, c) in cols.enumerate() {
                    if cells[row * self.cols + c].read() {
                        out[j / 64] |= 1 << (j % 64);
                    }
                }
            }
            Backing::Packed(p) => p.read_words_into(row, cols, out),
            Backing::Sliced(p) => p.read_words_into(row, cols, out),
        }
        Ok(())
    }

    /// Writes `bits` into `row` starting at column `col_offset`.
    ///
    /// # Errors
    ///
    /// Returns an error if the span exceeds the array.
    pub fn write_row(
        &mut self,
        row: usize,
        col_offset: usize,
        bits: &[bool],
    ) -> Result<(), CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col_offset..col_offset + bits.len()))?;
        match &mut self.state {
            Backing::Scalar(cells) => {
                for (i, &b) in bits.iter().enumerate() {
                    cells[row * self.cols + col_offset + i].write(b);
                }
            }
            Backing::Packed(p) => p.write_bits(row, col_offset, bits),
            Backing::Sliced(p) => p.write_bits(row, col_offset, bits),
        }
        Ok(())
    }

    /// Writes `len` bits from little-endian `words` into `row` at
    /// `col_offset` — the word-parallel counterpart of
    /// [`Crossbar::write_row`], with identical per-cell wear.
    ///
    /// # Errors
    ///
    /// Returns an error if the span exceeds the array.
    pub fn write_row_words(
        &mut self,
        row: usize,
        col_offset: usize,
        words: &[u64],
        len: usize,
    ) -> Result<(), CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col_offset..col_offset + len))?;
        match &mut self.state {
            Backing::Scalar(cells) => {
                for j in 0..len {
                    let bit = (words.get(j / 64).copied().unwrap_or(0) >> (j % 64)) & 1 == 1;
                    cells[row * self.cols + col_offset + j].write(bit);
                }
            }
            Backing::Packed(p) => p.write_words(row, col_offset, words, len),
            Backing::Sliced(p) => p.write_words(row, col_offset, words, len),
        }
        Ok(())
    }

    /// Writes one *lane word* per column into `row` starting at
    /// `col_offset` — the lane-transposed counterpart of
    /// [`Crossbar::write_row`]: bit `l` of `lane_words[j]` is the bit
    /// written into lane `l` of column `col_offset + j`. Every cell in
    /// the span wears exactly once, on every lane, same as a broadcast
    /// row write. On the scalar/packed backends this degrades to
    /// writing the lane-0 bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the span exceeds the array.
    pub fn write_row_lanes(
        &mut self,
        row: usize,
        col_offset: usize,
        lane_words: &[u64],
    ) -> Result<(), CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col_offset..col_offset + lane_words.len()))?;
        if let Backing::Sliced(p) = &mut self.state {
            p.write_lanes(row, col_offset, lane_words);
            return Ok(());
        }
        let bits: Vec<bool> = lane_words.iter().map(|&w| w & 1 == 1).collect();
        self.write_row(row, col_offset, &bits)
    }

    /// Lane-masked variant of [`Crossbar::write_row_lanes`]: only the
    /// lanes selected by `mask` take the new values and wear; the other
    /// lanes keep both value and wear untouched — the primitive behind
    /// data-dependent batch steps (a shift-add iteration only pulses
    /// the lanes whose multiplier bit is set). On the scalar/packed
    /// backends lane 0 is written iff bit 0 of `mask` is set.
    ///
    /// # Errors
    ///
    /// Returns an error if the span exceeds the array.
    pub fn write_row_lanes_masked(
        &mut self,
        row: usize,
        col_offset: usize,
        lane_words: &[u64],
        mask: u64,
    ) -> Result<(), CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col_offset..col_offset + lane_words.len()))?;
        if let Backing::Sliced(p) = &mut self.state {
            p.write_lanes_masked(row, col_offset, lane_words, mask);
            return Ok(());
        }
        if mask & 1 == 1 {
            let bits: Vec<bool> = lane_words.iter().map(|&w| w & 1 == 1).collect();
            self.write_row(row, col_offset, &bits)
        } else {
            Ok(())
        }
    }

    /// Adds `pulses` write pulses of wear to every cell (every lane)
    /// of `region` without changing values — the wear half of a write.
    ///
    /// Batch fast paths that compute final cell values in the
    /// controller use this (plus [`Crossbar::store_row_lane_words`])
    /// to account a sequence of writes pulse for pulse while issuing
    /// the value changes only once; composing the two halves in the
    /// same spans as the writes they replace keeps every per-cell
    /// observable identical to executing the writes one by one.
    ///
    /// # Errors
    ///
    /// Returns an error if the region exceeds the array.
    pub fn wear_region(&mut self, region: &Region, pulses: u64) -> Result<(), CrossbarError> {
        if region.rows.end > self.rows {
            return Err(CrossbarError::RowOutOfRange {
                row: region.rows.end - 1,
                rows: self.rows,
            });
        }
        self.check_cols(&region.cols)?;
        match &mut self.state {
            Backing::Scalar(cells) => {
                for row in region.rows.clone() {
                    for col in region.cols.clone() {
                        cells[row * self.cols + col].add_wear(pulses);
                    }
                }
            }
            Backing::Packed(p) => {
                for row in region.rows.clone() {
                    p.wear.add(row, region.cols.clone(), pulses);
                }
            }
            Backing::Sliced(p) => {
                for row in region.rows.clone() {
                    p.wear_uniform(row, region.cols.clone(), pulses);
                }
            }
        }
        Ok(())
    }

    /// Records one write pulse of wear over the span for the lanes in
    /// `mask` — the wear half of [`Crossbar::write_row_lanes_masked`]
    /// — without touching values. On the scalar/packed backends the
    /// cells wear iff bit 0 of `mask` is set.
    ///
    /// # Errors
    ///
    /// Returns an error if the span exceeds the array.
    pub fn wear_row_lanes_masked(
        &mut self,
        row: usize,
        cols: ColRange,
        mask: u64,
    ) -> Result<(), CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&cols)?;
        match &mut self.state {
            Backing::Sliced(p) => p.wear_masked(row, cols, mask),
            Backing::Packed(p) => {
                if mask & 1 == 1 {
                    p.wear.add(row, cols, 1);
                }
            }
            Backing::Scalar(cells) => {
                if mask & 1 == 1 {
                    for col in cols {
                        cells[row * self.cols + col].add_wear(1);
                    }
                }
            }
        }
        Ok(())
    }

    /// Stores one lane word per column for the lanes in `mask` — the
    /// value half of [`Crossbar::write_row_lanes_masked`] — without
    /// recording any wear. Fault lanes keep their value. On the
    /// scalar/packed backends the lane-0 bits are stored iff bit 0 of
    /// `mask` is set.
    ///
    /// # Errors
    ///
    /// Returns an error if the span exceeds the array.
    pub fn store_row_lane_words(
        &mut self,
        row: usize,
        col_offset: usize,
        words: &[u64],
        mask: u64,
    ) -> Result<(), CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col_offset..col_offset + words.len()))?;
        match &mut self.state {
            Backing::Sliced(p) => p.store_lane_words(row, col_offset, words, mask),
            Backing::Packed(p) => {
                if mask & 1 == 1 {
                    for (j, &w) in words.iter().enumerate() {
                        p.store_bit(row, col_offset + j, w & 1 == 1);
                    }
                }
            }
            Backing::Scalar(cells) => {
                if mask & 1 == 1 {
                    for (j, &w) in words.iter().enumerate() {
                        cells[row * self.cols + col_offset + j].store(w & 1 == 1);
                    }
                }
            }
        }
        Ok(())
    }

    /// Reads the span of `row` as one fault-adjusted *lane word* per
    /// column — the bulk sense path of batch arithmetic. On the
    /// scalar/packed backends each word is 0 or 1 (the lane-0 bit).
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn read_row_lane_words(
        &self,
        row: usize,
        cols: ColRange,
        out: &mut Vec<u64>,
    ) -> Result<(), CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&cols)?;
        match &self.state {
            Backing::Sliced(p) => {
                p.read_lane_words(row, cols, out);
                Ok(())
            }
            _ => {
                out.clear();
                out.reserve(cols.len());
                for col in cols {
                    out.push(self.read_cell(row, col)? as u64);
                }
                Ok(())
            }
        }
    }

    /// Reads all lanes of one cell as a fault-adjusted lane word (bit
    /// `l` = lane `l`); 0 or 1 on the scalar/packed backends.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn read_cell_lanes(&self, row: usize, col: usize) -> Result<u64, CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col..col + 1))?;
        Ok(match &self.state {
            Backing::Sliced(p) => p.read_word(row, col),
            _ => self.read_cell(row, col)? as u64,
        })
    }

    /// Reads one lane's bits of `row` over the column span — the
    /// per-lane readout path. Lane 0 is valid on every backend.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates or lane are out of range.
    pub fn read_row_lane_bits(
        &self,
        lane: usize,
        row: usize,
        cols: ColRange,
    ) -> Result<Vec<bool>, CrossbarError> {
        self.check_lane(lane)?;
        self.check_row(row)?;
        self.check_cols(&cols)?;
        match &self.state {
            Backing::Sliced(p) => {
                let mut out = Vec::new();
                p.read_lane_into(lane, row, cols, &mut out);
                Ok(out)
            }
            _ => self.read_row_bits(row, cols),
        }
    }

    /// Drives every cell of `region` to logic 1 (MAGIC output
    /// initialization) — one parallel set pulse.
    ///
    /// # Errors
    ///
    /// Returns an error if the region exceeds the array.
    pub fn init_region(&mut self, region: &Region) -> Result<(), CrossbarError> {
        self.fill_region(region, true)
    }

    /// Drives every cell of `region` to logic 0 (array reset).
    ///
    /// # Errors
    ///
    /// Returns an error if the region exceeds the array.
    pub fn reset_region(&mut self, region: &Region) -> Result<(), CrossbarError> {
        self.fill_region(region, false)
    }

    fn fill_region(&mut self, region: &Region, value: bool) -> Result<(), CrossbarError> {
        if region.rows.end > self.rows {
            return Err(CrossbarError::RowOutOfRange {
                row: region.rows.end - 1,
                rows: self.rows,
            });
        }
        self.check_cols(&region.cols)?;
        match &mut self.state {
            Backing::Scalar(cells) => {
                for row in region.rows.clone() {
                    for col in region.cols.clone() {
                        cells[row * self.cols + col].write(value);
                    }
                }
            }
            Backing::Packed(p) => p.fill(region.rows.clone(), region.cols.clone(), value),
            Backing::Sliced(p) => p.fill(region.rows.clone(), region.cols.clone(), value),
        }
        Ok(())
    }

    /// MAGIC NOR across rows: for every column in `cols`, drives
    /// `out = NOR(inputs…)` — all bit lines in parallel (SIMD).
    ///
    /// The output cells must have been initialized to logic 1; with
    /// `strict` the operation fails if any was not, otherwise the
    /// physical behaviour (output can only be pulled down) is applied
    /// silently.
    ///
    /// # Errors
    ///
    /// Returns an error on bad coordinates, if `out` is also an input,
    /// or (strict mode) on an uninitialized output cell.
    pub fn nor_rows(
        &mut self,
        inputs: &[usize],
        out: usize,
        cols: ColRange,
        strict: bool,
    ) -> Result<(), CrossbarError> {
        for &r in inputs {
            self.check_row(r)?;
            if r == out {
                return Err(CrossbarError::MagicInOutOverlap {
                    axis: Axis::Row,
                    index: r,
                });
            }
        }
        self.check_row(out)?;
        self.check_cols(&cols)?;
        match &mut self.state {
            Backing::Scalar(cells) => {
                for col in cols {
                    let any = inputs.iter().any(|&r| cells[r * self.cols + col].read());
                    let out_idx = out * self.cols + col;
                    if strict && !cells[out_idx].read() {
                        return Err(CrossbarError::OutputNotInitialized { row: out, col });
                    }
                    cells[out_idx].magic_drive(!any);
                }
                Ok(())
            }
            Backing::Packed(p) => p
                .nor_rows(inputs, out, cols, strict)
                .map_err(|col| CrossbarError::OutputNotInitialized { row: out, col }),
            Backing::Sliced(p) => p
                .nor_rows(inputs, out, cols, strict)
                .map_err(|col| CrossbarError::OutputNotInitialized { row: out, col }),
        }
    }

    /// MAGIC NOR along rows (column-oriented): for every row in
    /// `rows`, drives `row[out_col] = NOR(row[in_cols]…)` — all word
    /// lines in parallel.
    ///
    /// This is the orientation used by single-row multipliers such as
    /// MultPIM, where each row hosts an independent multiplication.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Crossbar::nor_rows`].
    pub fn nor_cols(
        &mut self,
        in_cols: &[usize],
        out_col: usize,
        rows: std::ops::Range<usize>,
        strict: bool,
    ) -> Result<(), CrossbarError> {
        for &c in in_cols {
            self.check_cols(&(c..c + 1))?;
            if c == out_col {
                return Err(CrossbarError::MagicInOutOverlap {
                    axis: Axis::Col,
                    index: c,
                });
            }
        }
        self.check_cols(&(out_col..out_col + 1))?;
        if rows.end > self.rows {
            return Err(CrossbarError::RowOutOfRange {
                row: rows.end - 1,
                rows: self.rows,
            });
        }
        match &mut self.state {
            Backing::Scalar(cells) => {
                for row in rows {
                    let any = in_cols.iter().any(|&c| cells[row * self.cols + c].read());
                    let out_idx = row * self.cols + out_col;
                    if strict && !cells[out_idx].read() {
                        return Err(CrossbarError::OutputNotInitialized { row, col: out_col });
                    }
                    cells[out_idx].magic_drive(!any);
                }
                Ok(())
            }
            Backing::Packed(p) => p
                .nor_cols(in_cols, out_col, rows, strict)
                .map_err(|row| CrossbarError::OutputNotInitialized { row, col: out_col }),
            Backing::Sliced(p) => p
                .nor_cols(in_cols, out_col, rows, strict)
                .map_err(|row| CrossbarError::OutputNotInitialized { row, col: out_col }),
        }
    }

    /// Partitioned MAGIC NOR along rows: the column span `cols` is
    /// divided into partitions of `part_width` columns; within *every*
    /// partition (and for every row in `rows`) simultaneously,
    /// `row[base + out_offset] = NOR(row[base + in_offsets…])` — the
    /// partition-parallel execution MultPIM \[9\] uses to get its
    /// `log n` factor. One clock cycle.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::BadPartition`] if the span is not a
    /// multiple of `part_width` or an offset falls outside a
    /// partition, plus the usual geometry/aliasing/init errors.
    #[allow(clippy::too_many_arguments)]
    pub fn nor_cols_partitioned(
        &mut self,
        rows: std::ops::Range<usize>,
        cols: ColRange,
        part_width: usize,
        in_offsets: &[usize],
        out_offset: usize,
        strict: bool,
    ) -> Result<(), CrossbarError> {
        if part_width == 0 || !cols.len().is_multiple_of(part_width) {
            return Err(CrossbarError::BadPartition {
                detail: format!(
                    "span of {} columns is not a multiple of partition width {part_width}",
                    cols.len()
                ),
            });
        }
        for &off in in_offsets.iter().chain(std::iter::once(&out_offset)) {
            if off >= part_width {
                return Err(CrossbarError::BadPartition {
                    detail: format!("offset {off} outside partition width {part_width}"),
                });
            }
        }
        if in_offsets.contains(&out_offset) {
            return Err(CrossbarError::MagicInOutOverlap {
                axis: Axis::Col,
                index: out_offset,
            });
        }
        self.check_cols(&cols)?;
        if rows.end > self.rows {
            return Err(CrossbarError::RowOutOfRange {
                row: rows.end - 1,
                rows: self.rows,
            });
        }
        match &mut self.state {
            Backing::Scalar(cells) => {
                for row in rows {
                    for base in (cols.start..cols.end).step_by(part_width) {
                        let any = in_offsets
                            .iter()
                            .any(|&off| cells[row * self.cols + base + off].read());
                        let out_idx = row * self.cols + base + out_offset;
                        if strict && !cells[out_idx].read() {
                            return Err(CrossbarError::OutputNotInitialized {
                                row,
                                col: base + out_offset,
                            });
                        }
                        cells[out_idx].magic_drive(!any);
                    }
                }
                Ok(())
            }
            Backing::Packed(p) => p
                .nor_cols_partitioned(rows, cols, part_width, in_offsets, out_offset, strict)
                .map_err(|(row, col)| CrossbarError::OutputNotInitialized { row, col }),
            Backing::Sliced(p) => p
                .nor_cols_partitioned(rows, cols, part_width, in_offsets, out_offset, strict)
                .map_err(|(row, col)| CrossbarError::OutputNotInitialized { row, col }),
        }
    }

    /// Periphery shift: reads `src[cols]`, shifts by `offset` columns
    /// (positive = towards higher column indices / more significant)
    /// filling vacated positions with `fill`, and writes the span into
    /// `dst` (which may equal `src`).
    ///
    /// MAGIC cannot move data across bit lines (paper Sec. IV-B), so
    /// this is done by the periphery: one read cycle plus one write
    /// cycle, charged as 2 cc by the executor. A `fill` of `true`
    /// injects a carry-in bit (used by the subtractor).
    ///
    /// # Errors
    ///
    /// Returns an error if the span exceeds the array.
    pub fn shift_row_to(
        &mut self,
        src: usize,
        dst: usize,
        cols: ColRange,
        offset: isize,
        fill: bool,
    ) -> Result<(), CrossbarError> {
        self.check_row(src)?;
        self.check_row(dst)?;
        self.check_cols(&cols)?;
        // The sliced backend moves whole lane words per column; the
        // packed/scalar path goes through the bit-plane word form.
        if let Backing::Sliced(p) = &mut self.state {
            p.shift(src, dst, cols, offset, fill);
            return Ok(());
        }
        let w = cols.len();
        let mut words = Vec::new();
        self.read_row_words(src, cols.clone(), &mut words)?;
        let shifted = crate::packed::shift_words(&words, w, offset, fill);
        self.write_row_words(dst, cols.start, &shifted, w)
    }

    /// In-place periphery shift with zero fill; see
    /// [`Crossbar::shift_row_to`].
    ///
    /// # Errors
    ///
    /// Returns an error if the span exceeds the array.
    pub fn shift_row(
        &mut self,
        row: usize,
        cols: ColRange,
        offset: isize,
    ) -> Result<(), CrossbarError> {
        self.shift_row_to(row, row, cols, offset, false)
    }

    /// Injects a stuck-at fault at a cell (or clears it with `None`).
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn inject_fault(
        &mut self,
        row: usize,
        col: usize,
        fault: Option<Fault>,
    ) -> Result<(), CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col..col + 1))?;
        match &mut self.state {
            Backing::Scalar(cells) => cells[row * self.cols + col].set_fault(fault),
            Backing::Packed(p) => p.set_fault(row, col, fault),
            Backing::Sliced(p) => p.set_fault(row, col, fault),
        }
        Ok(())
    }

    /// Injects (or clears) a stuck-at fault on a single lane of a
    /// cell. On the scalar/packed backends only lane 0 exists and
    /// this is [`Crossbar::inject_fault`].
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates or lane are out of range.
    pub fn inject_fault_lane(
        &mut self,
        lane: usize,
        row: usize,
        col: usize,
        fault: Option<Fault>,
    ) -> Result<(), CrossbarError> {
        self.check_lane(lane)?;
        self.check_row(row)?;
        self.check_cols(&(col..col + 1))?;
        if let Backing::Sliced(p) = &mut self.state {
            p.set_fault_lane(lane, row, col, fault);
            return Ok(());
        }
        self.inject_fault(row, col, fault)
    }

    /// The [`Cell`] view of one lane of one cell: raw value, exact
    /// per-lane wear, per-lane fault. Lane 0 equals [`Crossbar::cell`].
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates or lane are out of range.
    pub fn lane_cell(&self, lane: usize, row: usize, col: usize) -> Result<Cell, CrossbarError> {
        self.check_lane(lane)?;
        self.check_row(row)?;
        self.check_cols(&(col..col + 1))?;
        Ok(match &self.state {
            Backing::Sliced(p) => p.lane_cell(lane, row, col),
            _ => self.cell_unchecked(row, col),
        })
    }

    /// `(max, total, touched)` per-cell write statistics of one lane.
    pub(crate) fn lane_wear_stats(&self, lane: usize) -> (u64, u64, usize) {
        match &self.state {
            Backing::Sliced(p) => p.lane_wear_stats(lane),
            _ => self.wear_stats(),
        }
    }

    /// Per-lane `(max, total, touched)` wear statistics for all 64
    /// lane slots in one sweep (only the active lanes are meaningful);
    /// on the scalar/packed backends a single-entry vector.
    pub(crate) fn lane_wear_stats_all(&self) -> Vec<(u64, u64, usize)> {
        match &self.state {
            Backing::Sliced(p) => p.lane_wear_stats_all(),
            _ => vec![self.wear_stats()],
        }
    }

    /// Whether no cell of `row` across `cols` carries a stuck-at
    /// fault — gate for word-parallel fast paths that mirror array
    /// state in software (faults feed back through reads, so those
    /// paths fall back to per-cell execution).
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn row_region_fault_free(
        &self,
        row: usize,
        cols: ColRange,
    ) -> Result<bool, CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&cols)?;
        Ok(match &self.state {
            Backing::Scalar(cells) => cols
                .clone()
                .all(|c| cells[row * self.cols + c].fault().is_none()),
            Backing::Packed(p) => p.region_fault_free(row, cols),
            Backing::Sliced(p) => p.region_fault_free(row, cols),
        })
    }

    fn cell_unchecked(&self, row: usize, col: usize) -> Cell {
        match &self.state {
            Backing::Scalar(cells) => cells[row * self.cols + col],
            Backing::Packed(p) => p.cell(row, col),
            Backing::Sliced(p) => p.cell(row, col),
        }
    }

    /// The cell view at a coordinate (wear inspection, tests). On the
    /// packed backend the [`Cell`] is synthesized from the bit planes;
    /// it is a snapshot, not a live reference.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinates are out of range.
    pub fn cell(&self, row: usize, col: usize) -> Result<Cell, CrossbarError> {
        self.check_row(row)?;
        self.check_cols(&(col..col + 1))?;
        Ok(self.cell_unchecked(row, col))
    }

    /// Iterates over all cells (row-major) as snapshots.
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        (0..self.rows)
            .flat_map(move |r| (0..self.cols).map(move |c| self.cell_unchecked(r, c)))
    }

    /// `(max, total, touched)` per-cell write statistics, computed
    /// without materializing the packed backend's lazy wear plane into
    /// per-cell counters — the fast path behind
    /// [`crate::EnduranceReport::from_array`].
    pub(crate) fn wear_stats(&self) -> (u64, u64, usize) {
        match &self.state {
            Backing::Scalar(cells) => {
                let (mut max, mut total, mut touched) = (0u64, 0u64, 0usize);
                for cell in cells {
                    let w = cell.writes();
                    max = max.max(w);
                    total += w;
                    if w > 0 {
                        touched += 1;
                    }
                }
                (max, total, touched)
            }
            Backing::Packed(p) => {
                let (mut max, mut total, mut touched) = (0u64, 0u64, 0usize);
                for row in 0..self.rows {
                    p.wear.for_each_segment(row, |w, n| {
                        if w > 0 {
                            max = max.max(w);
                            total += w * n as u64;
                            touched += n;
                        }
                    });
                }
                (max, total, touched)
            }
            Backing::Sliced(p) => p.wear_stats(),
        }
    }

    /// `(max, mean)` per-cell write counts — the one-call wear summary
    /// schedulers and reports consume instead of walking raw cells.
    /// The mean is over touched cells (0.0 for an unworn array).
    pub fn wear_summary(&self) -> (u64, f64) {
        crate::endurance::EnduranceReport::from_array(self).max_and_mean()
    }

    /// Per-row `(max, total)` per-cell write counts, in row order —
    /// the surface wear-heatmap reports rank rows by. On the packed
    /// backend this walks the lazy wear plane's constant segments; on
    /// the sliced backend the per-cell snapshot aggregates all lanes.
    pub fn row_wear_totals(&self) -> Vec<(u64, u64)> {
        match &self.state {
            Backing::Scalar(cells) => (0..self.rows)
                .map(|r| {
                    let (mut max, mut total) = (0u64, 0u64);
                    for cell in &cells[r * self.cols..(r + 1) * self.cols] {
                        let w = cell.writes();
                        max = max.max(w);
                        total += w;
                    }
                    (max, total)
                })
                .collect(),
            Backing::Packed(p) => (0..self.rows)
                .map(|r| {
                    let (mut max, mut total) = (0u64, 0u64);
                    p.wear.for_each_segment(r, |w, n| {
                        max = max.max(w);
                        total += w * n as u64;
                    });
                    (max, total)
                })
                .collect(),
            Backing::Sliced(_) => (0..self.rows)
                .map(|r| {
                    let (mut max, mut total) = (0u64, 0u64);
                    for c in 0..self.cols {
                        let w = self.cell_unchecked(r, c).writes();
                        max = max.max(w);
                        total += w;
                    }
                    (max, total)
                })
                .collect(),
        }
    }

    /// Clears all wear counters (keeps values and faults).
    pub fn reset_wear(&mut self) {
        match &mut self.state {
            Backing::Scalar(cells) => {
                for c in cells {
                    c.reset_wear();
                }
            }
            Backing::Packed(p) => p.wear.reset(),
            Backing::Sliced(p) => p.reset_wear(),
        }
    }

    /// Checks the array against practical line-length limits
    /// ([`PRACTICAL_LINE_LIMIT`]); returns the offending dimension.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ColOutOfRange`] (columns) or
    /// [`CrossbarError::RowOutOfRange`] (rows) when a line exceeds the
    /// practical limit, as used in the paper's critique of very long
    /// single-row multipliers.
    pub fn check_practical_dimensions(&self) -> Result<(), CrossbarError> {
        if self.cols > PRACTICAL_LINE_LIMIT {
            return Err(CrossbarError::ColOutOfRange {
                col: self.cols,
                cols: PRACTICAL_LINE_LIMIT,
            });
        }
        if self.rows > PRACTICAL_LINE_LIMIT {
            return Err(CrossbarError::RowOutOfRange {
                row: self.rows,
                rows: PRACTICAL_LINE_LIMIT,
            });
        }
        Ok(())
    }

    /// Renders a region as an ASCII grid (`1`/`0`, `X`/`x` for stuck
    /// cells) — used by the figure-reproduction binaries.
    pub fn render_region(&self, region: &Region) -> String {
        let mut out = String::new();
        for row in region.rows.clone() {
            for col in region.cols.clone() {
                let cell = self.cell_unchecked(row, col);
                let ch = match (cell.fault(), cell.read()) {
                    (Some(_), true) => 'X',
                    (Some(_), false) => 'x',
                    (None, true) => '1',
                    (None, false) => '0',
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

/// Semantic equality: same geometry and, per cell, the same underlying
/// value, wear count and fault — regardless of which backend stores
/// them. A packed array equals its scalar twin after any op sequence.
impl PartialEq for Crossbar {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.cells().eq(other.cells())
    }
}

impl Eq for Crossbar {}

#[cfg(test)]
mod tests {
    use super::*;

    fn bar(rows: usize, cols: usize) -> Crossbar {
        Crossbar::new(rows, cols).expect("valid dims")
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(
            Crossbar::new(0, 4).unwrap_err(),
            CrossbarError::EmptyDimension
        );
        assert_eq!(
            Crossbar::new(4, 0).unwrap_err(),
            CrossbarError::EmptyDimension
        );
        assert_eq!(
            Crossbar::new_scalar(0, 4).unwrap_err(),
            CrossbarError::EmptyDimension
        );
    }

    #[test]
    fn row_wear_totals_match_cell_walk_on_all_backends() {
        type MakeCrossbar = fn(usize, usize) -> Result<Crossbar, CrossbarError>;
        let makes: [MakeCrossbar; 3] = [
            Crossbar::new,
            Crossbar::new_scalar,
            |r, c| Crossbar::new_sliced(r, c, 1),
        ];
        for make in makes {
            let mut x = make(3, 4).unwrap();
            x.write_row(0, 0, &[true, true, false, true]).unwrap();
            x.write_row(0, 1, &[false, true]).unwrap();
            x.write_row(2, 3, &[true]).unwrap();
            let per_row = x.row_wear_totals();
            assert_eq!(per_row.len(), 3);
            for (r, &(max, total)) in per_row.iter().enumerate() {
                let writes: Vec<u64> =
                    (0..4).map(|c| x.cell(r, c).unwrap().writes()).collect();
                assert_eq!(max, writes.iter().copied().max().unwrap(), "row {r}");
                assert_eq!(total, writes.iter().sum::<u64>(), "row {r}");
            }
            let (_, total_all, _) = x.wear_stats();
            assert_eq!(per_row.iter().map(|&(_, t)| t).sum::<u64>(), total_all);
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let mut x = bar(4, 8);
        x.write_row(2, 1, &[true, false, true]).unwrap();
        assert_eq!(
            x.read_row_bits(2, 0..5).unwrap(),
            vec![false, true, false, true, false]
        );
    }

    #[test]
    fn write_out_of_range_errors() {
        let mut x = bar(2, 4);
        assert!(x.write_row(5, 0, &[true]).is_err());
        assert!(x.write_row(0, 3, &[true, true]).is_err());
    }

    #[test]
    fn nor_rows_truth_table() {
        let mut x = bar(3, 4);
        x.write_row(0, 0, &[false, false, true, true]).unwrap();
        x.write_row(1, 0, &[false, true, false, true]).unwrap();
        x.init_region(&Region::new(2..3, 0..4)).unwrap();
        x.nor_rows(&[0, 1], 2, 0..4, true).unwrap();
        assert_eq!(
            x.read_row_bits(2, 0..4).unwrap(),
            vec![true, false, false, false]
        );
    }

    #[test]
    fn nor_rows_strict_catches_missing_init() {
        let mut x = bar(3, 2);
        x.write_row(0, 0, &[false, false]).unwrap();
        // Output row left at 0 — strict mode must flag it.
        let err = x.nor_rows(&[0], 2, 0..2, true).unwrap_err();
        assert!(matches!(err, CrossbarError::OutputNotInitialized { .. }));
        // Non-strict: physically the cell just stays 0.
        x.nor_rows(&[0], 2, 0..2, false).unwrap();
        assert_eq!(x.read_row_bits(2, 0..2).unwrap(), vec![false, false]);
    }

    #[test]
    fn nor_rows_rejects_aliased_output() {
        let mut x = bar(3, 2);
        let err = x.nor_rows(&[0, 1], 1, 0..2, false).unwrap_err();
        assert!(matches!(
            err,
            CrossbarError::MagicInOutOverlap {
                axis: Axis::Row,
                index: 1
            }
        ));
    }

    #[test]
    fn not_via_single_input_nor() {
        let mut x = bar(2, 3);
        x.write_row(0, 0, &[true, false, true]).unwrap();
        x.init_region(&Region::new(1..2, 0..3)).unwrap();
        x.nor_rows(&[0], 1, 0..3, true).unwrap();
        assert_eq!(
            x.read_row_bits(1, 0..3).unwrap(),
            vec![false, true, false]
        );
    }

    #[test]
    fn nor_cols_runs_on_all_rows_simultaneously() {
        let mut x = bar(2, 4);
        // row 0: a=1, b=0 → NOR = 0 ; row 1: a=0, b=0 → NOR = 1
        x.write_row(0, 0, &[true, false, false, false]).unwrap();
        x.write_row(1, 0, &[false, false, false, false]).unwrap();
        x.init_region(&Region::new(0..2, 2..3)).unwrap();
        x.nor_cols(&[0, 1], 2, 0..2, true).unwrap();
        assert!(!x.read_cell(0, 2).unwrap());
        assert!(x.read_cell(1, 2).unwrap());
    }

    #[test]
    fn shift_row_moves_bits_and_fills_zero() {
        let mut x = bar(1, 6);
        x.write_row(0, 0, &[true, true, false, false, false, true])
            .unwrap();
        x.shift_row(0, 0..6, 2).unwrap();
        assert_eq!(
            x.read_row_bits(0, 0..6).unwrap(),
            vec![false, false, true, true, false, false]
        );
        x.shift_row(0, 0..6, -2).unwrap();
        assert_eq!(
            x.read_row_bits(0, 0..6).unwrap(),
            vec![true, true, false, false, false, false]
        );
    }

    #[test]
    fn shift_respects_column_window() {
        let mut x = bar(1, 6);
        x.write_row(0, 0, &[true, true, true, true, true, true])
            .unwrap();
        x.shift_row(0, 2..5, 1).unwrap();
        // Columns outside 2..5 untouched; within, shifted with 0 fill.
        assert_eq!(
            x.read_row_bits(0, 0..6).unwrap(),
            vec![true, true, false, true, true, true]
        );
    }

    #[test]
    fn partitioned_nor_computes_every_partition_at_once() {
        // 2 rows × 8 cols, partitions of 4: out[3] = NOR(in[0], in[1]).
        let mut x = bar(2, 8);
        // row 0 partitions: (1,0,·,init) and (0,0,·,init)
        x.write_row(0, 0, &[true, false, false, true, false, false, false, true])
            .unwrap();
        x.write_row(1, 0, &[false, true, false, true, true, true, false, true])
            .unwrap();
        // Outputs (offset 2) must be pre-initialized.
        // Partition bases: 0 and 4 → output cols 2 and 6.
        for row in 0..2 {
            for col in [2usize, 6] {
                x.init_region(&Region::new(row..row + 1, col..col + 1))
                    .unwrap();
            }
        }
        x.nor_cols_partitioned(0..2, 0..8, 4, &[0, 1], 2, true).unwrap();
        // row 0: partition 0 inputs (1,0) → 0 ; partition 1 inputs (0,0) → 1
        assert!(!x.read_cell(0, 2).unwrap());
        assert!(x.read_cell(0, 6).unwrap());
        // row 1: (0,1) → 0 ; (1,1) → 0
        assert!(!x.read_cell(1, 2).unwrap());
        assert!(!x.read_cell(1, 6).unwrap());
    }

    #[test]
    fn partitioned_nor_validates_geometry() {
        let mut x = bar(1, 8);
        assert!(matches!(
            x.nor_cols_partitioned(0..1, 0..8, 3, &[0], 1, false),
            Err(CrossbarError::BadPartition { .. })
        ));
        assert!(matches!(
            x.nor_cols_partitioned(0..1, 0..8, 4, &[5], 1, false),
            Err(CrossbarError::BadPartition { .. })
        ));
        assert!(matches!(
            x.nor_cols_partitioned(0..1, 0..8, 4, &[1], 1, false),
            Err(CrossbarError::MagicInOutOverlap {
                axis: Axis::Col,
                index: 1
            })
        ));
    }

    #[test]
    fn shift_to_other_row_preserves_source_and_fills_carry() {
        let mut x = bar(2, 4);
        x.write_row(0, 0, &[true, false, true, false]).unwrap();
        x.shift_row_to(0, 1, 0..4, 1, true).unwrap();
        // Source untouched.
        assert_eq!(
            x.read_row_bits(0, 0..4).unwrap(),
            vec![true, false, true, false]
        );
        // Destination: shifted by +1, carry-in 1 at position 0.
        assert_eq!(
            x.read_row_bits(1, 0..4).unwrap(),
            vec![true, true, false, true]
        );
    }

    #[test]
    fn faults_affect_magic_results() {
        let mut x = bar(3, 1);
        x.inject_fault(0, 0, Some(Fault::StuckAt1)).unwrap();
        // inputs read 1 even after writing 0
        x.write_row(0, 0, &[false]).unwrap();
        x.init_region(&Region::new(2..3, 0..1)).unwrap();
        x.nor_rows(&[0, 1], 2, 0..1, true).unwrap();
        assert!(!x.read_cell(2, 0).unwrap(), "stuck-1 input forces NOR to 0");
    }

    #[test]
    fn wear_counting() {
        let mut x = bar(2, 2);
        x.write_row(0, 0, &[true, true]).unwrap();
        x.init_region(&Region::new(1..2, 0..2)).unwrap();
        x.nor_rows(&[0], 1, 0..2, true).unwrap();
        assert_eq!(x.cell(0, 0).unwrap().writes(), 1); // written once
        assert_eq!(x.cell(1, 0).unwrap().writes(), 2); // init + magic drive
        x.reset_wear();
        assert_eq!(x.cell(1, 0).unwrap().writes(), 0);
    }

    #[test]
    fn practical_dimension_check() {
        let x = bar(4, 8);
        assert!(x.check_practical_dimensions().is_ok());
        let long = bar(1, crate::PRACTICAL_LINE_LIMIT + 1);
        assert!(long.check_practical_dimensions().is_err());
    }

    #[test]
    fn render_region_shows_bits() {
        let mut x = bar(2, 3);
        x.write_row(0, 0, &[true, false, true]).unwrap();
        let s = x.render_region(&Region::new(0..2, 0..3));
        assert_eq!(s, "101\n000\n");
    }

    // ---- backend equivalence ----

    /// Drives the same op soup on both backends, returning the pair.
    fn twin_run(rows: usize, cols: usize, f: impl Fn(&mut Crossbar)) -> (Crossbar, Crossbar) {
        let mut packed = Crossbar::with_backend(rows, cols, BackendKind::Packed).unwrap();
        let mut scalar = Crossbar::with_backend(rows, cols, BackendKind::Scalar).unwrap();
        f(&mut packed);
        f(&mut scalar);
        (packed, scalar)
    }

    #[test]
    fn backends_agree_on_mixed_ops() {
        let (packed, scalar) = twin_run(4, 130, |x| {
            let pattern: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
            x.write_row(0, 0, &pattern).unwrap();
            x.write_row(1, 5, &pattern[..100]).unwrap();
            x.init_region(&Region::new(2..4, 0..130)).unwrap();
            x.nor_rows(&[0, 1], 2, 3..120, true).unwrap();
            x.shift_row(2, 0..130, 7).unwrap();
            x.shift_row_to(2, 3, 10..80, -3, true).unwrap();
            x.nor_cols(&[0, 64, 129], 65, 0..4, false).unwrap();
            x.reset_region(&Region::new(0..1, 60..70)).unwrap();
        });
        assert_eq!(packed.backend_kind(), BackendKind::Packed);
        assert_eq!(scalar.backend_kind(), BackendKind::Scalar);
        assert_eq!(packed, scalar, "cross-backend semantic equality");
        for r in 0..4 {
            assert_eq!(
                packed.read_row_bits(r, 0..130).unwrap(),
                scalar.read_row_bits(r, 0..130).unwrap()
            );
            for c in 0..130 {
                assert_eq!(
                    packed.cell(r, c).unwrap().writes(),
                    scalar.cell(r, c).unwrap().writes(),
                    "wear at ({r},{c})"
                );
            }
        }
        assert_eq!(packed.wear_summary(), scalar.wear_summary());
    }

    #[test]
    fn backends_agree_on_strict_failure_prefix() {
        // Output row initialized only on [0, 70): strict NOR over
        // 0..100 fails at column 70, after driving (and wearing)
        // exactly the first 70 columns — on both backends.
        let (packed, scalar) = twin_run(3, 128, |x| {
            x.write_row(0, 0, &[true; 128]).unwrap();
            x.init_region(&Region::new(2..3, 0..70)).unwrap();
            let err = x.nor_rows(&[0, 1], 2, 0..100, true).unwrap_err();
            assert_eq!(
                err,
                CrossbarError::OutputNotInitialized { row: 2, col: 70 }
            );
        });
        assert_eq!(packed, scalar);
        assert_eq!(packed.cell(2, 69).unwrap().writes(), 2, "driven before the failure");
        assert_eq!(packed.cell(2, 70).unwrap().writes(), 0, "failing column untouched");
    }

    #[test]
    fn backends_agree_under_faults() {
        let (packed, scalar) = twin_run(3, 80, |x| {
            x.inject_fault(0, 66, Some(Fault::StuckAt1)).unwrap();
            x.inject_fault(2, 3, Some(Fault::StuckAt0)).unwrap();
            x.write_row(0, 0, &[false; 80]).unwrap();
            x.init_region(&Region::new(2..3, 0..80)).unwrap();
            x.nor_rows(&[0], 2, 0..80, false).unwrap();
            x.inject_fault(0, 66, None).unwrap();
        });
        assert_eq!(packed, scalar);
        // Stuck-at-1 input pulls NOR to 0 at column 66 only.
        assert!(packed.read_cell(2, 65).unwrap());
        assert!(!packed.read_cell(2, 66).unwrap());
        // The stuck-at-0 output stays 0 but wears.
        assert!(!packed.read_cell(2, 3).unwrap());
        assert_eq!(packed.cell(2, 3).unwrap().writes(), 2);
    }

    #[test]
    fn read_row_into_reuses_buffer() {
        let mut x = bar(2, 70);
        x.write_row(0, 64, &[true, false, true]).unwrap();
        let mut buf = vec![true; 5];
        x.read_row_into(0, 63..68, &mut buf).unwrap();
        assert_eq!(buf, vec![false, true, false, true, false]);
        assert!(x.read_row_into(0, 60..80, &mut buf).is_err());
    }

    #[test]
    fn word_level_read_write_both_backends() {
        for kind in [BackendKind::Scalar, BackendKind::Packed] {
            let mut x = Crossbar::with_backend(2, 150, kind).unwrap();
            let words = [0xAAAA_5555_F0F0_0F0Fu64, 0x1234_5678_9ABC_DEF0];
            x.write_row_words(1, 17, &words, 101).unwrap();
            let mut back = Vec::new();
            x.read_row_words(1, 17..118, &mut back).unwrap();
            let mut expect = words.to_vec();
            crate::packed::mask_tail(&mut expect, 101);
            assert_eq!(back, expect, "{kind:?}");
            // Bit view agrees with word view.
            let bits = x.read_row_bits(1, 17..118).unwrap();
            for (j, &b) in bits.iter().enumerate() {
                assert_eq!(b, (expect[j / 64] >> (j % 64)) & 1 == 1);
            }
            // Every written cell wore exactly once.
            assert_eq!(x.cell(1, 17).unwrap().writes(), 1);
            assert_eq!(x.cell(1, 117).unwrap().writes(), 1);
            assert_eq!(x.cell(1, 16).unwrap().writes(), 0);
        }
    }

    #[test]
    fn default_backend_is_packed_and_scalar_opt_in_works() {
        // The env override is read once per process, so only assert
        // the constructors' explicit behaviour here.
        assert_eq!(
            Crossbar::new_scalar(1, 1).unwrap().backend_kind(),
            BackendKind::Scalar
        );
        assert_eq!(
            Crossbar::with_backend(1, 1, BackendKind::Packed)
                .unwrap()
                .backend_kind(),
            BackendKind::Packed
        );
    }
}
