//! Lane-transposed (bit-sliced) crossbar backend: 64 multiplies per
//! MAGIC program.
//!
//! Where the packed backend stores 64 *columns* of one instance per
//! `u64` word, the sliced backend transposes the axes: one word per
//! **cell**, and bit `l` of that word is the cell's value in batch
//! *lane* `l` — an independent problem instance. Every MAGIC NOR,
//! init/reset wave or periphery shift then executes all lanes of a
//! column in one bitwise word op, so a single compiled program carries
//! up to [`MAX_LANES`] multiplications in the same `O(cells)` work.
//!
//! Accounting is defined **per lane** so a batch is observationally
//! indistinguishable from 64 solo arrays running in lockstep:
//!
//! * data-oblivious operations (the whole Kogge-Stone/precompute
//!   program surface) wear every lane identically and land in a shared
//!   `uniform` [`WearPlane`];
//! * data-*dependent* writes (the MultPIM shift-add, which only fires
//!   for lanes whose multiplier bit is set) go through
//!   [`SlicedPlanes::write_lanes_masked`], which records one
//!   `(range, lane-mask)` wear entry instead of per-cell counters;
//! * stuck-at faults are per-lane bit masks (`sa0`/`sa1`), lazily
//!   allocated like the packed backend's.
//!
//! Single-instance entry points (plain `write_row`, `read_cell`, …)
//! broadcast to all lanes on write and observe **lane 0** on read, so
//! generic code keeps working and a 1-lane sliced array behaves like a
//! scalar one.
//!
//! The value plane is recycled through a small thread-local arena
//! ([`arena`]) so per-batch construction does not pay a large
//! allocation per stage.

use crate::cell::{Cell, Fault};
use crate::geometry::ColRange;
use crate::wear::WearPlane;

/// Maximum batch lanes a sliced array carries: the word width.
pub(crate) const MAX_LANES: usize = 64;

/// Thread-local recycler for value/fault planes: `multiply_batch`
/// builds three stage arrays per call, and without recycling each
/// would pay a fresh multi-hundred-KiB allocation.
mod arena {
    use std::cell::RefCell;

    /// Retained buffers per thread — enough for the three stage
    /// arrays of a batch multiplier plus headroom.
    const POOL_CAP: usize = 8;

    thread_local! {
        static POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn take(len: usize) -> Vec<u64> {
        POOL.with(|p| {
            if let Some(mut v) = p.borrow_mut().pop() {
                v.clear();
                v.resize(len, 0);
                return v;
            }
            vec![0; len]
        })
    }

    pub(super) fn give(v: Vec<u64>) {
        if v.capacity() == 0 {
            return;
        }
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < POOL_CAP {
                pool.push(v);
            }
        });
    }
}

/// One lane-masked wear increment: +1 write pulse on columns
/// `[start, end)` of a row, for every lane whose bit is set in `mask`.
#[derive(Debug, Clone, Copy)]
struct MaskedWear {
    start: u32,
    end: u32,
    mask: u64,
}

/// The sliced backend's planes for a rows × cols × lanes array.
#[derive(Debug)]
pub(crate) struct SlicedPlanes {
    rows: usize,
    cols: usize,
    lanes: usize,
    /// One word per cell (row-major); bit `l` = lane `l`'s raw value.
    value: Vec<u64>,
    /// Per-lane stuck-at-0 masks; empty until a fault is injected.
    sa0: Vec<u64>,
    /// Per-lane stuck-at-1 masks; empty until a fault is injected.
    sa1: Vec<u64>,
    /// Wear of operations that pulse every lane identically.
    uniform: WearPlane,
    /// Lane-masked wear entries, per row, applied after `uniform`.
    masked: Vec<Vec<MaskedWear>>,
}

impl Clone for SlicedPlanes {
    fn clone(&self) -> Self {
        SlicedPlanes {
            rows: self.rows,
            cols: self.cols,
            lanes: self.lanes,
            value: self.value.clone(),
            sa0: self.sa0.clone(),
            sa1: self.sa1.clone(),
            uniform: self.uniform.clone(),
            masked: self.masked.clone(),
        }
    }
}

impl Drop for SlicedPlanes {
    fn drop(&mut self) {
        arena::give(std::mem::take(&mut self.value));
    }
}

impl SlicedPlanes {
    pub(crate) fn new(rows: usize, cols: usize, lanes: usize) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "sliced backend carries 1..={MAX_LANES} lanes, got {lanes}"
        );
        SlicedPlanes {
            rows,
            cols,
            lanes,
            value: arena::take(rows * cols),
            sa0: Vec::new(),
            sa1: Vec::new(),
            uniform: WearPlane::new(rows, cols),
            masked: vec![Vec::new(); rows],
        }
    }

    /// Number of active lanes (1..=64).
    pub(crate) fn lanes(&self) -> usize {
        self.lanes
    }

    /// Bit mask selecting the active lanes.
    pub(crate) fn active_mask(&self) -> u64 {
        if self.lanes == MAX_LANES {
            u64::MAX
        } else {
            (1u64 << self.lanes) - 1
        }
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    /// Sense-amplifier view of one cell word, fault-adjusted per lane.
    #[inline]
    pub(crate) fn read_word(&self, row: usize, col: usize) -> u64 {
        let i = self.idx(row, col);
        let v = self.value[i];
        if self.sa0.is_empty() {
            v
        } else {
            (v | self.sa1[i]) & !self.sa0[i]
        }
    }

    /// Lanes of a cell that host any stuck-at fault.
    #[inline]
    fn fault_word(&self, row: usize, col: usize) -> u64 {
        if self.sa0.is_empty() {
            0
        } else {
            let i = self.idx(row, col);
            self.sa0[i] | self.sa1[i]
        }
    }

    // ---- single-instance (lane 0) views ----

    pub(crate) fn read_bit(&self, row: usize, col: usize) -> bool {
        self.read_word(row, col) & 1 == 1
    }

    pub(crate) fn cell(&self, row: usize, col: usize) -> Cell {
        self.lane_cell(0, row, col)
    }

    pub(crate) fn read_into(&self, row: usize, cols: ColRange, out: &mut Vec<bool>) {
        out.clear();
        out.reserve(cols.len());
        for col in cols {
            out.push(self.read_word(row, col) & 1 == 1);
        }
    }

    pub(crate) fn read_words_into(&self, row: usize, cols: ColRange, out: &mut Vec<u64>) {
        let len = cols.len();
        out.clear();
        out.resize(len.div_ceil(64), 0);
        for (j, col) in cols.enumerate() {
            if self.read_word(row, col) & 1 == 1 {
                out[j / 64] |= 1 << (j % 64);
            }
        }
    }

    // ---- lane-aware I/O ----

    pub(crate) fn lane_fault_at(&self, lane: usize, row: usize, col: usize) -> Option<Fault> {
        if self.sa0.is_empty() {
            return None;
        }
        let (i, bit) = (self.idx(row, col), 1u64 << lane);
        if self.sa0[i] & bit != 0 {
            Some(Fault::StuckAt0)
        } else if self.sa1[i] & bit != 0 {
            Some(Fault::StuckAt1)
        } else {
            None
        }
    }

    /// The [`Cell`] view of one lane of one cell: raw value, exact
    /// per-lane wear, per-lane fault.
    pub(crate) fn lane_cell(&self, lane: usize, row: usize, col: usize) -> Cell {
        let raw = (self.value[self.idx(row, col)] >> lane) & 1 == 1;
        Cell::from_parts(raw, self.lane_writes_at(lane, row, col), self.lane_fault_at(lane, row, col))
    }

    /// Reads one lane's bits of `row` over `cols`.
    pub(crate) fn read_lane_into(&self, lane: usize, row: usize, cols: ColRange, out: &mut Vec<bool>) {
        out.clear();
        out.reserve(cols.len());
        for col in cols {
            out.push((self.read_word(row, col) >> lane) & 1 == 1);
        }
    }

    /// Reads the per-column lane words of `row` over `cols`,
    /// fault-adjusted — the bulk sense path of the batch shift-add.
    pub(crate) fn read_lane_words(&self, row: usize, cols: ColRange, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(cols.len());
        let base = self.idx(row, 0);
        let slice = &self.value[base + cols.start..base + cols.end];
        if self.sa0.is_empty() {
            out.extend_from_slice(slice);
        } else {
            let sa0 = &self.sa0[base + cols.start..base + cols.end];
            let sa1 = &self.sa1[base + cols.start..base + cols.end];
            for j in 0..slice.len() {
                out.push((slice[j] | sa1[j]) & !sa0[j]);
            }
        }
    }

    /// Writes one lane word per column, all lanes at once, with one
    /// uniform wear pulse per cell — the transposed counterpart of
    /// `write_row_words`. Fault lanes keep their value but still wear.
    pub(crate) fn write_lanes(&mut self, row: usize, col_offset: usize, lane_words: &[u64]) {
        if self.sa0.is_empty() {
            let base = self.idx(row, col_offset);
            self.value[base..base + lane_words.len()].copy_from_slice(lane_words);
        } else {
            for (j, &w) in lane_words.iter().enumerate() {
                let col = col_offset + j;
                let keep = self.fault_word(row, col);
                let i = self.idx(row, col);
                self.value[i] = (self.value[i] & keep) | (w & !keep);
            }
        }
        self.uniform
            .add(row, col_offset..col_offset + lane_words.len(), 1);
    }

    /// Writes one lane word per column for the lanes selected by
    /// `mask` only; unselected lanes keep both value and wear. Fault
    /// lanes inside the mask keep their value but still wear. Records
    /// one lane-masked wear entry for the span.
    pub(crate) fn write_lanes_masked(
        &mut self,
        row: usize,
        col_offset: usize,
        lane_words: &[u64],
        mask: u64,
    ) {
        if mask == 0 || lane_words.is_empty() {
            return;
        }
        if self.sa0.is_empty() {
            for (j, &w) in lane_words.iter().enumerate() {
                let i = self.idx(row, col_offset + j);
                self.value[i] = (self.value[i] & !mask) | (w & mask);
            }
        } else {
            for (j, &w) in lane_words.iter().enumerate() {
                let col = col_offset + j;
                let m = mask & !self.fault_word(row, col);
                let i = self.idx(row, col);
                self.value[i] = (self.value[i] & !m) | (w & m);
            }
        }
        self.masked[row].push(MaskedWear {
            start: col_offset as u32,
            end: (col_offset + lane_words.len()) as u32,
            mask,
        });
    }

    // ---- split bookkeeping (batch fast-path shortcuts) ----
    //
    // A batch fast path that computes final cell values in the
    // controller still has to account wear pulse for pulse. These
    // entry points split a write into its two effects: wear without
    // value change, and value change without wear. Composing them in
    // the same spans/masks as the writes they replace leaves every
    // per-lane observable (value, write count, endurance) identical.

    /// Adds `pulses` write pulses of wear to every lane of every cell
    /// in the span, leaving values untouched.
    pub(crate) fn wear_uniform(&mut self, row: usize, cols: ColRange, pulses: u64) {
        self.uniform.add(row, cols, pulses);
    }

    /// Records one masked wear pulse over the span — the wear half of
    /// [`SlicedPlanes::write_lanes_masked`] — without touching values.
    pub(crate) fn wear_masked(&mut self, row: usize, cols: ColRange, mask: u64) {
        if mask == 0 || cols.start >= cols.end {
            return;
        }
        self.masked[row].push(MaskedWear {
            start: cols.start as u32,
            end: cols.end as u32,
            mask,
        });
    }

    /// Stores one lane word per column for the lanes in `mask` — the
    /// value half of [`SlicedPlanes::write_lanes_masked`] — without
    /// recording any wear. Fault lanes keep their value.
    pub(crate) fn store_lane_words(
        &mut self,
        row: usize,
        col_offset: usize,
        words: &[u64],
        mask: u64,
    ) {
        if mask == 0 {
            return;
        }
        if self.sa0.is_empty() {
            let base = self.idx(row, col_offset);
            for (v, &w) in self.value[base..base + words.len()].iter_mut().zip(words) {
                *v = (*v & !mask) | (w & mask);
            }
        } else {
            for (j, &w) in words.iter().enumerate() {
                let col = col_offset + j;
                let m = mask & !self.fault_word(row, col);
                let i = self.idx(row, col);
                self.value[i] = (self.value[i] & !m) | (w & m);
            }
        }
    }

    // ---- broadcast writes (single-instance entry points) ----

    pub(crate) fn write_bits(&mut self, row: usize, col_offset: usize, bits: &[bool]) {
        for (j, &b) in bits.iter().enumerate() {
            let col = col_offset + j;
            let word = if b { u64::MAX } else { 0 };
            let keep = self.fault_word(row, col);
            let i = self.idx(row, col);
            self.value[i] = (self.value[i] & keep) | (word & !keep);
        }
        self.uniform.add(row, col_offset..col_offset + bits.len(), 1);
    }

    pub(crate) fn write_words(&mut self, row: usize, col_offset: usize, words: &[u64], len: usize) {
        for j in 0..len {
            let bit = (words.get(j / 64).copied().unwrap_or(0) >> (j % 64)) & 1 == 1;
            let col = col_offset + j;
            let word = if bit { u64::MAX } else { 0 };
            let keep = self.fault_word(row, col);
            let i = self.idx(row, col);
            self.value[i] = (self.value[i] & keep) | (word & !keep);
        }
        self.uniform.add(row, col_offset..col_offset + len, 1);
    }

    /// Parallel set/reset wave: every lane of every cell in the region
    /// is pulsed to `value`.
    pub(crate) fn fill(&mut self, rows: std::ops::Range<usize>, cols: ColRange, value: bool) {
        let word = if value { u64::MAX } else { 0 };
        for row in rows {
            let base = self.idx(row, 0);
            if self.sa0.is_empty() {
                let slice = &mut self.value[base + cols.start..base + cols.end];
                let mut chunks = slice.chunks_exact_mut(4);
                for c in &mut chunks {
                    c[0] = word;
                    c[1] = word;
                    c[2] = word;
                    c[3] = word;
                }
                for c in chunks.into_remainder() {
                    *c = word;
                }
            } else {
                for col in cols.clone() {
                    let keep = self.fault_word(row, col);
                    let i = base + col;
                    self.value[i] = (self.value[i] & keep) | (word & !keep);
                }
            }
            self.uniform.add(row, cols.clone(), 1);
        }
    }

    // ---- MAGIC ----

    /// First column in `cols` where any *active* lane of `row` reads 0
    /// — the strict-init scan for MAGIC outputs.
    fn first_uninit(&self, row: usize, cols: &ColRange) -> Option<usize> {
        let active = self.active_mask();
        if self.sa0.is_empty() {
            // Fault-free fast path: scan the raw plane slice directly.
            let base = self.idx(row, 0);
            let slice = &self.value[base + cols.start..base + cols.end];
            return slice
                .iter()
                .position(|&v| v & active != active)
                .map(|j| cols.start + j);
        }
        cols.clone()
            .find(|&col| self.read_word(row, col) & active != active)
    }

    /// MAGIC NOR across rows, all lanes of each column in one word op.
    /// Strict-init failures follow the scalar loop's column order: the
    /// first column where **any active lane's** output cell is not
    /// initialized fails the op after the preceding columns have been
    /// driven and worn; `Err(col)` is returned.
    pub(crate) fn nor_rows(
        &mut self,
        inputs: &[usize],
        out: usize,
        cols: ColRange,
        strict: bool,
    ) -> Result<(), usize> {
        let fail_col = if strict { self.first_uninit(out, &cols) } else { None };
        let drive = cols.start..fail_col.unwrap_or(cols.end);
        if drive.start < drive.end {
            if self.sa0.is_empty() && (inputs.len() == 1 || inputs.len() == 2) {
                // Fault-free fast path: disjoint row slices, u64×4
                // chunked pull-down.
                let cols_n = self.cols;
                let in_a = inputs[0];
                let in_b = *inputs.last().expect("non-empty");
                let span = drive.len();
                let (before, rest) = self.value.split_at_mut(out * cols_n);
                let (out_row, after) = rest.split_at_mut(cols_n);
                let pick = |r: usize| -> &[u64] {
                    if r < out {
                        &before[r * cols_n + drive.start..r * cols_n + drive.end]
                    } else {
                        let b = (r - out - 1) * cols_n;
                        &after[b + drive.start..b + drive.end]
                    }
                };
                let (a, b) = (pick(in_a), pick(in_b));
                let o = &mut out_row[drive.clone()];
                let mut i = 0;
                while i + 4 <= span {
                    o[i] &= !(a[i] | b[i]);
                    o[i + 1] &= !(a[i + 1] | b[i + 1]);
                    o[i + 2] &= !(a[i + 2] | b[i + 2]);
                    o[i + 3] &= !(a[i + 3] | b[i + 3]);
                    i += 4;
                }
                while i < span {
                    o[i] &= !(a[i] | b[i]);
                    i += 1;
                }
            } else {
                for col in drive.clone() {
                    let mut any = 0u64;
                    for &r in inputs {
                        any |= self.read_word(r, col);
                    }
                    let pulldown = any & !self.fault_word(out, col);
                    let i = self.idx(out, col);
                    self.value[i] &= !pulldown;
                }
            }
            self.uniform.add(out, drive, 1);
        }
        match fail_col {
            Some(col) => Err(col),
            None => Ok(()),
        }
    }

    /// MAGIC NOR along rows (column-oriented): all lanes of a row's
    /// output cell in one word op, rows in scalar-loop order.
    /// `Err(row)` when any active lane's output cell is uninitialized.
    pub(crate) fn nor_cols(
        &mut self,
        in_cols: &[usize],
        out_col: usize,
        rows: std::ops::Range<usize>,
        strict: bool,
    ) -> Result<(), usize> {
        let active = self.active_mask();
        for row in rows {
            let mut any = 0u64;
            for &c in in_cols {
                any |= self.read_word(row, c);
            }
            if strict && self.read_word(row, out_col) & active != active {
                return Err(row);
            }
            self.drive_word(row, out_col, any);
        }
        Ok(())
    }

    /// Partitioned MAGIC NOR; iteration order matches the scalar loop.
    /// `Err((row, col))` on a strict-init failure of any active lane.
    pub(crate) fn nor_cols_partitioned(
        &mut self,
        rows: std::ops::Range<usize>,
        cols: ColRange,
        part_width: usize,
        in_offsets: &[usize],
        out_offset: usize,
        strict: bool,
    ) -> Result<(), (usize, usize)> {
        let active = self.active_mask();
        for row in rows {
            for base in (cols.start..cols.end).step_by(part_width) {
                let mut any = 0u64;
                for &off in in_offsets {
                    any |= self.read_word(row, base + off);
                }
                if strict && self.read_word(row, base + out_offset) & active != active {
                    return Err((row, base + out_offset));
                }
                self.drive_word(row, base + out_offset, any);
            }
        }
        Ok(())
    }

    /// MAGIC pull-down of all lanes of one cell: lanes whose gate
    /// result is 0 (`any` bit set) move towards 0; fault lanes keep
    /// their value; every lane wears.
    fn drive_word(&mut self, row: usize, col: usize, any: u64) {
        let pulldown = any & !self.fault_word(row, col);
        let i = self.idx(row, col);
        self.value[i] &= !pulldown;
        self.uniform.add(row, col..col + 1, 1);
    }

    /// Periphery shift: every lane's bits move `offset` columns inside
    /// the window (fill broadcast to all lanes), written back through
    /// the per-lane fault masks with one wear pulse per cell.
    pub(crate) fn shift(
        &mut self,
        src: usize,
        dst: usize,
        cols: ColRange,
        offset: isize,
        fill: bool,
    ) {
        let len = cols.len();
        let fill_word = if fill { u64::MAX } else { 0 };
        let mut buf = vec![0u64; len];
        let k = offset.unsigned_abs();
        for (j, slot) in buf.iter_mut().enumerate() {
            let src_j = if offset >= 0 {
                if j < k { None } else { Some(j - k) }
            } else {
                if j + k < len { Some(j + k) } else { None }
            };
            *slot = match src_j {
                Some(s) => self.read_word(src, cols.start + s),
                None => fill_word,
            };
        }
        for (j, &w) in buf.iter().enumerate() {
            let col = cols.start + j;
            let keep = self.fault_word(dst, col);
            let i = self.idx(dst, col);
            self.value[i] = (self.value[i] & keep) | (w & !keep);
        }
        self.uniform.add(dst, cols, 1);
    }

    // ---- faults ----

    fn ensure_fault_planes(&mut self) {
        if self.sa0.is_empty() {
            self.sa0 = vec![0; self.value.len()];
            self.sa1 = vec![0; self.value.len()];
        }
    }

    /// Injects (or clears) a stuck-at fault on **every active lane** of
    /// a cell — the single-instance entry point.
    pub(crate) fn set_fault(&mut self, row: usize, col: usize, fault: Option<Fault>) {
        if self.sa0.is_empty() && fault.is_none() {
            return;
        }
        self.ensure_fault_planes();
        let (i, m) = (self.idx(row, col), self.active_mask());
        self.sa0[i] &= !m;
        self.sa1[i] &= !m;
        match fault {
            Some(Fault::StuckAt0) => self.sa0[i] |= m,
            Some(Fault::StuckAt1) => self.sa1[i] |= m,
            None => {}
        }
    }

    /// Injects (or clears) a stuck-at fault on one lane of a cell.
    pub(crate) fn set_fault_lane(&mut self, lane: usize, row: usize, col: usize, fault: Option<Fault>) {
        if self.sa0.is_empty() && fault.is_none() {
            return;
        }
        self.ensure_fault_planes();
        let (i, bit) = (self.idx(row, col), 1u64 << lane);
        self.sa0[i] &= !bit;
        self.sa1[i] &= !bit;
        match fault {
            Some(Fault::StuckAt0) => self.sa0[i] |= bit,
            Some(Fault::StuckAt1) => self.sa1[i] |= bit,
            None => {}
        }
    }

    /// `true` when no active lane of `row` in `cols` has a fault.
    pub(crate) fn region_fault_free(&self, row: usize, cols: ColRange) -> bool {
        if self.sa0.is_empty() {
            return true;
        }
        let active = self.active_mask();
        cols.into_iter()
            .all(|c| self.fault_word(row, c) & active == 0)
    }

    // ---- wear ----

    /// Exact write count of one lane of one cell: uniform pulses plus
    /// every masked entry covering the column with the lane selected.
    pub(crate) fn lane_writes_at(&self, lane: usize, row: usize, col: usize) -> u64 {
        let bit = 1u64 << lane;
        let col32 = col as u32;
        self.uniform.writes_at(row, col)
            + self.masked[row]
                .iter()
                .filter(|e| e.start <= col32 && col32 < e.end && e.mask & bit != 0)
                .count() as u64
    }

    /// `(max, total, touched)` per-cell write statistics of **all**
    /// lanes in one sweep — `out` must hold `MAX_LANES` slots (only
    /// the active ones are meaningful). Uniform wear contributes to
    /// every lane; masked entries through an event sweep over entry
    /// boundaries, so each row costs O(entries · (log entries + lanes))
    /// instead of O(lanes · cols): per-lane wear is constant between
    /// boundaries, letting whole segments fold into the statistics at
    /// once.
    pub(crate) fn lane_wear_stats_all(&self) -> Vec<(u64, u64, usize)> {
        let mut out = vec![(0u64, 0u64, 0usize); MAX_LANES];
        let mut events: Vec<(u32, u64, i32)> = Vec::new();
        let mut uni_segs: Vec<(usize, u64)> = Vec::new();
        for row in 0..self.rows {
            let entries = &self.masked[row];
            if entries.is_empty() {
                // Uniform-only rows wear every lane identically.
                self.uniform.for_each_segment(row, |w, n| {
                    if w > 0 {
                        for s in out.iter_mut() {
                            s.0 = s.0.max(w);
                            s.1 += w * n as u64;
                            s.2 += n;
                        }
                    }
                });
                continue;
            }
            uni_segs.clear();
            let mut c = 0usize;
            self.uniform.for_each_segment(row, |w, n| {
                uni_segs.push((c, w));
                c += n;
            });
            events.clear();
            events.reserve(entries.len() * 2);
            for e in entries {
                events.push((e.start, e.mask, 1));
                events.push((e.end, e.mask, -1));
            }
            events.sort_unstable_by_key(|&(col, _, _)| col);

            let mut count = [0i32; MAX_LANES];
            let mut covered = 0i32; // active entries; 0 ⇒ all counts are 0
            let (mut ei, mut ui) = (0usize, 0usize);
            let mut col = 0usize;
            while col < self.cols {
                while ei < events.len() && events[ei].0 as usize == col {
                    let (_, mask, delta) = events[ei];
                    let mut m = mask;
                    while m != 0 {
                        count[m.trailing_zeros() as usize] += delta;
                        m &= m - 1;
                    }
                    covered += delta;
                    ei += 1;
                }
                while ui + 1 < uni_segs.len() && uni_segs[ui + 1].0 <= col {
                    ui += 1;
                }
                let u = uni_segs[ui].1;
                let next_event = events
                    .get(ei)
                    .map_or(self.cols, |&(c, _, _)| c as usize);
                let next_uni = uni_segs
                    .get(ui + 1)
                    .map_or(self.cols, |&(c, _)| c);
                let next = next_event.min(next_uni).min(self.cols);
                let len = next - col;
                if covered == 0 {
                    // Purely uniform span — every lane moves in lockstep.
                    if u > 0 {
                        for s in out.iter_mut() {
                            s.0 = s.0.max(u);
                            s.1 += u * len as u64;
                            s.2 += len;
                        }
                    }
                } else {
                    for (lane, s) in out.iter_mut().enumerate() {
                        let w = u + count[lane] as u64;
                        if w > 0 {
                            s.0 = s.0.max(w);
                            s.1 += w * len as u64;
                            s.2 += len;
                        }
                    }
                }
                col = next;
            }
        }
        out
    }

    /// `(max, total, touched)` of one lane.
    pub(crate) fn lane_wear_stats(&self, lane: usize) -> (u64, u64, usize) {
        self.lane_wear_stats_all()[lane]
    }

    /// Lane-0 wear statistics — what the generic
    /// [`crate::EnduranceReport::from_array`] observes on a sliced
    /// array.
    pub(crate) fn wear_stats(&self) -> (u64, u64, usize) {
        if self.masked.iter().all(Vec::is_empty) {
            let (mut max, mut total, mut touched) = (0u64, 0u64, 0usize);
            for row in 0..self.rows {
                self.uniform.for_each_segment(row, |w, n| {
                    if w > 0 {
                        max = max.max(w);
                        total += w * n as u64;
                        touched += n;
                    }
                });
            }
            (max, total, touched)
        } else {
            self.lane_wear_stats(0)
        }
    }

    pub(crate) fn reset_wear(&mut self) {
        self.uniform.reset();
        for m in &mut self.masked {
            m.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_independent_on_write_and_read() {
        let mut p = SlicedPlanes::new(2, 8, 64);
        p.write_lanes(0, 2, &[0b01, 0b10, u64::MAX]);
        assert!(p.read_lane_into_collect(0, 0, 2..5) == vec![true, false, true]);
        assert!(p.read_lane_into_collect(1, 0, 2..5) == vec![false, true, true]);
        assert!(p.read_lane_into_collect(63, 0, 2..5) == vec![false, false, true]);
        // Lane-0 view matches the generic read path.
        assert!(p.read_bit(0, 2));
        assert!(!p.read_bit(0, 3));
    }

    impl SlicedPlanes {
        fn read_lane_into_collect(&self, lane: usize, row: usize, cols: ColRange) -> Vec<bool> {
            let mut v = Vec::new();
            self.read_lane_into(lane, row, cols, &mut v);
            v
        }
    }

    #[test]
    fn broadcast_write_reaches_every_lane() {
        let mut p = SlicedPlanes::new(1, 4, 64);
        p.write_bits(0, 0, &[true, false, true, true]);
        for lane in [0, 1, 31, 63] {
            assert_eq!(
                p.read_lane_into_collect(lane, 0, 0..4),
                vec![true, false, true, true],
                "lane {lane}"
            );
        }
    }

    #[test]
    fn masked_write_leaves_unselected_lanes_untouched() {
        let mut p = SlicedPlanes::new(1, 4, 64);
        p.write_lanes(0, 0, &[u64::MAX; 4]);
        // Flip lanes 1 and 3 to zero on columns 1..3.
        p.write_lanes_masked(0, 1, &[0, 0], 0b1010);
        assert_eq!(p.read_lane_into_collect(0, 0, 0..4), vec![true; 4]);
        assert_eq!(
            p.read_lane_into_collect(1, 0, 0..4),
            vec![true, false, false, true]
        );
        assert_eq!(
            p.read_lane_into_collect(3, 0, 0..4),
            vec![true, false, false, true]
        );
        // Wear: masked lanes +1 on the span, others untouched by it.
        assert_eq!(p.lane_writes_at(1, 0, 1), 2);
        assert_eq!(p.lane_writes_at(0, 0, 1), 1);
        assert_eq!(p.lane_writes_at(1, 0, 0), 1);
    }

    #[test]
    fn nor_rows_is_lanewise() {
        let mut p = SlicedPlanes::new(3, 2, 64);
        // lane 0: inputs (1, 0) → NOR 0; lane 1: inputs (0, 0) → NOR 1.
        p.write_lanes(0, 0, &[0b01, 0b00]);
        p.write_lanes(1, 0, &[0b00, 0b00]);
        p.fill(2..3, 0..2, true);
        p.nor_rows(&[0, 1], 2, 0..2, true).unwrap();
        assert_eq!(p.read_lane_into_collect(0, 2, 0..2), vec![false, true]);
        assert_eq!(p.read_lane_into_collect(1, 2, 0..2), vec![true, true]);
    }

    #[test]
    fn strict_failure_prefix_and_active_mask() {
        let mut p = SlicedPlanes::new(2, 8, 2);
        // Initialize only columns 0..5 of the output row.
        p.fill(1..2, 0..5, true);
        let err = p.nor_rows(&[0], 1, 0..8, true).unwrap_err();
        assert_eq!(err, 5);
        // Prefix driven and worn (fill + drive), failing column only filled... not at all.
        assert_eq!(p.lane_writes_at(0, 1, 4), 2);
        assert_eq!(p.lane_writes_at(1, 1, 4), 2);
        assert_eq!(p.lane_writes_at(0, 1, 5), 0);
        // Inactive lanes don't trip the strict check: lane 2+ are zero
        // everywhere, yet columns 0..5 pass because only lanes 0..2 count.
    }

    #[test]
    fn per_lane_faults_pin_reads_and_block_writes() {
        let mut p = SlicedPlanes::new(1, 4, 64);
        p.set_fault_lane(3, 0, 1, Some(Fault::StuckAt1));
        p.set_fault_lane(5, 0, 1, Some(Fault::StuckAt0));
        p.write_bits(0, 0, &[false, false, false, false]);
        assert!(!p.read_bit(0, 1), "lane 0 unaffected");
        assert!((p.read_word(0, 1) >> 3) & 1 == 1, "lane 3 pinned to 1");
        p.write_lanes(0, 1, &[u64::MAX]);
        assert!((p.read_word(0, 1) >> 5) & 1 == 0, "lane 5 pinned to 0");
        // Clearing reveals the preserved underlying value.
        p.set_fault_lane(3, 0, 1, None);
        assert!((p.value[1] >> 3) & 1 == 0, "write was blocked while faulty");
    }

    #[test]
    fn lane_wear_stats_combine_uniform_and_masked() {
        let mut p = SlicedPlanes::new(1, 4, 64);
        p.write_bits(0, 0, &[true; 4]); // uniform +1 everywhere
        p.write_lanes_masked(0, 0, &[0, 0], 0b1); // lane 0, cols 0..2
        p.write_lanes_masked(0, 1, &[0], 0b1); // lane 0, col 1
        let all = p.lane_wear_stats_all();
        // Lane 0 per column: uniform 1 everywhere, +1 on cols 0..2,
        // +1 more on col 1 ⇒ [2, 3, 1, 1].
        assert_eq!(all[0], (3, 2 + 3 + 1 + 1, 4));
        assert_eq!(all[1], (1, 4, 4));
        assert_eq!(p.lane_writes_at(0, 0, 1), 3);
        assert_eq!(p.lane_writes_at(1, 0, 1), 1);
    }

    #[test]
    fn shift_moves_all_lanes() {
        let mut p = SlicedPlanes::new(2, 4, 64);
        p.write_lanes(0, 0, &[0b01, 0b10, 0b11, 0b00]);
        p.shift(0, 1, 0..4, 1, true);
        // Destination: [fill, src0, src1, src2], fill broadcast 1s.
        assert_eq!(p.read_word(1, 0), u64::MAX);
        assert_eq!(p.read_word(1, 1), 0b01);
        assert_eq!(p.read_word(1, 2), 0b10);
        assert_eq!(p.read_word(1, 3), 0b11);
        // Source untouched.
        assert_eq!(p.read_word(0, 0), 0b01);
    }

    #[test]
    fn arena_recycles_planes() {
        let p = SlicedPlanes::new(4, 16, 8);
        let cap = p.value.capacity();
        drop(p);
        let q = SlicedPlanes::new(4, 16, 8);
        assert_eq!(q.value.capacity(), cap, "value plane came from the arena");
        assert!(q.value.iter().all(|&w| w == 0), "recycled plane is zeroed");
    }
}
