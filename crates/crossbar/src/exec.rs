//! The micro-op executor: runs programs, charges cycles, latches reads.

use crate::array::Crossbar;
use crate::energy::EnergyReport;
use crate::error::{Axis, CrossbarError};
use crate::isa::MicroOp;
use crate::meter::{AttachedMeter, MeterSpec};
use crate::stats::{CycleStats, OpClass};
use cim_trace::{Args, Tracer, TrackId};

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Enforce that MAGIC output cells are initialized to logic 1
    /// before being driven. Catches microcode bugs; on by default.
    pub strict_init: bool,
    /// Record a per-op execution trace (cycle stamps + op summaries);
    /// off by default — tracing long programs costs memory.
    pub record_trace: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            strict_init: true,
            record_trace: false,
        }
    }
}

/// Structured, allocation-free summary of one executed micro-op.
///
/// Captures op kind, target index, and cell span as plain integers —
/// no `String` is built at record time; rendering happens lazily via
/// [`std::fmt::Display`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpTrace {
    /// Row write from the periphery.
    Write {
        /// Target word line.
        row: usize,
        /// Bits written.
        bits: usize,
    },
    /// Row read into the periphery.
    Read {
        /// Word line sensed.
        row: usize,
        /// Cells sensed.
        cells: usize,
    },
    /// Parallel set wave (MAGIC output initialization).
    Init {
        /// First row initialized.
        first_row: usize,
        /// Rows initialized.
        rows: usize,
        /// Cells driven per row.
        width: usize,
    },
    /// Parallel reset wave.
    Reset {
        /// First row reset.
        first_row: usize,
        /// Rows reset.
        rows: usize,
        /// Cells driven per row.
        width: usize,
    },
    /// MAGIC NOR across rows (SIMD over bit lines).
    NorRows {
        /// Input word lines.
        inputs: usize,
        /// Output word line.
        out: usize,
        /// Bit lines computed in parallel.
        cells: usize,
    },
    /// MAGIC NOR along rows (SIMD over word lines).
    NorCols {
        /// Input bit lines.
        inputs: usize,
        /// Output bit line.
        out: usize,
        /// Word lines computed in parallel.
        rows: usize,
    },
    /// Partitioned MAGIC NOR (MultPIM partition parallelism).
    NorPart {
        /// Partition width in columns.
        part_width: usize,
        /// Partitions active simultaneously.
        partitions: usize,
        /// Output offset within each partition.
        out: usize,
        /// Word lines computed in parallel.
        rows: usize,
    },
    /// Periphery shift (read + shift + write back).
    Shift {
        /// Word line read.
        src: usize,
        /// Word line written.
        dst: usize,
        /// Shift distance (positive = towards higher columns).
        offset: isize,
        /// Cells in the shifted window.
        cells: usize,
    },
    /// Co-issue bundle summary. The executor traces each inner op
    /// individually (all stamped at the bundle's start cycle), so this
    /// shape only appears when external tooling summarizes a
    /// [`MicroOp::Parallel`] directly.
    Bundle {
        /// Inner ops co-issued.
        ops: usize,
        /// Cells driven across all inner ops.
        cells: usize,
    },
}

impl OpTrace {
    /// Captures the structured summary of `op` (no heap allocation).
    pub fn of(op: &MicroOp) -> Self {
        match op {
            MicroOp::WriteRow { row, bits, .. } => OpTrace::Write {
                row: *row,
                bits: bits.len(),
            },
            // Same write circuit, same trace shape: a lane-staged write
            // is indistinguishable from a solo row write of the span.
            MicroOp::WriteRowLanes { row, lane_words, .. } => OpTrace::Write {
                row: *row,
                bits: lane_words.len(),
            },
            MicroOp::ReadRow { row, cols } => OpTrace::Read {
                row: *row,
                cells: cols.len(),
            },
            MicroOp::InitRows { rows, cols } => OpTrace::Init {
                first_row: rows.first().copied().unwrap_or(0),
                rows: rows.len(),
                width: cols.len(),
            },
            MicroOp::ResetRegion(r) => OpTrace::Reset {
                first_row: r.rows.start,
                rows: r.rows.len(),
                width: r.cols.len(),
            },
            MicroOp::ResetRows { rows, cols } => OpTrace::Reset {
                first_row: rows.first().copied().unwrap_or(0),
                rows: rows.len(),
                width: cols.len(),
            },
            MicroOp::NorRows { inputs, out, cols } => OpTrace::NorRows {
                inputs: inputs.len(),
                out: *out,
                cells: cols.len(),
            },
            MicroOp::NorCols {
                in_cols,
                out_col,
                rows,
            } => OpTrace::NorCols {
                inputs: in_cols.len(),
                out: *out_col,
                rows: rows.len(),
            },
            MicroOp::NorColsPartitioned {
                rows,
                cols,
                part_width,
                out_offset,
                ..
            } => OpTrace::NorPart {
                part_width: *part_width,
                partitions: if *part_width > 0 {
                    cols.len() / part_width
                } else {
                    0
                },
                out: *out_offset,
                rows: rows.len(),
            },
            MicroOp::Shift {
                src,
                dst,
                offset,
                cols,
                ..
            } => OpTrace::Shift {
                src: *src,
                dst: *dst,
                offset: *offset,
                cells: cols.len(),
            },
            MicroOp::Parallel(inner) => OpTrace::Bundle {
                ops: inner.len(),
                cells: inner.iter().map(|o| OpTrace::of(o).cells()).sum(),
            },
        }
    }

    /// Cycle-accounting class of the op. Bundles report as `Magic`:
    /// co-issue classes are the in-array waves, and MAGIC NORs dominate
    /// every bundle the scheduler emits.
    pub fn class(&self) -> OpClass {
        match self {
            OpTrace::Write { .. } => OpClass::Write,
            OpTrace::Read { .. } => OpClass::Read,
            OpTrace::Init { .. } | OpTrace::Reset { .. } => OpClass::Init,
            OpTrace::NorRows { .. }
            | OpTrace::NorCols { .. }
            | OpTrace::NorPart { .. }
            | OpTrace::Bundle { .. } => OpClass::Magic,
            OpTrace::Shift { .. } => OpClass::Shift,
        }
    }

    /// The axis the op's SIMD parallelism runs along: `Row` for ops
    /// that drive whole word lines, `Col` for column-oriented NORs.
    pub fn axis(&self) -> Axis {
        match self {
            OpTrace::NorCols { .. } | OpTrace::NorPart { .. } => Axis::Col,
            _ => Axis::Row,
        }
    }

    /// Primary target index (output row/column, destination of shift).
    pub fn index(&self) -> usize {
        match self {
            OpTrace::Write { row, .. } | OpTrace::Read { row, .. } => *row,
            OpTrace::Init { first_row, .. } | OpTrace::Reset { first_row, .. } => *first_row,
            OpTrace::NorRows { out, .. }
            | OpTrace::NorCols { out, .. }
            | OpTrace::NorPart { out, .. } => *out,
            OpTrace::Shift { dst, .. } => *dst,
            OpTrace::Bundle { .. } => 0,
        }
    }

    /// Cells the op actively drives or computes (its SIMD occupancy).
    pub fn cells(&self) -> usize {
        match self {
            OpTrace::Write { bits, .. } => *bits,
            OpTrace::Read { cells, .. } => *cells,
            OpTrace::Init { rows, width, .. } | OpTrace::Reset { rows, width, .. } => rows * width,
            OpTrace::NorRows { inputs, cells, .. } => (inputs + 1) * cells,
            OpTrace::NorCols { inputs, rows, .. } => (inputs + 1) * rows,
            OpTrace::NorPart {
                partitions, rows, ..
            } => partitions * rows,
            OpTrace::Shift { cells, .. } => *cells,
            OpTrace::Bundle { cells, .. } => *cells,
        }
    }

    /// Partitions computing simultaneously (1 for non-partitioned ops).
    pub fn partitions(&self) -> usize {
        match self {
            OpTrace::NorPart { partitions, .. } => *partitions,
            _ => 1,
        }
    }

    /// Static event name and argument list for the trace sink.
    fn event(&self) -> (&'static str, Args) {
        match self {
            OpTrace::Write { row, bits } => (
                "write",
                Args::new()
                    .with("row", *row as i64)
                    .with("bits", *bits as i64),
            ),
            OpTrace::Read { row, cells } => (
                "read",
                Args::new()
                    .with("row", *row as i64)
                    .with("cells", *cells as i64),
            ),
            OpTrace::Init { rows, width, .. } => (
                "init",
                Args::new()
                    .with("rows", *rows as i64)
                    .with("width", *width as i64),
            ),
            OpTrace::Reset { rows, width, .. } => (
                "reset",
                Args::new()
                    .with("rows", *rows as i64)
                    .with("width", *width as i64),
            ),
            OpTrace::NorRows { inputs, out, cells } => (
                "nor",
                Args::new()
                    .with("inputs", *inputs as i64)
                    .with("out", *out as i64)
                    .with("cells", *cells as i64),
            ),
            OpTrace::NorCols { inputs, out, rows } => (
                "nor_cols",
                Args::new()
                    .with("inputs", *inputs as i64)
                    .with("out", *out as i64)
                    .with("rows", *rows as i64),
            ),
            OpTrace::NorPart {
                part_width,
                partitions,
                rows,
                ..
            } => (
                "part_nor",
                Args::new()
                    .with("part_width", *part_width as i64)
                    .with("partitions", *partitions as i64)
                    .with("rows", *rows as i64),
            ),
            OpTrace::Shift {
                src, dst, offset, ..
            } => (
                "shift",
                Args::new()
                    .with("src", *src as i64)
                    .with("dst", *dst as i64)
                    .with("offset", *offset as i64),
            ),
            OpTrace::Bundle { ops, cells } => (
                "bundle",
                Args::new()
                    .with("ops", *ops as i64)
                    .with("cells", *cells as i64),
            ),
        }
    }
}

impl std::fmt::Display for OpTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpTrace::Write { row, bits } => write!(f, "write row {row} ({bits} bits)"),
            OpTrace::Read { row, cells } => write!(f, "read row {row} ({cells} cells)"),
            OpTrace::Init {
                first_row,
                rows,
                width,
            } => write!(f, "init {rows} rows from row {first_row} ({width} wide)"),
            OpTrace::Reset {
                first_row,
                rows,
                width,
            } => write!(f, "reset {rows} rows from row {first_row} ({width} wide)"),
            OpTrace::NorRows { inputs, out, cells } => {
                write!(f, "NOR {inputs} rows -> row {out} ({cells} bit lines)")
            }
            OpTrace::NorCols { inputs, out, rows } => {
                write!(f, "NOR {inputs} cols -> col {out} ({rows} word lines)")
            }
            OpTrace::NorPart {
                part_width,
                partitions,
                out,
                rows,
            } => write!(
                f,
                "part-NOR w={part_width} x{partitions} -> +{out} ({rows} rows)"
            ),
            OpTrace::Shift {
                src, dst, offset, ..
            } => write!(f, "shift row {src} by {offset:+} -> row {dst}"),
            OpTrace::Bundle { ops, cells } => {
                write!(f, "co-issue bundle of {ops} ops ({cells} cells)")
            }
        }
    }
}

/// One entry of a recorded execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// First cycle the op occupied (1-based).
    pub cycle: u64,
    /// Cycles the op took.
    pub cycles: u64,
    /// Structured op summary (rendered lazily via `Display`).
    pub op: OpTrace,
}

/// Executes [`MicroOp`] programs against a [`Crossbar`], accumulating
/// [`CycleStats`] and latching `ReadRow` results.
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Executor<'a> {
    array: &'a mut Crossbar,
    config: ExecConfig,
    stats: CycleStats,
    read_buffer: Vec<bool>,
    trace: Vec<TraceEntry>,
    tracer: Tracer,
    track: Option<TrackId>,
    cycle_offset: u64,
    meter: Option<AttachedMeter>,
}

impl<'a> Executor<'a> {
    /// Creates an executor with the default (strict) configuration.
    pub fn new(array: &'a mut Crossbar) -> Self {
        Self::with_config(array, ExecConfig::default())
    }

    /// Creates an executor with an explicit configuration.
    pub fn with_config(array: &'a mut Crossbar, config: ExecConfig) -> Self {
        Executor {
            array,
            config,
            stats: CycleStats::default(),
            read_buffer: Vec::new(),
            trace: Vec::new(),
            tracer: Tracer::disabled(),
            track: None,
            cycle_offset: 0,
            meter: None,
        }
    }

    /// Routes per-op events and occupancy counters to `tracer` on
    /// `track`, stamped with this executor's local cycle counter.
    ///
    /// Tracing is purely observational: cycle statistics, wear counts,
    /// and array contents are identical with or without a tracer.
    pub fn attach_tracer(&mut self, tracer: &Tracer, track: TrackId) {
        self.attach_tracer_at(tracer, track, 0);
    }

    /// Like [`attach_tracer`](Self::attach_tracer), but offsets every
    /// emitted timestamp by `cycle_offset` — used to place a stage's
    /// local cycle 0 at its global position in a pipeline trace.
    pub fn attach_tracer_at(&mut self, tracer: &Tracer, track: TrackId, cycle_offset: u64) {
        self.tracer = tracer.clone();
        self.track = Some(track);
        self.cycle_offset = cycle_offset;
    }

    /// Publishes per-op-class cycle/op counters into the metrics plane
    /// as ops execute. Counter handles are pre-registered here so the
    /// per-op cost is two indexed adds; a disabled hub costs one
    /// branch. Like tracing, metering is purely observational.
    pub fn attach_meter(&mut self, spec: &MeterSpec) {
        self.meter = spec.is_enabled().then(|| AttachedMeter::new(spec));
    }

    /// Publishes the energy breakdown and utilization derived from the
    /// statistics accumulated so far (first-order model: every op
    /// touches `row_width` cells) and returns the report. Without an
    /// attached meter the report is still computed, with default
    /// [`crate::EnergyParams`].
    pub fn publish_energy(&self, row_width: usize) -> EnergyReport {
        match &self.meter {
            Some(m) => m.spec.publish_energy(&self.stats, row_width),
            None => MeterSpec::default().publish_energy(&self.stats, row_width),
        }
    }

    /// Executes one micro-op.
    ///
    /// A [`MicroOp::Parallel`] bundle is validated against the
    /// co-issue rules ([`MicroOp::bundle_conflict`]), its inner ops
    /// are applied (sequential application is exact because inner ops
    /// are pairwise independent), and the *bundle maximum* is charged
    /// to the wall clock while every inner op still records its own
    /// per-class cycles, trace events and meter counts — so energy
    /// and occupancy stay per-gate-exact even though the gates share
    /// cycles.
    ///
    /// # Errors
    ///
    /// Propagates any [`CrossbarError`] from the array; on error the
    /// op's cycles are *not* charged.
    pub fn step(&mut self, op: &MicroOp) -> Result<(), CrossbarError> {
        if let MicroOp::Parallel(inner) = op {
            return self.step_bundle(inner);
        }
        let class = self.apply_effect(op)?;
        self.observe(op, class, self.stats.cycles);
        self.stats.record(class, op.cycles());
        Ok(())
    }

    /// Executes a co-issue bundle: all inner ops start on the same
    /// cycle; the wall clock advances by the bundle maximum.
    fn step_bundle(&mut self, inner: &[MicroOp]) -> Result<(), CrossbarError> {
        if let Some(detail) = MicroOp::bundle_conflict(inner) {
            return Err(CrossbarError::InvalidBundle { detail });
        }
        let start = self.stats.cycles;
        let wall = inner.iter().map(MicroOp::cycles).max().unwrap_or(0);
        for op in inner {
            let class = self.apply_effect(op)?;
            self.observe(op, class, start);
            self.stats.record_co_issued(class, op.cycles());
        }
        self.stats.cycles += wall;
        Ok(())
    }

    /// Records trace/tracer/meter observations for one applied op,
    /// stamped at `start` (the op's first cycle, 0-based).
    fn observe(&mut self, op: &MicroOp, class: OpClass, start: u64) {
        if self.config.record_trace {
            self.trace.push(TraceEntry {
                cycle: start + 1,
                cycles: op.cycles(),
                op: OpTrace::of(op),
            });
        }
        if let Some(track) = self.track {
            if self.tracer.is_enabled() {
                let t = OpTrace::of(op);
                let at = self.cycle_offset + start;
                let (name, args) = t.event();
                self.tracer.complete(track, name, at, op.cycles(), args);
                self.tracer
                    .counter(track, "cells_active", at, t.cells() as f64);
                self.tracer
                    .counter(track, "partitions_active", at, t.partitions() as f64);
            }
        }
        if let Some(meter) = &self.meter {
            meter.record(class, op.cycles());
        }
    }

    /// Applies the array-state effect of one non-bundle op and returns
    /// its accounting class; charges nothing.
    fn apply_effect(&mut self, op: &MicroOp) -> Result<OpClass, CrossbarError> {
        let class = match op {
            MicroOp::WriteRow {
                row,
                col_offset,
                bits,
            } => {
                self.array.write_row(*row, *col_offset, bits)?;
                OpClass::Write
            }
            MicroOp::WriteRowLanes {
                row,
                col_offset,
                lane_words,
            } => {
                self.array.write_row_lanes(*row, *col_offset, lane_words)?;
                OpClass::Write
            }
            MicroOp::ReadRow { row, cols } => {
                // Refill the executor-owned buffer in place: no
                // per-read heap allocation on the hot path.
                self.array
                    .read_row_into(*row, cols.clone(), &mut self.read_buffer)?;
                OpClass::Read
            }
            MicroOp::InitRows { rows, cols } => {
                for &r in rows {
                    self.array
                        .init_region(&crate::Region::new(r..r + 1, cols.clone()))?;
                }
                OpClass::Init
            }
            MicroOp::ResetRegion(region) => {
                self.array.reset_region(region)?;
                OpClass::Init
            }
            MicroOp::ResetRows { rows, cols } => {
                for &r in rows {
                    self.array
                        .reset_region(&crate::Region::new(r..r + 1, cols.clone()))?;
                }
                OpClass::Init
            }
            MicroOp::NorRows { inputs, out, cols } => {
                self.array
                    .nor_rows(inputs, *out, cols.clone(), self.config.strict_init)?;
                OpClass::Magic
            }
            MicroOp::NorCols {
                in_cols,
                out_col,
                rows,
            } => {
                self.array
                    .nor_cols(in_cols, *out_col, rows.clone(), self.config.strict_init)?;
                OpClass::Magic
            }
            MicroOp::NorColsPartitioned {
                rows,
                cols,
                part_width,
                in_offsets,
                out_offset,
            } => {
                self.array.nor_cols_partitioned(
                    rows.clone(),
                    cols.clone(),
                    *part_width,
                    in_offsets,
                    *out_offset,
                    self.config.strict_init,
                )?;
                OpClass::Magic
            }
            MicroOp::Shift {
                src,
                dst,
                cols,
                offset,
                fill,
            } => {
                self.array
                    .shift_row_to(*src, *dst, cols.clone(), *offset, *fill)?;
                OpClass::Shift
            }
            MicroOp::Parallel(_) => {
                // `step` intercepts bundles; reaching here means one
                // was nested inside another.
                return Err(CrossbarError::InvalidBundle {
                    detail: "nested bundle".to_string(),
                });
            }
        };
        Ok(class)
    }

    /// Executes a whole program in order.
    ///
    /// # Errors
    ///
    /// Stops and returns the first error; preceding ops stay applied.
    pub fn run(&mut self, program: &[MicroOp]) -> Result<(), CrossbarError> {
        for op in program {
            self.step(op)?;
        }
        Ok(())
    }

    /// The most recent `ReadRow` result.
    pub fn read_buffer(&self) -> &[bool] {
        &self.read_buffer
    }

    /// Accumulated cycle statistics.
    pub fn stats(&self) -> &CycleStats {
        &self.stats
    }

    /// The underlying array (immutable).
    pub fn array(&self) -> &Crossbar {
        self.array
    }

    /// The underlying array (mutable — for test setup between programs).
    pub fn array_mut(&mut self) -> &mut Crossbar {
        self.array
    }

    /// The recorded trace (empty unless [`ExecConfig::record_trace`]).
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Renders the trace as `cc <start>–<end>  <summary>` lines.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for e in &self.trace {
            out.push_str(&format!(
                "cc {:>4}-{:<4} {}\n",
                e.cycle,
                e.cycle + e.cycles - 1,
                e.op
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_accumulate_per_class() {
        let mut x = Crossbar::new(4, 4).unwrap();
        let mut e = Executor::new(&mut x);
        e.run(&[
            MicroOp::write_row(0, &[true, true, false, false]),
            MicroOp::write_row(1, &[true, false, true, false]),
            MicroOp::init_rows(&[2, 3], 0..4),
            MicroOp::nor_rows(&[0, 1], 2, 0..4),
            MicroOp::not_row(2, 3, 0..4),
            MicroOp::shift(3, 0..4, 1),
            MicroOp::read_row(3, 0..4),
        ])
        .unwrap();
        let s = e.stats();
        assert_eq!(s.cycles, 1 + 1 + 1 + 1 + 1 + 2 + 1);
        assert_eq!(s.ops, 7);
        assert_eq!(s.write_cycles, 2);
        assert_eq!(s.init_cycles, 1);
        assert_eq!(s.magic_cycles, 2);
        assert_eq!(s.shift_cycles, 2);
        assert_eq!(s.read_cycles, 1);
        assert_eq!(s.write_ops, 2);
        assert_eq!(s.init_ops, 1);
        assert_eq!(s.magic_ops, 2);
        assert_eq!(s.shift_ops, 1);
        assert_eq!(s.read_ops, 1);
        // NOR(row0,row1) = [0,0,0,1]; NOT → [1,1,1,0]; shift +1 → [0,1,1,1]
        assert_eq!(e.read_buffer(), &[false, true, true, true]);
    }

    #[test]
    fn strict_mode_flags_uninitialized_magic_output() {
        let mut x = Crossbar::new(3, 2).unwrap();
        let mut e = Executor::new(&mut x);
        e.step(&MicroOp::write_row(0, &[false, false])).unwrap();
        let err = e.step(&MicroOp::nor_rows(&[0], 1, 0..2)).unwrap_err();
        assert!(matches!(err, CrossbarError::OutputNotInitialized { .. }));
        // Failed op must not charge cycles.
        assert_eq!(e.stats().cycles, 1);
    }

    #[test]
    fn step_reports_magic_in_out_overlap_with_axis() {
        use crate::error::Axis;
        let mut x = Crossbar::new(4, 8).unwrap();
        let mut e = Executor::new(&mut x);
        // Row-oriented NOR naming its own output as an input.
        let err = e.step(&MicroOp::nor_rows(&[0, 2], 2, 0..4)).unwrap_err();
        assert_eq!(
            err,
            CrossbarError::MagicInOutOverlap {
                axis: Axis::Row,
                index: 2
            }
        );
        // Column-oriented NOR, same mistake on the other axis.
        let err = e.step(&MicroOp::nor_cols(&[1, 3], 3, 0..4)).unwrap_err();
        assert_eq!(
            err,
            CrossbarError::MagicInOutOverlap {
                axis: Axis::Col,
                index: 3
            }
        );
        // Partitioned NOR: the offending index is the partition offset.
        let err = e
            .step(&MicroOp::nor_cols_partitioned(0..1, 0..8, 4, &[0, 1], 1))
            .unwrap_err();
        assert_eq!(
            err,
            CrossbarError::MagicInOutOverlap {
                axis: Axis::Col,
                index: 1
            }
        );
        // Failed ops charge no cycles.
        assert_eq!(e.stats().cycles, 0);
    }

    #[test]
    fn trace_records_ops_with_cycle_stamps() {
        let mut x = Crossbar::new(3, 4).unwrap();
        let mut e = Executor::with_config(
            &mut x,
            ExecConfig {
                strict_init: true,
                record_trace: true,
            },
        );
        e.run(&[
            MicroOp::write_row(0, &[true; 4]),
            MicroOp::shift(0, 0..4, 1),
            MicroOp::read_row(0, 0..4),
        ])
        .unwrap();
        let t = e.trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].cycle, 1);
        assert_eq!(t[1].cycle, 2);
        assert_eq!(t[1].cycles, 2);
        assert_eq!(t[2].cycle, 4);
        // The entry is structured; the string is built only on render.
        assert_eq!(t[0].op, OpTrace::Write { row: 0, bits: 4 });
        assert_eq!(t[0].op.class(), OpClass::Write);
        let rendered = e.render_trace();
        assert!(rendered.contains("write row 0"));
        assert!(rendered.contains("shift row 0 by +1"));
    }

    #[test]
    fn trace_is_empty_when_disabled() {
        let mut x = Crossbar::new(2, 2).unwrap();
        let mut e = Executor::new(&mut x);
        e.step(&MicroOp::write_row(0, &[true, false])).unwrap();
        assert!(e.trace().is_empty());
    }

    #[test]
    fn op_trace_exposes_axis_index_and_cells() {
        let t = OpTrace::of(&MicroOp::nor_rows(&[0, 1], 2, 0..8));
        assert_eq!(t.axis(), Axis::Row);
        assert_eq!(t.index(), 2);
        assert_eq!(t.cells(), 24); // 2 inputs + 1 output, 8 bit lines
        let t = OpTrace::of(&MicroOp::nor_cols_partitioned(0..1, 0..8, 4, &[0, 1], 2));
        assert_eq!(t.axis(), Axis::Col);
        assert_eq!(t.partitions(), 2);
        let t = OpTrace::of(&MicroOp::shift_to(1, 3, 0..4, -2, true));
        assert_eq!(t.index(), 3);
        assert_eq!(format!("{t}"), "shift row 1 by -2 -> row 3");
    }

    #[test]
    fn attached_tracer_sees_ops_and_counters() {
        let tracer = Tracer::recording();
        let track = tracer.track(tracer.process("xbar"), "ops");
        let mut x = Crossbar::new(4, 4).unwrap();
        let mut e = Executor::new(&mut x);
        e.attach_tracer_at(&tracer, track, 100);
        e.run(&[
            MicroOp::write_row(0, &[true; 4]),
            MicroOp::shift(0, 0..4, 1),
        ])
        .unwrap();
        let trace = tracer.finish().unwrap();
        // 2 ops × (1 complete + 2 counters).
        assert_eq!(trace.events.len(), 6);
        // Timestamps carry the attachment offset.
        assert_eq!(trace.events[0].cycle, 100);
        assert_eq!(trace.events[3].cycle, 101);
        assert_eq!(trace.last_cycle(), 103); // shift: starts 101, 2 cc
    }

    #[test]
    fn tracing_does_not_change_stats_or_cells() {
        let program = [
            MicroOp::write_row(0, &[true, true, false, false]),
            MicroOp::write_row(1, &[true, false, true, false]),
            MicroOp::init_rows(&[2], 0..4),
            MicroOp::nor_rows(&[0, 1], 2, 0..4),
            MicroOp::shift(2, 0..4, 1),
            MicroOp::read_row(2, 0..4),
        ];
        let mut plain = Crossbar::new(4, 4).unwrap();
        let mut e1 = Executor::new(&mut plain);
        e1.run(&program).unwrap();
        let stats1 = *e1.stats();
        let buf1 = e1.read_buffer().to_vec();

        let tracer = Tracer::recording();
        let track = tracer.track(tracer.process("xbar"), "ops");
        let mut traced = Crossbar::new(4, 4).unwrap();
        let mut e2 = Executor::new(&mut traced);
        e2.attach_tracer(&tracer, track);
        e2.run(&program).unwrap();
        assert_eq!(*e2.stats(), stats1);
        assert_eq!(e2.read_buffer(), &buf1[..]);
        assert!(!tracer.finish().unwrap().events.is_empty());
    }

    #[test]
    fn metering_does_not_change_stats_and_counters_match() {
        use crate::meter::{METRIC_XBAR_CYCLES, METRIC_XBAR_OPS};
        use cim_metrics::{Labels, MetricsHub};
        let program = [
            MicroOp::write_row(0, &[true, true, false, false]),
            MicroOp::write_row(1, &[true, false, true, false]),
            MicroOp::init_rows(&[2], 0..4),
            MicroOp::nor_rows(&[0, 1], 2, 0..4),
            MicroOp::shift(2, 0..4, 1),
            MicroOp::read_row(2, 0..4),
        ];
        let mut plain = Crossbar::new(4, 4).unwrap();
        let mut e1 = Executor::new(&mut plain);
        e1.run(&program).unwrap();
        let stats1 = *e1.stats();
        let buf1 = e1.read_buffer().to_vec();

        let hub = MetricsHub::recording();
        let mut metered = Crossbar::new(4, 4).unwrap();
        let mut e2 = Executor::new(&mut metered);
        e2.attach_meter(&MeterSpec::new(&hub, Labels::new().with("tile", 0)));
        e2.run(&program).unwrap();
        assert_eq!(*e2.stats(), stats1, "metering must not perturb stats");
        assert_eq!(e2.read_buffer(), &buf1[..]);

        // The live counters agree with the executor's own accounting.
        let snap = hub.snapshot();
        for class in OpClass::ALL {
            let labels = Labels::new().with("tile", 0).with("op_class", class.label());
            assert_eq!(
                snap.number_with(METRIC_XBAR_CYCLES, &labels),
                Some(stats1.cycles_of(class) as f64)
            );
            assert_eq!(
                snap.number_with(METRIC_XBAR_OPS, &labels),
                Some(stats1.ops_of(class) as f64)
            );
        }
    }

    #[test]
    fn publish_energy_with_and_without_meter_agree() {
        use cim_metrics::{Labels, MetricsHub};
        let program = [
            MicroOp::write_row(0, &[true; 4]),
            MicroOp::write_row(1, &[false, true, false, true]),
            MicroOp::init_rows(&[2], 0..4),
            MicroOp::nor_rows(&[0, 1], 2, 0..4),
        ];
        let mut a = Crossbar::new(4, 4).unwrap();
        let mut e1 = Executor::new(&mut a);
        e1.run(&program).unwrap();
        let unmetered = e1.publish_energy(4);

        let hub = MetricsHub::recording();
        let mut b = Crossbar::new(4, 4).unwrap();
        let mut e2 = Executor::new(&mut b);
        e2.attach_meter(&MeterSpec::new(&hub, Labels::new()));
        e2.run(&program).unwrap();
        let metered = e2.publish_energy(4);
        assert_eq!(unmetered, metered, "energy must not depend on metering");
        assert_eq!(
            hub.snapshot()
                .number_with(
                    crate::meter::METRIC_XBAR_ENERGY,
                    &Labels::new().with("component", "magic")
                )
                .unwrap(),
            metered.magic_pj
        );
    }

    #[test]
    fn lenient_mode_applies_physical_semantics() {
        let mut x = Crossbar::new(3, 1).unwrap();
        let mut e = Executor::with_config(
            &mut x,
            ExecConfig {
                strict_init: false,
                record_trace: false,
            },
        );
        e.run(&[
            MicroOp::write_row(0, &[false]),
            MicroOp::nor_rows(&[0], 1, 0..1), // output never initialized
        ])
        .unwrap();
        // NOR result would be 1, but the cell cannot be pulled up.
        assert!(!e.array().read_cell(1, 0).unwrap());
    }

    #[test]
    fn run_stops_at_first_error() {
        let mut x = Crossbar::new(2, 2).unwrap();
        let mut e = Executor::new(&mut x);
        let r = e.run(&[
            MicroOp::write_row(0, &[true, true]),
            MicroOp::write_row(9, &[true]),
            MicroOp::write_row(1, &[true, true]),
        ]);
        assert!(r.is_err());
        assert_eq!(e.stats().ops, 1);
        // Third op never ran.
        assert_eq!(
            e.array().read_row_bits(1, 0..2).unwrap(),
            vec![false, false]
        );
    }

    #[test]
    fn bundle_charges_max_once_but_counts_every_inner_op() {
        let mut x = Crossbar::new(6, 4).unwrap();
        let mut e = Executor::new(&mut x);
        e.run(&[
            MicroOp::write_row(0, &[true, true, false, false]),
            MicroOp::write_row(1, &[true, false, true, false]),
            // Two init waves co-issued: 1 wall cycle, 2 init ops.
            MicroOp::parallel(vec![
                MicroOp::init_rows(&[2], 0..4),
                MicroOp::init_rows(&[3], 0..4),
            ]),
            // Two NORs sharing input rows (reads may overlap) but with
            // disjoint outputs: 1 wall cycle, 2 magic ops.
            MicroOp::parallel(vec![
                MicroOp::nor_rows(&[0, 1], 2, 0..4),
                MicroOp::not_row(0, 3, 0..4),
            ]),
            MicroOp::read_row(2, 0..4),
        ])
        .unwrap();
        let s = e.stats();
        assert_eq!(s.cycles, 2 + 1 + 1 + 1, "each bundle costs its max");
        assert_eq!(s.ops, 7, "inner ops count individually");
        assert_eq!(s.init_ops, 2);
        assert_eq!(s.init_cycles, 2, "per-class cycles count both waves");
        assert_eq!(s.magic_ops, 2);
        assert_eq!(s.magic_cycles, 2);
        // NOR(row0,row1) = [0,0,0,1].
        assert_eq!(e.read_buffer(), &[false, false, false, true]);
        // NOT(row0) = [0,0,1,1].
        assert_eq!(
            e.array().read_row_bits(3, 0..4).unwrap(),
            vec![false, false, true, true]
        );
    }

    #[test]
    fn bundle_rejects_conflicts_and_serial_ops_without_charging() {
        let mut x = Crossbar::new(4, 4).unwrap();
        let mut e = Executor::new(&mut x);
        e.step(&MicroOp::write_row(0, &[true; 4])).unwrap();
        // Two waves writing the same cells.
        let err = e
            .step(&MicroOp::parallel(vec![
                MicroOp::init_rows(&[2], 0..4),
                MicroOp::reset_rows(&[2], 0..4),
            ]))
            .unwrap_err();
        assert!(matches!(err, CrossbarError::InvalidBundle { .. }));
        // Serial periphery op inside a bundle.
        let err = e
            .step(&MicroOp::parallel(vec![
                MicroOp::init_rows(&[2], 0..4),
                MicroOp::write_row(3, &[true; 4]),
            ]))
            .unwrap_err();
        assert!(matches!(err, CrossbarError::InvalidBundle { .. }));
        // Nested bundle.
        let err = e
            .step(&MicroOp::parallel(vec![MicroOp::parallel(vec![
                MicroOp::init_rows(&[2], 0..4),
            ])]))
            .unwrap_err();
        assert!(matches!(err, CrossbarError::InvalidBundle { .. }));
        assert_eq!(e.stats().cycles, 1, "rejected bundles charge nothing");
        assert_eq!(e.stats().ops, 1);
    }

    #[test]
    fn bundle_inner_ops_trace_at_the_same_start_cycle() {
        let mut x = Crossbar::new(6, 4).unwrap();
        let mut e = Executor::with_config(
            &mut x,
            ExecConfig {
                strict_init: true,
                record_trace: true,
            },
        );
        e.run(&[
            MicroOp::write_row(0, &[true; 4]),
            MicroOp::parallel(vec![
                MicroOp::init_rows(&[2], 0..4),
                MicroOp::init_rows(&[3], 0..4),
            ]),
            MicroOp::read_row(2, 0..4),
        ])
        .unwrap();
        let t = e.trace();
        assert_eq!(t.len(), 4, "bundles trace per inner op");
        assert_eq!(t[1].cycle, 2);
        assert_eq!(t[2].cycle, 2, "co-issued ops share the start stamp");
        assert_eq!(t[3].cycle, 3, "wall advanced by the bundle max only");
    }

    #[test]
    fn bundle_metering_matches_per_class_stats() {
        use crate::meter::METRIC_XBAR_CYCLES;
        use cim_metrics::{Labels, MetricsHub};
        let hub = MetricsHub::recording();
        let mut x = Crossbar::new(6, 4).unwrap();
        let mut e = Executor::new(&mut x);
        e.attach_meter(&MeterSpec::new(&hub, Labels::new()));
        e.run(&[
            MicroOp::write_row(0, &[true; 4]),
            MicroOp::parallel(vec![
                MicroOp::init_rows(&[2], 0..4),
                MicroOp::init_rows(&[3], 0..4),
            ]),
        ])
        .unwrap();
        let stats = *e.stats();
        assert_eq!(stats.init_cycles, 2);
        let snap = hub.snapshot();
        let labels = Labels::new().with("op_class", OpClass::Init.label());
        assert_eq!(
            snap.number_with(METRIC_XBAR_CYCLES, &labels),
            Some(stats.init_cycles as f64),
            "meter sees each co-issued gate"
        );
    }

    #[test]
    fn init_rows_initializes_each_listed_row() {
        let mut x = Crossbar::new(4, 3).unwrap();
        let mut e = Executor::new(&mut x);
        e.step(&MicroOp::init_rows(&[1, 3], 0..3)).unwrap();
        assert_eq!(e.array().read_row_bits(1, 0..3).unwrap(), vec![true; 3]);
        assert_eq!(e.array().read_row_bits(3, 0..3).unwrap(), vec![true; 3]);
        assert_eq!(e.array().read_row_bits(0, 0..3).unwrap(), vec![false; 3]);
        assert_eq!(e.stats().cycles, 1, "one parallel set wave");
    }
}
