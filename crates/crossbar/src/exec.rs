//! The micro-op executor: runs programs, charges cycles, latches reads.

use crate::array::Crossbar;
use crate::error::CrossbarError;
use crate::isa::MicroOp;
use crate::stats::{CycleStats, OpClass};

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Enforce that MAGIC output cells are initialized to logic 1
    /// before being driven. Catches microcode bugs; on by default.
    pub strict_init: bool,
    /// Record a per-op execution trace (cycle stamps + op summaries);
    /// off by default — tracing long programs costs memory.
    pub record_trace: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            strict_init: true,
            record_trace: false,
        }
    }
}

/// One entry of a recorded execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// First cycle the op occupied (1-based).
    pub cycle: u64,
    /// Cycles the op took.
    pub cycles: u64,
    /// Human-readable op summary.
    pub summary: String,
}

fn summarize(op: &MicroOp) -> String {
    match op {
        MicroOp::WriteRow { row, bits, .. } => format!("write row {row} ({} bits)", bits.len()),
        MicroOp::ReadRow { row, .. } => format!("read row {row}"),
        MicroOp::InitRows { rows, .. } => format!("init rows {rows:?}"),
        MicroOp::ResetRegion(r) => format!("reset rows {:?}", r.rows),
        MicroOp::ResetRows { rows, .. } => format!("reset rows {rows:?}"),
        MicroOp::NorRows { inputs, out, .. } => format!("NOR {inputs:?} -> row {out}"),
        MicroOp::NorCols { in_cols, out_col, .. } => {
            format!("NOR cols {in_cols:?} -> col {out_col}")
        }
        MicroOp::NorColsPartitioned {
            part_width,
            in_offsets,
            out_offset,
            ..
        } => format!("part-NOR w={part_width} {in_offsets:?} -> +{out_offset}"),
        MicroOp::Shift {
            src, dst, offset, ..
        } => format!("shift row {src} by {offset:+} -> row {dst}"),
    }
}

/// Executes [`MicroOp`] programs against a [`Crossbar`], accumulating
/// [`CycleStats`] and latching `ReadRow` results.
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Executor<'a> {
    array: &'a mut Crossbar,
    config: ExecConfig,
    stats: CycleStats,
    read_buffer: Vec<bool>,
    trace: Vec<TraceEntry>,
}

impl<'a> Executor<'a> {
    /// Creates an executor with the default (strict) configuration.
    pub fn new(array: &'a mut Crossbar) -> Self {
        Self::with_config(array, ExecConfig::default())
    }

    /// Creates an executor with an explicit configuration.
    pub fn with_config(array: &'a mut Crossbar, config: ExecConfig) -> Self {
        Executor {
            array,
            config,
            stats: CycleStats::default(),
            read_buffer: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// Executes one micro-op.
    ///
    /// # Errors
    ///
    /// Propagates any [`CrossbarError`] from the array; on error the
    /// op's cycles are *not* charged.
    pub fn step(&mut self, op: &MicroOp) -> Result<(), CrossbarError> {
        let class = match op {
            MicroOp::WriteRow {
                row,
                col_offset,
                bits,
            } => {
                self.array.write_row(*row, *col_offset, bits)?;
                OpClass::Write
            }
            MicroOp::ReadRow { row, cols } => {
                self.read_buffer = self.array.read_row_bits(*row, cols.clone())?;
                OpClass::Read
            }
            MicroOp::InitRows { rows, cols } => {
                for &r in rows {
                    self.array
                        .init_region(&crate::Region::new(r..r + 1, cols.clone()))?;
                }
                OpClass::Init
            }
            MicroOp::ResetRegion(region) => {
                self.array.reset_region(region)?;
                OpClass::Init
            }
            MicroOp::ResetRows { rows, cols } => {
                for &r in rows {
                    self.array
                        .reset_region(&crate::Region::new(r..r + 1, cols.clone()))?;
                }
                OpClass::Init
            }
            MicroOp::NorRows { inputs, out, cols } => {
                self.array
                    .nor_rows(inputs, *out, cols.clone(), self.config.strict_init)?;
                OpClass::Magic
            }
            MicroOp::NorCols {
                in_cols,
                out_col,
                rows,
            } => {
                self.array
                    .nor_cols(in_cols, *out_col, rows.clone(), self.config.strict_init)?;
                OpClass::Magic
            }
            MicroOp::NorColsPartitioned {
                rows,
                cols,
                part_width,
                in_offsets,
                out_offset,
            } => {
                self.array.nor_cols_partitioned(
                    rows.clone(),
                    cols.clone(),
                    *part_width,
                    in_offsets,
                    *out_offset,
                    self.config.strict_init,
                )?;
                OpClass::Magic
            }
            MicroOp::Shift {
                src,
                dst,
                cols,
                offset,
                fill,
            } => {
                self.array
                    .shift_row_to(*src, *dst, cols.clone(), *offset, *fill)?;
                OpClass::Shift
            }
        };
        if self.config.record_trace {
            self.trace.push(TraceEntry {
                cycle: self.stats.cycles + 1,
                cycles: op.cycles(),
                summary: summarize(op),
            });
        }
        self.stats.record(class, op.cycles());
        Ok(())
    }

    /// Executes a whole program in order.
    ///
    /// # Errors
    ///
    /// Stops and returns the first error; preceding ops stay applied.
    pub fn run(&mut self, program: &[MicroOp]) -> Result<(), CrossbarError> {
        for op in program {
            self.step(op)?;
        }
        Ok(())
    }

    /// The most recent `ReadRow` result.
    pub fn read_buffer(&self) -> &[bool] {
        &self.read_buffer
    }

    /// Accumulated cycle statistics.
    pub fn stats(&self) -> &CycleStats {
        &self.stats
    }

    /// The underlying array (immutable).
    pub fn array(&self) -> &Crossbar {
        self.array
    }

    /// The underlying array (mutable — for test setup between programs).
    pub fn array_mut(&mut self) -> &mut Crossbar {
        self.array
    }

    /// The recorded trace (empty unless [`ExecConfig::record_trace`]).
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Renders the trace as `cc <start>–<end>  <summary>` lines.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for e in &self.trace {
            out.push_str(&format!(
                "cc {:>4}-{:<4} {}\n",
                e.cycle,
                e.cycle + e.cycles - 1,
                e.summary
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_accumulate_per_class() {
        let mut x = Crossbar::new(4, 4).unwrap();
        let mut e = Executor::new(&mut x);
        e.run(&[
            MicroOp::write_row(0, &[true, true, false, false]),
            MicroOp::write_row(1, &[true, false, true, false]),
            MicroOp::init_rows(&[2, 3], 0..4),
            MicroOp::nor_rows(&[0, 1], 2, 0..4),
            MicroOp::not_row(2, 3, 0..4),
            MicroOp::shift(3, 0..4, 1),
            MicroOp::read_row(3, 0..4),
        ])
        .unwrap();
        let s = e.stats();
        assert_eq!(s.cycles, 1 + 1 + 1 + 1 + 1 + 2 + 1);
        assert_eq!(s.ops, 7);
        assert_eq!(s.write_cycles, 2);
        assert_eq!(s.init_cycles, 1);
        assert_eq!(s.magic_cycles, 2);
        assert_eq!(s.shift_cycles, 2);
        assert_eq!(s.read_cycles, 1);
        // NOR(row0,row1) = [0,0,0,1]; NOT → [1,1,1,0]; shift +1 → [0,1,1,1]
        assert_eq!(e.read_buffer(), &[false, true, true, true]);
    }

    #[test]
    fn strict_mode_flags_uninitialized_magic_output() {
        let mut x = Crossbar::new(3, 2).unwrap();
        let mut e = Executor::new(&mut x);
        e.step(&MicroOp::write_row(0, &[false, false])).unwrap();
        let err = e.step(&MicroOp::nor_rows(&[0], 1, 0..2)).unwrap_err();
        assert!(matches!(err, CrossbarError::OutputNotInitialized { .. }));
        // Failed op must not charge cycles.
        assert_eq!(e.stats().cycles, 1);
    }

    #[test]
    fn step_reports_magic_in_out_overlap_with_axis() {
        use crate::error::Axis;
        let mut x = Crossbar::new(4, 8).unwrap();
        let mut e = Executor::new(&mut x);
        // Row-oriented NOR naming its own output as an input.
        let err = e.step(&MicroOp::nor_rows(&[0, 2], 2, 0..4)).unwrap_err();
        assert_eq!(
            err,
            CrossbarError::MagicInOutOverlap {
                axis: Axis::Row,
                index: 2
            }
        );
        // Column-oriented NOR, same mistake on the other axis.
        let err = e.step(&MicroOp::nor_cols(&[1, 3], 3, 0..4)).unwrap_err();
        assert_eq!(
            err,
            CrossbarError::MagicInOutOverlap {
                axis: Axis::Col,
                index: 3
            }
        );
        // Partitioned NOR: the offending index is the partition offset.
        let err = e
            .step(&MicroOp::nor_cols_partitioned(0..1, 0..8, 4, &[0, 1], 1))
            .unwrap_err();
        assert_eq!(
            err,
            CrossbarError::MagicInOutOverlap {
                axis: Axis::Col,
                index: 1
            }
        );
        // Failed ops charge no cycles.
        assert_eq!(e.stats().cycles, 0);
    }

    #[test]
    fn trace_records_ops_with_cycle_stamps() {
        let mut x = Crossbar::new(3, 4).unwrap();
        let mut e = Executor::with_config(
            &mut x,
            ExecConfig {
                strict_init: true,
                record_trace: true,
            },
        );
        e.run(&[
            MicroOp::write_row(0, &[true; 4]),
            MicroOp::shift(0, 0..4, 1),
            MicroOp::read_row(0, 0..4),
        ])
        .unwrap();
        let t = e.trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].cycle, 1);
        assert_eq!(t[1].cycle, 2);
        assert_eq!(t[1].cycles, 2);
        assert_eq!(t[2].cycle, 4);
        let rendered = e.render_trace();
        assert!(rendered.contains("write row 0"));
        assert!(rendered.contains("shift row 0 by +1"));
    }

    #[test]
    fn trace_is_empty_when_disabled() {
        let mut x = Crossbar::new(2, 2).unwrap();
        let mut e = Executor::new(&mut x);
        e.step(&MicroOp::write_row(0, &[true, false])).unwrap();
        assert!(e.trace().is_empty());
    }

    #[test]
    fn lenient_mode_applies_physical_semantics() {
        let mut x = Crossbar::new(3, 1).unwrap();
        let mut e = Executor::with_config(
            &mut x,
            ExecConfig {
                strict_init: false,
                record_trace: false,
            },
        );
        e.run(&[
            MicroOp::write_row(0, &[false]),
            MicroOp::nor_rows(&[0], 1, 0..1), // output never initialized
        ])
        .unwrap();
        // NOR result would be 1, but the cell cannot be pulled up.
        assert!(!e.array().read_cell(1, 0).unwrap());
    }

    #[test]
    fn run_stops_at_first_error() {
        let mut x = Crossbar::new(2, 2).unwrap();
        let mut e = Executor::new(&mut x);
        let r = e.run(&[
            MicroOp::write_row(0, &[true, true]),
            MicroOp::write_row(9, &[true]),
            MicroOp::write_row(1, &[true, true]),
        ]);
        assert!(r.is_err());
        assert_eq!(e.stats().ops, 1);
        // Third op never ran.
        assert_eq!(
            e.array().read_row_bits(1, 0..2).unwrap(),
            vec![false, false]
        );
    }

    #[test]
    fn init_rows_initializes_each_listed_row() {
        let mut x = Crossbar::new(4, 3).unwrap();
        let mut e = Executor::new(&mut x);
        e.step(&MicroOp::init_rows(&[1, 3], 0..3)).unwrap();
        assert_eq!(e.array().read_row_bits(1, 0..3).unwrap(), vec![true; 3]);
        assert_eq!(e.array().read_row_bits(3, 0..3).unwrap(), vec![true; 3]);
        assert_eq!(e.array().read_row_bits(0, 0..3).unwrap(), vec![false; 3]);
        assert_eq!(e.stats().cycles, 1, "one parallel set wave");
    }
}
