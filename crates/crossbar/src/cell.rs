//! A single memristor cell: stored bit, wear counter, optional fault.

/// A stuck-at fault of a memristor cell.
///
/// Real ReRAM cells whose oxide filament degrades end up permanently
/// stuck in the low- or high-resistance state; the fault-injection API
/// ([`crate::Crossbar::inject_fault`]) models this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Cell always reads logic 0 (stuck in high resistance).
    StuckAt0,
    /// Cell always reads logic 1 (stuck in low resistance).
    StuckAt1,
}

/// One memristor: a bit of state plus bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cell {
    value: bool,
    writes: u64,
    fault: Option<Fault>,
}

impl Cell {
    /// Assembles a cell snapshot from backend planes (packed backend).
    pub(crate) fn from_parts(value: bool, writes: u64, fault: Option<Fault>) -> Cell {
        Cell {
            value,
            writes,
            fault,
        }
    }

    /// The stored bit, accounting for a stuck-at fault if present.
    pub fn read(&self) -> bool {
        match self.fault {
            Some(Fault::StuckAt0) => false,
            Some(Fault::StuckAt1) => true,
            None => self.value,
        }
    }

    /// Applies a write pulse. Counts towards wear even if the value is
    /// unchanged (set/reset pulses stress the filament regardless).
    /// A faulty cell ignores the new value but still wears.
    pub fn write(&mut self, value: bool) {
        self.writes += 1;
        if self.fault.is_none() {
            self.value = value;
        }
    }

    /// MAGIC conditional pull-down: the output memristor can only move
    /// towards logic 0; it stays 1 only if the gate result is 1.
    /// Counts as one write pulse (current flows through the cell).
    pub fn magic_drive(&mut self, gate_result: bool) {
        self.writes += 1;
        if self.fault.is_none() {
            self.value &= gate_result;
        }
    }

    /// Adds `pulses` write pulses of wear without changing the value —
    /// the wear half of a write, for batch fast paths that account the
    /// two effects separately.
    pub(crate) fn add_wear(&mut self, pulses: u64) {
        self.writes += pulses;
    }

    /// Sets the value without wear — the value half of a write. A
    /// faulty cell keeps its value, exactly as under [`Cell::write`].
    pub(crate) fn store(&mut self, value: bool) {
        if self.fault.is_none() {
            self.value = value;
        }
    }

    /// Number of write pulses this cell has received.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The injected fault, if any.
    pub fn fault(&self) -> Option<Fault> {
        self.fault
    }

    /// Injects (or clears, with `None`) a stuck-at fault.
    pub fn set_fault(&mut self, fault: Option<Fault>) {
        self.fault = fault;
    }

    /// Clears the wear counter (used when reusing an array between
    /// independent experiments).
    pub fn reset_wear(&mut self) {
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_reads_zero() {
        assert!(!Cell::default().read());
        assert_eq!(Cell::default().writes(), 0);
    }

    #[test]
    fn write_updates_value_and_wear() {
        let mut c = Cell::default();
        c.write(true);
        assert!(c.read());
        assert_eq!(c.writes(), 1);
        c.write(true); // same value still wears
        assert_eq!(c.writes(), 2);
    }

    #[test]
    fn magic_drive_only_pulls_down() {
        let mut c = Cell::default();
        c.write(true);
        c.magic_drive(true);
        assert!(c.read(), "result 1 keeps the initialized 1");
        c.magic_drive(false);
        assert!(!c.read(), "result 0 pulls the cell down");
        c.magic_drive(true);
        assert!(!c.read(), "MAGIC can never pull a cell back up");
    }

    #[test]
    fn stuck_at_faults_dominate_reads() {
        let mut c = Cell::default();
        c.set_fault(Some(Fault::StuckAt1));
        assert!(c.read());
        c.write(false);
        assert!(c.read(), "write cannot heal a stuck cell");
        c.set_fault(Some(Fault::StuckAt0));
        assert!(!c.read());
        c.set_fault(None);
        assert!(!c.read(), "underlying value was never changed while faulty");
    }

    #[test]
    fn reset_wear() {
        let mut c = Cell::default();
        c.write(true);
        c.reset_wear();
        assert_eq!(c.writes(), 0);
        assert!(c.read(), "value survives wear reset");
    }
}
