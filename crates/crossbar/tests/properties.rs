//! Property-based tests for the crossbar simulator.

use cim_crossbar::{Crossbar, Executor, MicroOp, Region};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Row write followed by read returns the written bits.
    #[test]
    fn write_read_roundtrip(bits in prop::collection::vec(any::<bool>(), 1..64)) {
        let mut x = Crossbar::new(2, bits.len()).unwrap();
        x.write_row(0, 0, &bits).unwrap();
        prop_assert_eq!(x.read_row_bits(0, 0..bits.len()).unwrap(), bits);
    }

    /// MAGIC NOR across rows equals the boolean NOR per column.
    #[test]
    fn nor_rows_matches_boolean_nor(
        a in prop::collection::vec(any::<bool>(), 1..64),
        seed in any::<u64>(),
    ) {
        let w = a.len();
        let b: Vec<bool> = (0..w).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let mut x = Crossbar::new(3, w).unwrap();
        let mut e = Executor::new(&mut x);
        e.run(&[
            MicroOp::write_row(0, &a),
            MicroOp::write_row(1, &b),
            MicroOp::init_rows(&[2], 0..w),
            MicroOp::nor_rows(&[0, 1], 2, 0..w),
        ]).unwrap();
        let expect: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| !(x | y)).collect();
        prop_assert_eq!(e.array().read_row_bits(2, 0..w).unwrap(), expect);
    }

    /// Double NOT is the identity.
    #[test]
    fn double_not_identity(a in prop::collection::vec(any::<bool>(), 1..64)) {
        let w = a.len();
        let mut x = Crossbar::new(3, w).unwrap();
        let mut e = Executor::new(&mut x);
        e.run(&[
            MicroOp::write_row(0, &a),
            MicroOp::init_rows(&[1, 2], 0..w),
            MicroOp::not_row(0, 1, 0..w),
            MicroOp::not_row(1, 2, 0..w),
        ]).unwrap();
        prop_assert_eq!(e.array().read_row_bits(2, 0..w).unwrap(), a);
    }

    /// Shifting left then right by the same amount only loses bits that
    /// fell off the top.
    #[test]
    fn shift_left_right(
        a in prop::collection::vec(any::<bool>(), 1..64),
        k in 0usize..16,
    ) {
        let w = a.len();
        prop_assume!(k < w);
        let mut x = Crossbar::new(1, w).unwrap();
        x.write_row(0, 0, &a).unwrap();
        x.shift_row(0, 0..w, k as isize).unwrap();
        x.shift_row(0, 0..w, -(k as isize)).unwrap();
        let got = x.read_row_bits(0, 0..w).unwrap();
        for i in 0..w - k {
            prop_assert_eq!(got[i], a[i], "bit {} must survive", i);
        }
        for (i, &g) in got.iter().enumerate().skip(w - k) {
            prop_assert!(!g, "bit {} must be zero-filled", i);
        }
    }

    /// Cycle count equals the sum of per-op costs and is order-independent.
    #[test]
    fn cycle_count_is_sum_of_costs(n_ops in 1usize..20) {
        let mut x = Crossbar::new(4, 8).unwrap();
        let mut e = Executor::new(&mut x);
        let mut expect = 0u64;
        for i in 0..n_ops {
            let op = match i % 3 {
                0 => MicroOp::write_row(i % 4, &[true; 8]),
                1 => MicroOp::shift(i % 4, 0..8, 1),
                _ => MicroOp::read_row(i % 4, 0..8),
            };
            expect += op.cycles();
            e.step(&op).unwrap();
        }
        prop_assert_eq!(e.stats().cycles, expect);
    }

    /// Wear conservation: total writes equals the number of cell-write
    /// events issued.
    #[test]
    fn wear_total_matches_events(rows in 1usize..6, writes in 1usize..20) {
        let mut x = Crossbar::new(rows, 4).unwrap();
        for i in 0..writes {
            x.write_row(i % rows, 0, &[true, false, true, false]).unwrap();
        }
        let report = cim_crossbar::EnduranceReport::from_array(&x);
        prop_assert_eq!(report.total_writes, writes as u64 * 4);
    }

    /// Partitioned NOR equals per-partition boolean NOR for arbitrary
    /// partition geometry and row contents.
    #[test]
    fn partitioned_nor_matches_spec(
        parts in 1usize..6,
        part_width in 3usize..8,
        seed in any::<u64>(),
    ) {
        let w = parts * part_width;
        let bits: Vec<bool> = (0..w).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let mut x = Crossbar::new(1, w).unwrap();
        x.write_row(0, 0, &bits).unwrap();
        // Init every partition's output cell (offset part_width−1).
        for p in 0..parts {
            let col = p * part_width + part_width - 1;
            x.init_region(&Region::new(0..1, col..col + 1)).unwrap();
        }
        x.nor_cols_partitioned(0..1, 0..w, part_width, &[0, 1], part_width - 1, true)
            .unwrap();
        for p in 0..parts {
            let base = p * part_width;
            let expect = !(bits[base] | bits[base + 1]);
            prop_assert_eq!(
                x.read_cell(0, base + part_width - 1).unwrap(),
                expect,
                "partition {}", p
            );
        }
    }

    /// Reset region forces all covered cells to zero regardless of state.
    #[test]
    fn reset_region_zeroes(bits in prop::collection::vec(any::<bool>(), 8..32)) {
        let w = bits.len();
        let mut x = Crossbar::new(2, w).unwrap();
        x.write_row(0, 0, &bits).unwrap();
        x.reset_region(&Region::new(0..2, 0..w)).unwrap();
        prop_assert_eq!(x.read_row_bits(0, 0..w).unwrap(), vec![false; w]);
    }
}
