//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds hermetically (no crates.io), so this crate
//! provides the subset of proptest used by the repository's property
//! suites: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! `any::<T>()`, range strategies, `prop::collection::vec`,
//! [`ProptestConfig`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: each test's RNG is seeded from the test name,
//!   so CI runs are reproducible without regression files
//!   (`*.proptest-regressions` files are ignored).
//! * **No shrinking**: a failing case reports the sampled inputs but
//!   is not minimized. The values are printed, which is usually
//!   enough to build a targeted unit test.
//!
//! Swapping the real crate back in is a one-line `Cargo.toml` change;
//! the test sources need no edits.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
}

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 stream used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from an arbitrary string (e.g. the test name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, span)`.
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128) * span) >> 64
    }
}

/// A generator of test inputs (mirror of `proptest::strategy::Strategy`,
/// without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (retrying; mirrors
    /// `prop_filter` with the same rejection semantics as
    /// `prop_assume!`).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.whence);
    }
}

/// A strategy producing a single fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy (all values of `T`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Builds the strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias towards edge values the way proptest's integer
                // strategies do: ~1/16 of draws are 0 / MAX / 1.
                match rng.below(16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => 1,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                match rng.below(16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only; property suites here never need NaN/inf.
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.below(61) as i32 - 30) as f64;
        mantissa * exp.exp2()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + rng.below(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Collection strategies (mirror of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Fixed-size array strategies (mirror of `proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform_array {
        ($name:ident, $out:ident, $n:expr) => {
            /// Strategy for `[S::Value; N]` with every element drawn
            /// from the same strategy.
            pub fn $name<S: Strategy>(element: S) -> $out<S> {
                $out(element)
            }

            /// Output of the matching `uniformN` constructor.
            #[derive(Debug, Clone)]
            pub struct $out<S>(S);

            impl<S: Strategy> Strategy for $out<S> {
                type Value = [S::Value; $n];

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    std::array::from_fn(|_| self.0.sample(rng))
                }
            }
        };
    }

    uniform_array!(uniform2, UniformArray2, 2);
    uniform_array!(uniform3, UniformArray3, 3);
    uniform_array!(uniform4, UniformArray4, 4);
}

/// `prop::` namespace as re-exported by the real prelude.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property body; on failure the case
/// (and test) fails with the sampled inputs printed by the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
}

/// Rejects the current case (retried with fresh inputs, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Defines property tests (mirror of `proptest::proptest!`).
///
/// Supports the forms used in this repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0usize..100, v in prop::collection::vec(any::<u64>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).saturating_add(64);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: gave up after {} attempts ({} of {} cases passed; too many prop_assume! rejections)",
                    attempts, passed, config.cases
                );
                let __vals = ($($crate::Strategy::sample(&($strat), &mut rng),)*);
                // Described before the body runs: the body may move
                // the bindings.
                let __inputs = format!("{:?}", __vals);
                let ($($pat,)*) = __vals;
                let case = (|| -> $crate::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match case {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed after {} passing case(s): {}\ninputs ({}): {}",
                            stringify!($name),
                            passed,
                            msg,
                            stringify!($($pat),*),
                            __inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u32..=4, f in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_sizes(v in prop::collection::vec(any::<u64>(), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn map_applies(v in prop::collection::vec(any::<bool>(), 4).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 4);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
