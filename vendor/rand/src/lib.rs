//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the handful of `rand` APIs the repository uses are
//! provided here, implemented over xoshiro256++ (public-domain
//! algorithm by Blackman & Vigna). The surface is intentionally the
//! same as `rand 0.8` for the pieces we use — `rngs::StdRng`,
//! [`RngCore`], [`SeedableRng`], [`Rng::gen_range`] — so swapping the
//! real crate back in is a one-line `Cargo.toml` change.
//!
//! Streams are deterministic for a given seed but do **not** match the
//! real `StdRng` (ChaCha12) byte-for-byte; nothing in this repository
//! depends on the exact stream, only on seeded reproducibility.

#![forbid(unsafe_code)]

/// Low-level source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator constructible from a seed (mirror of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with splitmix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = widening_reduce(rng.next_u64(), span);
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = widening_reduce(rng.next_u64(), span);
                (lo as u128 + v) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widening_reduce(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Unbiased-enough reduction of a 64-bit draw onto `[0, span)` via the
/// widening-multiply trick (Lemire); exact for the small spans used in
/// tests and workload generators.
fn widening_reduce(draw: u64, span: u128) -> u128 {
    debug_assert!(span > 0);
    ((draw as u128) * span) >> 64
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not the real `StdRng` algorithm, but a high-quality,
    /// deterministic, seedable PRNG with the same trait surface.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias of [`StdRng`]; provided for API compatibility.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}
