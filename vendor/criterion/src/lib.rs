//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`]/[`criterion_main!`] — with a
//! simple mean/min wall-clock measurement instead of criterion's
//! statistical machinery. Results print one line per benchmark:
//!
//! ```text
//! group/name  time: [min 1.234 µs, mean 1.301 µs]  (100 iters × 5 samples)
//! ```
//!
//! Swapping the real crate back in is a one-line `Cargo.toml` change.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter (`name/param`).
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, first calibrating an iteration count so each sample
    /// runs for roughly 10 ms, then taking 5 samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the iteration count until one sample is slow
        // enough to time reliably.
        let mut iters: u64 = 1;
        let target = Duration::from_millis(10);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                let scale = target.as_nanos() / elapsed.as_nanos().max(1) + 1;
                (iters * scale.min(16) as u64).max(iters + 1)
            };
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label}  (no measurement)");
            return;
        }
        let per_iter = |d: &Duration| d.as_nanos() as f64 / self.iters_per_sample as f64;
        let min = self.samples.iter().map(per_iter).fold(f64::INFINITY, f64::min);
        let mean =
            self.samples.iter().map(per_iter).sum::<f64>() / self.samples.len() as f64;
        println!(
            "{label}  time: [min {}, mean {}]  ({} iters x {} samples)",
            fmt_ns(min),
            fmt_ns(mean),
            self.iters_per_sample,
            self.samples.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness always takes 5
    /// samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group (no-op; prints a separator for readability).
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id.label);
        self
    }
}

/// Declares a group of benchmark functions (mirror of criterion's).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` (mirror of criterion's).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert_eq!(b.samples.len(), 5);
        assert!(b.iters_per_sample >= 1);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("ks", 64).label, "ks/64");
        assert_eq!(BenchmarkId::from_parameter(128).label, "128");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10)
            .bench_function("noop", |b| b.iter(|| black_box(1 + 1)))
            .bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
        g.finish();
    }
}
