//! Modular exponentiation with windowing — the RSA/pairing-exponent
//! workload. Shows the area-for-cycles trade the paper's CIM fabric
//! makes natural: the 2^w-entry table of powers is just more memory
//! rows next to the multiplier.
//!
//! ```text
//! cargo run --release --example modexp_window
//! ```

use cim_bigint::rng::UintRng;
use cim_modmul::montgomery::MontgomeryContext;
use cim_modmul::{fields, ModularReducer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = fields::bls12_381_base();
    let ctx = MontgomeryContext::new(p.clone())?;
    let mut rng = UintRng::seeded(4242);
    let base = rng.below(&p);
    let exp = rng.exact_bits(256); // a 256-bit exponent (pairing final-exp class)

    println!("modular exponentiation over BLS12-381 base field");
    println!("exponent: {} bits\n", exp.bit_len());

    // Functional check: every window width gives the same result.
    let reference = ctx.pow_mod(&base, &exp);
    for w in [2u32, 4, 6] {
        assert_eq!(ctx.pow_mod_window(&base, &exp, w), reference);
    }
    println!("windowed results verified against binary square-and-multiply ✓\n");

    // CIM cost sweep: cycles per exponentiation vs window width.
    println!("{:>7} {:>14} {:>16} {:>18}", "window", "table entries", "modmuls (est.)", "CIM cycles (est.)");
    let mut best = (1u32, f64::MAX);
    for w in 1..=8u32 {
        let cost = ctx.pow_window_cost(exp.bit_len(), w);
        let per = ctx.cim_cost();
        let modmuls = cost.cycles / per.cycles.max(1);
        println!(
            "{:>7} {:>14} {:>16} {:>18.3e}",
            w,
            1u64 << w,
            modmuls,
            cost.cycles as f64
        );
        if (cost.cycles as f64) < best.1 {
            best = (w, cost.cycles as f64);
        }
    }
    println!(
        "\noptimal window: w = {} (≈{:.2e} cycles/exponentiation)",
        best.0, best.1
    );
    println!("table storage: {} field elements × 384 bits — ordinary memory rows,", 1u64 << best.0);
    println!("cheap in a CIM fabric where memory IS the compute substrate.");
    Ok(())
}
