//! FHE ciphertext kernel: negacyclic polynomial multiplication in
//! `Z_p[X]/(X^N + 1)` via NTT over the Goldilocks prime, with the CIM
//! cost projection of running it on the paper's hardware.
//!
//! ```text
//! cargo run --release --example ntt_poly_mul
//! ```

use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use cim_ntt::cost::{poly_mul_cost_schoolbook, poly_mul_cost_sparse};
use cim_ntt::field::PrimeField;
use cim_ntt::poly::Polynomial;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let field = PrimeField::goldilocks()?;
    println!(
        "ring: Z_p[X]/(X^N + 1), p = {} (2-adicity {})\n",
        field.modulus(),
        field.two_adicity()
    );

    // A small live multiplication, NTT vs schoolbook reference.
    let n = 256;
    let mut rng = UintRng::seeded(4096);
    let a = Polynomial::new(
        &field,
        (0..n).map(|_| rng.below(field.modulus())).collect::<Vec<Uint>>(),
    );
    let b = Polynomial::new(
        &field,
        (0..n).map(|_| rng.below(field.modulus())).collect::<Vec<Uint>>(),
    );
    let c = a.mul_negacyclic(&b)?;
    assert_eq!(c, a.mul_negacyclic_schoolbook(&b));
    println!("N = {n}: NTT product verified against schoolbook ✓");
    println!("  c[0..4] = {:?}\n", &c.coeffs()[..4].iter().map(|x| x.to_decimal()).collect::<Vec<_>>());

    // CIM cost projection at FHE-relevant dimensions.
    println!("projected cost on the Karatsuba CIM hardware (64-bit limbs,");
    println!("sparse Goldilocks reduction = 1 multiplier pass per modmul):\n");
    println!("{:>6} {:>14} {:>16} {:>16} {:>9}", "N", "modmuls (NTT)", "NTT cycles", "schoolbook cyc", "speedup");
    for log_n in [8usize, 10, 12, 14] {
        let n = 1 << log_n;
        let ntt = poly_mul_cost_sparse(n, 64);
        let school = poly_mul_cost_schoolbook(n, 64);
        println!(
            "{:>6} {:>14} {:>16.3e} {:>16.3e} {:>8.0}x",
            n,
            ntt.modmuls,
            ntt.total_cycles,
            school.total_cycles,
            school.total_cycles / ntt.total_cycles
        );
    }
    println!("\n(a CKKS/BGV ciphertext multiplication at N = 2^14 with ~10 RNS");
    println!("limbs runs ~10 of these per ciphertext — the data-intensity the");
    println!("paper's introduction motivates CIM with)");
    Ok(())
}
