//! Fault injection: stuck-at faults model worn-out memristors. This
//! example shows (a) that the simulator's gold-model verification
//! catches silent data corruption from a single stuck cell inside an
//! in-memory adder, and (b) which cells an addition is actually
//! sensitive to.
//!
//! ```text
//! cargo run --example fault_injection
//! ```

use cim_bigint::Uint;
use cim_crossbar::{Crossbar, Executor, Fault};
use cim_logic::kogge_stone::{AddOp, KoggeStoneAdder};

fn add_with_fault(
    width: usize,
    a: &Uint,
    b: &Uint,
    fault_at: Option<(usize, usize, Fault)>,
) -> Result<Uint, cim_crossbar::CrossbarError> {
    let adder = KoggeStoneAdder::new(width);
    let mut array = Crossbar::new(adder.required_rows(), adder.required_cols())?;
    array.write_row(0, 0, &a.to_bits(width + 1))?;
    array.write_row(1, 0, &b.to_bits(width + 1))?;
    if let Some((r, c, f)) = fault_at {
        array.inject_fault(r, c, Some(f))?;
    }
    // Strict init checking must be off: a stuck-at-0 output cell looks
    // "uninitialized" to the checker — exactly the physical situation.
    let mut exec = Executor::with_config(
        &mut array,
        cim_crossbar::ExecConfig {
            strict_init: false,
            record_trace: false,
        },
    );
    exec.run(&adder.program(AddOp::Add))?;
    let bits = exec.array().read_row_bits(2, 0..width + 1)?;
    Ok(Uint::from_bits(&bits))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 16;
    let a = Uint::from_u64(0xBEEF);
    let b = Uint::from_u64(0x1234);
    let expect = a.add(&b);

    println!("fault-free 16-bit addition: 0x{a:x} + 0x{b:x} = 0x{expect:x}");
    let clean = add_with_fault(width, &a, &b, None)?;
    assert_eq!(clean, expect);
    println!("  simulator result: 0x{clean:x} ✓\n");

    // Sweep a stuck-at-0 fault across every scratch-region cell and
    // count how many corrupt the sum.
    let adder = KoggeStoneAdder::new(width);
    let mut corrupted = 0usize;
    let mut silent = 0usize;
    let mut total = 0usize;
    for row in 3..adder.required_rows() {
        for col in 0..adder.required_cols() {
            total += 1;
            let got = add_with_fault(width, &a, &b, Some((row, col, Fault::StuckAt0)))?;
            if got == expect {
                silent += 1;
            } else {
                corrupted += 1;
            }
        }
    }
    println!("stuck-at-0 sweep over all {total} scratch cells:");
    println!("  {corrupted} faults corrupt the sum (gold-model check catches them)");
    println!("  {silent} faults are masked by this operand pair\n");

    // One concrete corruption, reported the way the top-level
    // multiplier would: verification failure, not silent wrong data.
    let got = add_with_fault(width, &a, &b, Some((5, 3, Fault::StuckAt1)))?;
    if got != expect {
        println!("example: stuck-at-1 at scratch cell (5,3) yields 0x{got:x} ≠ 0x{expect:x}");
        println!("→ the KaratsubaCimMultiplier surfaces this as MultiplyError::VerificationFailed");
    } else {
        println!("example fault at (5,3) was masked for these operands");
    }

    // Recovery: triple modular redundancy with an in-memory majority
    // vote masks any single-lane fault set at ~3x area.
    println!("\nTMR recovery (cim_logic::tmr):");
    let tmr = cim_logic::tmr::TmrAdder::new(width);
    let faults: Vec<(usize, usize, Fault)> = (0..8)
        .map(|i| (15 + 3 + i, i % (width + 1), Fault::StuckAt0)) // lane 1 scratch
        .collect();
    let (sum, stats) = tmr.add(&a, &b, &faults)?;
    assert_eq!(sum, expect);
    println!(
        "  8 stuck cells injected into lane 1 → voted sum still 0x{sum:x} ✓ ({} cc, {}x area)",
        stats.cycles,
        tmr.area_cells() / ((width as u64 + 1) * 15)
    );
    Ok(())
}
