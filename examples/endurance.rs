//! Endurance study: ReRAM cells survive ~10^10–10^11 writes (paper
//! Sec. II-A). This example runs a long stream of in-memory additions
//! with and without the paper's wear-leveling (Sec. IV-B) and projects
//! the array lifetime, then compares per-multiplication write loads
//! against MultPIM's.
//!
//! ```text
//! cargo run --release --example endurance
//! ```

use cim_baselines::{MultPim, MultiplierModel, OurKaratsuba};
use cim_bigint::rng::UintRng;
use cim_crossbar::CELL_ENDURANCE_WRITES;
use cim_logic::kogge_stone::AdderUnit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("ReRAM endurance: ~{CELL_ENDURANCE_WRITES} write cycles per cell\n");

    // --- Adder-level wear-leveling ablation.
    let operations = 300usize;
    let mut rng = UintRng::seeded(11);
    let pairs: Vec<_> = (0..operations)
        .map(|_| (rng.uniform(64), rng.uniform(64)))
        .collect();

    for leveling in [false, true] {
        let mut unit = AdderUnit::new(64, leveling)?;
        for (a, b) in &pairs {
            let sum = unit.add(a, b)?;
            assert_eq!(sum, a.add(b));
        }
        let e = unit.endurance();
        let adds_per_lifetime =
            CELL_ENDURANCE_WRITES / (e.max_writes / operations as u64).max(1);
        println!(
            "wear-leveling {}: after {} additions",
            if leveling { "ON " } else { "OFF" },
            operations
        );
        println!("  peak cell writes : {}", e.max_writes);
        println!("  mean cell writes : {:.1}", e.mean_writes());
        println!("  wear balance     : {:.2} (1.0 = perfectly even)", e.balance());
        println!("  projected adder lifetime: ~{adds_per_lifetime} additions");
        println!("  cycle cost of leveling  : none ({} cc total)\n", unit.cycles());
    }

    // --- Design-level comparison (Table I "Max. Writes" column).
    println!("per-multiplication write load at n = 384 (Table I):");
    let ours = OurKaratsuba;
    let multpim = MultPim;
    let ow = ours.max_writes(384).expect("reported");
    let mw = multpim.max_writes(384).expect("reported");
    println!("  our Karatsuba design : {ow} writes to the hottest cell");
    println!("  MultPIM single-row   : {mw} writes ({:.1}x more)", mw as f64 / ow as f64);
    println!(
        "  array lifetime: ours ~{} multiplications vs MultPIM ~{}",
        CELL_ENDURANCE_WRITES / ow,
        CELL_ENDURANCE_WRITES / mw
    );
    Ok(())
}
