//! Quickstart: multiply two 256-bit integers entirely inside a
//! simulated ReRAM crossbar using the paper's three-stage pipelined
//! Karatsuba multiplier.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cim_bigint::Uint;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two 256-bit operands (any hex/decimal string or limb vector works).
    let a = Uint::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")?;
    let b = Uint::from_hex("2cf24dba5fb0a30e26e83b2ac5b9e29e1b161e5c1fa7425e73043362938b9824")?;

    // Build the 256-bit multiplier: a precomputation array (30×66
    // cells), nine single-row multipliers (9×792 cells) and a
    // postcomputation array (20×384 cells).
    let multiplier = KaratsubaCimMultiplier::new(256)?;

    // Runs all three stages cycle-accurately and verifies the result
    // against the software gold model.
    let outcome = multiplier.multiply(&a, &b)?;

    println!("a   = 0x{a:x}");
    println!("b   = 0x{b:x}");
    println!("a·b = 0x{:x}", outcome.product);
    assert_eq!(outcome.product, &a * &b);

    let r = &outcome.report;
    println!();
    println!("stage cycles: precompute {} / multiply {} / postcompute {}",
             r.stage_cycles[0], r.stage_cycles[1], r.stage_cycles[2]);
    println!("total latency: {} clock cycles", r.total_latency);
    println!("total area:    {} memristor cells", r.area_cells);

    // The pipelined design overlaps three multiplications; throughput
    // comes from the analytic design point (reproduces paper Table I).
    let d = multiplier.design_point();
    println!("pipelined throughput: {:.0} multiplications per 10^6 cycles", d.throughput_per_mcc());
    println!("area-time product:    {:.1}", d.atp());
    Ok(())
}
