//! Serving quickstart: stand up the threaded cim-serve fleet, push a
//! mixed two-tenant request stream through the wire protocol, and
//! print the per-tenant / per-farm accounting.
//!
//! ```text
//! cargo run --release --example serve_quickstart [requests]
//! ```

use cim_metrics::MetricsHub;
use cim_serve::loadgen::{generate_trace, LoadgenConfig};
use cim_serve::{CimServer, FleetConfig, OpExecutor, Response, ServerConfig};

fn main() {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    // A deterministic zkEVM-flavoured trace: two tenants (tenant1 at
    // half of tenant0's admission rate), mul/modexp/ecadd/ecmul mix.
    let config = LoadgenConfig {
        requests,
        tenants: 2,
        fleet: FleetConfig { farms: 4, tiles_per_farm: 4, ..FleetConfig::default() },
        exp_bits: 8,
        scalar_bits: 8,
        ..LoadgenConfig::default()
    };
    let trace = generate_trace(&config);

    let hub = MetricsHub::recording();
    let server = CimServer::start(
        ServerConfig { engine: config.engine_config(), workers: 4 },
        &hub,
    );
    let conn = server.connect();

    println!("serving {requests} requests across 4 farms…\n");
    for request in &trace {
        conn.send(request);
    }
    conn.drain();

    // Re-verify every Ok response against the independent gold path,
    // exactly as the load generator does.
    let exec = OpExecutor::new();
    let ops: std::collections::HashMap<u64, _> =
        trace.iter().map(|r| (r.id, r.op.clone())).collect();
    let (mut served, mut shed, mut verified) = (0u64, 0u64, 0u64);
    for _ in 0..trace.len() {
        match conn.recv().expect("server delivers every response") {
            Response::Ok { id, result, .. } => {
                served += 1;
                if exec.verify(&ops[&id], &result) {
                    verified += 1;
                }
            }
            Response::Shed { .. } => shed += 1,
            Response::Error { id, message } => {
                eprintln!("request {id} errored: {message}");
            }
        }
    }

    let stats = server.stats();
    server.shutdown();

    println!("served {served} ({verified} verified), shed {shed}\n");
    for t in &stats.tenants {
        println!(
            "{}: served {:>6}  shed {:>5}  p50 {:>9}  p99 {:>9} cycles",
            t.name,
            t.served,
            t.shed_rate_limited + t.shed_queue_full,
            t.p50_latency_cycles,
            t.p99_latency_cycles
        );
    }
    println!();
    for f in &stats.farms {
        println!(
            "farm {}: {:>4} batches  {:>8} jobs  utilization {:.3}",
            f.farm, f.batches, f.jobs, f.utilization
        );
    }
    println!(
        "\nfleet drained at {} cycles — {:.1} served requests / Mcycle",
        stats.drained_at, stats.throughput_per_mcc
    );
    assert_eq!(verified, served, "every served response must verify");
}
