//! Trace a multiplication: run a 256-bit Karatsuba multiply with the
//! cycle-domain tracer attached, print the hot-span summary, and
//! write a Chrome/Perfetto timeline of all three pipeline stages.
//!
//! ```text
//! cargo run --release --example trace_multiply [output.trace.json]
//! ```
//!
//! Open the JSON at <https://ui.perfetto.dev> (or `chrome://tracing`):
//! stage 1 shows each precompute addition as a nested span over its
//! micro-ops, stage 2 the nine parallel row products, stage 3 the 11
//! postcompute passes. Tracing never changes a cycle: the outcome is
//! identical to `multiply()`.

use cim_bigint::rng::UintRng;
use cim_trace::{chrome, summary, Tracer};
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "multiply.trace.json".to_string());

    let mut rng = UintRng::seeded(42);
    let a = rng.uniform(256);
    let b = rng.uniform(256);

    let multiplier = KaratsubaCimMultiplier::new(256)?;
    let tracer = Tracer::recording();
    let outcome = multiplier.multiply_traced(&a, &b, &tracer)?;
    assert_eq!(outcome.product, &a * &b);

    let trace = tracer.finish().expect("recording tracer yields a trace");
    println!(
        "256-bit multiply: {} cc, {} trace events\n",
        outcome.report.total_latency,
        trace.events.len()
    );
    print!("{}", summary::render_summary(&trace, 12)?);

    let json = chrome::to_chrome_json(&trace);
    chrome::validate_chrome_trace(&json).expect("schema-valid export");
    std::fs::write(&out_path, &json)?;
    println!("\nwrote {out_path} — load it at https://ui.perfetto.dev");
    Ok(())
}
