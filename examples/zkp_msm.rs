//! Multi-scalar multiplication (MSM) — the dominant kernel of zkSNARK
//! proving (the paper cites PipeZK [2] and MSM engines [3], [18]).
//! Computes a small MSM on the real BLS12-381 G1 curve with Jacobian
//! arithmetic, counts the field multiplications, and projects the
//! full-size workload onto the paper's CIM hardware.
//!
//! ```text
//! cargo run --release --example zkp_msm
//! ```

use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use cim_modmul::ec::{Curve, Point};
use karatsuba_cim::cost::DesignPoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let curve = Curve::bls12_381_g1()?;
    println!(
        "curve: BLS12-381 G1, y² = x³ + 4 over a {}-bit field\n",
        curve.modulus().bit_len()
    );

    // A small but real MSM: Σ k_i·P_i with 8 points.
    let base = curve.find_point();
    let mut rng = UintRng::seeded(1337);
    let points: Vec<Point> = (1..=8u64)
        .map(|i| curve.scalar_mul(&Uint::from_u64(i * 7 + 1), &base))
        .collect();
    let scalars: Vec<Uint> = (0..8).map(|_| rng.uniform(64)).collect();

    curve.take_ops(); // reset counters
    let mut acc = Point::infinity();
    for (k, p) in scalars.iter().zip(&points) {
        acc = curve.add(&acc, &curve.scalar_mul(k, p));
    }
    let ops = curve.take_ops();

    // Verify against the linearity of scalar multiplication:
    // Σ k_i·(m_i·B) = (Σ k_i·m_i)·B.
    let mut exponent = Uint::zero();
    for (i, k) in scalars.iter().enumerate() {
        exponent = exponent.add(&(k * &Uint::from_u64((i as u64 + 1) * 7 + 1)));
    }
    let expect = curve.scalar_mul(&exponent, &base);
    assert!(curve.points_equal(&acc, &expect));
    println!("8-point MSM with 64-bit scalars verified ✓");
    println!(
        "field operations used: {} muls, {} adds",
        ops.field_muls, ops.field_adds
    );

    // Project onto the CIM hardware at the paper's 384-bit point.
    let cost = ops.cim_cost(384);
    println!(
        "on the Karatsuba CIM pipeline: {} multiplier passes ≈ {:.2e} cycles\n",
        cost.multiplications, cost.cycles as f64
    );

    // Scale to a proving-sized MSM (the paper's intro: circuits of
    // size 2^26 with 384-bit points → 8.8 GB of data).
    let d = DesignPoint::new(384);
    let msm_size: u64 = 1 << 20;
    // Pippenger windows: ~(size · 255 / log2(size)) group adds, each
    // ~16 field muls, each 3 pipelined multiplier passes.
    let window = (msm_size as f64).log2();
    let group_adds = msm_size as f64 * 255.0 / window;
    let field_muls = group_adds * 16.0;
    let cim_cycles = field_muls * 3.0 * d.initiation_interval() as f64;
    println!("projection for a 2^20-point, 255-bit-scalar MSM (Pippenger):");
    println!("  ≈ {group_adds:.2e} group additions → {field_muls:.2e} field muls");
    println!("  ≈ {cim_cycles:.2e} CIM cycles (pipelined, single multiplier unit)");
    println!(
        "  ≈ {:.0} multiplier units to match a 10 ms proving budget at 1 GHz",
        cim_cycles / 1.0e7
    );
    println!("\n(the paper's point: each unit is only {} memristors — the",
             d.area_cells());
    println!(" area-time economics of Karatsuba make such replication viable)");
    Ok(())
}
