//! FHE workload: 64-bit RNS limb arithmetic — the "64-bit integers for
//! FHE" the paper targets. Homomorphic schemes decompose big
//! ciphertext coefficients into residue (RNS) limbs modulo NTT-friendly
//! 64-bit primes; the inner loop is then millions of 64-bit modular
//! multiplications.
//!
//! Uses the Goldilocks prime 2^64 − 2^32 + 1 and compares sparse
//! (shift-add) reduction against Montgomery on the CIM cost model,
//! with the headline products simulated on the 64-bit crossbar
//! multiplier.
//!
//! ```text
//! cargo run --release --example fhe_modmul
//! ```

use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use cim_modmul::montgomery::MontgomeryContext;
use cim_modmul::sparse::SparseModulus;
use cim_modmul::ModularReducer;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sparse = SparseModulus::goldilocks();
    let p = sparse.modulus().clone();
    println!("FHE RNS limb prime (Goldilocks): p = 2^64 − 2^32 + 1 = {p}\n");

    // A toy "ciphertext": a polynomial with 8 coefficients per limb.
    let mut rng = UintRng::seeded(99);
    let poly_a: Vec<Uint> = (0..8).map(|_| rng.below(&p)).collect();
    let poly_b: Vec<Uint> = (0..8).map(|_| rng.below(&p)).collect();

    // Pointwise (NTT-domain) multiplication, every product simulated
    // on the 64-bit CIM Karatsuba pipeline.
    let hw = KaratsubaCimMultiplier::new(64)?;
    let mut total_cc = 0u64;
    let mut result = Vec::new();
    for (a, b) in poly_a.iter().zip(&poly_b) {
        let out = hw.multiply(a, b)?;
        total_cc += out.report.total_latency;
        result.push(sparse.reduce(&out.product));
    }
    println!("pointwise product of 8 coefficients (NTT domain), all verified:");
    for (i, c) in result.iter().enumerate() {
        let expect = (&poly_a[i] * &poly_b[i]).rem(&p);
        assert_eq!(*c, expect);
        println!("  c[{i}] = {c}");
    }
    println!("  simulated product cycles (unpipelined sum): {total_cc} cc\n");

    // Reduction-method comparison on the CIM cost model.
    let mont = MontgomeryContext::new(p.clone())?;
    let sc = sparse.cim_cost();
    let mc = mont.cim_cost();
    println!("reduction cost per modular multiplication (CIM cost model):");
    println!(
        "  sparse fold : {} multiplier pass + {} Kogge-Stone adds = {} cc",
        sc.multiplications, sc.additions, sc.cycles
    );
    println!(
        "  montgomery  : {} multiplier passes + {} add          = {} cc",
        mc.multiplications, mc.additions, mc.cycles
    );
    println!(
        "  → sparse reduction is {:.1}x cheaper for this prime (paper Sec. IV-F:\n    \"reduction by a sparse modulus requires additions supported by our\n    Kogge-Stone adder\")",
        mc.cycles as f64 / sc.cycles as f64
    );
    Ok(())
}
