//! Batch throughput & endurance: stream a whole workload of
//! multiplications through one multiplier with persistent stage arrays
//! — wear accumulates as in real hardware — and compare the measured
//! steady-state throughput with the paper's Table I value.
//!
//! ```text
//! cargo run --release --example batch_throughput [n] [count]
//! ```

use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use cim_sched::batch::run_batch;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);
    let count: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);

    let multiplier = KaratsubaCimMultiplier::new(n)?;
    let mut rng = UintRng::seeded(77);
    let pairs: Vec<(Uint, Uint)> = (0..count)
        .map(|_| (rng.exact_bits(n), rng.exact_bits(n)))
        .collect();

    println!("streaming {count} verified {n}-bit multiplications through the pipeline…\n");
    let report = run_batch(&multiplier, &pairs)?;

    let d = multiplier.design_point();
    println!("makespan:               {} cycles", report.makespan_cycles);
    println!(
        "steady-state throughput: {:.0} mult/Mcc  (Table I model: {:.0})",
        report.throughput_per_mcc,
        d.throughput_per_mcc()
    );
    println!(
        "speedup vs unpipelined:  {:.2}x",
        (count as u64 * d.latency()) as f64 / report.makespan_cycles as f64
    );

    println!("\naccumulated wear after {count} multiplications:");
    for (name, e) in ["precompute", "multiply", "postcompute"]
        .iter()
        .zip(&report.endurance)
    {
        println!(
            "  {name:>12}: peak {:>5} writes, balance {:.2}",
            e.max_writes,
            e.balance()
        );
    }
    println!(
        "\namortized hottest-cell wear: {:.0} writes/multiplication",
        report.writes_per_multiplication()
    );
    println!(
        "projected array lifetime:    ~{} multiplications (at 10^10 writes/cell)",
        report.projected_lifetime_multiplications()
    );
    Ok(())
}
