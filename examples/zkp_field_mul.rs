//! ZKP workload: BLS12-381 base-field multiplications — the 384-bit
//! operand class the paper's introduction motivates (pairing-based
//! zkSNARKs, multi-scalar multiplication inner loops).
//!
//! Demonstrates Montgomery modular multiplication where every large
//! integer product runs on the simulated CIM Karatsuba multiplier,
//! and projects the throughput of an MSM-style batch.
//!
//! ```text
//! cargo run --release --example zkp_field_mul
//! ```

use cim_bigint::rng::UintRng;
use cim_modmul::montgomery::MontgomeryContext;
use cim_modmul::{fields, ModularReducer};
use karatsuba_cim::cost::DesignPoint;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;
use karatsuba_cim::pipeline::PipelineSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = fields::bls12_381_base();
    println!("BLS12-381 base field ({} bits):", p.bit_len());
    println!("p = 0x{p:x}\n");

    let ctx = MontgomeryContext::new(p.clone())?;
    let mut rng = UintRng::seeded(2025);
    let a = rng.below(&p);
    let b = rng.below(&p);

    // --- Functional path: one field multiplication where the three
    // Montgomery products run on the simulated 384-bit CIM hardware.
    let hw = KaratsubaCimMultiplier::new(384)?;
    let am = ctx.to_mont(&a);
    let bm = ctx.to_mont(&b);

    // t = am·bm on the crossbar (the REDC products use the same unit;
    // we run the headline product in full simulation here).
    let product = hw.multiply(&am, &bm)?;
    let cm = ctx.redc(&product.product);
    let c = ctx.from_mont(&cm);
    assert_eq!(c, (&a * &b).rem(&p));
    println!("field product verified: a·b mod p = 0x{c:x}\n");

    println!(
        "one 384-bit product on the CIM pipeline: {} cc, {} cells",
        product.report.total_latency, product.report.area_cells
    );

    // --- Cost projection: a Montgomery field-mul is 3 large products
    // + 1 conditional subtraction (paper Sec. IV-F).
    let cost = ctx.cim_cost();
    println!(
        "montgomery field-mul on CIM: {} multiplier passes + {} adds = {} cc\n",
        cost.multiplications, cost.additions, cost.cycles
    );

    // --- MSM-style batch: the pipeline keeps 3 products in flight.
    let d = DesignPoint::new(384);
    let window_products = 10_000usize; // products in one MSM bucket pass
    let schedule = PipelineSchedule::for_design(384, 64);
    let cc_per_product = schedule.initiation_interval();
    let total_cc = cc_per_product as u128 * window_products as u128 * 3; // 3 products per field mul
    println!("MSM-style batch projection ({window_products} field muls):");
    println!("  initiation interval: {cc_per_product} cc/product (pipelined)");
    println!("  total: {total_cc} cc  ({:.1} field-muls per Mcc)",
             1.0e6 / (3.0 * cc_per_product as f64));
    println!("  vs a scaled schoolbook CIM multiplier [7]: {:.0}x faster",
             d.throughput_per_mcc() / cim_baselines::MultiplierModel::throughput_per_mcc(&cim_baselines::Imaging, 384));
    Ok(())
}
