/root/repo/target/release/deps/fig7_postcompute-6e9e18d2dd0d5ec4.d: crates/bench/src/bin/fig7_postcompute.rs

/root/repo/target/release/deps/fig7_postcompute-6e9e18d2dd0d5ec4: crates/bench/src/bin/fig7_postcompute.rs

crates/bench/src/bin/fig7_postcompute.rs:
