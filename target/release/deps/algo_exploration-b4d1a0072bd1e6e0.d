/root/repo/target/release/deps/algo_exploration-b4d1a0072bd1e6e0.d: crates/bench/src/bin/algo_exploration.rs

/root/repo/target/release/deps/algo_exploration-b4d1a0072bd1e6e0: crates/bench/src/bin/algo_exploration.rs

crates/bench/src/bin/algo_exploration.rs:
