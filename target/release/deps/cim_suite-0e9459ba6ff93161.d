/root/repo/target/release/deps/cim_suite-0e9459ba6ff93161.d: src/lib.rs

/root/repo/target/release/deps/libcim_suite-0e9459ba6ff93161.rlib: src/lib.rs

/root/repo/target/release/deps/libcim_suite-0e9459ba6ff93161.rmeta: src/lib.rs

src/lib.rs:
