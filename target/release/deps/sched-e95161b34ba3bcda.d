/root/repo/target/release/deps/sched-e95161b34ba3bcda.d: crates/bench/benches/sched.rs

/root/repo/target/release/deps/sched-e95161b34ba3bcda: crates/bench/benches/sched.rs

crates/bench/benches/sched.rs:
