/root/repo/target/release/deps/fig1_magic_demo-17a0ab26fd432bc2.d: crates/bench/src/bin/fig1_magic_demo.rs

/root/repo/target/release/deps/fig1_magic_demo-17a0ab26fd432bc2: crates/bench/src/bin/fig1_magic_demo.rs

crates/bench/src/bin/fig1_magic_demo.rs:
