/root/repo/target/release/deps/cim_bench-4bcc1e310cd28712.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcim_bench-4bcc1e310cd28712.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcim_bench-4bcc1e310cd28712.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
