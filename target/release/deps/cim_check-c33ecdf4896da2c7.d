/root/repo/target/release/deps/cim_check-c33ecdf4896da2c7.d: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

/root/repo/target/release/deps/libcim_check-c33ecdf4896da2c7.rlib: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

/root/repo/target/release/deps/libcim_check-c33ecdf4896da2c7.rmeta: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

crates/check/src/lib.rs:
crates/check/src/gen.rs:
crates/check/src/gold.rs:
crates/check/src/pressure.rs:
crates/check/src/verify.rs:
