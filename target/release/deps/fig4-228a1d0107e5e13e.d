/root/repo/target/release/deps/fig4-228a1d0107e5e13e.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-228a1d0107e5e13e: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
