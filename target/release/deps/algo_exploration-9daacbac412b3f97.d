/root/repo/target/release/deps/algo_exploration-9daacbac412b3f97.d: crates/bench/src/bin/algo_exploration.rs

/root/repo/target/release/deps/algo_exploration-9daacbac412b3f97: crates/bench/src/bin/algo_exploration.rs

crates/bench/src/bin/algo_exploration.rs:
