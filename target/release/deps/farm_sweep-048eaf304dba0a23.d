/root/repo/target/release/deps/farm_sweep-048eaf304dba0a23.d: crates/bench/src/bin/farm_sweep.rs

/root/repo/target/release/deps/farm_sweep-048eaf304dba0a23: crates/bench/src/bin/farm_sweep.rs

crates/bench/src/bin/farm_sweep.rs:
