/root/repo/target/release/deps/fig6_kogge_stone-515a456f0797f58a.d: crates/bench/src/bin/fig6_kogge_stone.rs

/root/repo/target/release/deps/fig6_kogge_stone-515a456f0797f58a: crates/bench/src/bin/fig6_kogge_stone.rs

crates/bench/src/bin/fig6_kogge_stone.rs:
