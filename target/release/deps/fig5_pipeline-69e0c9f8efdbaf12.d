/root/repo/target/release/deps/fig5_pipeline-69e0c9f8efdbaf12.d: crates/bench/src/bin/fig5_pipeline.rs

/root/repo/target/release/deps/fig5_pipeline-69e0c9f8efdbaf12: crates/bench/src/bin/fig5_pipeline.rs

crates/bench/src/bin/fig5_pipeline.rs:
