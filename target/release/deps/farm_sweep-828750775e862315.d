/root/repo/target/release/deps/farm_sweep-828750775e862315.d: crates/bench/src/bin/farm_sweep.rs

/root/repo/target/release/deps/farm_sweep-828750775e862315: crates/bench/src/bin/farm_sweep.rs

crates/bench/src/bin/farm_sweep.rs:
