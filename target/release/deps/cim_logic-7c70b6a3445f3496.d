/root/repo/target/release/deps/cim_logic-7c70b6a3445f3496.d: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs

/root/repo/target/release/deps/libcim_logic-7c70b6a3445f3496.rlib: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs

/root/repo/target/release/deps/libcim_logic-7c70b6a3445f3496.rmeta: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs

crates/logic/src/lib.rs:
crates/logic/src/condsub.rs:
crates/logic/src/gates.rs:
crates/logic/src/kogge_stone.rs:
crates/logic/src/magic_schoolbook.rs:
crates/logic/src/multpim.rs:
crates/logic/src/program.rs:
crates/logic/src/ripple.rs:
crates/logic/src/tmr.rs:
