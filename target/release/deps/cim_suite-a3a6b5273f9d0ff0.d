/root/repo/target/release/deps/cim_suite-a3a6b5273f9d0ff0.d: src/lib.rs

/root/repo/target/release/deps/libcim_suite-a3a6b5273f9d0ff0.rlib: src/lib.rs

/root/repo/target/release/deps/libcim_suite-a3a6b5273f9d0ff0.rmeta: src/lib.rs

src/lib.rs:
