/root/repo/target/release/deps/trace_dump-9080edc575b8c65b.d: crates/bench/src/bin/trace_dump.rs

/root/repo/target/release/deps/trace_dump-9080edc575b8c65b: crates/bench/src/bin/trace_dump.rs

crates/bench/src/bin/trace_dump.rs:
