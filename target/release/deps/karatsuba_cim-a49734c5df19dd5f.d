/root/repo/target/release/deps/karatsuba_cim-a49734c5df19dd5f.d: crates/core/src/lib.rs crates/core/src/chunks.rs crates/core/src/depth1.rs crates/core/src/cost.rs crates/core/src/metrics.rs crates/core/src/multiplier.rs crates/core/src/multiply.rs crates/core/src/pipeline.rs crates/core/src/postcompute.rs crates/core/src/precompute.rs crates/core/src/progcache.rs

/root/repo/target/release/deps/libkaratsuba_cim-a49734c5df19dd5f.rlib: crates/core/src/lib.rs crates/core/src/chunks.rs crates/core/src/depth1.rs crates/core/src/cost.rs crates/core/src/metrics.rs crates/core/src/multiplier.rs crates/core/src/multiply.rs crates/core/src/pipeline.rs crates/core/src/postcompute.rs crates/core/src/precompute.rs crates/core/src/progcache.rs

/root/repo/target/release/deps/libkaratsuba_cim-a49734c5df19dd5f.rmeta: crates/core/src/lib.rs crates/core/src/chunks.rs crates/core/src/depth1.rs crates/core/src/cost.rs crates/core/src/metrics.rs crates/core/src/multiplier.rs crates/core/src/multiply.rs crates/core/src/pipeline.rs crates/core/src/postcompute.rs crates/core/src/precompute.rs crates/core/src/progcache.rs

crates/core/src/lib.rs:
crates/core/src/chunks.rs:
crates/core/src/depth1.rs:
crates/core/src/cost.rs:
crates/core/src/metrics.rs:
crates/core/src/multiplier.rs:
crates/core/src/multiply.rs:
crates/core/src/pipeline.rs:
crates/core/src/postcompute.rs:
crates/core/src/precompute.rs:
crates/core/src/progcache.rs:
