/root/repo/target/release/deps/backends-7207fe37277f70dd.d: crates/bench/benches/backends.rs

/root/repo/target/release/deps/backends-7207fe37277f70dd: crates/bench/benches/backends.rs

crates/bench/benches/backends.rs:
