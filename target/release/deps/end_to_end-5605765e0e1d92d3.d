/root/repo/target/release/deps/end_to_end-5605765e0e1d92d3.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-5605765e0e1d92d3: tests/end_to_end.rs

tests/end_to_end.rs:
