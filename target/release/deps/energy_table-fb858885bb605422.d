/root/repo/target/release/deps/energy_table-fb858885bb605422.d: crates/bench/src/bin/energy_table.rs

/root/repo/target/release/deps/energy_table-fb858885bb605422: crates/bench/src/bin/energy_table.rs

crates/bench/src/bin/energy_table.rs:
