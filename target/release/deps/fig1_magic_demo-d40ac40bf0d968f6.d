/root/repo/target/release/deps/fig1_magic_demo-d40ac40bf0d968f6.d: crates/bench/src/bin/fig1_magic_demo.rs

/root/repo/target/release/deps/fig1_magic_demo-d40ac40bf0d968f6: crates/bench/src/bin/fig1_magic_demo.rs

crates/bench/src/bin/fig1_magic_demo.rs:
