/root/repo/target/release/deps/cim_bench-49a5ee3bcbb6d7f2.d: crates/bench/src/lib.rs crates/bench/src/snapshot.rs

/root/repo/target/release/deps/libcim_bench-49a5ee3bcbb6d7f2.rlib: crates/bench/src/lib.rs crates/bench/src/snapshot.rs

/root/repo/target/release/deps/libcim_bench-49a5ee3bcbb6d7f2.rmeta: crates/bench/src/lib.rs crates/bench/src/snapshot.rs

crates/bench/src/lib.rs:
crates/bench/src/snapshot.rs:
