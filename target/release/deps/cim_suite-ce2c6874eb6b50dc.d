/root/repo/target/release/deps/cim_suite-ce2c6874eb6b50dc.d: src/lib.rs

/root/repo/target/release/deps/libcim_suite-ce2c6874eb6b50dc.rlib: src/lib.rs

/root/repo/target/release/deps/libcim_suite-ce2c6874eb6b50dc.rmeta: src/lib.rs

src/lib.rs:
