/root/repo/target/release/deps/cim_baselines-17aa01a550d4e84e.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/release/deps/libcim_baselines-17aa01a550d4e84e.rlib: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/release/deps/libcim_baselines-17aa01a550d4e84e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
