/root/repo/target/release/deps/cim_trace-d7f98ef88a0908c3.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/chrome.rs crates/trace/src/folded.rs crates/trace/src/json.rs crates/trace/src/summary.rs crates/trace/src/model.rs crates/trace/src/sink.rs crates/trace/src/tracer.rs

/root/repo/target/release/deps/libcim_trace-d7f98ef88a0908c3.rlib: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/chrome.rs crates/trace/src/folded.rs crates/trace/src/json.rs crates/trace/src/summary.rs crates/trace/src/model.rs crates/trace/src/sink.rs crates/trace/src/tracer.rs

/root/repo/target/release/deps/libcim_trace-d7f98ef88a0908c3.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/chrome.rs crates/trace/src/folded.rs crates/trace/src/json.rs crates/trace/src/summary.rs crates/trace/src/model.rs crates/trace/src/sink.rs crates/trace/src/tracer.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/chrome.rs:
crates/trace/src/folded.rs:
crates/trace/src/json.rs:
crates/trace/src/summary.rs:
crates/trace/src/model.rs:
crates/trace/src/sink.rs:
crates/trace/src/tracer.rs:
