/root/repo/target/release/deps/karatsuba_cim-535c286e30308e09.d: crates/core/src/lib.rs crates/core/src/chunks.rs crates/core/src/depth1.rs crates/core/src/cost.rs crates/core/src/multiplier.rs crates/core/src/multiply.rs crates/core/src/pipeline.rs crates/core/src/postcompute.rs crates/core/src/precompute.rs

/root/repo/target/release/deps/libkaratsuba_cim-535c286e30308e09.rlib: crates/core/src/lib.rs crates/core/src/chunks.rs crates/core/src/depth1.rs crates/core/src/cost.rs crates/core/src/multiplier.rs crates/core/src/multiply.rs crates/core/src/pipeline.rs crates/core/src/postcompute.rs crates/core/src/precompute.rs

/root/repo/target/release/deps/libkaratsuba_cim-535c286e30308e09.rmeta: crates/core/src/lib.rs crates/core/src/chunks.rs crates/core/src/depth1.rs crates/core/src/cost.rs crates/core/src/multiplier.rs crates/core/src/multiply.rs crates/core/src/pipeline.rs crates/core/src/postcompute.rs crates/core/src/precompute.rs

crates/core/src/lib.rs:
crates/core/src/chunks.rs:
crates/core/src/depth1.rs:
crates/core/src/cost.rs:
crates/core/src/multiplier.rs:
crates/core/src/multiply.rs:
crates/core/src/pipeline.rs:
crates/core/src/postcompute.rs:
crates/core/src/precompute.rs:
