/root/repo/target/release/deps/cim_sched-86fc8936cc7d84d5.d: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

/root/repo/target/release/deps/libcim_sched-86fc8936cc7d84d5.rlib: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

/root/repo/target/release/deps/libcim_sched-86fc8936cc7d84d5.rmeta: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

crates/sched/src/lib.rs:
crates/sched/src/batch.rs:
crates/sched/src/job.rs:
crates/sched/src/metrics.rs:
crates/sched/src/policy.rs:
crates/sched/src/profile.rs:
crates/sched/src/report.rs:
crates/sched/src/scheduler.rs:
crates/sched/src/tile.rs:
