/root/repo/target/release/deps/fig4-5ad032d581ee415d.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-5ad032d581ee415d: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
