/root/repo/target/release/deps/bench_check-3023b6ead92bc833.d: crates/bench/src/bin/bench_check.rs

/root/repo/target/release/deps/bench_check-3023b6ead92bc833: crates/bench/src/bin/bench_check.rs

crates/bench/src/bin/bench_check.rs:
