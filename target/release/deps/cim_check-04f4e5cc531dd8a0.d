/root/repo/target/release/deps/cim_check-04f4e5cc531dd8a0.d: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

/root/repo/target/release/deps/libcim_check-04f4e5cc531dd8a0.rlib: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

/root/repo/target/release/deps/libcim_check-04f4e5cc531dd8a0.rmeta: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

crates/check/src/lib.rs:
crates/check/src/gen.rs:
crates/check/src/gold.rs:
crates/check/src/pressure.rs:
crates/check/src/verify.rs:
