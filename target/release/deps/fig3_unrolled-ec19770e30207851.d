/root/repo/target/release/deps/fig3_unrolled-ec19770e30207851.d: crates/bench/src/bin/fig3_unrolled.rs

/root/repo/target/release/deps/fig3_unrolled-ec19770e30207851: crates/bench/src/bin/fig3_unrolled.rs

crates/bench/src/bin/fig3_unrolled.rs:
