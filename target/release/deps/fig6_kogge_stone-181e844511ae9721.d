/root/repo/target/release/deps/fig6_kogge_stone-181e844511ae9721.d: crates/bench/src/bin/fig6_kogge_stone.rs

/root/repo/target/release/deps/fig6_kogge_stone-181e844511ae9721: crates/bench/src/bin/fig6_kogge_stone.rs

crates/bench/src/bin/fig6_kogge_stone.rs:
