/root/repo/target/release/deps/sweep-d331a30897238e68.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-d331a30897238e68: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
