/root/repo/target/release/deps/stage_profile-ca9131431037fb90.d: crates/bench/src/bin/stage_profile.rs

/root/repo/target/release/deps/stage_profile-ca9131431037fb90: crates/bench/src/bin/stage_profile.rs

crates/bench/src/bin/stage_profile.rs:
