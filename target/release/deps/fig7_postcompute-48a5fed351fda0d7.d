/root/repo/target/release/deps/fig7_postcompute-48a5fed351fda0d7.d: crates/bench/src/bin/fig7_postcompute.rs

/root/repo/target/release/deps/fig7_postcompute-48a5fed351fda0d7: crates/bench/src/bin/fig7_postcompute.rs

crates/bench/src/bin/fig7_postcompute.rs:
