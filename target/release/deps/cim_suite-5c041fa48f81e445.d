/root/repo/target/release/deps/cim_suite-5c041fa48f81e445.d: src/lib.rs

/root/repo/target/release/deps/cim_suite-5c041fa48f81e445: src/lib.rs

src/lib.rs:
