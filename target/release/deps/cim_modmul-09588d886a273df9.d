/root/repo/target/release/deps/cim_modmul-09588d886a273df9.d: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

/root/repo/target/release/deps/libcim_modmul-09588d886a273df9.rlib: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

/root/repo/target/release/deps/libcim_modmul-09588d886a273df9.rmeta: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

crates/modmul/src/lib.rs:
crates/modmul/src/barrett.rs:
crates/modmul/src/ec.rs:
crates/modmul/src/fields.rs:
crates/modmul/src/inmemory.rs:
crates/modmul/src/montgomery.rs:
crates/modmul/src/sparse.rs:
