/root/repo/target/release/deps/simulate-9a01f343e86655f9.d: crates/bench/src/bin/simulate.rs

/root/repo/target/release/deps/simulate-9a01f343e86655f9: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
