/root/repo/target/release/deps/cim_sched-b975ac036fabd01d.d: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

/root/repo/target/release/deps/libcim_sched-b975ac036fabd01d.rlib: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

/root/repo/target/release/deps/libcim_sched-b975ac036fabd01d.rmeta: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

crates/sched/src/lib.rs:
crates/sched/src/batch.rs:
crates/sched/src/job.rs:
crates/sched/src/policy.rs:
crates/sched/src/profile.rs:
crates/sched/src/report.rs:
crates/sched/src/scheduler.rs:
crates/sched/src/tile.rs:
