/root/repo/target/release/deps/cim_metrics-40e881c75c65718a.d: crates/metrics/src/lib.rs crates/metrics/src/bridge.rs crates/metrics/src/histogram.rs crates/metrics/src/jsonval.rs crates/metrics/src/labels.rs crates/metrics/src/prometheus.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs

/root/repo/target/release/deps/libcim_metrics-40e881c75c65718a.rlib: crates/metrics/src/lib.rs crates/metrics/src/bridge.rs crates/metrics/src/histogram.rs crates/metrics/src/jsonval.rs crates/metrics/src/labels.rs crates/metrics/src/prometheus.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs

/root/repo/target/release/deps/libcim_metrics-40e881c75c65718a.rmeta: crates/metrics/src/lib.rs crates/metrics/src/bridge.rs crates/metrics/src/histogram.rs crates/metrics/src/jsonval.rs crates/metrics/src/labels.rs crates/metrics/src/prometheus.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs

crates/metrics/src/lib.rs:
crates/metrics/src/bridge.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/jsonval.rs:
crates/metrics/src/labels.rs:
crates/metrics/src/prometheus.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/snapshot.rs:
