/root/repo/target/release/deps/energy_table-266534fd7f36b877.d: crates/bench/src/bin/energy_table.rs

/root/repo/target/release/deps/energy_table-266534fd7f36b877: crates/bench/src/bin/energy_table.rs

crates/bench/src/bin/energy_table.rs:
