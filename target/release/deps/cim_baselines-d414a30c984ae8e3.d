/root/repo/target/release/deps/cim_baselines-d414a30c984ae8e3.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/release/deps/libcim_baselines-d414a30c984ae8e3.rlib: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/release/deps/libcim_baselines-d414a30c984ae8e3.rmeta: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
