/root/repo/target/release/deps/cim_ntt-5edacafcfb796698.d: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

/root/repo/target/release/deps/libcim_ntt-5edacafcfb796698.rlib: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

/root/repo/target/release/deps/libcim_ntt-5edacafcfb796698.rmeta: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

crates/ntt/src/lib.rs:
crates/ntt/src/cost.rs:
crates/ntt/src/field.rs:
crates/ntt/src/ntt.rs:
crates/ntt/src/poly.rs:
crates/ntt/src/rns.rs:
crates/ntt/src/rns_poly.rs:
