/root/repo/target/release/deps/paper_claims-d80e1154f6e92399.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-d80e1154f6e92399: tests/paper_claims.rs

tests/paper_claims.rs:
