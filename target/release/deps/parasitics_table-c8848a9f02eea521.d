/root/repo/target/release/deps/parasitics_table-c8848a9f02eea521.d: crates/bench/src/bin/parasitics_table.rs

/root/repo/target/release/deps/parasitics_table-c8848a9f02eea521: crates/bench/src/bin/parasitics_table.rs

crates/bench/src/bin/parasitics_table.rs:
