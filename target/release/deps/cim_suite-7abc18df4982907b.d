/root/repo/target/release/deps/cim_suite-7abc18df4982907b.d: src/lib.rs

/root/repo/target/release/deps/libcim_suite-7abc18df4982907b.rlib: src/lib.rs

/root/repo/target/release/deps/libcim_suite-7abc18df4982907b.rmeta: src/lib.rs

src/lib.rs:
