/root/repo/target/release/deps/extensions-cdaf882dee7dae05.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-cdaf882dee7dae05: tests/extensions.rs

tests/extensions.rs:
