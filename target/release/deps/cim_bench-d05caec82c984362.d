/root/repo/target/release/deps/cim_bench-d05caec82c984362.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcim_bench-d05caec82c984362.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcim_bench-d05caec82c984362.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
