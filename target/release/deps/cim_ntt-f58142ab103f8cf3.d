/root/repo/target/release/deps/cim_ntt-f58142ab103f8cf3.d: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

/root/repo/target/release/deps/libcim_ntt-f58142ab103f8cf3.rlib: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

/root/repo/target/release/deps/libcim_ntt-f58142ab103f8cf3.rmeta: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

crates/ntt/src/lib.rs:
crates/ntt/src/cost.rs:
crates/ntt/src/field.rs:
crates/ntt/src/ntt.rs:
crates/ntt/src/poly.rs:
crates/ntt/src/rns.rs:
crates/ntt/src/rns_poly.rs:
