/root/repo/target/release/deps/fig5_pipeline-1ba8256bdf083194.d: crates/bench/src/bin/fig5_pipeline.rs

/root/repo/target/release/deps/fig5_pipeline-1ba8256bdf083194: crates/bench/src/bin/fig5_pipeline.rs

crates/bench/src/bin/fig5_pipeline.rs:
