/root/repo/target/release/deps/cim_suite-516ad0b2007f4129.d: src/lib.rs

/root/repo/target/release/deps/libcim_suite-516ad0b2007f4129.rlib: src/lib.rs

/root/repo/target/release/deps/libcim_suite-516ad0b2007f4129.rmeta: src/lib.rs

src/lib.rs:
