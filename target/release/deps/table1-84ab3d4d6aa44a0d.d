/root/repo/target/release/deps/table1-84ab3d4d6aa44a0d.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-84ab3d4d6aa44a0d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
