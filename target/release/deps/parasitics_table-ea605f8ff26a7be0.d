/root/repo/target/release/deps/parasitics_table-ea605f8ff26a7be0.d: crates/bench/src/bin/parasitics_table.rs

/root/repo/target/release/deps/parasitics_table-ea605f8ff26a7be0: crates/bench/src/bin/parasitics_table.rs

crates/bench/src/bin/parasitics_table.rs:
