/root/repo/target/release/deps/fig2_tree-d9f17471998cf217.d: crates/bench/src/bin/fig2_tree.rs

/root/repo/target/release/deps/fig2_tree-d9f17471998cf217: crates/bench/src/bin/fig2_tree.rs

crates/bench/src/bin/fig2_tree.rs:
