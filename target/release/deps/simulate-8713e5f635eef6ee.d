/root/repo/target/release/deps/simulate-8713e5f635eef6ee.d: crates/bench/src/bin/simulate.rs

/root/repo/target/release/deps/simulate-8713e5f635eef6ee: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
