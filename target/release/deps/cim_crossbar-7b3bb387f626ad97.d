/root/repo/target/release/deps/cim_crossbar-7b3bb387f626ad97.d: crates/crossbar/src/lib.rs crates/crossbar/src/array.rs crates/crossbar/src/cell.rs crates/crossbar/src/endurance.rs crates/crossbar/src/energy.rs crates/crossbar/src/error.rs crates/crossbar/src/exec.rs crates/crossbar/src/geometry.rs crates/crossbar/src/isa.rs crates/crossbar/src/parasitics.rs crates/crossbar/src/stats.rs

/root/repo/target/release/deps/libcim_crossbar-7b3bb387f626ad97.rlib: crates/crossbar/src/lib.rs crates/crossbar/src/array.rs crates/crossbar/src/cell.rs crates/crossbar/src/endurance.rs crates/crossbar/src/energy.rs crates/crossbar/src/error.rs crates/crossbar/src/exec.rs crates/crossbar/src/geometry.rs crates/crossbar/src/isa.rs crates/crossbar/src/parasitics.rs crates/crossbar/src/stats.rs

/root/repo/target/release/deps/libcim_crossbar-7b3bb387f626ad97.rmeta: crates/crossbar/src/lib.rs crates/crossbar/src/array.rs crates/crossbar/src/cell.rs crates/crossbar/src/endurance.rs crates/crossbar/src/energy.rs crates/crossbar/src/error.rs crates/crossbar/src/exec.rs crates/crossbar/src/geometry.rs crates/crossbar/src/isa.rs crates/crossbar/src/parasitics.rs crates/crossbar/src/stats.rs

crates/crossbar/src/lib.rs:
crates/crossbar/src/array.rs:
crates/crossbar/src/cell.rs:
crates/crossbar/src/endurance.rs:
crates/crossbar/src/energy.rs:
crates/crossbar/src/error.rs:
crates/crossbar/src/exec.rs:
crates/crossbar/src/geometry.rs:
crates/crossbar/src/isa.rs:
crates/crossbar/src/parasitics.rs:
crates/crossbar/src/stats.rs:
