/root/repo/target/release/deps/bench_snapshot-b1554866b8919104.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/release/deps/bench_snapshot-b1554866b8919104: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
