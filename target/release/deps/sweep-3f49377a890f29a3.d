/root/repo/target/release/deps/sweep-3f49377a890f29a3.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-3f49377a890f29a3: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
