/root/repo/target/release/deps/cim_bench-3feb91011e9d2415.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcim_bench-3feb91011e9d2415.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcim_bench-3feb91011e9d2415.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
