/root/repo/target/release/deps/cim_bigint-5090dff5fd85010d.d: crates/bigint/src/lib.rs crates/bigint/src/add.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/error.rs crates/bigint/src/gcd.rs crates/bigint/src/int.rs crates/bigint/src/prime.rs crates/bigint/src/mul/mod.rs crates/bigint/src/mul/karatsuba.rs crates/bigint/src/mul/karatsuba_unrolled.rs crates/bigint/src/mul/schoolbook.rs crates/bigint/src/mul/toom.rs crates/bigint/src/opcount.rs crates/bigint/src/ops.rs crates/bigint/src/rng.rs crates/bigint/src/shift.rs crates/bigint/src/uint.rs

/root/repo/target/release/deps/libcim_bigint-5090dff5fd85010d.rlib: crates/bigint/src/lib.rs crates/bigint/src/add.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/error.rs crates/bigint/src/gcd.rs crates/bigint/src/int.rs crates/bigint/src/prime.rs crates/bigint/src/mul/mod.rs crates/bigint/src/mul/karatsuba.rs crates/bigint/src/mul/karatsuba_unrolled.rs crates/bigint/src/mul/schoolbook.rs crates/bigint/src/mul/toom.rs crates/bigint/src/opcount.rs crates/bigint/src/ops.rs crates/bigint/src/rng.rs crates/bigint/src/shift.rs crates/bigint/src/uint.rs

/root/repo/target/release/deps/libcim_bigint-5090dff5fd85010d.rmeta: crates/bigint/src/lib.rs crates/bigint/src/add.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/error.rs crates/bigint/src/gcd.rs crates/bigint/src/int.rs crates/bigint/src/prime.rs crates/bigint/src/mul/mod.rs crates/bigint/src/mul/karatsuba.rs crates/bigint/src/mul/karatsuba_unrolled.rs crates/bigint/src/mul/schoolbook.rs crates/bigint/src/mul/toom.rs crates/bigint/src/opcount.rs crates/bigint/src/ops.rs crates/bigint/src/rng.rs crates/bigint/src/shift.rs crates/bigint/src/uint.rs

crates/bigint/src/lib.rs:
crates/bigint/src/add.rs:
crates/bigint/src/convert.rs:
crates/bigint/src/div.rs:
crates/bigint/src/error.rs:
crates/bigint/src/gcd.rs:
crates/bigint/src/int.rs:
crates/bigint/src/prime.rs:
crates/bigint/src/mul/mod.rs:
crates/bigint/src/mul/karatsuba.rs:
crates/bigint/src/mul/karatsuba_unrolled.rs:
crates/bigint/src/mul/schoolbook.rs:
crates/bigint/src/mul/toom.rs:
crates/bigint/src/opcount.rs:
crates/bigint/src/ops.rs:
crates/bigint/src/rng.rs:
crates/bigint/src/shift.rs:
crates/bigint/src/uint.rs:
