/root/repo/target/release/deps/cim_modmul-b43cba63bf919703.d: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

/root/repo/target/release/deps/libcim_modmul-b43cba63bf919703.rlib: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

/root/repo/target/release/deps/libcim_modmul-b43cba63bf919703.rmeta: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

crates/modmul/src/lib.rs:
crates/modmul/src/barrett.rs:
crates/modmul/src/ec.rs:
crates/modmul/src/fields.rs:
crates/modmul/src/inmemory.rs:
crates/modmul/src/montgomery.rs:
crates/modmul/src/sparse.rs:
