/root/repo/target/release/deps/fig3_unrolled-5e75a7daf05a9d9a.d: crates/bench/src/bin/fig3_unrolled.rs

/root/repo/target/release/deps/fig3_unrolled-5e75a7daf05a9d9a: crates/bench/src/bin/fig3_unrolled.rs

crates/bench/src/bin/fig3_unrolled.rs:
