/root/repo/target/release/deps/simulate-bb434e4aa647eccd.d: crates/bench/src/bin/simulate.rs

/root/repo/target/release/deps/simulate-bb434e4aa647eccd: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
