/root/repo/target/release/deps/farm_sweep-d2288495786cb647.d: crates/bench/src/bin/farm_sweep.rs

/root/repo/target/release/deps/farm_sweep-d2288495786cb647: crates/bench/src/bin/farm_sweep.rs

crates/bench/src/bin/farm_sweep.rs:
