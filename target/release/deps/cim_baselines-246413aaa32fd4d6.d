/root/repo/target/release/deps/cim_baselines-246413aaa32fd4d6.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/release/deps/libcim_baselines-246413aaa32fd4d6.rlib: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/release/deps/libcim_baselines-246413aaa32fd4d6.rmeta: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
