/root/repo/target/release/deps/cim_logic-1409a119564d2a5b.d: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs

/root/repo/target/release/deps/libcim_logic-1409a119564d2a5b.rlib: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs

/root/repo/target/release/deps/libcim_logic-1409a119564d2a5b.rmeta: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs

crates/logic/src/lib.rs:
crates/logic/src/condsub.rs:
crates/logic/src/gates.rs:
crates/logic/src/kogge_stone.rs:
crates/logic/src/magic_schoolbook.rs:
crates/logic/src/multpim.rs:
crates/logic/src/program.rs:
crates/logic/src/ripple.rs:
crates/logic/src/tmr.rs:
