/root/repo/target/release/deps/cim_baselines-df02323ffe69e812.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/release/deps/libcim_baselines-df02323ffe69e812.rlib: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/release/deps/libcim_baselines-df02323ffe69e812.rmeta: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
