/root/repo/target/release/deps/table1-b1dee0f319756025.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-b1dee0f319756025: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
