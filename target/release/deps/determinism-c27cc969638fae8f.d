/root/repo/target/release/deps/determinism-c27cc969638fae8f.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-c27cc969638fae8f: tests/determinism.rs

tests/determinism.rs:
