/root/repo/target/release/deps/fig2_tree-5fa4d8026a7c836c.d: crates/bench/src/bin/fig2_tree.rs

/root/repo/target/release/deps/fig2_tree-5fa4d8026a7c836c: crates/bench/src/bin/fig2_tree.rs

crates/bench/src/bin/fig2_tree.rs:
