/root/repo/target/release/deps/trace_dump-ece01d28abe947b3.d: crates/bench/src/bin/trace_dump.rs

/root/repo/target/release/deps/trace_dump-ece01d28abe947b3: crates/bench/src/bin/trace_dump.rs

crates/bench/src/bin/trace_dump.rs:
