/root/repo/target/release/deps/fault_tolerance-c1c01f349a5d7bd0.d: tests/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-c1c01f349a5d7bd0: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
