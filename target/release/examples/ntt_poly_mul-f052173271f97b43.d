/root/repo/target/release/examples/ntt_poly_mul-f052173271f97b43.d: examples/ntt_poly_mul.rs

/root/repo/target/release/examples/ntt_poly_mul-f052173271f97b43: examples/ntt_poly_mul.rs

examples/ntt_poly_mul.rs:
