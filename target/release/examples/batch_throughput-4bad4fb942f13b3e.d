/root/repo/target/release/examples/batch_throughput-4bad4fb942f13b3e.d: examples/batch_throughput.rs

/root/repo/target/release/examples/batch_throughput-4bad4fb942f13b3e: examples/batch_throughput.rs

examples/batch_throughput.rs:
