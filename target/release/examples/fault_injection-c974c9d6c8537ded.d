/root/repo/target/release/examples/fault_injection-c974c9d6c8537ded.d: examples/fault_injection.rs

/root/repo/target/release/examples/fault_injection-c974c9d6c8537ded: examples/fault_injection.rs

examples/fault_injection.rs:
