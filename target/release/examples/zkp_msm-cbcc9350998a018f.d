/root/repo/target/release/examples/zkp_msm-cbcc9350998a018f.d: examples/zkp_msm.rs

/root/repo/target/release/examples/zkp_msm-cbcc9350998a018f: examples/zkp_msm.rs

examples/zkp_msm.rs:
