/root/repo/target/release/examples/endurance-f619e5012c2900fa.d: examples/endurance.rs

/root/repo/target/release/examples/endurance-f619e5012c2900fa: examples/endurance.rs

examples/endurance.rs:
