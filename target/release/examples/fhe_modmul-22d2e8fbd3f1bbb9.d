/root/repo/target/release/examples/fhe_modmul-22d2e8fbd3f1bbb9.d: examples/fhe_modmul.rs

/root/repo/target/release/examples/fhe_modmul-22d2e8fbd3f1bbb9: examples/fhe_modmul.rs

examples/fhe_modmul.rs:
