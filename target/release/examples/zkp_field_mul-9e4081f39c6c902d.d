/root/repo/target/release/examples/zkp_field_mul-9e4081f39c6c902d.d: examples/zkp_field_mul.rs

/root/repo/target/release/examples/zkp_field_mul-9e4081f39c6c902d: examples/zkp_field_mul.rs

examples/zkp_field_mul.rs:
