/root/repo/target/release/examples/trace_multiply-14edfc95241248be.d: examples/trace_multiply.rs

/root/repo/target/release/examples/trace_multiply-14edfc95241248be: examples/trace_multiply.rs

examples/trace_multiply.rs:
