/root/repo/target/release/examples/quickstart-20e66562471c5cf1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-20e66562471c5cf1: examples/quickstart.rs

examples/quickstart.rs:
