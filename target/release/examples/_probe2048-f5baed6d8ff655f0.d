/root/repo/target/release/examples/_probe2048-f5baed6d8ff655f0.d: examples/_probe2048.rs

/root/repo/target/release/examples/_probe2048-f5baed6d8ff655f0: examples/_probe2048.rs

examples/_probe2048.rs:
