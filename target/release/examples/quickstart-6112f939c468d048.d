/root/repo/target/release/examples/quickstart-6112f939c468d048.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6112f939c468d048: examples/quickstart.rs

examples/quickstart.rs:
