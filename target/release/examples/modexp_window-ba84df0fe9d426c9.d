/root/repo/target/release/examples/modexp_window-ba84df0fe9d426c9.d: examples/modexp_window.rs

/root/repo/target/release/examples/modexp_window-ba84df0fe9d426c9: examples/modexp_window.rs

examples/modexp_window.rs:
