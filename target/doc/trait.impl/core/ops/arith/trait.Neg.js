(function() {
    const implementors = Object.fromEntries([["cim_bigint",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Neg.html\" title=\"trait core::ops::arith::Neg\">Neg</a> for &amp;<a class=\"struct\" href=\"cim_bigint/struct.Int.html\" title=\"struct cim_bigint::Int\">Int</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Neg.html\" title=\"trait core::ops::arith::Neg\">Neg</a> for <a class=\"struct\" href=\"cim_bigint/struct.Int.html\" title=\"struct cim_bigint::Int\">Int</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[519]}