(function() {
    const implementors = Object.fromEntries([["cim_bigint",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/bit/trait.Shl.html\" title=\"trait core::ops::bit::Shl\">Shl</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.usize.html\">usize</a>&gt; for &amp;<a class=\"struct\" href=\"cim_bigint/struct.Uint.html\" title=\"struct cim_bigint::Uint\">Uint</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/bit/trait.Shl.html\" title=\"trait core::ops::bit::Shl\">Shl</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.usize.html\">usize</a>&gt; for <a class=\"struct\" href=\"cim_bigint/struct.Uint.html\" title=\"struct cim_bigint::Uint\">Uint</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[731]}