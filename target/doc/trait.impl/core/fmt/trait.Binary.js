(function() {
    const implementors = Object.fromEntries([["cim_bigint",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/fmt/trait.Binary.html\" title=\"trait core::fmt::Binary\">Binary</a> for <a class=\"struct\" href=\"cim_bigint/struct.Uint.html\" title=\"struct cim_bigint::Uint\">Uint</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[264]}