/root/repo/target/debug/deps/energy_table-af352e18894b3ab6.d: crates/bench/src/bin/energy_table.rs

/root/repo/target/debug/deps/energy_table-af352e18894b3ab6: crates/bench/src/bin/energy_table.rs

crates/bench/src/bin/energy_table.rs:
