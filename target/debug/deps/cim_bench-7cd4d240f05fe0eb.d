/root/repo/target/debug/deps/cim_bench-7cd4d240f05fe0eb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcim_bench-7cd4d240f05fe0eb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcim_bench-7cd4d240f05fe0eb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
