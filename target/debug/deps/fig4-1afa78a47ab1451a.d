/root/repo/target/debug/deps/fig4-1afa78a47ab1451a.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-1afa78a47ab1451a.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
