/root/repo/target/debug/deps/stage_profile-312996f1d51dc1b0.d: crates/bench/src/bin/stage_profile.rs

/root/repo/target/debug/deps/stage_profile-312996f1d51dc1b0: crates/bench/src/bin/stage_profile.rs

crates/bench/src/bin/stage_profile.rs:
