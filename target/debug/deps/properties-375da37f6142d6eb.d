/root/repo/target/debug/deps/properties-375da37f6142d6eb.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-375da37f6142d6eb.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
