/root/repo/target/debug/deps/properties-64710f157d1bf837.d: crates/logic/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-64710f157d1bf837.rmeta: crates/logic/tests/properties.rs Cargo.toml

crates/logic/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
