/root/repo/target/debug/deps/algos-feb119f53d6851d3.d: crates/bench/benches/algos.rs Cargo.toml

/root/repo/target/debug/deps/libalgos-feb119f53d6851d3.rmeta: crates/bench/benches/algos.rs Cargo.toml

crates/bench/benches/algos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
