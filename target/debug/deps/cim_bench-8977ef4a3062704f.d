/root/repo/target/debug/deps/cim_bench-8977ef4a3062704f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcim_bench-8977ef4a3062704f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
