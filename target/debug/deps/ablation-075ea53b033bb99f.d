/root/repo/target/debug/deps/ablation-075ea53b033bb99f.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-075ea53b033bb99f: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
