/root/repo/target/debug/deps/fig5_pipeline-6d56c993e2b3d1fe.d: crates/bench/src/bin/fig5_pipeline.rs

/root/repo/target/debug/deps/fig5_pipeline-6d56c993e2b3d1fe: crates/bench/src/bin/fig5_pipeline.rs

crates/bench/src/bin/fig5_pipeline.rs:
