/root/repo/target/debug/deps/mutants-e700687a4cd77150.d: crates/check/tests/mutants.rs

/root/repo/target/debug/deps/mutants-e700687a4cd77150: crates/check/tests/mutants.rs

crates/check/tests/mutants.rs:
