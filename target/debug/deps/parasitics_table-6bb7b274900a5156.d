/root/repo/target/debug/deps/parasitics_table-6bb7b274900a5156.d: crates/bench/src/bin/parasitics_table.rs

/root/repo/target/debug/deps/parasitics_table-6bb7b274900a5156: crates/bench/src/bin/parasitics_table.rs

crates/bench/src/bin/parasitics_table.rs:
