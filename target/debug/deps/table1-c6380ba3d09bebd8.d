/root/repo/target/debug/deps/table1-c6380ba3d09bebd8.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c6380ba3d09bebd8: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
