/root/repo/target/debug/deps/cim_bench-26dd3570f7fde7f9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcim_bench-26dd3570f7fde7f9.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcim_bench-26dd3570f7fde7f9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
