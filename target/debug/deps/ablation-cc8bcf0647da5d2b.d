/root/repo/target/debug/deps/ablation-cc8bcf0647da5d2b.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-cc8bcf0647da5d2b.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
