/root/repo/target/debug/deps/extensions-68740554d2d59cb1.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-68740554d2d59cb1: tests/extensions.rs

tests/extensions.rs:
