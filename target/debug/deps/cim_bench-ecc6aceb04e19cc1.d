/root/repo/target/debug/deps/cim_bench-ecc6aceb04e19cc1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcim_bench-ecc6aceb04e19cc1.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcim_bench-ecc6aceb04e19cc1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
