/root/repo/target/debug/deps/differential-5337a34be200bf58.d: crates/check/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-5337a34be200bf58.rmeta: crates/check/tests/differential.rs Cargo.toml

crates/check/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
