/root/repo/target/debug/deps/modmul-fed34ae190ba2f7f.d: crates/bench/benches/modmul.rs

/root/repo/target/debug/deps/modmul-fed34ae190ba2f7f: crates/bench/benches/modmul.rs

crates/bench/benches/modmul.rs:
