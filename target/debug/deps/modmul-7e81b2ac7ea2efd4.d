/root/repo/target/debug/deps/modmul-7e81b2ac7ea2efd4.d: crates/bench/benches/modmul.rs Cargo.toml

/root/repo/target/debug/deps/libmodmul-7e81b2ac7ea2efd4.rmeta: crates/bench/benches/modmul.rs Cargo.toml

crates/bench/benches/modmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
