/root/repo/target/debug/deps/ntt-5f1466fd0e8ff823.d: crates/bench/benches/ntt.rs Cargo.toml

/root/repo/target/debug/deps/libntt-5f1466fd0e8ff823.rmeta: crates/bench/benches/ntt.rs Cargo.toml

crates/bench/benches/ntt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
