/root/repo/target/debug/deps/histogram_properties-95ac5980e81925ca.d: crates/metrics/tests/histogram_properties.rs

/root/repo/target/debug/deps/histogram_properties-95ac5980e81925ca: crates/metrics/tests/histogram_properties.rs

crates/metrics/tests/histogram_properties.rs:
