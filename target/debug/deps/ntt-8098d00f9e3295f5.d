/root/repo/target/debug/deps/ntt-8098d00f9e3295f5.d: crates/bench/benches/ntt.rs

/root/repo/target/debug/deps/ntt-8098d00f9e3295f5: crates/bench/benches/ntt.rs

crates/bench/benches/ntt.rs:
