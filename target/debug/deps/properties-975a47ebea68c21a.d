/root/repo/target/debug/deps/properties-975a47ebea68c21a.d: crates/crossbar/tests/properties.rs

/root/repo/target/debug/deps/properties-975a47ebea68c21a: crates/crossbar/tests/properties.rs

crates/crossbar/tests/properties.rs:
