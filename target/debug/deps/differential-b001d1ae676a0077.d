/root/repo/target/debug/deps/differential-b001d1ae676a0077.d: crates/check/tests/differential.rs

/root/repo/target/debug/deps/differential-b001d1ae676a0077: crates/check/tests/differential.rs

crates/check/tests/differential.rs:
