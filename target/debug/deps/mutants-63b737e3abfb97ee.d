/root/repo/target/debug/deps/mutants-63b737e3abfb97ee.d: crates/check/tests/mutants.rs

/root/repo/target/debug/deps/mutants-63b737e3abfb97ee: crates/check/tests/mutants.rs

crates/check/tests/mutants.rs:
