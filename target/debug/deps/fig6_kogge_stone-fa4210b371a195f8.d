/root/repo/target/debug/deps/fig6_kogge_stone-fa4210b371a195f8.d: crates/bench/src/bin/fig6_kogge_stone.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_kogge_stone-fa4210b371a195f8.rmeta: crates/bench/src/bin/fig6_kogge_stone.rs Cargo.toml

crates/bench/src/bin/fig6_kogge_stone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
