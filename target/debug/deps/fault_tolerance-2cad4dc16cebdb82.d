/root/repo/target/debug/deps/fault_tolerance-2cad4dc16cebdb82.d: tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-2cad4dc16cebdb82.rmeta: tests/fault_tolerance.rs Cargo.toml

tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
