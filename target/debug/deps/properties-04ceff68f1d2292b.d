/root/repo/target/debug/deps/properties-04ceff68f1d2292b.d: crates/crossbar/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-04ceff68f1d2292b.rmeta: crates/crossbar/tests/properties.rs Cargo.toml

crates/crossbar/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
