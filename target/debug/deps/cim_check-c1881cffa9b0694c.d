/root/repo/target/debug/deps/cim_check-c1881cffa9b0694c.d: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libcim_check-c1881cffa9b0694c.rmeta: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs Cargo.toml

crates/check/src/lib.rs:
crates/check/src/gen.rs:
crates/check/src/gold.rs:
crates/check/src/pressure.rs:
crates/check/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
