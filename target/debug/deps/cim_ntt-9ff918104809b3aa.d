/root/repo/target/debug/deps/cim_ntt-9ff918104809b3aa.d: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

/root/repo/target/debug/deps/cim_ntt-9ff918104809b3aa: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

crates/ntt/src/lib.rs:
crates/ntt/src/cost.rs:
crates/ntt/src/field.rs:
crates/ntt/src/ntt.rs:
crates/ntt/src/poly.rs:
crates/ntt/src/rns.rs:
crates/ntt/src/rns_poly.rs:
