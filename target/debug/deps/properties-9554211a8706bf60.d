/root/repo/target/debug/deps/properties-9554211a8706bf60.d: crates/logic/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-9554211a8706bf60.rmeta: crates/logic/tests/properties.rs Cargo.toml

crates/logic/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
