/root/repo/target/debug/deps/properties-6d35c6a4d25ab4d2.d: crates/crossbar/tests/properties.rs

/root/repo/target/debug/deps/properties-6d35c6a4d25ab4d2: crates/crossbar/tests/properties.rs

crates/crossbar/tests/properties.rs:
