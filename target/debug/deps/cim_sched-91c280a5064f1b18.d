/root/repo/target/debug/deps/cim_sched-91c280a5064f1b18.d: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

/root/repo/target/debug/deps/libcim_sched-91c280a5064f1b18.rlib: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

/root/repo/target/debug/deps/libcim_sched-91c280a5064f1b18.rmeta: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

crates/sched/src/lib.rs:
crates/sched/src/batch.rs:
crates/sched/src/job.rs:
crates/sched/src/policy.rs:
crates/sched/src/profile.rs:
crates/sched/src/report.rs:
crates/sched/src/scheduler.rs:
crates/sched/src/tile.rs:
