/root/repo/target/debug/deps/fig4-bd7345c9b61b6f1f.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-bd7345c9b61b6f1f: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
