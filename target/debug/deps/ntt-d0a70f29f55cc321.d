/root/repo/target/debug/deps/ntt-d0a70f29f55cc321.d: crates/bench/benches/ntt.rs Cargo.toml

/root/repo/target/debug/deps/libntt-d0a70f29f55cc321.rmeta: crates/bench/benches/ntt.rs Cargo.toml

crates/bench/benches/ntt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
