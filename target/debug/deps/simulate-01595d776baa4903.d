/root/repo/target/debug/deps/simulate-01595d776baa4903.d: crates/bench/src/bin/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libsimulate-01595d776baa4903.rmeta: crates/bench/src/bin/simulate.rs Cargo.toml

crates/bench/src/bin/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
