/root/repo/target/debug/deps/end_to_end-22b30757d2532212.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-22b30757d2532212: tests/end_to_end.rs

tests/end_to_end.rs:
