/root/repo/target/debug/deps/trace_dump-57787bafab903571.d: crates/bench/src/bin/trace_dump.rs

/root/repo/target/debug/deps/trace_dump-57787bafab903571: crates/bench/src/bin/trace_dump.rs

crates/bench/src/bin/trace_dump.rs:
