/root/repo/target/debug/deps/cim_logic-5ef3ce58d03e7ec6.d: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs

/root/repo/target/debug/deps/libcim_logic-5ef3ce58d03e7ec6.rlib: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs

/root/repo/target/debug/deps/libcim_logic-5ef3ce58d03e7ec6.rmeta: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs

crates/logic/src/lib.rs:
crates/logic/src/condsub.rs:
crates/logic/src/gates.rs:
crates/logic/src/kogge_stone.rs:
crates/logic/src/magic_schoolbook.rs:
crates/logic/src/multpim.rs:
crates/logic/src/program.rs:
crates/logic/src/ripple.rs:
crates/logic/src/tmr.rs:
