/root/repo/target/debug/deps/properties-35f9f8cbc0373b2b.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-35f9f8cbc0373b2b.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
