/root/repo/target/debug/deps/fig6_kogge_stone-60cfd1d6b2827165.d: crates/bench/src/bin/fig6_kogge_stone.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_kogge_stone-60cfd1d6b2827165.rmeta: crates/bench/src/bin/fig6_kogge_stone.rs Cargo.toml

crates/bench/src/bin/fig6_kogge_stone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
