/root/repo/target/debug/deps/fig7_postcompute-9051f08fede7b3bd.d: crates/bench/src/bin/fig7_postcompute.rs

/root/repo/target/debug/deps/fig7_postcompute-9051f08fede7b3bd: crates/bench/src/bin/fig7_postcompute.rs

crates/bench/src/bin/fig7_postcompute.rs:
