/root/repo/target/debug/deps/trace_dump-82f2bbdec76a5cdf.d: crates/bench/src/bin/trace_dump.rs

/root/repo/target/debug/deps/trace_dump-82f2bbdec76a5cdf: crates/bench/src/bin/trace_dump.rs

crates/bench/src/bin/trace_dump.rs:
