/root/repo/target/debug/deps/cim_suite-319f20bb5a50ed12.d: src/lib.rs

/root/repo/target/debug/deps/libcim_suite-319f20bb5a50ed12.rlib: src/lib.rs

/root/repo/target/debug/deps/libcim_suite-319f20bb5a50ed12.rmeta: src/lib.rs

src/lib.rs:
