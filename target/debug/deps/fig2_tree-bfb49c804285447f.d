/root/repo/target/debug/deps/fig2_tree-bfb49c804285447f.d: crates/bench/src/bin/fig2_tree.rs

/root/repo/target/debug/deps/fig2_tree-bfb49c804285447f: crates/bench/src/bin/fig2_tree.rs

crates/bench/src/bin/fig2_tree.rs:
