/root/repo/target/debug/deps/simulate-48fe4cd073090ef6.d: crates/bench/src/bin/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libsimulate-48fe4cd073090ef6.rmeta: crates/bench/src/bin/simulate.rs Cargo.toml

crates/bench/src/bin/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
