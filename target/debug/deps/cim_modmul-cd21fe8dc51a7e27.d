/root/repo/target/debug/deps/cim_modmul-cd21fe8dc51a7e27.d: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

/root/repo/target/debug/deps/libcim_modmul-cd21fe8dc51a7e27.rlib: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

/root/repo/target/debug/deps/libcim_modmul-cd21fe8dc51a7e27.rmeta: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

crates/modmul/src/lib.rs:
crates/modmul/src/barrett.rs:
crates/modmul/src/ec.rs:
crates/modmul/src/fields.rs:
crates/modmul/src/inmemory.rs:
crates/modmul/src/montgomery.rs:
crates/modmul/src/sparse.rs:
