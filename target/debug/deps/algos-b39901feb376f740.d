/root/repo/target/debug/deps/algos-b39901feb376f740.d: crates/bench/benches/algos.rs Cargo.toml

/root/repo/target/debug/deps/libalgos-b39901feb376f740.rmeta: crates/bench/benches/algos.rs Cargo.toml

crates/bench/benches/algos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
