/root/repo/target/debug/deps/cim_suite-038958eede8f8a6b.d: src/lib.rs

/root/repo/target/debug/deps/libcim_suite-038958eede8f8a6b.rlib: src/lib.rs

/root/repo/target/debug/deps/libcim_suite-038958eede8f8a6b.rmeta: src/lib.rs

src/lib.rs:
