/root/repo/target/debug/deps/sched-35efdae541bfd45d.d: crates/bench/benches/sched.rs Cargo.toml

/root/repo/target/debug/deps/libsched-35efdae541bfd45d.rmeta: crates/bench/benches/sched.rs Cargo.toml

crates/bench/benches/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
