/root/repo/target/debug/deps/fig5_pipeline-8fa84fbdf2c77583.d: crates/bench/src/bin/fig5_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_pipeline-8fa84fbdf2c77583.rmeta: crates/bench/src/bin/fig5_pipeline.rs Cargo.toml

crates/bench/src/bin/fig5_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
