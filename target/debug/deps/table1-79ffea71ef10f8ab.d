/root/repo/target/debug/deps/table1-79ffea71ef10f8ab.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-79ffea71ef10f8ab: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
