/root/repo/target/debug/deps/properties-f62f18747910b000.d: crates/baselines/tests/properties.rs

/root/repo/target/debug/deps/properties-f62f18747910b000: crates/baselines/tests/properties.rs

crates/baselines/tests/properties.rs:
