/root/repo/target/debug/deps/properties-9ac4153f1a5146cc.d: crates/modmul/tests/properties.rs

/root/repo/target/debug/deps/properties-9ac4153f1a5146cc: crates/modmul/tests/properties.rs

crates/modmul/tests/properties.rs:
