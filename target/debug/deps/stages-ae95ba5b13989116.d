/root/repo/target/debug/deps/stages-ae95ba5b13989116.d: crates/bench/benches/stages.rs Cargo.toml

/root/repo/target/debug/deps/libstages-ae95ba5b13989116.rmeta: crates/bench/benches/stages.rs Cargo.toml

crates/bench/benches/stages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
