/root/repo/target/debug/deps/extensions-75264390328071ad.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-75264390328071ad.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
