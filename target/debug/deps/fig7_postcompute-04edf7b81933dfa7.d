/root/repo/target/debug/deps/fig7_postcompute-04edf7b81933dfa7.d: crates/bench/src/bin/fig7_postcompute.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_postcompute-04edf7b81933dfa7.rmeta: crates/bench/src/bin/fig7_postcompute.rs Cargo.toml

crates/bench/src/bin/fig7_postcompute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
