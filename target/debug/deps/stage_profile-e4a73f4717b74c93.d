/root/repo/target/debug/deps/stage_profile-e4a73f4717b74c93.d: crates/bench/src/bin/stage_profile.rs Cargo.toml

/root/repo/target/debug/deps/libstage_profile-e4a73f4717b74c93.rmeta: crates/bench/src/bin/stage_profile.rs Cargo.toml

crates/bench/src/bin/stage_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
