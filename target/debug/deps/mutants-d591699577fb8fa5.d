/root/repo/target/debug/deps/mutants-d591699577fb8fa5.d: crates/check/tests/mutants.rs

/root/repo/target/debug/deps/mutants-d591699577fb8fa5: crates/check/tests/mutants.rs

crates/check/tests/mutants.rs:
