/root/repo/target/debug/deps/simulate-aff70b84166d339b.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-aff70b84166d339b: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
