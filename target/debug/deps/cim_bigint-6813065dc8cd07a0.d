/root/repo/target/debug/deps/cim_bigint-6813065dc8cd07a0.d: crates/bigint/src/lib.rs crates/bigint/src/add.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/error.rs crates/bigint/src/gcd.rs crates/bigint/src/int.rs crates/bigint/src/prime.rs crates/bigint/src/mul/mod.rs crates/bigint/src/mul/karatsuba.rs crates/bigint/src/mul/karatsuba_unrolled.rs crates/bigint/src/mul/schoolbook.rs crates/bigint/src/mul/toom.rs crates/bigint/src/opcount.rs crates/bigint/src/ops.rs crates/bigint/src/rng.rs crates/bigint/src/shift.rs crates/bigint/src/uint.rs

/root/repo/target/debug/deps/libcim_bigint-6813065dc8cd07a0.rmeta: crates/bigint/src/lib.rs crates/bigint/src/add.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/error.rs crates/bigint/src/gcd.rs crates/bigint/src/int.rs crates/bigint/src/prime.rs crates/bigint/src/mul/mod.rs crates/bigint/src/mul/karatsuba.rs crates/bigint/src/mul/karatsuba_unrolled.rs crates/bigint/src/mul/schoolbook.rs crates/bigint/src/mul/toom.rs crates/bigint/src/opcount.rs crates/bigint/src/ops.rs crates/bigint/src/rng.rs crates/bigint/src/shift.rs crates/bigint/src/uint.rs

crates/bigint/src/lib.rs:
crates/bigint/src/add.rs:
crates/bigint/src/convert.rs:
crates/bigint/src/div.rs:
crates/bigint/src/error.rs:
crates/bigint/src/gcd.rs:
crates/bigint/src/int.rs:
crates/bigint/src/prime.rs:
crates/bigint/src/mul/mod.rs:
crates/bigint/src/mul/karatsuba.rs:
crates/bigint/src/mul/karatsuba_unrolled.rs:
crates/bigint/src/mul/schoolbook.rs:
crates/bigint/src/mul/toom.rs:
crates/bigint/src/opcount.rs:
crates/bigint/src/ops.rs:
crates/bigint/src/rng.rs:
crates/bigint/src/shift.rs:
crates/bigint/src/uint.rs:
