/root/repo/target/debug/deps/algo_exploration-56d3b5f4312271eb.d: crates/bench/src/bin/algo_exploration.rs

/root/repo/target/debug/deps/algo_exploration-56d3b5f4312271eb: crates/bench/src/bin/algo_exploration.rs

crates/bench/src/bin/algo_exploration.rs:
