/root/repo/target/debug/deps/paper_claims-dcd1503e19b6195c.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-dcd1503e19b6195c: tests/paper_claims.rs

tests/paper_claims.rs:
