/root/repo/target/debug/deps/determinism-59b4d957d86d68b8.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-59b4d957d86d68b8: tests/determinism.rs

tests/determinism.rs:
