/root/repo/target/debug/deps/parasitics_table-31037a9c3868f18d.d: crates/bench/src/bin/parasitics_table.rs

/root/repo/target/debug/deps/parasitics_table-31037a9c3868f18d: crates/bench/src/bin/parasitics_table.rs

crates/bench/src/bin/parasitics_table.rs:
