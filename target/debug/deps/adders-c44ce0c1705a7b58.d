/root/repo/target/debug/deps/adders-c44ce0c1705a7b58.d: crates/bench/benches/adders.rs Cargo.toml

/root/repo/target/debug/deps/libadders-c44ce0c1705a7b58.rmeta: crates/bench/benches/adders.rs Cargo.toml

crates/bench/benches/adders.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
