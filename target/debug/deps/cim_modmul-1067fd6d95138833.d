/root/repo/target/debug/deps/cim_modmul-1067fd6d95138833.d: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

/root/repo/target/debug/deps/libcim_modmul-1067fd6d95138833.rlib: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

/root/repo/target/debug/deps/libcim_modmul-1067fd6d95138833.rmeta: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

crates/modmul/src/lib.rs:
crates/modmul/src/barrett.rs:
crates/modmul/src/ec.rs:
crates/modmul/src/fields.rs:
crates/modmul/src/inmemory.rs:
crates/modmul/src/montgomery.rs:
crates/modmul/src/sparse.rs:
