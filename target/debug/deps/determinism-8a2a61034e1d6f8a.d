/root/repo/target/debug/deps/determinism-8a2a61034e1d6f8a.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-8a2a61034e1d6f8a.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
