/root/repo/target/debug/deps/properties-c569d43c996ed73e.d: crates/modmul/tests/properties.rs

/root/repo/target/debug/deps/properties-c569d43c996ed73e: crates/modmul/tests/properties.rs

crates/modmul/tests/properties.rs:
