/root/repo/target/debug/deps/algos-3703c5882faed527.d: crates/bench/benches/algos.rs

/root/repo/target/debug/deps/algos-3703c5882faed527: crates/bench/benches/algos.rs

crates/bench/benches/algos.rs:
