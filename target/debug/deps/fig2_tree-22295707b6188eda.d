/root/repo/target/debug/deps/fig2_tree-22295707b6188eda.d: crates/bench/src/bin/fig2_tree.rs

/root/repo/target/debug/deps/fig2_tree-22295707b6188eda: crates/bench/src/bin/fig2_tree.rs

crates/bench/src/bin/fig2_tree.rs:
