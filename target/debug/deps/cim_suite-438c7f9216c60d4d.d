/root/repo/target/debug/deps/cim_suite-438c7f9216c60d4d.d: src/lib.rs

/root/repo/target/debug/deps/cim_suite-438c7f9216c60d4d: src/lib.rs

src/lib.rs:
