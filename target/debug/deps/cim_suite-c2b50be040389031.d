/root/repo/target/debug/deps/cim_suite-c2b50be040389031.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcim_suite-c2b50be040389031.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
