/root/repo/target/debug/deps/cim_suite-cb4f42705ad40110.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcim_suite-cb4f42705ad40110.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
