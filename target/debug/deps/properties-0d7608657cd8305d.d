/root/repo/target/debug/deps/properties-0d7608657cd8305d.d: crates/logic/tests/properties.rs

/root/repo/target/debug/deps/properties-0d7608657cd8305d: crates/logic/tests/properties.rs

crates/logic/tests/properties.rs:
