/root/repo/target/debug/deps/extensions-5e70d247a3d82d9d.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-5e70d247a3d82d9d.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
