/root/repo/target/debug/deps/sweep-00619b28205d6341.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-00619b28205d6341: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
