/root/repo/target/debug/deps/fig3_unrolled-e3d1eac8e259e31d.d: crates/bench/src/bin/fig3_unrolled.rs

/root/repo/target/debug/deps/fig3_unrolled-e3d1eac8e259e31d: crates/bench/src/bin/fig3_unrolled.rs

crates/bench/src/bin/fig3_unrolled.rs:
