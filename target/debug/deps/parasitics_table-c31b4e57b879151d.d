/root/repo/target/debug/deps/parasitics_table-c31b4e57b879151d.d: crates/bench/src/bin/parasitics_table.rs Cargo.toml

/root/repo/target/debug/deps/libparasitics_table-c31b4e57b879151d.rmeta: crates/bench/src/bin/parasitics_table.rs Cargo.toml

crates/bench/src/bin/parasitics_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
