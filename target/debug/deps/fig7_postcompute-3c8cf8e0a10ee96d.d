/root/repo/target/debug/deps/fig7_postcompute-3c8cf8e0a10ee96d.d: crates/bench/src/bin/fig7_postcompute.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_postcompute-3c8cf8e0a10ee96d.rmeta: crates/bench/src/bin/fig7_postcompute.rs Cargo.toml

crates/bench/src/bin/fig7_postcompute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
