/root/repo/target/debug/deps/fig1_magic_demo-c2d68e2ec237ccfe.d: crates/bench/src/bin/fig1_magic_demo.rs

/root/repo/target/debug/deps/fig1_magic_demo-c2d68e2ec237ccfe: crates/bench/src/bin/fig1_magic_demo.rs

crates/bench/src/bin/fig1_magic_demo.rs:
