/root/repo/target/debug/deps/fig2_tree-fb2c907fd169fb26.d: crates/bench/src/bin/fig2_tree.rs

/root/repo/target/debug/deps/fig2_tree-fb2c907fd169fb26: crates/bench/src/bin/fig2_tree.rs

crates/bench/src/bin/fig2_tree.rs:
