/root/repo/target/debug/deps/properties-58d7980dadc851a5.d: crates/modmul/tests/properties.rs

/root/repo/target/debug/deps/properties-58d7980dadc851a5: crates/modmul/tests/properties.rs

crates/modmul/tests/properties.rs:
