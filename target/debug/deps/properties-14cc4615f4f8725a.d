/root/repo/target/debug/deps/properties-14cc4615f4f8725a.d: crates/ntt/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-14cc4615f4f8725a.rmeta: crates/ntt/tests/properties.rs Cargo.toml

crates/ntt/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
