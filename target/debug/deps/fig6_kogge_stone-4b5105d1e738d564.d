/root/repo/target/debug/deps/fig6_kogge_stone-4b5105d1e738d564.d: crates/bench/src/bin/fig6_kogge_stone.rs

/root/repo/target/debug/deps/fig6_kogge_stone-4b5105d1e738d564: crates/bench/src/bin/fig6_kogge_stone.rs

crates/bench/src/bin/fig6_kogge_stone.rs:
