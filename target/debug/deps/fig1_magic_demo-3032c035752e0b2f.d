/root/repo/target/debug/deps/fig1_magic_demo-3032c035752e0b2f.d: crates/bench/src/bin/fig1_magic_demo.rs

/root/repo/target/debug/deps/fig1_magic_demo-3032c035752e0b2f: crates/bench/src/bin/fig1_magic_demo.rs

crates/bench/src/bin/fig1_magic_demo.rs:
