/root/repo/target/debug/deps/properties-8f188481de596d61.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-8f188481de596d61.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
