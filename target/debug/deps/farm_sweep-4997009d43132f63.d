/root/repo/target/debug/deps/farm_sweep-4997009d43132f63.d: crates/bench/src/bin/farm_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfarm_sweep-4997009d43132f63.rmeta: crates/bench/src/bin/farm_sweep.rs Cargo.toml

crates/bench/src/bin/farm_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
