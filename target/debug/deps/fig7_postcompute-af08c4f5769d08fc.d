/root/repo/target/debug/deps/fig7_postcompute-af08c4f5769d08fc.d: crates/bench/src/bin/fig7_postcompute.rs

/root/repo/target/debug/deps/fig7_postcompute-af08c4f5769d08fc: crates/bench/src/bin/fig7_postcompute.rs

crates/bench/src/bin/fig7_postcompute.rs:
