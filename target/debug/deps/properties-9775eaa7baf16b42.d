/root/repo/target/debug/deps/properties-9775eaa7baf16b42.d: crates/bigint/tests/properties.rs

/root/repo/target/debug/deps/properties-9775eaa7baf16b42: crates/bigint/tests/properties.rs

crates/bigint/tests/properties.rs:
