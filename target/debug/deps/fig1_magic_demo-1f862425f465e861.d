/root/repo/target/debug/deps/fig1_magic_demo-1f862425f465e861.d: crates/bench/src/bin/fig1_magic_demo.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_magic_demo-1f862425f465e861.rmeta: crates/bench/src/bin/fig1_magic_demo.rs Cargo.toml

crates/bench/src/bin/fig1_magic_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
