/root/repo/target/debug/deps/algos-e45c68686e3322eb.d: crates/bench/benches/algos.rs Cargo.toml

/root/repo/target/debug/deps/libalgos-e45c68686e3322eb.rmeta: crates/bench/benches/algos.rs Cargo.toml

crates/bench/benches/algos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
