/root/repo/target/debug/deps/properties-d43258e5f64b9c86.d: crates/crossbar/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d43258e5f64b9c86.rmeta: crates/crossbar/tests/properties.rs Cargo.toml

crates/crossbar/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
