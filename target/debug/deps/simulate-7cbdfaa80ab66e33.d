/root/repo/target/debug/deps/simulate-7cbdfaa80ab66e33.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-7cbdfaa80ab66e33: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
