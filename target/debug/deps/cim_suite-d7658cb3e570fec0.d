/root/repo/target/debug/deps/cim_suite-d7658cb3e570fec0.d: src/lib.rs

/root/repo/target/debug/deps/libcim_suite-d7658cb3e570fec0.rlib: src/lib.rs

/root/repo/target/debug/deps/libcim_suite-d7658cb3e570fec0.rmeta: src/lib.rs

src/lib.rs:
