/root/repo/target/debug/deps/backends-5b9968ec6e8fd526.d: crates/bench/benches/backends.rs Cargo.toml

/root/repo/target/debug/deps/libbackends-5b9968ec6e8fd526.rmeta: crates/bench/benches/backends.rs Cargo.toml

crates/bench/benches/backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
