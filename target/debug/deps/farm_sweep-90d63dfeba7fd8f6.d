/root/repo/target/debug/deps/farm_sweep-90d63dfeba7fd8f6.d: crates/bench/src/bin/farm_sweep.rs

/root/repo/target/debug/deps/farm_sweep-90d63dfeba7fd8f6: crates/bench/src/bin/farm_sweep.rs

crates/bench/src/bin/farm_sweep.rs:
