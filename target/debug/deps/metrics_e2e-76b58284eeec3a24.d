/root/repo/target/debug/deps/metrics_e2e-76b58284eeec3a24.d: tests/metrics_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics_e2e-76b58284eeec3a24.rmeta: tests/metrics_e2e.rs Cargo.toml

tests/metrics_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
