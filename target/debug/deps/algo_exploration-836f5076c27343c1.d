/root/repo/target/debug/deps/algo_exploration-836f5076c27343c1.d: crates/bench/src/bin/algo_exploration.rs

/root/repo/target/debug/deps/algo_exploration-836f5076c27343c1: crates/bench/src/bin/algo_exploration.rs

crates/bench/src/bin/algo_exploration.rs:
