/root/repo/target/debug/deps/fig4-4133ae95707927bd.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-4133ae95707927bd: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
