/root/repo/target/debug/deps/properties-c113ccda6e7e7567.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-c113ccda6e7e7567: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
