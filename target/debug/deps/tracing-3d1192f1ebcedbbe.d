/root/repo/target/debug/deps/tracing-3d1192f1ebcedbbe.d: crates/core/tests/tracing.rs Cargo.toml

/root/repo/target/debug/deps/libtracing-3d1192f1ebcedbbe.rmeta: crates/core/tests/tracing.rs Cargo.toml

crates/core/tests/tracing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
