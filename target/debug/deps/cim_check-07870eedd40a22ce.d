/root/repo/target/debug/deps/cim_check-07870eedd40a22ce.d: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

/root/repo/target/debug/deps/libcim_check-07870eedd40a22ce.rmeta: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

crates/check/src/lib.rs:
crates/check/src/gen.rs:
crates/check/src/gold.rs:
crates/check/src/pressure.rs:
crates/check/src/verify.rs:
