/root/repo/target/debug/deps/fig4-fd53596c4e47e3f4.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-fd53596c4e47e3f4: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
