/root/repo/target/debug/deps/bench_snapshot-87a8e8374bb1eaec.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/debug/deps/bench_snapshot-87a8e8374bb1eaec: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
