/root/repo/target/debug/deps/simulate-2c74f57003194662.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-2c74f57003194662: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
