/root/repo/target/debug/deps/energy_table-ce40338e9516ad9e.d: crates/bench/src/bin/energy_table.rs Cargo.toml

/root/repo/target/debug/deps/libenergy_table-ce40338e9516ad9e.rmeta: crates/bench/src/bin/energy_table.rs Cargo.toml

crates/bench/src/bin/energy_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
