/root/repo/target/debug/deps/properties-31d3691dceaec048.d: crates/crossbar/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-31d3691dceaec048.rmeta: crates/crossbar/tests/properties.rs Cargo.toml

crates/crossbar/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
