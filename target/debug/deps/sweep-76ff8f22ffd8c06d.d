/root/repo/target/debug/deps/sweep-76ff8f22ffd8c06d.d: crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-76ff8f22ffd8c06d.rmeta: crates/bench/src/bin/sweep.rs Cargo.toml

crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
