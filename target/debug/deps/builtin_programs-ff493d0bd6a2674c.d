/root/repo/target/debug/deps/builtin_programs-ff493d0bd6a2674c.d: crates/check/tests/builtin_programs.rs

/root/repo/target/debug/deps/builtin_programs-ff493d0bd6a2674c: crates/check/tests/builtin_programs.rs

crates/check/tests/builtin_programs.rs:
