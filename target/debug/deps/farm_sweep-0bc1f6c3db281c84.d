/root/repo/target/debug/deps/farm_sweep-0bc1f6c3db281c84.d: crates/bench/src/bin/farm_sweep.rs

/root/repo/target/debug/deps/farm_sweep-0bc1f6c3db281c84: crates/bench/src/bin/farm_sweep.rs

crates/bench/src/bin/farm_sweep.rs:
