/root/repo/target/debug/deps/fig5_pipeline-cd4cdf587ad51533.d: crates/bench/src/bin/fig5_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_pipeline-cd4cdf587ad51533.rmeta: crates/bench/src/bin/fig5_pipeline.rs Cargo.toml

crates/bench/src/bin/fig5_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
