/root/repo/target/debug/deps/farm_sweep-db9ad55a56f0d4c6.d: crates/bench/src/bin/farm_sweep.rs

/root/repo/target/debug/deps/farm_sweep-db9ad55a56f0d4c6: crates/bench/src/bin/farm_sweep.rs

crates/bench/src/bin/farm_sweep.rs:
