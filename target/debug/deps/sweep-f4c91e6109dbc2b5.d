/root/repo/target/debug/deps/sweep-f4c91e6109dbc2b5.d: crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-f4c91e6109dbc2b5.rmeta: crates/bench/src/bin/sweep.rs Cargo.toml

crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
