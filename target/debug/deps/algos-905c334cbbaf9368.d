/root/repo/target/debug/deps/algos-905c334cbbaf9368.d: crates/bench/benches/algos.rs Cargo.toml

/root/repo/target/debug/deps/libalgos-905c334cbbaf9368.rmeta: crates/bench/benches/algos.rs Cargo.toml

crates/bench/benches/algos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
