/root/repo/target/debug/deps/cim_check-b9304094bf6e992f.d: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

/root/repo/target/debug/deps/cim_check-b9304094bf6e992f: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

crates/check/src/lib.rs:
crates/check/src/gen.rs:
crates/check/src/gold.rs:
crates/check/src/pressure.rs:
crates/check/src/verify.rs:
