/root/repo/target/debug/deps/cim_bench-be3fca7637f1d2c1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cim_bench-be3fca7637f1d2c1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
